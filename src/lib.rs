//! Facade crate for the *Lazy Release Persistency* (ASPLOS 2020)
//! reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so examples and
//! integration tests can use a single dependency. See the README for the
//! architecture overview and DESIGN.md for the per-experiment index.

pub use lrp_baselines as baselines;
pub use lrp_check as check;
pub use lrp_core as core;
pub use lrp_exec as exec;
pub use lrp_lfds as lfds;
pub use lrp_model as model;
pub use lrp_obs as obs;
pub use lrp_recovery as recovery;
pub use lrp_serve as serve;
pub use lrp_sim as sim;
