//! Cross-crate integration: workload generation → timing simulation →
//! persist-order validation → crash recovery, for every structure and
//! mechanism.

use lrp_repro::lfds::{validate_image, MemImage, Structure, WorkloadSpec};
use lrp_repro::model::spec::check_rp;
use lrp_repro::recovery::{check_null_recovery, CrashPlan};
use lrp_repro::sim::{Mechanism, NvmMode, Sim, SimConfig};

fn quick_trace(s: Structure, seed: u64) -> lrp_repro::model::Trace {
    WorkloadSpec::new(s)
        .initial_size(32)
        .threads(4)
        .ops_per_thread(10)
        .seed(seed)
        .build_trace()
}

#[test]
fn full_matrix_rp_and_recovery() {
    for s in Structure::ALL {
        let t = quick_trace(s, 31);
        for m in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb] {
            let r = Sim::new(SimConfig::new(m), &t).run();
            check_rp(&t, &r.schedule).unwrap_or_else(|v| panic!("{s}/{m}: {v:?}"));
            let report = check_null_recovery(s, &t, &r.schedule, &CrashPlan::Sampled(16));
            assert!(report.all_recovered(), "{s}/{m}: {report}");
        }
    }
}

#[test]
fn final_functional_state_validates_for_every_structure() {
    for s in Structure::ALL {
        let t = quick_trace(s, 17);
        let img = MemImage::new(t.final_mem());
        validate_image(s, &t.roots, &img).unwrap_or_else(|e| panic!("{s}: {e}"));
    }
}

#[test]
fn mechanism_ordering_holds_on_aggregate() {
    // Summed across all five workloads, the paper's ordering must hold:
    // NOP <= LRP <= BB <= SB (small per-workload inversions are allowed
    // at this tiny scale, the aggregate must not invert).
    let mut sums = std::collections::HashMap::new();
    for s in Structure::ALL {
        let t = quick_trace(s, 5);
        for m in Mechanism::ALL {
            let c = Sim::new(SimConfig::new(m), &t).run().stats.cycles;
            *sums.entry(m).or_insert(0u64) += c;
        }
    }
    assert!(sums[&Mechanism::Nop] <= sums[&Mechanism::Lrp]);
    assert!(sums[&Mechanism::Lrp] <= sums[&Mechanism::Bb]);
    assert!(sums[&Mechanism::Bb] <= sums[&Mechanism::Sb]);
}

#[test]
fn uncached_mode_amplifies_overheads() {
    let t = quick_trace(Structure::Bst, 9);
    let cached = Sim::new(SimConfig::new(Mechanism::Lrp), &t)
        .run()
        .stats
        .cycles;
    let uncached = Sim::new(
        SimConfig::new(Mechanism::Lrp).nvm_mode(NvmMode::Uncached),
        &t,
    )
    .run()
    .stats
    .cycles;
    assert!(uncached >= cached);
}

#[test]
fn whole_stack_is_deterministic() {
    let build = || {
        let t = quick_trace(Structure::Queue, 77);
        let r = Sim::new(SimConfig::new(Mechanism::Lrp), &t).run();
        (t.events.len(), r.stats.cycles, r.persist_log.len())
    };
    assert_eq!(build(), build());
}

#[test]
fn facade_reexports_are_usable() {
    // The facade must expose every subsystem.
    let _ = lrp_repro::core::LrpConfig::default();
    let _ = lrp_repro::baselines::BufferedBarrier::default();
    let _ = lrp_repro::exec::ExecConfig::new(1);
    let _ = lrp_repro::model::Trace::new(1);
    let _ = lrp_repro::sim::SimConfig::new(lrp_repro::sim::Mechanism::Nop);
}
