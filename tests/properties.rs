//! Property-based tests over the whole stack.

use lrp_repro::exec::Xorshift64;
use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::model::hb::HbClosure;
use lrp_repro::model::litmus::LitmusBuilder;
use lrp_repro::model::spec::{check_cut_closure, check_rp, PersistSchedule};
use lrp_repro::model::{codec, Annot, EventId, Trace};
use proptest::prelude::*;

/// A random small multi-threaded trace built through the litmus
/// interpreter (always well-formed).
fn arb_trace() -> impl Strategy<Value = Trace> {
    // Each op: (thread, kind 0..5, addr index, value)
    let op = (0..3u16, 0..5u8, 0..6u64, 1..100u64);
    proptest::collection::vec(op, 1..60).prop_map(|ops| {
        let mut b = LitmusBuilder::new(3);
        for (t, kind, a, v) in ops {
            let addr = 0x100 + 8 * a;
            match kind {
                0 => {
                    b.write(t, addr, v);
                }
                1 => {
                    b.write_rel(t, addr, v);
                }
                2 => {
                    b.read(t, addr);
                }
                3 => {
                    b.read_acq(t, addr);
                }
                _ => {
                    let cur = {
                        // CAS against the current value half the time.
                        let id = b.read(t, addr);
                        id
                    };
                    let _ = cur;
                    b.cas(t, addr, v, v + 1, Annot::Release);
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Traces from the litmus interpreter always validate.
    #[test]
    fn litmus_traces_validate(t in arb_trace()) {
        prop_assert!(t.validate().is_ok());
    }

    /// The text codec is lossless.
    #[test]
    fn codec_round_trips(t in arb_trace()) {
        let u = codec::from_text(&codec::to_text(&t)).unwrap();
        prop_assert_eq!(t.events, u.events);
        prop_assert_eq!(t.initial_mem, u.initial_mem);
    }

    /// Happens-before is irreflexive and transitive.
    #[test]
    fn hb_is_a_strict_partial_order(t in arb_trace()) {
        let hb = HbClosure::compute(&t).unwrap();
        let n = t.events.len() as EventId;
        for a in 0..n {
            prop_assert!(!hb.hb(a, a));
        }
        // Transitivity on sampled triples.
        for a in 0..n.min(20) {
            for bb in 0..n.min(20) {
                for c in 0..n.min(20) {
                    if hb.hb(a, bb) && hb.hb(bb, c) {
                        prop_assert!(hb.hb(a, c), "a={a} b={bb} c={c}");
                    }
                }
            }
        }
    }

    /// For a total persist order (distinct stamps), the streaming RP
    /// checker agrees exactly with the consistent-cut criterion over the
    /// persist-order happens-before closure (the paper's expanded §4.1
    /// rules) — the theorem the streaming checker's O(n) design rests on.
    #[test]
    fn streaming_rp_equals_cut_closure(t in arb_trace(), seed in 0u64..1000) {
        let writes: Vec<EventId> = t
            .events
            .iter()
            .filter(|e| e.is_write_effect())
            .map(|e| e.id)
            .collect();
        // Random permutation of the writes as persist order.
        let mut order = writes.clone();
        let mut rng = Xorshift64::new(seed + 1);
        for i in (1..order.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let sched = PersistSchedule::from_order(t.events.len(), &order);
        let hb = HbClosure::compute_persist(&t).unwrap();
        let rp = check_rp(&t, &sched).is_ok();
        let cut = check_cut_closure(&t, &hb, &sched).is_ok();
        prop_assert_eq!(rp, cut, "streaming RP and persist-hb cut closure disagree");
    }

    /// Workload traces are deterministic functions of their spec.
    #[test]
    fn workload_generation_is_deterministic(seed in 0u64..50) {
        let spec = WorkloadSpec::new(Structure::HashMap)
            .initial_size(16)
            .threads(2)
            .ops_per_thread(6)
            .seed(seed);
        let a = spec.build_trace();
        let b = spec.build_trace();
        prop_assert_eq!(a.events, b.events);
    }

    /// Xorshift bounded sampling stays in range.
    #[test]
    fn xorshift_below_in_range(seed: u64, bound in 1u64..1_000_000) {
        let mut r = Xorshift64::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(bound) < bound);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The full simulator upholds RP on random small workloads under
    /// every enforcing mechanism (expensive: few cases).
    #[test]
    fn simulator_upholds_rp(seed in 0u64..1000, s_idx in 0usize..5) {
        use lrp_repro::sim::{Mechanism, Sim, SimConfig};
        let s = Structure::ALL[s_idx];
        let t = WorkloadSpec::new(s)
            .initial_size(16)
            .threads(3)
            .ops_per_thread(8)
            .seed(seed)
            .build_trace();
        for m in [Mechanism::Lrp, Mechanism::Bb, Mechanism::Sb] {
            let r = Sim::new(SimConfig::new(m), &t).run();
            prop_assert!(check_rp(&t, &r.schedule).is_ok(), "{}/{}", s, m);
        }
    }
}
