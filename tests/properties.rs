//! Randomized property tests over the whole stack.
//!
//! The container builds fully offline, so these are hand-rolled
//! property loops driven by the deterministic [`Xorshift64`] generator
//! rather than `proptest`: every case is a pure function of a fixed
//! seed, so a failure message's seed reproduces the case exactly.

use lrp_repro::exec::Xorshift64;
use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::model::hb::HbClosure;
use lrp_repro::model::litmus::LitmusBuilder;
use lrp_repro::model::spec::{check_cut_closure, check_rp, PersistSchedule};
use lrp_repro::model::{codec, Annot, EventId, Trace};

/// A random small multi-threaded trace built through the litmus
/// interpreter (always well-formed by construction).
fn random_trace(seed: u64) -> Trace {
    let mut rng = Xorshift64::new(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let n_ops = 1 + rng.below(59) as usize;
    let mut b = LitmusBuilder::new(3);
    for _ in 0..n_ops {
        let t = rng.below(3) as u16;
        let kind = rng.below(5) as u8;
        let addr = 0x100 + 8 * rng.below(6);
        let v = 1 + rng.below(99);
        match kind {
            0 => {
                b.write(t, addr, v);
            }
            1 => {
                b.write_rel(t, addr, v);
            }
            2 => {
                b.read(t, addr);
            }
            3 => {
                b.read_acq(t, addr);
            }
            _ => {
                let _ = b.read(t, addr);
                b.cas(t, addr, v, v + 1, Annot::Release);
            }
        }
    }
    b.build()
}

/// Traces from the litmus interpreter always validate.
#[test]
fn litmus_traces_validate() {
    for seed in 0..64 {
        let t = random_trace(seed);
        assert!(t.validate().is_ok(), "seed {seed}");
    }
}

/// The text codec is lossless.
#[test]
fn codec_round_trips() {
    for seed in 0..64 {
        let t = random_trace(seed);
        let u = codec::from_text(&codec::to_text(&t)).unwrap();
        assert_eq!(t.events, u.events, "seed {seed}");
        assert_eq!(t.initial_mem, u.initial_mem, "seed {seed}");
    }
}

/// Happens-before is irreflexive and transitive.
#[test]
fn hb_is_a_strict_partial_order() {
    for seed in 0..64 {
        let t = random_trace(seed);
        let hb = HbClosure::compute(&t).unwrap();
        let n = t.events.len() as EventId;
        for a in 0..n {
            assert!(!hb.hb(a, a), "seed {seed}: hb not irreflexive at {a}");
        }
        // Transitivity on sampled triples.
        for a in 0..n.min(20) {
            for b2 in 0..n.min(20) {
                for c in 0..n.min(20) {
                    if hb.hb(a, b2) && hb.hb(b2, c) {
                        assert!(hb.hb(a, c), "seed {seed}: a={a} b={b2} c={c}");
                    }
                }
            }
        }
    }
}

/// For a total persist order (distinct stamps), the streaming RP
/// checker agrees exactly with the consistent-cut criterion over the
/// persist-order happens-before closure (the paper's expanded §4.1
/// rules) — the theorem the streaming checker's O(n) design rests on.
#[test]
fn streaming_rp_equals_cut_closure() {
    for seed in 0..64u64 {
        let t = random_trace(seed);
        let writes: Vec<EventId> = t
            .events
            .iter()
            .filter(|e| e.is_write_effect())
            .map(|e| e.id)
            .collect();
        // Random permutation of the writes as persist order.
        let mut order = writes.clone();
        let mut rng = Xorshift64::new(seed + 1);
        for i in (1..order.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            order.swap(i, j);
        }
        let sched = PersistSchedule::from_order(t.events.len(), &order);
        let hb = HbClosure::compute_persist(&t).unwrap();
        let rp = check_rp(&t, &sched).is_ok();
        let cut = check_cut_closure(&t, &hb, &sched).is_ok();
        assert_eq!(
            rp, cut,
            "seed {seed}: streaming RP and cut closure disagree"
        );
    }
}

/// Workload traces are deterministic functions of their spec.
#[test]
fn workload_generation_is_deterministic() {
    for seed in 0..12 {
        let spec = WorkloadSpec::new(Structure::HashMap)
            .initial_size(16)
            .threads(2)
            .ops_per_thread(6)
            .seed(seed);
        let a = spec.build_trace();
        let b = spec.build_trace();
        assert_eq!(a.events, b.events, "seed {seed}");
    }
}

/// Xorshift bounded sampling stays in range.
#[test]
fn xorshift_below_in_range() {
    let mut seeder = Xorshift64::new(0xDEAD_BEEF);
    for _ in 0..64 {
        let seed = seeder.next_u64();
        let bound = 1 + seeder.below(1_000_000);
        let mut r = Xorshift64::new(seed);
        for _ in 0..32 {
            assert!(r.below(bound) < bound, "seed {seed} bound {bound}");
        }
    }
}

/// The full simulator upholds RP on random small workloads under every
/// enforcing mechanism (expensive: few cases).
#[test]
fn simulator_upholds_rp() {
    use lrp_repro::sim::{Mechanism, Sim, SimConfig};
    for case in 0..8u64 {
        let s = Structure::ALL[case as usize % Structure::ALL.len()];
        let t = WorkloadSpec::new(s)
            .initial_size(16)
            .threads(3)
            .ops_per_thread(8)
            .seed(1000 + case)
            .build_trace();
        for m in [Mechanism::Lrp, Mechanism::Bb, Mechanism::Sb] {
            let r = Sim::new(SimConfig::new(m), &t).run();
            assert!(check_rp(&t, &r.schedule).is_ok(), "{s}/{m} case {case}");
        }
    }
}
