//! Golden determinism suite — the hot-path refactor's safety net.
//!
//! Every cell of (five LFDs) × {nop, sb, bb, lrp} replays a seeded
//! workload through the full timing simulator and renders a canonical
//! snapshot of everything the machine produces: `Stats` (stable field
//! order), the per-event persist-stamp vector, and the complete
//! `persist_log` in completion order. The snapshots are committed as
//! fixtures under `tests/golden/` and must match **byte-for-byte**, so
//! any change to event ordering, coherence timing, or persist planning
//! is caught immediately.
//!
//! To regenerate after a *deliberate* behavior change:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test --test golden_determinism
//! ```

use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::sim::{Mechanism, Sim, SimConfig};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Workload shape shared by every golden cell: small enough that the
/// fixtures stay reviewable, large enough to exercise evictions,
/// downgrades, RET churn, and multi-stage engine runs.
fn golden_trace(structure: Structure) -> lrp_repro::model::Trace {
    WorkloadSpec::new(structure)
        .initial_size(24)
        .threads(3)
        .ops_per_thread(12)
        .seed(7)
        .build_trace()
}

/// Canonical snapshot text for one (structure, mechanism) cell.
fn render(structure: Structure, mech: Mechanism) -> String {
    let trace = golden_trace(structure);
    let r = Sim::new(SimConfig::new(mech), &trace).run();
    let s = &r.stats;
    let mut out = String::new();
    writeln!(out, "golden {}/{}", structure.name(), mech.name()).unwrap();
    writeln!(
        out,
        "stats cycles={} ops={} load_hits={} load_misses={} stores={} \
         downgrades={} evictions={} covered_writes={} noc_messages={} \
         nvm_requests={} engine_runs={}",
        s.cycles,
        s.ops,
        s.load_hits,
        s.load_misses,
        s.stores,
        s.downgrades,
        s.evictions,
        s.covered_writes,
        s.noc_messages,
        s.nvm_requests,
        s.engine_runs
    )
    .unwrap();
    for (class, n) in s.flushes_by_class() {
        writeln!(out, "flushes {}={}", class.name(), n).unwrap();
    }
    for (cause, n) in s.stalls_by_cause() {
        writeln!(out, "stalls {}={}", cause.name(), n).unwrap();
    }
    let mut stamps = String::new();
    for ev in 0..trace.events.len() {
        if let Some(st) = r.schedule.stamp(ev as u32) {
            write!(stamps, " {ev}:{st}").unwrap();
        }
    }
    writeln!(out, "stamps{stamps}").unwrap();
    for p in &r.persist_log {
        let mut cov = String::new();
        for &e in &p.covered {
            write!(cov, " {e}").unwrap();
        }
        writeln!(
            out,
            "persist stamp={} time={} line={:#x} covered={}",
            p.stamp,
            p.time,
            p.line,
            cov.trim_start()
        )
        .unwrap();
    }
    out
}

/// A scaled sample of the paper tier's shape — a large pre-populated
/// structure, a high simulated core count, few ops per thread — small
/// enough to commit, big enough that the wide-mesh scheduling and
/// eviction behavior the paper tier exercises is pinned byte-for-byte.
fn paper_shaped_trace(structure: Structure) -> lrp_repro::model::Trace {
    WorkloadSpec::new(structure)
        .initial_size(4096)
        .threads(16)
        .ops_per_thread(8)
        .seed(7)
        .build_trace()
}

/// Canonical snapshot for one paper-shaped cell: `Stats` plus the
/// persist-stamp vector (the full persist log at this scale would
/// swamp review; stamps already pin persist planning per event).
fn render_paper(structure: Structure, mech: Mechanism) -> String {
    let trace = paper_shaped_trace(structure);
    let r = Sim::new(SimConfig::new(mech), &trace).run();
    let s = &r.stats;
    let mut out = String::new();
    writeln!(out, "golden-paper {}/{}", structure.name(), mech.name()).unwrap();
    writeln!(
        out,
        "stats cycles={} ops={} load_hits={} load_misses={} stores={} \
         downgrades={} evictions={} covered_writes={} noc_messages={} \
         nvm_requests={} engine_runs={}",
        s.cycles,
        s.ops,
        s.load_hits,
        s.load_misses,
        s.stores,
        s.downgrades,
        s.evictions,
        s.covered_writes,
        s.noc_messages,
        s.nvm_requests,
        s.engine_runs
    )
    .unwrap();
    let mut stamps = String::new();
    for ev in 0..trace.events.len() {
        if let Some(st) = r.schedule.stamp(ev as u32) {
            write!(stamps, " {ev}:{st}").unwrap();
        }
    }
    writeln!(out, "stamps{stamps}").unwrap();
    out
}

fn fixture_path(structure: Structure, mech: Mechanism) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{}_{}.txt", structure.name(), mech.name()))
}

#[test]
fn golden_fixtures_match_byte_for_byte() {
    let update = std::env::var_os("GOLDEN_UPDATE").is_some();
    let mut failures = Vec::new();
    for structure in Structure::ALL {
        for mech in Mechanism::ALL {
            let got = render(structure, mech);
            let path = fixture_path(structure, mech);
            if update {
                std::fs::create_dir_all(path.parent().unwrap()).unwrap();
                std::fs::write(&path, &got).unwrap();
                continue;
            }
            let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing fixture {} ({e}); run with GOLDEN_UPDATE=1 to create",
                    path.display()
                )
            });
            if got != want {
                failures.push(format!(
                    "{}/{}: snapshot diverged from {} (set GOLDEN_UPDATE=1 only for deliberate behavior changes)",
                    structure.name(),
                    mech.name(),
                    path.display()
                ));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn golden_paper_shaped_fixtures_match_byte_for_byte() {
    let update = std::env::var_os("GOLDEN_UPDATE").is_some();
    let mut failures = Vec::new();
    for mech in [Mechanism::Lrp, Mechanism::Sb] {
        let structure = Structure::HashMap;
        let got = render_paper(structure, mech);
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(format!("paper_{}_{}.txt", structure.name(), mech.name()));
        if update {
            std::fs::write(&path, &got).unwrap();
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {} ({e}); run with GOLDEN_UPDATE=1 to create",
                path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "paper-shaped {}/{}: snapshot diverged from {}",
                structure.name(),
                mech.name(),
                path.display()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

/// The same cell rendered twice in-process is bit-identical: the
/// simulator has no hidden global state or iteration-order dependence.
#[test]
fn golden_rendering_is_deterministic_in_process() {
    for structure in [Structure::Queue, Structure::HashMap] {
        let a = render(structure, Mechanism::Lrp);
        let b = render(structure, Mechanism::Lrp);
        assert_eq!(a, b, "{} lrp rendering not deterministic", structure.name());
    }
}
