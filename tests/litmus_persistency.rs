//! A litmus suite of small named executions, each replayed through the
//! full timing simulator under every enforcing mechanism and checked
//! against the RP specification — the persistency analogue of a
//! consistency litmus battery.

use lrp_repro::model::litmus::LitmusBuilder;
use lrp_repro::model::spec::check_rp;
use lrp_repro::model::{Annot, Trace};
use lrp_repro::sim::{Mechanism, Sim, SimConfig};

fn check_all(name: &str, t: &Trace) {
    t.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    for m in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb] {
        let r = Sim::new(SimConfig::new(m), t).run();
        check_rp(t, &r.schedule).unwrap_or_else(|v| panic!("{name} under {m}: {v:?}"));
    }
}

/// MP (message passing): the canonical Figure 1 chain.
#[test]
fn litmus_message_passing() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x200, 0);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x200, 1);
    b.read_acq(1, 0x200);
    b.write(1, 0x300, 1);
    check_all("MP", &b.build());
}

/// MP with the data and flag on the same cache line (coalescing traps).
#[test]
fn litmus_message_passing_same_line() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x108, 0);
    b.write(0, 0x100, 1); // same 64B line as the flag
    b.write_rel(0, 0x108, 1);
    b.read_acq(1, 0x108);
    b.write(1, 0x300, 1);
    check_all("MP-same-line", &b.build());
}

/// Release chains: A releases to B, B releases to C.
#[test]
fn litmus_transitive_release_chain() {
    let mut b = LitmusBuilder::new(3);
    b.init(0x200, 0);
    b.init(0x400, 0);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x200, 1);
    b.read_acq(1, 0x200);
    b.write(1, 0x300, 1);
    b.write_rel(1, 0x400, 1);
    b.read_acq(2, 0x400);
    b.write(2, 0x500, 1);
    check_all("chain", &b.build());
}

/// Repeated release to the same address (release-on-released-line path).
#[test]
fn litmus_release_release_same_line() {
    let mut b = LitmusBuilder::new(1);
    for i in 0..10u64 {
        b.write(0, 0x100 + 8 * (i % 3), i);
        b.write_rel(0, 0x200, i);
    }
    check_all("rel-rel-same-line", &b.build());
}

/// Store buffering shape: two threads publish to each other.
#[test]
fn litmus_store_buffering() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x200, 0);
    b.init(0x400, 0);
    b.write(0, 0x100, 1);
    b.write_rel(0, 0x200, 1);
    b.write(1, 0x300, 1);
    b.write_rel(1, 0x400, 1);
    b.read_acq(0, 0x400);
    b.read_acq(1, 0x200);
    b.write(0, 0x500, 1);
    b.write(1, 0x600, 1);
    check_all("SB-shape", &b.build());
}

/// CAS hand-off ring over three threads (RMW-release relay).
#[test]
fn litmus_cas_relay() {
    let mut b = LitmusBuilder::new(3);
    b.init(0x100, 0);
    for round in 0..9u64 {
        let t = (round % 3) as u16;
        b.write(t, 0x200 + 0x40 * t as u64, round); // private payload
        b.cas(t, 0x100, round, round + 1, Annot::Release);
    }
    check_all("cas-relay", &b.build());
}

/// Acquire-RMW (I3): the RMW's own write persists before later writes.
#[test]
fn litmus_rmw_acquire_then_write() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 0);
    b.write(0, 0x180, 7);
    b.cas(0, 0x100, 0, 1, Annot::AcqRel);
    b.write(0, 0x200, 8);
    b.cas(1, 0x100, 1, 2, Annot::AcqRel);
    b.write(1, 0x280, 9);
    check_all("rmw-acq", &b.build());
}

/// Failed CAS acquires but must not be treated as a write.
#[test]
fn litmus_failed_cas_acquire() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x100, 0);
    b.write(0, 0x180, 1);
    b.write_rel(0, 0x100, 5);
    b.cas(1, 0x100, 99, 1, Annot::AcqRel); // fails, reads 5
    b.write(1, 0x200, 2);
    check_all("failed-cas", &b.build());
}

/// Eviction pressure: dirty working set larger than one L1 set forces
/// write-backs between the release and the acquire.
#[test]
fn litmus_eviction_between_sync() {
    let mut b = LitmusBuilder::new(2);
    b.init(0x10_0000, 0);
    b.write(0, 0x8000, 1);
    b.write_rel(0, 0x10_0000, 1);
    // Thrash thread 0's L1 set containing 0x8000 (64 sets => stride
    // 64*64 bytes maps to the same set).
    for i in 1..=10u64 {
        b.write(0, 0x8000 + i * 64 * 64, i);
    }
    b.read_acq(1, 0x10_0000);
    b.write(1, 0x20_0000, 1);
    check_all("evict-sync", &b.build());
}

/// Single-line epoch wrap: enough releases to wrap an 8-bit epoch.
#[test]
fn litmus_epoch_wrap_many_releases() {
    let mut b = LitmusBuilder::new(1);
    for i in 0..300u64 {
        b.write(0, 0x100 + 8 * (i % 4), i);
        b.write_rel(0, 0x1000 + 64 * (i % 8), i);
    }
    let t = b.build();
    // 300 releases > 255 epoch limit: wrap handling must keep RP intact.
    check_all("epoch-wrap", &t);
}

/// Independent plain writes may persist in any order (RP's freedom) —
/// NOP also runs clean here because nothing constrains it.
#[test]
fn litmus_independent_writes_unconstrained() {
    let mut b = LitmusBuilder::new(2);
    for i in 0..8u64 {
        b.write(0, 0x1000 + 8 * i, i);
        b.write(1, 0x2000 + 8 * i, i);
    }
    let t = b.build();
    check_all("independent", &t);
    // Even NOP's (empty) schedule satisfies RP here.
    let r = Sim::new(SimConfig::new(Mechanism::Nop), &t).run();
    check_rp(&t, &r.schedule).unwrap();
}
