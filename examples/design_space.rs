//! Design-space exploration: sweep the LRP hardware parameters the
//! paper fixes (RET capacity, persist-engine scan cost, engine ordering)
//! and the extra persist-buffer baseline, on one workload.
//!
//! Run with: `cargo run --release --example design_space`

use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::model::spec::check_rp;
use lrp_repro::sim::{Mechanism, Sim, SimConfig};

fn main() {
    let trace = WorkloadSpec::new(Structure::SkipList)
        .initial_size(256)
        .threads(8)
        .ops_per_thread(40)
        .seed(21)
        .build_trace();
    println!(
        "workload: skiplist, {} events, 8 threads\n",
        trace.events.len()
    );

    println!("-- RET capacity sweep (design choice D3) --");
    println!("{:>8} {:>10} {:>9}", "entries", "cycles", "flushes");
    for ret in [2usize, 4, 8, 16, 32, 64] {
        let mut cfg = SimConfig::new(Mechanism::Lrp);
        cfg.lrp.ret_capacity = ret;
        cfg.lrp.ret_watermark = ret.saturating_sub(4).max(1);
        let r = Sim::new(cfg, &trace).run();
        check_rp(&trace, &r.schedule).expect("RP holds at every size");
        println!(
            "{ret:>8} {:>10} {:>9}",
            r.stats.cycles,
            r.stats.total_flushes()
        );
    }

    println!("\n-- persist-engine scan cost --");
    println!("{:>8} {:>10}", "cycles", "exec time");
    for scan in [0u64, 8, 16, 32, 64, 128] {
        let mut cfg = SimConfig::new(Mechanism::Lrp);
        cfg.lrp.scan_cycles = scan;
        let r = Sim::new(cfg, &trace).run();
        println!("{scan:>8} {:>10}", r.stats.cycles);
    }

    println!("\n-- engine ordering (design choice D2) --");
    for (name, strict) in [
        ("writes-first (paper)", false),
        ("strict epoch order", true),
    ] {
        let mut cfg = SimConfig::new(Mechanism::Lrp);
        cfg.lrp.strict_epoch_engine = strict;
        let r = Sim::new(cfg, &trace).run();
        println!("{name:<22} {:>10} cycles", r.stats.cycles);
    }

    println!("\n-- implementation school (cache-based vs persist buffer) --");
    for m in [Mechanism::Lrp, Mechanism::Bb, Mechanism::Dpo] {
        let r = Sim::new(SimConfig::new(m), &trace).run();
        check_rp(&trace, &r.schedule).expect("RP holds");
        println!(
            "{:<6} {:>10} cycles, {:>6} flushes, {:>5.2} writes/flush",
            m.name(),
            r.stats.cycles,
            r.stats.total_flushes(),
            r.stats.coalescing()
        );
    }
}
