//! Quickstart: generate a log-free data structure workload, replay it
//! through the timing simulator under every persistency mechanism, and
//! verify that the recorded persist order satisfies Release Persistency.
//!
//! Run with: `cargo run --release --example quickstart`

use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::model::spec::check_rp;
use lrp_repro::sim::{Mechanism, Sim, SimConfig};

fn main() {
    // 1. A SynchroBench-style workload: 4 threads, 1:1 insert:delete.
    let spec = WorkloadSpec::new(Structure::HashMap)
        .initial_size(4096)
        .threads(4)
        .ops_per_thread(50)
        .seed(7);
    let trace = spec.build_trace();
    trace.validate().expect("well-formed trace");
    println!(
        "workload: {} | {} memory events, {} operations, {} threads",
        spec.structure,
        trace.events.len(),
        trace.markers.len(),
        trace.nthreads
    );

    // 2. Replay under each mechanism (Table 1 machine).
    println!(
        "\n{:<6} {:>12} {:>10} {:>8} {:>10}",
        "mech", "cycles", "vs NOP", "flushes", "crit WB %"
    );
    let mut nop_cycles = 0u64;
    for m in Mechanism::ALL {
        let result = Sim::new(SimConfig::new(m), &trace).run();
        if m == Mechanism::Nop {
            nop_cycles = result.stats.cycles;
        }
        println!(
            "{:<6} {:>12} {:>9.3}x {:>8} {:>9.1}%",
            m.name(),
            result.stats.cycles,
            result.stats.cycles as f64 / nop_cycles as f64,
            result.stats.total_flushes(),
            100.0 * result.stats.critical_writeback_fraction(),
        );
        // 3. Every enforcing mechanism's persist order must satisfy RP.
        if m != Mechanism::Nop {
            check_rp(&trace, &result.schedule).expect("RP violated");
        }
    }
    println!("\nall persist schedules satisfy Release Persistency");
}
