//! Persistency audit: inspect a recorded execution, compare the ARP and
//! RP persistency models on it, and show LRP's write coalescing.
//!
//! Run with: `cargo run --release --example persistency_audit`

use lrp_repro::baselines::arp::{arp_schedule, ArpOrder};
use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::model::codec;
use lrp_repro::model::spec::{check_arp, check_rp};
use lrp_repro::sim::{Mechanism, Sim, SimConfig};

fn main() {
    let trace = WorkloadSpec::new(Structure::SkipList)
        .initial_size(128)
        .threads(4)
        .ops_per_thread(30)
        .seed(11)
        .build_trace();

    // Event census.
    let (mut reads, mut writes, mut acqs, mut rels) = (0, 0, 0, 0);
    for e in &trace.events {
        if e.is_read_effect() {
            reads += 1;
        }
        if e.is_write_effect() {
            writes += 1;
        }
        if e.is_acquire() {
            acqs += 1;
        }
        if e.is_release() {
            rels += 1;
        }
    }
    println!(
        "trace: {} events ({reads} reads, {writes} writes, {acqs} acquires, {rels} releases)",
        trace.events.len()
    );

    // Round-trip through the text codec.
    let text = codec::to_text(&trace);
    let reparsed = codec::from_text(&text).expect("codec round-trip");
    assert_eq!(reparsed.events.len(), trace.events.len());
    println!("text codec round-trip: {} bytes", text.len());

    // ARP's two faces on the same execution.
    for order in [ArpOrder::Insertion, ArpOrder::ReleaseFirst] {
        let sched = arp_schedule(&trace, order);
        let arp_ok = check_arp(&trace, &sched).is_ok();
        let rp_ok = check_rp(&trace, &sched).is_ok();
        println!("ARP schedule ({order:?}): satisfies ARP rule = {arp_ok}, satisfies RP = {rp_ok}");
    }

    // LRP hardware run: RP holds, and coalescing shrinks the flush count.
    let run = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
    check_rp(&trace, &run.schedule).expect("LRP enforces RP");
    println!(
        "LRP run: {} flushes covering {} writes ({:.2} writes/flush coalescing)",
        run.stats.total_flushes(),
        run.stats.covered_writes,
        run.stats.coalescing()
    );
}
