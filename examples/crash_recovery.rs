//! Crash recovery: the paper's core claim, end to end.
//!
//! 1. Reproduces Figure 1: an ARP-legal persist order leaves a log-free
//!    linked list unrecoverable, while the LRP hardware run recovers at
//!    every crash point.
//! 2. Crash-samples a full workload run per structure under LRP and
//!    validates null recovery everywhere.
//!
//! Run with: `cargo run --release --example crash_recovery`

use lrp_repro::lfds::{Structure, WorkloadSpec};
use lrp_repro::recovery::{check_null_recovery, counterexample, CrashPlan};
use lrp_repro::sim::{Mechanism, Sim, SimConfig};

fn main() {
    println!("== Figure 1: why ARP's one-sided barrier is too weak ==");
    let f = counterexample::figure1();
    println!(
        "ARP (adversarial persist order): {}/{} crash points leave the list unrecoverable",
        f.arp_failures, f.arp_points
    );
    println!(
        "LRP (simulated hardware):        0/{} crash points fail",
        f.lrp_points
    );

    println!("\n== Null recovery of every LFD under LRP ==");
    for s in Structure::ALL {
        let trace = WorkloadSpec::new(s)
            .initial_size(64)
            .threads(4)
            .ops_per_thread(25)
            .seed(3)
            .build_trace();
        let run = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
        let report = check_null_recovery(s, &trace, &run.schedule, &CrashPlan::Exhaustive);
        println!("{:<12} {}", s.name(), report);
        assert!(report.all_recovered());
    }
    println!("\nevery crash point of every structure recovered with null recovery");
}
