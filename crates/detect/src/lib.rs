//! Detectable operations for exactly-once serving.
//!
//! A crash leaves clients holding `Crashed` and `durable: false` acks:
//! "did my op happen?" is unanswerable, so blind retries give only
//! at-least-once semantics. Memento (Kim et al., PLDI 2023) and the
//! detectable-execution model of Ben-David et al. answer the question
//! with a *persistent per-client slot*: before an operation is acked,
//! the executor stamps a slot record — request id, key, and an encoded
//! outcome — **through the same simulated NVM** as the data it
//! protects, so the stamp's durability is governed by the very persist
//! schedule under test.
//!
//! The stamp is written payload-first with the request-id word last via
//! a *release* store. Under any discipline that persist-orders
//! program-order-earlier writes before a release
//! ([`PersistDiscipline::orders_release_stamps`](lrp_core)), a stamp
//! recovered from a crash image therefore proves three things at once:
//!
//! 1. the record's own payload words are not torn,
//! 2. every write of the operation body (program-order before the
//!    stamp) reached NVM, and
//! 3. the recorded outcome is the outcome that persisted.
//!
//! Recovery reads the slot table back from the crash-cut image
//! ([`read_table`]) and builds a [`Resolver`] that deterministically
//! answers [`Done`](ResolvedStatus::Done) or
//! [`NotStarted`](ResolvedStatus::NotStarted) for every uncertain
//! request id. `NotStarted` is a safe answer even when the operation's
//! *effect* persisted but its stamp did not (the stamp trails the
//! effect in persist order): the serving layer's set semantics make the
//! retry idempotent, so the client converges without double-applying.

mod resolve;
mod slot;

pub use resolve::{ResolvedStatus, Resolver};
pub use slot::{
    read_table, rid_client, rid_seq, stamp, table_roots, write_table_setup, SlotKind, SlotRecord,
    SlotSpec, SlotTable, TableScan, RECORD_WORDS, ROOT_BASE, ROOT_CLIENTS, ROOT_RING,
};
