//! The recovery-time resolver.
//!
//! Built from the slot table recovered out of a crash-cut image, a
//! [`Resolver`] answers the only question a post-crash client needs:
//! *did request `rid` execute and persist?* The answer is total and
//! deterministic — a durable stamp resolves
//! [`Done`](ResolvedStatus::Done) with the recorded outcome, anything
//! else resolves [`NotStarted`](ResolvedStatus::NotStarted) and the
//! client retries. Two calls with the same rid always agree: the
//! resolver is a pure function of the recovered image.

use crate::slot::{SlotKind, SlotRecord, SlotTable};
use std::collections::HashMap;

/// The deterministic post-crash verdict for one request id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedStatus {
    /// The operation executed and its checkpoint stamp is durable:
    /// under a release-ordering discipline its effect is durable too.
    /// Do **not** retry.
    Done {
        /// Operation class the stamp recorded.
        kind: SlotKind,
        /// Functional outcome that persisted.
        applied: bool,
        /// Key the operation targeted.
        key: u64,
        /// Batch that executed it.
        batch: u64,
    },
    /// No durable stamp: retry. (The effect may still have persisted
    /// with its stamp in the volatile tail — the retry is idempotent
    /// under set semantics, so this answer is always safe.)
    NotStarted,
}

impl ResolvedStatus {
    /// True for [`ResolvedStatus::Done`].
    pub fn is_done(&self) -> bool {
        matches!(self, ResolvedStatus::Done { .. })
    }
}

/// Maps uncertain request ids to verdicts.
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    by_rid: HashMap<u64, SlotRecord>,
}

impl Resolver {
    /// An empty resolver: everything resolves `NotStarted`. Used when
    /// the mechanism's discipline cannot back a stamp's promise
    /// (e.g. `nop`), degrading gracefully to at-least-once.
    pub fn empty() -> Resolver {
        Resolver::default()
    }

    /// Builds the resolver from a recovered slot table.
    pub fn from_table(table: &SlotTable) -> Resolver {
        Resolver {
            by_rid: table.iter().map(|r| (r.rid, *r)).collect(),
        }
    }

    /// Stamped records known to this resolver.
    pub fn len(&self) -> usize {
        self.by_rid.len()
    }

    /// True when no stamp is known.
    pub fn is_empty(&self) -> bool {
        self.by_rid.is_empty()
    }

    /// The verdict for `rid`.
    pub fn resolve(&self, rid: u64) -> ResolvedStatus {
        match self.by_rid.get(&rid) {
            Some(r) => ResolvedStatus::Done {
                kind: r.kind,
                applied: r.applied,
                key: r.key,
                batch: r.batch,
            },
            None => ResolvedStatus::NotStarted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::SlotSpec;

    fn rid(client: u64, seq: u64) -> u64 {
        (client << 48) | seq
    }

    #[test]
    fn resolver_is_total_and_deterministic() {
        let mut table = SlotTable::new(SlotSpec {
            clients: 4,
            ring: 4,
        });
        table.put(SlotRecord {
            rid: rid(1, 3),
            key: 99,
            kind: SlotKind::Put,
            applied: true,
            batch: 7,
        });
        let r = Resolver::from_table(&table);
        assert_eq!(r.len(), 1);
        let done = r.resolve(rid(1, 3));
        assert_eq!(
            done,
            ResolvedStatus::Done {
                kind: SlotKind::Put,
                applied: true,
                key: 99,
                batch: 7
            }
        );
        // Same rid, same answer; unknown rids answer NotStarted.
        assert_eq!(r.resolve(rid(1, 3)), done);
        assert_eq!(r.resolve(rid(1, 4)), ResolvedStatus::NotStarted);
        assert_eq!(r.resolve(0), ResolvedStatus::NotStarted);
        assert!(Resolver::empty().is_empty());
    }
}
