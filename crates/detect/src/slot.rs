//! The persistent slot table: layout, stamping, and image readback.
//!
//! The table is `clients × ring` fixed-size records living in the
//! simulated heap. Request ids carry their client in the high 16 bits
//! (`rid = client << 48 | seq`); a record's home slot is
//! `(client mod clients, seq mod ring)`, so a client with at most
//! `ring` requests in flight never overwrites a slot it still needs.
//!
//! Each record is [`RECORD_WORDS`] words:
//!
//! ```text
//! +0  rid   — written LAST, with a release store (the stamp)
//! +8  key   — plain
//! +16 meta  — plain: outcome, batch, and an 8-bit fold of rid
//! ```
//!
//! The meta word's rid tag makes torn cross-generation records (old
//! stamp over new payload, possible when a slot is reused inside one
//! batch under a weak discipline) detectable: [`SlotRecord::decode`]
//! rejects a record whose tag does not match its rid, and the reader
//! counts it as torn instead of resolving it.

use lrp_exec::PmemCtx;
use lrp_lfds::MemImage;
use lrp_model::{Addr, Trace};

/// Root name under which the table's base address is registered.
pub const ROOT_BASE: &str = "det_base";
/// Root name carrying the number of client rows (scalar root).
pub const ROOT_CLIENTS: &str = "det_clients";
/// Root name carrying the per-client ring size (scalar root).
pub const ROOT_RING: &str = "det_ring";

/// Words per slot record: `[rid, key, meta]`.
pub const RECORD_WORDS: usize = 3;

const RID_SEQ_BITS: u32 = 48;
const RID_SEQ_MASK: u64 = (1 << RID_SEQ_BITS) - 1;

/// The client/channel id a request id carries (high 16 bits).
pub fn rid_client(rid: u64) -> u64 {
    rid >> RID_SEQ_BITS
}

/// The per-client sequence number a request id carries (low 48 bits).
pub fn rid_seq(rid: u64) -> u64 {
    rid & RID_SEQ_MASK
}

/// An 8-bit fold of the whole rid, stored in the meta word so a record
/// mixing words from two different stamps of the same slot is caught.
fn rid_tag(rid: u64) -> u64 {
    rid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56
}

/// Table geometry: `clients` rows of `ring` slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotSpec {
    /// Client rows. Distinct clients land on distinct rows as long as
    /// at most `clients` client ids are live (row = client mod clients).
    pub clients: u64,
    /// Slots per row. Must be at least the per-client in-flight window,
    /// or a stamp may overwrite a slot whose request is still uncertain.
    pub ring: u64,
}

impl Default for SlotSpec {
    fn default() -> Self {
        SlotSpec {
            clients: 64,
            ring: 32,
        }
    }
}

impl SlotSpec {
    /// Total records in the table.
    pub fn records(&self) -> u64 {
        self.clients * self.ring
    }

    /// Total heap words the table occupies.
    pub fn words(&self) -> usize {
        (self.records() as usize) * RECORD_WORDS
    }

    /// The record index a request id stamps.
    pub fn index_for(&self, rid: u64) -> u64 {
        let row = rid_client(rid) % self.clients;
        let slot = rid_seq(rid) % self.ring;
        row * self.ring + slot
    }

    /// Byte address of record `idx` in a table based at `base`.
    pub fn record_addr(&self, base: Addr, idx: u64) -> Addr {
        debug_assert!(idx < self.records());
        base + idx * (RECORD_WORDS as u64) * 8
    }
}

/// The operation class a slot record checkpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// An insert.
    Put,
    /// A delete.
    Del,
}

impl SlotKind {
    fn code(self) -> u64 {
        match self {
            SlotKind::Put => 1,
            SlotKind::Del => 2,
        }
    }

    fn from_code(c: u64) -> Option<SlotKind> {
        match c {
            1 => Some(SlotKind::Put),
            2 => Some(SlotKind::Del),
            _ => None,
        }
    }
}

/// One decoded slot record: everything the resolver needs to answer
/// "did request `rid` happen, and what did it do?".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotRecord {
    /// The stamped request id.
    pub rid: u64,
    /// Key the operation targeted.
    pub key: u64,
    /// Operation class.
    pub kind: SlotKind,
    /// Functional outcome (`false` = key was already present/absent).
    pub applied: bool,
    /// Shard batch that executed the operation.
    pub batch: u64,
}

impl SlotRecord {
    /// Encodes the meta word: `tag << 56 | batch << 8 | kind << 1 |
    /// applied` (batch saturates at 48 bits).
    pub fn meta(&self) -> u64 {
        (rid_tag(self.rid) << 56)
            | ((self.batch & 0xFFFF_FFFF_FFFF) << 8)
            | (self.kind.code() << 1)
            | u64::from(self.applied)
    }

    /// Decodes raw `[rid, key, meta]` words back into a record.
    /// `None` when the words cannot be a coherent stamp: poisoned or
    /// zero rid, poisoned payload, unknown kind code, or a meta tag
    /// that does not fold from this rid (a cross-generation tear).
    pub fn decode(rid: u64, key: u64, meta: u64) -> Option<SlotRecord> {
        if rid == 0 || rid == Trace::POISON || key == Trace::POISON || meta == Trace::POISON {
            return None;
        }
        if meta >> 56 != rid_tag(rid) {
            return None;
        }
        let kind = SlotKind::from_code((meta >> 1) & 0x3)?;
        Some(SlotRecord {
            rid,
            key,
            kind,
            applied: meta & 1 == 1,
            batch: (meta >> 8) & 0xFFFF_FFFF_FFFF,
        })
    }
}

/// The volatile mirror of the table's durable contents, kept by the
/// shard between batches and re-written through setup so committed
/// stamps survive into every later batch's initial image.
#[derive(Debug, Clone)]
pub struct SlotTable {
    spec: SlotSpec,
    recs: Vec<Option<SlotRecord>>,
}

impl SlotTable {
    /// An empty table of the given geometry.
    pub fn new(spec: SlotSpec) -> SlotTable {
        SlotTable {
            spec,
            recs: vec![None; spec.records() as usize],
        }
    }

    /// The geometry.
    pub fn spec(&self) -> SlotSpec {
        self.spec
    }

    /// Occupied records.
    pub fn occupied(&self) -> u64 {
        self.recs.iter().filter(|r| r.is_some()).count() as u64
    }

    /// Iterates the occupied records.
    pub fn iter(&self) -> impl Iterator<Item = &SlotRecord> {
        self.recs.iter().filter_map(|r| r.as_ref())
    }

    /// The record currently homed at `rid`'s slot, if any.
    pub fn get(&self, rid: u64) -> Option<&SlotRecord> {
        self.recs[self.spec.index_for(rid) as usize].as_ref()
    }

    /// Installs `rec` at its home slot (newest stamp wins).
    pub fn put(&mut self, rec: SlotRecord) {
        let idx = self.spec.index_for(rec.rid) as usize;
        self.recs[idx] = Some(rec);
    }
}

/// Stamps one operation's slot record through a [`PmemCtx`]: payload
/// words plain, then the rid word with a **release** store. The release
/// is the whole trick — it persist-orders the payload *and* every
/// program-order-earlier write of the operation body before the stamp,
/// so a recovered stamp certifies the outcome it encodes.
pub fn stamp<C: PmemCtx>(c: &mut C, base: Addr, spec: &SlotSpec, rec: &SlotRecord) {
    let a = spec.record_addr(base, spec.index_for(rec.rid));
    c.write(a + 8, rec.key);
    c.write(a + 16, rec.meta());
    c.write_rel(a, rec.rid);
}

/// Re-writes a table's committed records during batch setup (setup
/// writes enter the trace's initial image, durable by construction).
/// Empty slots are left unwritten and read back as poison.
pub fn write_table_setup<C: PmemCtx>(c: &mut C, base: Addr, table: &SlotTable) {
    let spec = table.spec;
    for rec in table.iter() {
        let a = spec.record_addr(base, spec.index_for(rec.rid));
        c.write(a, rec.rid);
        c.write(a + 8, rec.key);
        c.write(a + 16, rec.meta());
    }
}

/// Finds the table's base address and geometry among a trace's
/// registered roots. `None` when the trace carries no slot table.
pub fn table_roots(roots: &[(String, Addr)]) -> Option<(Addr, SlotSpec)> {
    let find = |name: &str| roots.iter().find(|(n, _)| n == name).map(|&(_, v)| v);
    let base = find(ROOT_BASE)?;
    let clients = find(ROOT_CLIENTS)?;
    let ring = find(ROOT_RING)?;
    if clients == 0 || ring == 0 {
        return None;
    }
    Some((base, SlotSpec { clients, ring }))
}

/// Outcome of reading a table back from a (crash-cut) memory image.
#[derive(Debug, Clone)]
pub struct TableScan {
    /// The coherently-recovered records.
    pub table: SlotTable,
    /// Slots whose rid word was written but whose record did not decode
    /// — a torn stamp. Possible under weak disciplines; a sound
    /// discipline's release ordering keeps this at zero.
    pub torn: u64,
}

/// Reads the slot table out of a raw memory image. Total: never fails,
/// never panics — incoherent slots are counted, not resolved.
pub fn read_table(image: &MemImage, base: Addr, spec: SlotSpec) -> TableScan {
    let mut table = SlotTable::new(spec);
    let mut torn = 0;
    for idx in 0..spec.records() {
        let a = spec.record_addr(base, idx);
        let rid = image.read(a);
        if rid == Trace::POISON || rid == 0 {
            continue; // never stamped
        }
        match SlotRecord::decode(rid, image.read(a + 8), image.read(a + 16)) {
            // A record homed at the wrong slot is a corrupt image, not
            // a stamp we can trust.
            Some(rec) if spec.index_for(rec.rid) == idx => table.put(rec),
            _ => torn += 1,
        }
    }
    TableScan { table, torn }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_exec::DirectCtx;
    use lrp_model::{Annot, EventKind};

    fn rid(client: u64, seq: u64) -> u64 {
        (client << 48) | seq
    }

    fn rec(client: u64, seq: u64, key: u64) -> SlotRecord {
        SlotRecord {
            rid: rid(client, seq),
            key,
            kind: if seq.is_multiple_of(2) {
                SlotKind::Put
            } else {
                SlotKind::Del
            },
            applied: seq.is_multiple_of(3),
            batch: seq / 4,
        }
    }

    #[test]
    fn indexing_separates_clients_and_wraps_rings() {
        let spec = SlotSpec {
            clients: 4,
            ring: 8,
        };
        assert_eq!(spec.index_for(rid(1, 0)), 8);
        assert_eq!(spec.index_for(rid(1, 7)), 15);
        assert_eq!(spec.index_for(rid(1, 8)), 8, "ring wraps");
        assert_eq!(spec.index_for(rid(5, 0)), 8, "rows wrap at clients");
        assert_ne!(spec.index_for(rid(2, 3)), spec.index_for(rid(3, 3)));
    }

    #[test]
    fn meta_round_trips_every_field() {
        for client in [1, 7, 65535] {
            for seq in 0..16 {
                let r = rec(client, seq, 1000 + seq);
                let back = SlotRecord::decode(r.rid, r.key, r.meta()).expect("coherent record");
                assert_eq!(back, r);
            }
        }
    }

    #[test]
    fn decode_rejects_poison_zero_and_mismatched_tags() {
        let r = rec(3, 5, 42);
        assert_eq!(SlotRecord::decode(0, r.key, r.meta()), None);
        assert_eq!(SlotRecord::decode(Trace::POISON, r.key, r.meta()), None);
        assert_eq!(SlotRecord::decode(r.rid, Trace::POISON, r.meta()), None);
        assert_eq!(SlotRecord::decode(r.rid, r.key, Trace::POISON), None);
        // A meta word folded from a different rid is a torn record.
        let other = rec(3, 5 + 32, 42);
        assert_ne!(rid_tag(r.rid), rid_tag(other.rid), "tags distinguish");
        assert_eq!(SlotRecord::decode(r.rid, r.key, other.meta()), None);
    }

    #[test]
    fn stamp_emits_payload_then_release_on_the_rid_word() {
        let mut c = DirectCtx::new(1, 1);
        let spec = SlotSpec::default();
        let base = c.alloc(spec.words());
        c.start_recording();
        let r = rec(2, 9, 77);
        stamp(&mut c, base, &spec, &r);
        let events = c.rec.take().unwrap().into_events();
        assert_eq!(events.len(), 3);
        assert!(events[..2]
            .iter()
            .all(|e| e.kind == EventKind::Write && e.annot == Annot::Plain));
        let last = &events[2];
        assert_eq!(last.annot, Annot::Release, "the stamp is a release");
        assert_eq!(last.addr, spec.record_addr(base, spec.index_for(r.rid)));
        assert_eq!(last.wval, r.rid);
    }

    #[test]
    fn table_round_trips_through_a_memory_image() {
        let mut c = DirectCtx::new(1, 1);
        let spec = SlotSpec {
            clients: 8,
            ring: 4,
        };
        let base = c.alloc(spec.words());
        let mut table = SlotTable::new(spec);
        for client in 1..=6 {
            for seq in 0..3 {
                table.put(rec(client, seq, client * 100 + seq));
            }
        }
        write_table_setup(&mut c, base, &table);
        let image = MemImage::new(c.mem.snapshot());
        let scan = read_table(&image, base, spec);
        assert_eq!(scan.torn, 0);
        assert_eq!(scan.table.occupied(), 18);
        for r in table.iter() {
            assert_eq!(scan.table.get(r.rid), Some(r));
        }
        // Untouched slots stay empty.
        assert_eq!(scan.table.get(rid(7, 0)), None);
    }

    #[test]
    fn torn_records_are_counted_not_resolved() {
        let spec = SlotSpec {
            clients: 2,
            ring: 2,
        };
        let base = 0x5000;
        let r = rec(1, 1, 9);
        let a = spec.record_addr(base, spec.index_for(r.rid));
        // rid persisted but the payload never did: torn.
        let image = MemImage::new([(a, r.rid)]);
        let scan = read_table(&image, base, spec);
        assert_eq!(scan.torn, 1);
        assert_eq!(scan.table.occupied(), 0);
    }

    #[test]
    fn roots_round_trip() {
        let spec = SlotSpec {
            clients: 16,
            ring: 8,
        };
        let roots = vec![
            ("head".to_string(), 0x40u64),
            (ROOT_BASE.to_string(), 0x9000),
            (ROOT_CLIENTS.to_string(), spec.clients),
            (ROOT_RING.to_string(), spec.ring),
        ];
        assert_eq!(table_roots(&roots), Some((0x9000, spec)));
        assert_eq!(table_roots(&roots[..1]), None);
    }
}
