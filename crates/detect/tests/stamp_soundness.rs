//! The stamp's soundness claim, checked against a *recorded* persist
//! schedule: under a discipline with
//! [`orders_release_stamps`](lrp_core::PersistDiscipline), whenever the
//! rid word of a slot record carries a persist stamp, the record's
//! payload words and every program-order-earlier write of the same
//! thread (the operation "effect") carry stamps no later — so any
//! crash cut containing the stamp contains the whole checkpointed
//! operation.

use lrp_detect::{stamp, SlotKind, SlotRecord, SlotSpec};
use lrp_exec::{run, ExecConfig, PmemCtx, SchedPolicy, ThreadBody};
use lrp_model::{Addr, EventKind, Trace};
use lrp_sim::{Mechanism, Sim, SimConfig};
use std::sync::{Arc, OnceLock};

fn rid(client: u64, seq: u64) -> u64 {
    (client << 48) | seq
}

/// Two workers, each writing a private "effect" word then stamping a
/// slot record, several times over.
fn build(seed: u64, spec: SlotSpec) -> Trace {
    let shared: Arc<OnceLock<(Addr, Addr)>> = Arc::new(OnceLock::new());
    let setup_shared = shared.clone();
    let setup = move |s: &mut lrp_exec::DirectCtx| {
        let base = s.alloc(spec.words());
        let data = s.alloc(16);
        s.set_root("det_base", base);
        let _ = setup_shared.set((base, data));
    };
    let bodies: Vec<ThreadBody> = (0..2u64)
        .map(|t| {
            let shared = shared.clone();
            Box::new(move |c: &mut lrp_exec::GateCtx| {
                let (base, data) = *shared.get().expect("setup ran");
                for seq in 0..4 {
                    // The "operation": a plain effect write...
                    c.write(data + t * 8, 100 * t + seq);
                    // ...then its detectable checkpoint.
                    stamp(
                        c,
                        base,
                        &spec,
                        &SlotRecord {
                            rid: rid(t + 1, seq),
                            key: 100 * t + seq,
                            kind: SlotKind::Put,
                            applied: true,
                            batch: 0,
                        },
                    );
                }
            }) as ThreadBody
        })
        .collect();
    let cfg = ExecConfig::new(2)
        .policy(SchedPolicy::Random(seed))
        .seed(seed);
    run(&cfg, setup, bodies)
}

#[test]
fn stamp_durable_implies_payload_and_effect_durable() {
    let spec = SlotSpec {
        clients: 4,
        ring: 8,
    };
    for mech in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb, Mechanism::Dpo] {
        assert!(mech.discipline().orders_release_stamps(), "{mech}");
        for seed in 1..6 {
            let trace = build(seed, spec);
            let sched = Sim::new(SimConfig::new(mech), &trace).run().schedule;
            // For each thread, walk writes in program order: when a
            // release stamp is persisted, everything the same thread
            // wrote before it must be persisted no later.
            for e in trace
                .events
                .iter()
                .filter(|e| e.kind == EventKind::Write && e.annot.is_release())
            {
                let Some(s) = sched.stamp(e.id) else { continue };
                for earlier in trace
                    .events
                    .iter()
                    .filter(|w| w.tid == e.tid && w.id < e.id && w.kind == EventKind::Write)
                {
                    let ws = sched.stamp(earlier.id);
                    assert!(
                        matches!(ws, Some(w) if w <= s),
                        "{mech} seed {seed}: stamp {} persisted at {s} but \
                         earlier write {} has stamp {ws:?}",
                        e.id,
                        earlier.id
                    );
                }
            }
        }
    }
}
