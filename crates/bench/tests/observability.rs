//! End-to-end observability checks against real workload replays: the
//! time series must reconcile with the aggregate counters, the Chrome
//! trace must be well-formed, the I1–I4 audit must stay clean on every
//! lock-free data structure, and attaching the recorder must not change
//! timing.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_obs::series::sum_intervals;
use lrp_obs::stats::{FlushClass, StallCause};
use lrp_obs::{chrome, Json, ObsReport, RecorderConfig};
use lrp_sim::{Mechanism, Sim, SimConfig, Stats};

fn workload(s: Structure) -> lrp_model::Trace {
    WorkloadSpec::new(s)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(12)
        .seed(7)
        .build_trace()
}

fn instrumented_run(s: Structure, mech: Mechanism, cfg: RecorderConfig) -> (Stats, ObsReport) {
    let trace = workload(s);
    let r = Sim::new(SimConfig::new(mech), &trace)
        .with_recorder(cfg)
        .run();
    let obs = r.obs.expect("recorder was attached");
    (r.stats, obs)
}

#[test]
fn interval_deltas_sum_to_aggregate_stats() {
    let cfg = RecorderConfig {
        sample_every: 500,
        ..RecorderConfig::default()
    };
    let (stats, obs) = instrumented_run(Structure::Queue, Mechanism::Lrp, cfg);
    assert!(obs.intervals.len() > 1, "run long enough to sample");
    let total = sum_intervals(&obs.intervals);
    assert_eq!(total.ops, stats.ops);
    for (i, class) in FlushClass::ALL.into_iter().enumerate() {
        assert_eq!(
            total.flushes[i],
            stats.flushes.get(&class).copied().unwrap_or(0),
            "flush class {}",
            class.name()
        );
    }
    for (i, cause) in StallCause::ALL.into_iter().enumerate() {
        assert_eq!(
            total.stalls[i],
            stats.stalls.get(&cause).copied().unwrap_or(0),
            "stall cause {}",
            cause.name()
        );
    }
    assert_eq!(total.noc_messages, stats.noc_messages);
    assert_eq!(total.nvm_requests, stats.nvm_requests);
    assert!(total.end >= stats.cycles, "intervals cover the run");
}

#[test]
fn chrome_trace_parses_with_monotone_ts_per_track() {
    let (_, obs) = instrumented_run(Structure::Queue, Mechanism::Lrp, RecorderConfig::default());
    let doc = Json::parse(&chrome::export(&obs)).expect("exporter emits valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for needle in ["persist", "ret-insert", "epoch"] {
        assert!(names.contains(&needle), "missing {needle:?} events");
    }
    let mut last: std::collections::HashMap<(u64, u64), u64> = Default::default();
    let mut timed = 0;
    for e in events {
        if e.get("ph").and_then(Json::as_str) == Some("M") {
            continue; // metadata carries no timestamp
        }
        let key = (
            e.get("pid").unwrap().as_u64().unwrap(),
            e.get("tid").unwrap().as_u64().unwrap(),
        );
        let ts = e.get("ts").unwrap().as_u64().unwrap();
        if let Some(&prev) = last.get(&key) {
            assert!(ts >= prev, "track {key:?} went backwards: {prev} -> {ts}");
        }
        last.insert(key, ts);
        timed += 1;
    }
    assert!(timed > 20, "a real replay produces a substantial trace");
}

#[test]
fn lrp_upholds_invariants_on_every_structure() {
    for s in Structure::ALL {
        let (_, obs) = instrumented_run(s, Mechanism::Lrp, RecorderConfig::summaries_only());
        assert!(
            obs.audit.total_checks() > 0,
            "{}: audit sites never fired",
            s.name()
        );
        for (name, c) in obs.audit.rows() {
            assert_eq!(
                c.violations,
                0,
                "{}: invariant {name} violated ({} checks)",
                s.name(),
                c.checks
            );
        }
    }
}

#[test]
fn recorder_does_not_change_timing() {
    for mech in [Mechanism::Lrp, Mechanism::Bb] {
        let trace = workload(Structure::HashMap);
        let plain = Sim::new(SimConfig::new(mech), &trace).run();
        let observed = Sim::new(SimConfig::new(mech), &trace)
            .with_recorder(RecorderConfig::default())
            .run();
        assert_eq!(plain.stats, observed.stats, "{}", mech.name());
        assert_eq!(plain.persist_log, observed.persist_log, "{}", mech.name());
    }
}

#[test]
fn provenance_labels_flow_from_workload_to_blame_table() {
    for s in Structure::ALL {
        let (_, obs) = instrumented_run(s, Mechanism::Lrp, RecorderConfig::summaries_only());
        assert!(
            obs.site_names.len() > 1,
            "{}: trace carries OpSite labels",
            s.name()
        );
        assert_eq!(obs.site_names[0], "unknown");
        let prefix = format!("{}/", s.name());
        assert!(
            obs.site_names
                .iter()
                .skip(1)
                .all(|n| n.starts_with(&prefix)),
            "{}: sites follow structure/operation[/phase]: {:?}",
            s.name(),
            obs.site_names
        );
        assert!(!obs.blame.is_empty(), "{}: blame table populated", s.name());
        assert!(
            obs.blame
                .exact
                .iter()
                .any(|((site, _), cell)| site.starts_with(&prefix) && cell.cycles > 0),
            "{}: cycles charged to labeled sites: {:?}",
            s.name(),
            obs.blame.exact
        );
        let folded = obs.blame.folded();
        assert!(
            folded.contains(&prefix),
            "{}: folded export labeled",
            s.name()
        );
    }
}

#[test]
fn blame_survives_ring_drops() {
    // A tiny ring drops most events; the online blame table must match
    // the drop-free summaries-only run exactly.
    let tiny_ring = RecorderConfig {
        ring_capacity: 8,
        ..RecorderConfig::default()
    };
    let (_, dropped) = instrumented_run(Structure::Queue, Mechanism::Lrp, tiny_ring);
    assert!(dropped.dropped > 0, "the tiny ring must actually drop");
    let (_, clean) = instrumented_run(
        Structure::Queue,
        Mechanism::Lrp,
        RecorderConfig::summaries_only(),
    );
    assert_eq!(dropped.blame, clean.blame);
}
