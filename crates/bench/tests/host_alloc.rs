//! Allocation budget for the simulator hot path.
//!
//! The event queue stores payloads inline, the coherence tables are
//! flat, and `covered` write-sets move (never clone) along the
//! flush/ack path — so steady-state allocations per harness op stay
//! small. This test installs the counting allocator and pins a budget;
//! re-introducing a per-event `HashMap` insert or a `covered.clone()`
//! on the ack path blows well past it.

use lrp_bench::alloc_count::{self, CountingAlloc};
use lrp_bench::host::{run_host, HostSpec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Measured steady state after the arena/SoA work is ~1.3 (nop) to
/// ~2.0 (lrp) allocs/op on the smoke matrix; 8.0 leaves 4x headroom
/// for legitimate drift while still catching any reintroduced
/// per-event allocation (the old clone-happy path measured 60+).
const MAX_ALLOCS_PER_OP: f64 = 8.0;

#[test]
fn hot_path_allocations_stay_bounded() {
    assert!(alloc_count::installed(), "counting allocator not active");
    let report = run_host(&HostSpec::smoke(), |_| {});
    assert!(!report.cells.is_empty());
    for cell in &report.cells {
        let allocs = cell
            .allocs_per_op
            .expect("allocs_per_op measured when the allocator is installed");
        assert!(
            allocs <= MAX_ALLOCS_PER_OP,
            "{}: {allocs:.1} allocs/op exceeds budget {MAX_ALLOCS_PER_OP}",
            cell.key()
        );
    }
}
