//! Allocation budget for the simulator hot path.
//!
//! The event queue stores payloads inline, the coherence tables are
//! flat, and `covered` write-sets move (never clone) along the
//! flush/ack path — so steady-state allocations per harness op stay
//! small. This test installs the counting allocator and pins a budget;
//! re-introducing a per-event `HashMap` insert or a `covered.clone()`
//! on the ack path blows well past it.

use lrp_bench::alloc_count::{self, CountingAlloc};
use lrp_bench::host::{run_host, HostSpec};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Generous vs the measured steady state (single digits per op) but
/// far below the old clone-happy path.
const MAX_ALLOCS_PER_OP: f64 = 64.0;

#[test]
fn hot_path_allocations_stay_bounded() {
    assert!(alloc_count::installed(), "counting allocator not active");
    let report = run_host(&HostSpec::smoke(), |_| {});
    assert!(!report.cells.is_empty());
    for cell in &report.cells {
        let allocs = cell
            .allocs_per_op
            .expect("allocs_per_op measured when the allocator is installed");
        assert!(
            allocs <= MAX_ALLOCS_PER_OP,
            "{}: {allocs:.1} allocs/op exceeds budget {MAX_ALLOCS_PER_OP}",
            cell.key()
        );
    }
}
