//! The `--help` contract of every workspace binary: exit 0, usage on
//! stdout, and every flag the binary actually extracts is documented.

use std::process::Command;

fn help_output(bin: &str) -> String {
    let out = Command::new(bin)
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{bin} --help must exit 0");
    String::from_utf8(out.stdout).expect("usage is UTF-8")
}

fn assert_documents(bin: &str, flags: &[&str]) {
    let help = help_output(bin);
    for flag in flags {
        assert!(
            help.contains(&format!("--{flag}")),
            "{bin} --help does not mention --{flag}:\n{help}"
        );
    }
    assert!(help.contains("exit code"), "{bin} --help lists exit codes");
}

#[test]
fn lrp_eval_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-eval"),
        &[
            "quick",
            "threads",
            "ops",
            "seed",
            "structure",
            "mech",
            "mode",
            "trace-out",
            "metrics-out",
            "sample-every",
            "no-critpath",
        ],
    );
}

#[test]
fn lrp_trace_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-trace"),
        &[
            "structure",
            "size",
            "threads",
            "ops",
            "seed",
            "out",
            "trace-out",
            "metrics-out",
            "sample-every",
            "no-critpath",
        ],
    );
}

#[test]
fn lrp_profile_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-profile"),
        &[
            "structure",
            "mech",
            "a",
            "b",
            "mode",
            "threads",
            "ops",
            "size",
            "seed",
            "ret-capacity",
            "top",
            "folded-out",
            "baseline",
            "current",
            "tol-ops",
            "tol-stall",
            "tol-latency",
            "ops-only",
            "json-out",
        ],
    );
}

#[test]
fn lrp_bench_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-bench"),
        &[
            "smoke",
            "structures",
            "mechs",
            "mode",
            "threads",
            "ops",
            "size",
            "seed",
            "samples",
            "json-out",
            "baseline",
            "current",
            "max-regression",
            "shards",
            "conns",
            "requests",
            "window",
            "key-range",
            "read-pct",
            "max-overhead",
            "trials",
            "dists",
            "batch",
            "warm",
        ],
    );
}

#[test]
fn lrp_bench_help_documents_the_serve_commands() {
    let help = help_output(env!("CARGO_BIN_EXE_lrp-bench"));
    for cmd in ["serve", "serve-gate", "critpath-overhead", "crash-fuzz"] {
        assert!(
            help.contains(&format!("lrp-bench {cmd}")),
            "lrp-bench --help mentions the {cmd} command:\n{help}"
        );
    }
    assert!(
        help.contains("4  crash-fuzz found an exactly-once violation"),
        "lrp-bench --help documents exit 4:\n{help}"
    );
}

#[test]
fn lrp_profile_help_documents_the_critpath_commands() {
    let help = help_output(env!("CARGO_BIN_EXE_lrp-profile"));
    for cmd in ["critpath", "critpath-diff"] {
        assert!(
            help.contains(&format!("lrp-profile {cmd}")),
            "lrp-profile --help mentions the {cmd} command:\n{help}"
        );
    }
    assert!(
        help.contains("3  critpath conservation violation"),
        "lrp-profile --help documents exit 3:\n{help}"
    );
}

#[test]
fn lrp_serve_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-serve"),
        &[
            "bind",
            "uds",
            "shards",
            "structure",
            "mech",
            "mode",
            "sim-threads",
            "size",
            "key-range",
            "seed",
            "audit-samples",
            "batch-max",
            "batch-wait-ms",
            "queue-depth",
            "metrics-every-ms",
            "metrics-out",
            "port-file",
            "trace-out",
            "span-cap",
            "flight-dir",
            "flight-cap",
            "record",
            "clients",
            "ring",
            "no-detect",
        ],
    );
}

#[test]
fn lrp_load_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-load"),
        &[
            "addr",
            "uds",
            "conns",
            "requests",
            "window",
            "dist",
            "theta",
            "key-range",
            "read-pct",
            "qps",
            "seed",
            "shed-retries",
            "crash-at",
            "crash-shard",
            "no-verify",
            "shutdown",
            "json-out",
            "probe",
        ],
    );
}

#[test]
fn lrp_check_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-check"),
        &[
            "structures",
            "mechs",
            "threads",
            "ops",
            "size",
            "seed",
            "seeds",
            "max-states",
            "mutate-reorder",
            "json-out",
            "cx-out",
        ],
    );
}

#[test]
fn lrp_check_documents_the_violation_exit_code() {
    let help = help_output(env!("CARGO_BIN_EXE_lrp-check"));
    assert!(
        help.contains("3  violation found"),
        "lrp-check --help documents exit 3:\n{help}"
    );
}

#[test]
fn serve_binaries_document_the_durability_exit_code() {
    for bin in [
        env!("CARGO_BIN_EXE_lrp-serve"),
        env!("CARGO_BIN_EXE_lrp-load"),
    ] {
        let help = help_output(bin);
        assert!(
            help.contains("4  durability violation"),
            "{bin} --help documents exit 4:\n{help}"
        );
    }
}

#[test]
fn lrp_load_requires_a_target() {
    let out = Command::new(env!("CARGO_BIN_EXE_lrp-load"))
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(2),
        "no --addr/--uds is a usage error"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--addr"),
        "error names the missing flag: {err}"
    );
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    for bin in [
        env!("CARGO_BIN_EXE_lrp-eval"),
        env!("CARGO_BIN_EXE_lrp-trace"),
        env!("CARGO_BIN_EXE_lrp-profile"),
        env!("CARGO_BIN_EXE_lrp-serve"),
        env!("CARGO_BIN_EXE_lrp-load"),
        env!("CARGO_BIN_EXE_lrp-bench"),
        env!("CARGO_BIN_EXE_lrp-check"),
    ] {
        let out = Command::new(bin)
            .args(["run", "--no-such-flag"])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{bin} rejects unknown flags");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{bin} prints usage on error: {err}");
    }
}
