//! The `--help` contract of every workspace binary: exit 0, usage on
//! stdout, and every flag the binary actually extracts is documented.

use std::process::Command;

fn help_output(bin: &str) -> String {
    let out = Command::new(bin)
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{bin} --help must exit 0");
    String::from_utf8(out.stdout).expect("usage is UTF-8")
}

fn assert_documents(bin: &str, flags: &[&str]) {
    let help = help_output(bin);
    for flag in flags {
        assert!(
            help.contains(&format!("--{flag}")),
            "{bin} --help does not mention --{flag}:\n{help}"
        );
    }
    assert!(help.contains("exit code"), "{bin} --help lists exit codes");
}

#[test]
fn lrp_eval_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-eval"),
        &[
            "quick",
            "threads",
            "ops",
            "seed",
            "structure",
            "mech",
            "mode",
            "trace-out",
            "metrics-out",
            "sample-every",
        ],
    );
}

#[test]
fn lrp_trace_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-trace"),
        &[
            "structure",
            "size",
            "threads",
            "ops",
            "seed",
            "out",
            "trace-out",
            "metrics-out",
            "sample-every",
        ],
    );
}

#[test]
fn lrp_profile_help_documents_every_flag() {
    assert_documents(
        env!("CARGO_BIN_EXE_lrp-profile"),
        &[
            "structure",
            "mech",
            "a",
            "b",
            "mode",
            "threads",
            "ops",
            "size",
            "seed",
            "ret-capacity",
            "top",
            "folded-out",
            "baseline",
            "current",
            "tol-ops",
            "tol-stall",
            "tol-latency",
            "ops-only",
            "json-out",
        ],
    );
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    for bin in [
        env!("CARGO_BIN_EXE_lrp-eval"),
        env!("CARGO_BIN_EXE_lrp-trace"),
        env!("CARGO_BIN_EXE_lrp-profile"),
    ] {
        let out = Command::new(bin)
            .args(["run", "--no-such-flag"])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{bin} rejects unknown flags");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage"), "{bin} prints usage on error: {err}");
    }
}
