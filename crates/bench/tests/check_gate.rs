//! Exit-code contract of the `lrp-check` gate binary: a clean cell
//! exits 0, and `--mutate-reorder` must detect its own injected
//! persist-pair reordering and exit 3 with a counterexample.

use std::process::Command;

#[test]
fn clean_cell_exits_zero_with_a_report() {
    let dir = std::env::temp_dir().join(format!("lrp-check-gate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("check.json");
    let out = Command::new(env!("CARGO_BIN_EXE_lrp-check"))
        .args([
            "cross-validate",
            "--structures",
            "linkedlist",
            "--mechs",
            "lrp",
            "--seeds",
            "1",
            "--json-out",
        ])
        .arg(&json)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&json).expect("report written");
    assert!(report.contains("\"crash_points\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mutation_is_caught_with_exit_three_and_a_counterexample() {
    let dir = std::env::temp_dir().join(format!("lrp-check-mut-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cx = dir.join("cx.txt");
    let out = Command::new(env!("CARGO_BIN_EXE_lrp-check"))
        .args([
            "cross-validate",
            "--structures",
            "linkedlist",
            "--mechs",
            "lrp",
            "--seeds",
            "1",
            "--ops",
            "8",
            "--seed",
            "1",
            "--mutate-reorder",
            "--cx-out",
        ])
        .arg(&cx)
        .output()
        .expect("binary runs");
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("counterexample:"), "stdout: {stdout}");
    let written = std::fs::read_to_string(&cx).expect("counterexample written");
    assert!(written.contains("inadmissible schedule"));
    std::fs::remove_dir_all(&dir).ok();
}
