//! End-to-end critical-path properties across the full workload
//! matrix: conservation (segments sum exactly to the measured
//! release-to-persist latency), the wall-time bound, and the golden
//! guarantee that tracing never perturbs simulated outcomes.

use lrp_exec::Xorshift64;
use lrp_lfds::{Structure, WorkloadSpec};
use lrp_obs::{CritSegKind, RecorderConfig};
use lrp_sim::{Mechanism, Sim, SimConfig};

fn workload(s: Structure, seed: u64) -> lrp_model::Trace {
    WorkloadSpec::new(s)
        .initial_size(24)
        .threads(3)
        .ops_per_thread(10)
        .seed(seed)
        .build_trace()
}

/// The property the whole tentpole hangs on: for every LFD × mechanism
/// cell (randomized seeds), every traced chain conserves the measured
/// latency, the path count matches the latency histogram, and no chain
/// outruns the wall clock.
#[test]
fn conservation_holds_across_the_structure_mechanism_matrix() {
    let mut rng = Xorshift64::new(0xC417);
    for structure in Structure::ALL {
        let seed = rng.next_u64() | 1;
        let trace = workload(structure, seed);
        for mechanism in [Mechanism::Sb, Mechanism::Bb, Mechanism::Lrp, Mechanism::Nop] {
            let r = Sim::new(SimConfig::new(mechanism), &trace)
                .with_recorder(RecorderConfig::default())
                .run();
            let obs = r.obs.expect("recorder was attached");
            let crit = obs.crit.expect("critpath tracing defaults on");
            let cell = format!("{}/{}", structure.name(), mechanism.name());

            assert_eq!(crit.audit.total_violations(), 0, "{cell}");
            assert_eq!(
                crit.audit.c1.checks, crit.path.count,
                "{cell}: one conservation check per retired chain"
            );
            // The critpath layer re-derives the release-to-persist
            // interval from its own milestones; both views must agree
            // observation-for-observation.
            assert_eq!(crit.path.count, obs.release_to_persist.count, "{cell}");
            assert_eq!(crit.path.sum, obs.release_to_persist.sum, "{cell}");
            // Per-kind segment cycles partition the total exactly.
            assert_eq!(
                crit.seg_cycles.iter().sum::<u64>(),
                crit.path.sum,
                "{cell}: segment cycles partition the latency total"
            );
            assert!(crit.max_path <= r.stats.cycles, "{cell}: path beats wall");
            if mechanism == Mechanism::Lrp {
                assert_eq!(
                    crit.seg_cycles[CritSegKind::BarrierDrain.idx()],
                    0,
                    "{cell}: LRP never waits on a full-barrier drain"
                );
            }
        }
    }
}

/// Golden fixture: the same replay with critpath tracing on and off
/// (and with no recorder at all) yields byte-identical stats and an
/// identical persist schedule — the tracer is timing-invisible.
#[test]
fn critpath_leaves_stats_and_persist_schedule_identical() {
    for structure in [Structure::Queue, Structure::HashMap] {
        let trace = workload(structure, 99);
        for mechanism in [Mechanism::Bb, Mechanism::Lrp] {
            let cfg = SimConfig::new(mechanism);
            let bare = Sim::new(cfg.clone(), &trace).run();
            let off = Sim::new(cfg.clone(), &trace)
                .with_recorder(RecorderConfig {
                    critpath: false,
                    ..RecorderConfig::default()
                })
                .run();
            let on = Sim::new(cfg.clone(), &trace)
                .with_recorder(RecorderConfig::default())
                .run();
            let cell = format!("{}/{}", structure.name(), mechanism.name());

            assert_eq!(bare.stats, off.stats, "{cell}: recorder perturbed stats");
            assert_eq!(bare.stats, on.stats, "{cell}: critpath perturbed stats");
            assert_eq!(
                bare.schedule, on.schedule,
                "{cell}: critpath perturbed the persist schedule"
            );
            assert_eq!(off.schedule, on.schedule, "{cell}");
            // Off means off: no summary, and every other observability
            // product matches the traced run.
            let (off_obs, on_obs) = (off.obs.unwrap(), on.obs.unwrap());
            assert!(off_obs.crit.is_none(), "{cell}");
            assert!(on_obs.crit.is_some(), "{cell}");
            assert_eq!(off_obs.release_to_persist, on_obs.release_to_persist);
            assert_eq!(off_obs.flush_to_ack, on_obs.flush_to_ack);
        }
    }
}
