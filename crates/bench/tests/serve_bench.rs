//! End-to-end `lrp-bench serve` path: a tiny four-cell run produces a
//! parseable `BENCH_serve.json` that self-passes the serve gate, and
//! the gate catches synthetic regressions.

use lrp_bench::profile::render_gate;
use lrp_bench::serve_bench::{gate_serve, report_json, run_serve_bench, ServeBenchSpec};
use lrp_obs::Json;

fn tiny_spec() -> ServeBenchSpec {
    ServeBenchSpec {
        shards: 2,
        conns: 2,
        requests: 200,
        window: 8,
        key_range: 128,
        read_pct: 20,
        seed: 3,
    }
}

#[test]
fn serve_bench_runs_all_cells_and_self_passes_the_gate() {
    let report = run_serve_bench(&tiny_spec(), |_| {}).unwrap();
    assert_eq!(report.cells.len(), 4);
    for c in &report.cells {
        assert!(c.summary.completed > 0, "cell {} served nothing", c.name);
        assert!(c.ops_per_sec() > 0.0, "cell {} has no throughput", c.name);
        assert!(
            c.summary.acked_durable > 0,
            "cell {} acked nothing durable",
            c.name
        );
    }
    let traced = report
        .cells
        .iter()
        .find(|c| c.name == "zipfian-traced")
        .unwrap();
    assert!(traced.spans > 0, "traced cell retained no spans");
    assert!(
        report
            .cells
            .iter()
            .filter(|c| c.name != "zipfian-traced")
            .all(|c| c.spans == 0),
        "untraced cells must not record spans"
    );
    let crash = report
        .cells
        .iter()
        .find(|c| c.name == "zipfian-crash")
        .unwrap();
    assert!(crash.summary.crash_recovery_ms.is_some());
    assert!(
        crash.summary.durability_ok(),
        "crash cell lost durable acks"
    );
    assert!(report.crash_recovery_ms().is_some());
    assert!(report.tracing_overhead_pct().is_some());

    // The document round-trips and self-passes the gate.
    let doc = Json::parse(&report_json(&report).to_pretty()).unwrap();
    assert_eq!(doc.get("type").unwrap().as_str(), Some("serve-bench"));
    assert_eq!(doc.get("cells").unwrap().as_arr().unwrap().len(), 4);
    let v = gate_serve(&doc, &doc, 3.0).unwrap();
    assert!(v.pass(), "{}", render_gate(&v));
    assert_eq!(v.compared, 4);
}
