//! Figure 7 bench: normalized execution time in the uncached NVM mode
//! (raw 350-cycle PCM persists). Full-size data via `lrp-eval fig7`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn bench_fig7(c: &mut Criterion) {
    let params = EvalParams::quick();
    let mut g = c.benchmark_group("fig7_uncached");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        for m in Mechanism::ALL {
            g.bench_with_input(
                BenchmarkId::new(s.name(), m.name()),
                &(&trace, m),
                |b, (t, m)| {
                    b.iter(|| {
                        let stats = run_sim(t, *m, NvmMode::Uncached);
                        std::hint::black_box(stats.cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
