//! Figure 7 bench: normalized execution time in the uncached NVM mode
//! (raw 350-cycle PCM persists). Full-size data via `lrp-eval fig7`.

use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_bench::microbench::Runner;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn main() {
    let runner = Runner::from_args();
    let params = EvalParams::quick();
    let mut g = runner.group("fig7_uncached");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        for m in Mechanism::ALL {
            g.bench(&format!("{}/{}", s.name(), m.name()), || {
                run_sim(&trace, m, NvmMode::Uncached).cycles
            });
        }
    }
}
