//! Figure 8 bench: persistency overhead vs thread count, BB vs LRP.
//! Full-size sweep (1–32 workers) via `lrp-eval fig8`.

use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_bench::microbench::Runner;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn main() {
    let runner = Runner::from_args();
    let params = EvalParams::quick();
    let mut g = runner.group("fig8_thread_sweep");
    g.sample_size(10);
    for s in [Structure::HashMap, Structure::Queue] {
        for threads in [1u16, 2, 4] {
            let trace = params.trace(s, threads);
            g.bench(&format!("{}/{}", s.name(), threads), || {
                let nop = run_sim(&trace, Mechanism::Nop, NvmMode::Cached).cycles as f64;
                let bb = run_sim(&trace, Mechanism::Bb, NvmMode::Cached).cycles as f64;
                let lrp = run_sim(&trace, Mechanism::Lrp, NvmMode::Cached).cycles as f64;
                (bb / nop, lrp / nop)
            });
        }
    }
}
