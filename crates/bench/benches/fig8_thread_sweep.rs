//! Figure 8 bench: persistency overhead vs thread count, BB vs LRP.
//! Full-size sweep (1–32 workers) via `lrp-eval fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn bench_fig8(c: &mut Criterion) {
    let params = EvalParams::quick();
    let mut g = c.benchmark_group("fig8_thread_sweep");
    g.sample_size(10);
    for s in [Structure::HashMap, Structure::Queue] {
        for threads in [1u16, 2, 4] {
            let trace = params.trace(s, threads);
            g.bench_with_input(
                BenchmarkId::new(s.name(), threads),
                &trace,
                |b, t| {
                    b.iter(|| {
                        let nop = run_sim(t, Mechanism::Nop, NvmMode::Cached).cycles as f64;
                        let bb = run_sim(t, Mechanism::Bb, NvmMode::Cached).cycles as f64;
                        let lrp = run_sim(t, Mechanism::Lrp, NvmMode::Cached).cycles as f64;
                        std::hint::black_box((bb / nop, lrp / nop))
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
