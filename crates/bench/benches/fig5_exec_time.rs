//! Figure 5 bench: simulated execution time of each mechanism over the
//! five LFDs (cached NVM). Criterion tracks the *simulation outcome*
//! (cycles are deterministic) and the harness runtime; the full-size
//! figure is produced by `lrp-eval fig5`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn bench_fig5(c: &mut Criterion) {
    let params = EvalParams::quick();
    let mut g = c.benchmark_group("fig5_exec_time");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        for m in Mechanism::ALL {
            g.bench_with_input(
                BenchmarkId::new(s.name(), m.name()),
                &(&trace, m),
                |b, (t, m)| {
                    b.iter(|| {
                        let stats = run_sim(t, *m, NvmMode::Cached);
                        std::hint::black_box(stats.cycles)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
