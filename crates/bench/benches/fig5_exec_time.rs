//! Figure 5 bench: simulated execution time of each mechanism over the
//! five LFDs (cached NVM). The harness tracks the *simulation outcome*
//! (cycles are deterministic) and the runner wall time; the full-size
//! figure is produced by `lrp-eval fig5`.

use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_bench::microbench::Runner;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn main() {
    let runner = Runner::from_args();
    let params = EvalParams::quick();
    let mut g = runner.group("fig5_exec_time");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        for m in Mechanism::ALL {
            g.bench(&format!("{}/{}", s.name(), m.name()), || {
                run_sim(&trace, m, NvmMode::Cached).cycles
            });
        }
    }
}
