//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! * **D2** — persist-engine ordering: writes-first vs strict epoch
//!   order (LRP's engine vs forcing `plan_epoch_stages` behaviour is
//!   approximated by comparing LRP against BB on a release-heavy
//!   micro-trace),
//! * **D3** — RET sizing sweep,
//! * **BB proactive flushing** on/off.

use lrp_bench::experiments::EvalParams;
use lrp_bench::microbench::Runner;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

fn bench_ret_size(runner: &Runner) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::SkipList, params.threads);
    let mut g = runner.group("ablation_ret_size");
    g.sample_size(10);
    for ret in [4usize, 8, 16, 32, 64] {
        g.bench(&ret.to_string(), || {
            let mut cfg = SimConfig::new(Mechanism::Lrp);
            cfg.lrp.ret_capacity = ret;
            cfg.lrp.ret_watermark = ret.saturating_sub(4).max(1);
            Sim::new(cfg, &trace).run().stats.cycles
        });
    }
}

fn bench_bb_proactive(runner: &Runner) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::HashMap, params.threads);
    let mut g = runner.group("ablation_bb_proactive");
    g.sample_size(10);
    for proactive in [true, false] {
        g.bench(&proactive.to_string(), || {
            let mut cfg = SimConfig::new(Mechanism::Bb);
            cfg.bb.proactive_flush = proactive;
            Sim::new(cfg, &trace).run().stats.cycles
        });
    }
}

fn bench_scan_cost(runner: &Runner) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::Bst, params.threads);
    let mut g = runner.group("ablation_engine_scan_cycles");
    g.sample_size(10);
    for scan in [0u64, 16, 64, 128] {
        g.bench(&scan.to_string(), || {
            let mut cfg = SimConfig::new(Mechanism::Lrp);
            cfg.lrp.scan_cycles = scan;
            Sim::new(cfg, &trace).run().stats.cycles
        });
    }
}

fn bench_nvm_mode(runner: &Runner) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::Queue, params.threads);
    let mut g = runner.group("ablation_nvm_mode");
    g.sample_size(10);
    for (name, mode) in [("cached", NvmMode::Cached), ("uncached", NvmMode::Uncached)] {
        g.bench(name, || {
            let cfg = SimConfig::new(Mechanism::Lrp).nvm_mode(mode);
            Sim::new(cfg, &trace).run().stats.cycles
        });
    }
}

fn bench_engine_order(runner: &Runner) {
    // Design choice D2: writes-first engine vs strict epoch order.
    let params = EvalParams::quick();
    let trace = params.trace(Structure::SkipList, params.threads);
    let mut g = runner.group("ablation_engine_order");
    g.sample_size(10);
    for (name, strict) in [("writes_first", false), ("strict_epoch", true)] {
        g.bench(name, || {
            let mut cfg = SimConfig::new(Mechanism::Lrp);
            cfg.lrp.strict_epoch_engine = strict;
            Sim::new(cfg, &trace).run().stats.cycles
        });
    }
}

fn main() {
    let runner = Runner::from_args();
    bench_ret_size(&runner);
    bench_bb_proactive(&runner);
    bench_scan_cost(&runner);
    bench_nvm_mode(&runner);
    bench_engine_order(&runner);
}
