//! Ablation benches for the design decisions called out in DESIGN.md:
//!
//! * **D2** — persist-engine ordering: writes-first vs strict epoch
//!   order (LRP's engine vs forcing `plan_epoch_stages` behaviour is
//!   approximated by comparing LRP against BB on a release-heavy
//!   micro-trace),
//! * **D3** — RET sizing sweep,
//! * **BB proactive flushing** on/off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrp_bench::experiments::EvalParams;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

fn bench_ret_size(c: &mut Criterion) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::SkipList, params.threads);
    let mut g = c.benchmark_group("ablation_ret_size");
    g.sample_size(10);
    for ret in [4usize, 8, 16, 32, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(ret), &ret, |b, &ret| {
            b.iter(|| {
                let mut cfg = SimConfig::new(Mechanism::Lrp);
                cfg.lrp.ret_capacity = ret;
                cfg.lrp.ret_watermark = ret.saturating_sub(4).max(1);
                std::hint::black_box(Sim::new(cfg, &trace).run().stats.cycles)
            })
        });
    }
    g.finish();
}

fn bench_bb_proactive(c: &mut Criterion) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::HashMap, params.threads);
    let mut g = c.benchmark_group("ablation_bb_proactive");
    g.sample_size(10);
    for proactive in [true, false] {
        g.bench_with_input(
            BenchmarkId::from_parameter(proactive),
            &proactive,
            |b, &p| {
                b.iter(|| {
                    let mut cfg = SimConfig::new(Mechanism::Bb);
                    cfg.bb.proactive_flush = p;
                    std::hint::black_box(Sim::new(cfg, &trace).run().stats.cycles)
                })
            },
        );
    }
    g.finish();
}

fn bench_scan_cost(c: &mut Criterion) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::Bst, params.threads);
    let mut g = c.benchmark_group("ablation_engine_scan_cycles");
    g.sample_size(10);
    for scan in [0u64, 16, 64, 128] {
        g.bench_with_input(BenchmarkId::from_parameter(scan), &scan, |b, &scan| {
            b.iter(|| {
                let mut cfg = SimConfig::new(Mechanism::Lrp);
                cfg.lrp.scan_cycles = scan;
                std::hint::black_box(Sim::new(cfg, &trace).run().stats.cycles)
            })
        });
    }
    g.finish();
}

fn bench_nvm_mode(c: &mut Criterion) {
    let params = EvalParams::quick();
    let trace = params.trace(Structure::Queue, params.threads);
    let mut g = c.benchmark_group("ablation_nvm_mode");
    g.sample_size(10);
    for (name, mode) in [("cached", NvmMode::Cached), ("uncached", NvmMode::Uncached)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| {
                let cfg = SimConfig::new(Mechanism::Lrp).nvm_mode(mode);
                std::hint::black_box(Sim::new(cfg, &trace).run().stats.cycles)
            })
        });
    }
    g.finish();
}

fn bench_engine_order(c: &mut Criterion) {
    // Design choice D2: writes-first engine vs strict epoch order.
    let params = EvalParams::quick();
    let trace = params.trace(Structure::SkipList, params.threads);
    let mut g = c.benchmark_group("ablation_engine_order");
    g.sample_size(10);
    for (name, strict) in [("writes_first", false), ("strict_epoch", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strict, |b, &strict| {
            b.iter(|| {
                let mut cfg = SimConfig::new(Mechanism::Lrp);
                cfg.lrp.strict_epoch_engine = strict;
                std::hint::black_box(Sim::new(cfg, &trace).run().stats.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_ret_size,
    bench_bb_proactive,
    bench_scan_cost,
    bench_nvm_mode,
    bench_engine_order
);
criterion_main!(benches);
