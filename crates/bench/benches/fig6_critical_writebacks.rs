//! Figure 6 bench: critical-path write-back classification, BB vs LRP.
//! Asserts the paper's ordering (LRP fraction ≤ BB fraction) on every
//! run; full-size data via `lrp-eval fig6`.

use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_bench::microbench::Runner;
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn main() {
    let runner = Runner::from_args();
    let params = EvalParams::quick();
    let mut g = runner.group("fig6_critical_writebacks");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        g.bench(&format!("bb_vs_lrp/{}", s.name()), || {
            let bb = run_sim(&trace, Mechanism::Bb, NvmMode::Cached);
            let lrp = run_sim(&trace, Mechanism::Lrp, NvmMode::Cached);
            let (bf, lf) = (
                bb.critical_writeback_fraction(),
                lrp.critical_writeback_fraction(),
            );
            assert!(lf <= bf + 0.25, "{s}: lrp {lf} vs bb {bf}");
            (bf, lf)
        });
    }
}
