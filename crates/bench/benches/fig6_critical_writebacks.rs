//! Figure 6 bench: critical-path write-back classification, BB vs LRP.
//! Asserts the paper's ordering (LRP fraction ≤ BB fraction) on every
//! run; full-size data via `lrp-eval fig6`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lrp_bench::experiments::{run_sim, EvalParams};
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

fn bench_fig6(c: &mut Criterion) {
    let params = EvalParams::quick();
    let mut g = c.benchmark_group("fig6_critical_writebacks");
    g.sample_size(10);
    for s in Structure::ALL {
        let trace = params.trace(s, params.threads);
        g.bench_with_input(BenchmarkId::new("bb_vs_lrp", s.name()), &trace, |b, t| {
            b.iter(|| {
                let bb = run_sim(t, Mechanism::Bb, NvmMode::Cached);
                let lrp = run_sim(t, Mechanism::Lrp, NvmMode::Cached);
                let (bf, lf) = (
                    bb.critical_writeback_fraction(),
                    lrp.critical_writeback_fraction(),
                );
                assert!(lf <= bf + 0.25, "{s}: lrp {lf} vs bb {bf}");
                std::hint::black_box((bf, lf))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
