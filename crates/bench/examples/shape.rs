//! Development smoke harness: prints the Figure-5 shape (normalized
//! execution time + critical write-back fraction + flush counts) for all
//! five workloads at one NVM service interval (argv[1], default 16).
//!
//! Run with: `cargo run --release -p lrp-bench --example shape [service]`

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_sim::{Mechanism, Sim, SimConfig};

fn main() {
    for s in Structure::ALL {
        let spec = WorkloadSpec::new(s)
            .initial_size(match s {
                Structure::LinkedList => 512,
                Structure::Queue => 1024,
                _ => 65536,
            })
            .threads(32)
            .ops_per_thread(30)
            .seed(42);
        let t = spec.build_trace();
        let mut row = format!("{:<12} events={:<7}", s.name(), t.events.len());
        let service: u64 = std::env::args()
            .nth(1)
            .and_then(|a| a.parse().ok())
            .unwrap_or(16);
        let mk = |m: Mechanism| {
            let mut cfg = SimConfig::new(m);
            cfg.nvm_service = service;
            Sim::new(cfg, &t).run()
        };
        let nop = mk(Mechanism::Nop);
        for m in [Mechanism::Sb, Mechanism::Bb, Mechanism::Lrp] {
            let r = mk(m);
            row += &format!(
                "  {}={:.3} (crit {:.0}% fl {})",
                m,
                r.stats.cycles as f64 / nop.stats.cycles as f64,
                100.0 * r.stats.critical_writeback_fraction(),
                r.stats.total_flushes(),
            );
        }
        println!("{row}");
    }
}
