//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§6).
//!
//! [`experiments`] holds one runner per artifact; the `lrp-eval` binary
//! prints them as paper-style text tables, and the Criterion benches
//! under `benches/` wrap the same runners for regression tracking.
//!
//! Full-size figure generation is minutes of CPU; every runner takes an
//! [`experiments::EvalParams`] whose `quick` preset keeps CI fast.

pub mod experiments;

pub use experiments::{EvalParams, EvalScale};
