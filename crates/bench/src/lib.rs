//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation (§6).
//!
//! [`experiments`] holds one runner per artifact; the `lrp-eval` binary
//! prints them as paper-style text tables, and the harness-free benches
//! under `benches/` wrap the same runners (via [`microbench`]) for
//! regression tracking. The `lrp-campaign` binary drives the
//! `lrp-campaign` crate's parallel evaluation-campaign runner. All
//! binaries share the [`cli`] flag parser. The `lrp-profile` binary
//! wraps [`profile`], the persist-blame profiler: per-site attribution
//! of stall cycles and persist latency, LRP-vs-baseline differentials,
//! folded-stacks flame-graph export, and the perf-regression gate over
//! `BENCH_campaign.json` summaries.
//!
//! Full-size figure generation is minutes of CPU; every runner takes an
//! [`experiments::EvalParams`] whose `quick` preset keeps CI fast.

pub mod alloc_count;
pub mod cli;
pub mod crashfuzz;
pub mod experiments;
pub mod host;
pub mod microbench;
pub mod profile;
pub mod serve_bench;

pub use experiments::{EvalParams, EvalScale};
