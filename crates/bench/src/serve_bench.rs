//! End-to-end service benchmark (`lrp-bench serve` / `serve-gate`).
//!
//! Boots an in-process [`lrp_serve::Server`] on a loopback port and
//! drives it with [`lrp_serve::run_load`] across four cells:
//!
//! * `uniform` — uniform keys, tracing off, verification off: the raw
//!   service throughput / durable-ack latency cell;
//! * `zipfian` — hot-key skew, tracing off: the contention cell and the
//!   baseline for the tracing-overhead measurement;
//! * `zipfian-traced` — the same workload with span tracing on, so the
//!   report carries the observed tracing overhead as a first-class
//!   metric (`tracing_overhead_pct`);
//! * `zipfian-crash` — injects a mid-run shard crash with verification
//!   on, and reports the client-observed crash-recovery time.
//!
//! [`report_json`] emits the `BENCH_serve.json` document and
//! [`gate_serve`] compares two documents for CI, reusing the
//! check/verdict machinery of [`crate::profile`]. Wall-clock service
//! numbers are far noisier than the simulator's host benches (thread
//! scheduling, loopback TCP), so the default regression factor is
//! generous and the shed-rate check is an absolute-delta bound.

use crate::profile::{GateCheck, GateVerdict};
use lrp_lfds::{KeyDist, Structure};
use lrp_obs::Json;
use lrp_serve::{run_load, Bind, LoadSpec, LoadSummary, Server, ServerConfig, ShardConfig};
use std::io;

/// Workload shape shared by every cell.
#[derive(Debug, Clone)]
pub struct ServeBenchSpec {
    /// Server shards.
    pub shards: usize,
    /// Load-generator connections.
    pub conns: usize,
    /// Requests per cell.
    pub requests: u64,
    /// Pipeline depth per connection.
    pub window: usize,
    /// Keys drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Percentage of `Get`s.
    pub read_pct: u8,
    /// Master seed.
    pub seed: u64,
}

impl ServeBenchSpec {
    /// The CI smoke shape: seconds end-to-end on a laptop-class host.
    pub fn smoke() -> ServeBenchSpec {
        ServeBenchSpec {
            shards: 2,
            conns: 4,
            requests: 1200,
            window: 16,
            key_range: 256,
            read_pct: 20,
            seed: 1,
        }
    }
}

/// One benchmark cell: a fresh server + one load run.
#[derive(Debug, Clone)]
pub struct ServeCell {
    /// Cell name (`uniform`, `zipfian`, `zipfian-traced`,
    /// `zipfian-crash`).
    pub name: &'static str,
    /// The load summary the cell produced.
    pub summary: LoadSummary,
    /// Spans retained at shutdown (traced cell only).
    pub spans: u64,
}

impl ServeCell {
    /// Completed replies per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.summary.throughput_rps
    }

    /// Shed replies per sent request.
    pub fn shed_rate(&self) -> f64 {
        if self.summary.sent == 0 {
            0.0
        } else {
            self.summary.shed as f64 / self.summary.sent as f64
        }
    }
}

/// The whole benchmark run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Workload shape, echoed for reproducibility.
    pub spec: ServeBenchSpec,
    /// One entry per cell, in cell order.
    pub cells: Vec<ServeCell>,
}

impl ServeReport {
    /// Tracing overhead in percent: throughput lost by `zipfian-traced`
    /// relative to `zipfian` (negative = traced ran faster, i.e. noise).
    pub fn tracing_overhead_pct(&self) -> Option<f64> {
        let base = self.cells.iter().find(|c| c.name == "zipfian")?;
        let traced = self.cells.iter().find(|c| c.name == "zipfian-traced")?;
        if base.ops_per_sec() <= 0.0 {
            return None;
        }
        Some((1.0 - traced.ops_per_sec() / base.ops_per_sec()) * 100.0)
    }

    /// Client-observed crash-recovery time from the crash cell, ms.
    pub fn crash_recovery_ms(&self) -> Option<u64> {
        self.cells
            .iter()
            .find(|c| c.name == "zipfian-crash")
            .and_then(|c| c.summary.crash_recovery_ms)
    }
}

fn cell_spec(spec: &ServeBenchSpec, addr: std::net::SocketAddr) -> LoadSpec {
    let mut ls = LoadSpec::new(Bind::Tcp(addr.to_string()));
    ls.conns = spec.conns;
    ls.requests = spec.requests;
    ls.window = spec.window;
    ls.key_range = spec.key_range;
    ls.read_pct = spec.read_pct;
    ls.seed = spec.seed;
    ls.verify = false;
    ls.shutdown = false;
    ls
}

fn run_cell(
    spec: &ServeBenchSpec,
    name: &'static str,
    spans: Option<usize>,
    crash: bool,
) -> io::Result<ServeCell> {
    let mut shard = ShardConfig::new(Structure::HashMap);
    shard.key_range = spec.key_range;
    shard.seed = spec.seed;
    let mut cfg = ServerConfig::new(shard);
    cfg.shards = spec.shards;
    cfg.spans = spans;
    let server = Server::start(cfg)?;
    let addr = server.local_addr().expect("tcp bind");

    let mut ls = cell_spec(spec, addr);
    if name != "uniform" {
        ls.key_dist = KeyDist::Zipfian { theta: 0.99 };
    }
    if crash {
        ls.crash_at = Some((spec.requests / 4).max(1));
        ls.crash_shard = (spec.shards as u32).saturating_sub(1);
        ls.verify = true;
    }
    let summary = run_load(&ls)?;
    server.shutdown();
    let report = server.join();
    Ok(ServeCell {
        name,
        summary,
        spans: report.spans().len() as u64,
    })
}

/// Runs all four cells, each against a fresh server.
pub fn run_serve_bench(
    spec: &ServeBenchSpec,
    mut progress: impl FnMut(&ServeCell),
) -> io::Result<ServeReport> {
    let mut cells = Vec::new();
    for (name, spans, crash) in [
        ("uniform", None, false),
        ("zipfian", None, false),
        ("zipfian-traced", Some(65536), false),
        ("zipfian-crash", None, true),
    ] {
        let cell = run_cell(spec, name, spans, crash)?;
        progress(&cell);
        cells.push(cell);
    }
    Ok(ServeReport {
        spec: spec.clone(),
        cells,
    })
}

/// Serializes a report as the `BENCH_serve.json` document.
pub fn report_json(r: &ServeReport) -> Json {
    let cells = r
        .cells
        .iter()
        .map(|c| {
            Json::obj([
                ("name", Json::Str(c.name.to_string())),
                ("ops_per_sec", Json::F64(c.ops_per_sec())),
                ("sent", Json::U64(c.summary.sent)),
                ("completed", Json::U64(c.summary.completed)),
                ("acked_durable", Json::U64(c.summary.acked_durable)),
                ("lat_p50_us", Json::U64(c.summary.lat_p50_us)),
                ("lat_p99_us", Json::U64(c.summary.lat_p99_us)),
                ("dur_lat_p50_us", Json::U64(c.summary.dur_lat_p50_us)),
                ("dur_lat_p99_us", Json::U64(c.summary.dur_lat_p99_us)),
                ("shed_rate", Json::F64(c.shed_rate())),
                ("backoffs", Json::U64(c.summary.backoffs)),
                ("spans", Json::U64(c.spans)),
                (
                    "crash_recovery_ms",
                    match c.summary.crash_recovery_ms {
                        Some(ms) => Json::U64(ms),
                        None => Json::Null,
                    },
                ),
                ("durability_ok", Json::Bool(c.summary.durability_ok())),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("serve-bench".to_string())),
        ("shards", Json::U64(r.spec.shards as u64)),
        ("conns", Json::U64(r.spec.conns as u64)),
        ("requests", Json::U64(r.spec.requests)),
        ("window", Json::U64(r.spec.window as u64)),
        ("key_range", Json::U64(r.spec.key_range)),
        ("read_pct", Json::U64(r.spec.read_pct as u64)),
        ("seed", Json::U64(r.spec.seed)),
        (
            "tracing_overhead_pct",
            match r.tracing_overhead_pct() {
                Some(p) => Json::F64(p),
                None => Json::Null,
            },
        ),
        (
            "crash_recovery_ms",
            match r.crash_recovery_ms() {
                Some(ms) => Json::U64(ms),
                None => Json::Null,
            },
        ),
        ("cells", Json::Arr(cells)),
    ])
}

/// Renders the report as an aligned text table.
pub fn render_report(r: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve bench ({} shards, {} conns, {} reqs/cell, window {})\n\
         {:<16} {:>10} {:>10} {:>10} {:>12} {:>12} {:>10}\n",
        r.spec.shards,
        r.spec.conns,
        r.spec.requests,
        r.spec.window,
        "cell",
        "ops/s",
        "p50 us",
        "p99 us",
        "dur p99 us",
        "shed rate",
        "durable",
    ));
    for c in &r.cells {
        out.push_str(&format!(
            "{:<16} {:>10.0} {:>10} {:>10} {:>12} {:>12.4} {:>10}\n",
            c.name,
            c.ops_per_sec(),
            c.summary.lat_p50_us,
            c.summary.lat_p99_us,
            c.summary.dur_lat_p99_us,
            c.shed_rate(),
            c.summary.acked_durable,
        ));
    }
    if let Some(p) = r.tracing_overhead_pct() {
        out.push_str(&format!("tracing overhead: {p:.1}% throughput\n"));
    }
    if let Some(ms) = r.crash_recovery_ms() {
        out.push_str(&format!("crash recovery: {ms} ms client-observed\n"));
    }
    out
}

fn serve_err(msg: impl Into<String>) -> String {
    format!("bad serve-bench report: {}", msg.into())
}

struct CellMetrics {
    name: String,
    ops_per_sec: f64,
    dur_p99_us: f64,
    shed_rate: f64,
}

fn extract(doc: &Json) -> Result<(Vec<CellMetrics>, Option<f64>), String> {
    if doc.get("type").and_then(Json::as_str) != Some("serve-bench") {
        return Err(serve_err("missing type: \"serve-bench\""));
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| serve_err("missing cells array"))?;
    let mut out = Vec::new();
    for c in cells {
        out.push(CellMetrics {
            name: c
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| serve_err("cell without name"))?
                .to_string(),
            ops_per_sec: c
                .get("ops_per_sec")
                .and_then(Json::as_f64)
                .ok_or_else(|| serve_err("cell without ops_per_sec"))?,
            dur_p99_us: c
                .get("dur_lat_p99_us")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            shed_rate: c.get("shed_rate").and_then(Json::as_f64).unwrap_or(0.0),
        });
    }
    let overhead = doc.get("tracing_overhead_pct").and_then(Json::as_f64);
    Ok((out, overhead))
}

/// Shed rate may drift this much (absolute) before the gate fails:
/// admission control depends on host scheduling, so relative bounds are
/// meaningless near zero.
pub const SHED_RATE_SLACK: f64 = 0.25;

/// Tracing overhead above this (percent) fails the gate regardless of
/// the regression factor — the observability layer must stay cheap.
pub const MAX_TRACING_OVERHEAD_PCT: f64 = 50.0;

/// Gates `current` against `baseline`. Per cell present in both
/// reports: ops/sec may not drop below `baseline / max_regression`,
/// durable-ack p99 may not grow beyond `baseline * max_regression`
/// (skipped when the baseline recorded none), and shed rate may not
/// rise by more than [`SHED_RATE_SLACK`] absolute. The current report's
/// tracing overhead is bounded by [`MAX_TRACING_OVERHEAD_PCT`]. Cells
/// present in only one report are ignored, so growing the matrix never
/// fails the gate by itself.
pub fn gate_serve(
    baseline: &Json,
    current: &Json,
    max_regression: f64,
) -> Result<GateVerdict, String> {
    if max_regression < 1.0 || max_regression.is_nan() {
        return Err("max regression factor must be >= 1.0".to_string());
    }
    let (base, _) = extract(baseline)?;
    let (cur, cur_overhead) = extract(current)?;
    let mut checks = Vec::new();
    let mut compared = 0;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.name == b.name) else {
            continue;
        };
        compared += 1;
        checks.push(GateCheck {
            key: b.name.clone(),
            metric: "ops_per_sec".to_string(),
            baseline: b.ops_per_sec,
            current: c.ops_per_sec,
            tol: max_regression,
            pass: c.ops_per_sec * max_regression >= b.ops_per_sec,
        });
        if b.dur_p99_us > 0.0 {
            checks.push(GateCheck {
                key: b.name.clone(),
                metric: "dur_lat_p99_us".to_string(),
                baseline: b.dur_p99_us,
                current: c.dur_p99_us,
                tol: max_regression,
                pass: c.dur_p99_us <= b.dur_p99_us * max_regression,
            });
        }
        checks.push(GateCheck {
            key: b.name.clone(),
            metric: "shed_rate".to_string(),
            baseline: b.shed_rate,
            current: c.shed_rate,
            tol: SHED_RATE_SLACK,
            pass: c.shed_rate <= b.shed_rate + SHED_RATE_SLACK,
        });
    }
    if let Some(p) = cur_overhead {
        checks.push(GateCheck {
            key: "tracing".to_string(),
            metric: "overhead_pct".to_string(),
            baseline: 0.0,
            current: p,
            tol: MAX_TRACING_OVERHEAD_PCT,
            pass: p <= MAX_TRACING_OVERHEAD_PCT,
        });
    }
    Ok(GateVerdict { compared, checks })
}

/// Serializes a gate verdict as the `serve-gate` document.
pub fn gate_json(v: &GateVerdict, max_regression: f64) -> Json {
    let checks = v
        .checks
        .iter()
        .map(|c| {
            Json::obj([
                ("key", Json::Str(c.key.clone())),
                ("metric", Json::Str(c.metric.clone())),
                ("baseline", Json::F64(c.baseline)),
                ("current", Json::F64(c.current)),
                ("tolerance", Json::F64(c.tol)),
                ("pass", Json::Bool(c.pass)),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("serve-gate".to_string())),
        ("pass", Json::Bool(v.pass())),
        ("compared_cells", Json::U64(v.compared as u64)),
        ("max_regression", Json::F64(max_regression)),
        ("checks", Json::Arr(checks)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_report(ops: f64, p99: f64, shed: f64, overhead: f64) -> Json {
        let cell = |name: &str| {
            Json::obj([
                ("name", Json::Str(name.to_string())),
                ("ops_per_sec", Json::F64(ops)),
                ("dur_lat_p99_us", Json::F64(p99)),
                ("shed_rate", Json::F64(shed)),
            ])
        };
        Json::obj([
            ("type", Json::Str("serve-bench".to_string())),
            ("tracing_overhead_pct", Json::F64(overhead)),
            ("cells", Json::Arr(vec![cell("uniform"), cell("zipfian")])),
        ])
    }

    #[test]
    fn serve_gate_passes_self_and_fails_regressions() {
        let base = synthetic_report(5000.0, 800.0, 0.01, 2.0);
        let v = gate_serve(&base, &base, 3.0).unwrap();
        assert!(v.pass());
        assert_eq!(v.compared, 2);

        // Throughput collapsed 10x: fails the 3x gate.
        let slow = synthetic_report(500.0, 800.0, 0.01, 2.0);
        let v = gate_serve(&base, &slow, 3.0).unwrap();
        assert!(!v.pass());
        assert!(v.failures().iter().all(|c| c.metric == "ops_per_sec"));

        // Shed rate jumped past the absolute slack.
        let shedding = synthetic_report(5000.0, 800.0, 0.4, 2.0);
        assert!(!gate_serve(&base, &shedding, 3.0).unwrap().pass());

        // Tracing overhead blew the absolute bound.
        let heavy = synthetic_report(5000.0, 800.0, 0.01, 80.0);
        assert!(!gate_serve(&base, &heavy, 3.0).unwrap().pass());
    }

    #[test]
    fn serve_gate_rejects_junk_and_bad_factors() {
        let junk = Json::obj([("type", Json::Str("host-bench".to_string()))]);
        let good = synthetic_report(100.0, 10.0, 0.0, 0.0);
        assert!(gate_serve(&junk, &good, 3.0).is_err());
        assert!(gate_serve(&good, &good, 0.5).is_err());
    }

    #[test]
    fn extra_cells_in_current_are_ignored() {
        let base = synthetic_report(100.0, 10.0, 0.0, 0.0);
        let mut cur = synthetic_report(100.0, 10.0, 0.0, 0.0);
        // Rename one current cell so it no longer matches the baseline.
        if let Json::Obj(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == "cells" {
                    if let Json::Arr(cells) = v {
                        cells.push(Json::obj([
                            ("name", Json::Str("new-cell".to_string())),
                            ("ops_per_sec", Json::F64(1.0)),
                        ]));
                    }
                }
            }
        }
        let v = gate_serve(&base, &cur, 3.0).unwrap();
        assert!(v.pass());
        assert_eq!(v.compared, 2);
    }
}
