//! Minimal self-contained micro-benchmark harness.
//!
//! The workspace builds fully offline, so the `benches/` targets cannot
//! pull in Criterion; this module provides the small slice of its API
//! the figure benches need: named groups, per-case sample counts, and a
//! substring filter from the command line. Results print one line per
//! case with min/median/max wall time.
//!
//! The simulated *outcomes* these benches guard (cycle counts,
//! write-back fractions) are deterministic; wall time is reported for
//! trend-spotting only. The durable perf trajectory lives in
//! `BENCH_campaign.json`, produced by `lrp-campaign`.

use std::time::Instant;

/// Times `samples` runs of `f` (after one untimed warmup) and returns
/// the wall times in milliseconds, sorted ascending. This is the timing
/// core shared by [`Group::bench`] and the `lrp-bench host` throughput
/// benchmark.
pub fn sample_ms<R>(samples: usize, mut f: impl FnMut() -> R) -> Vec<f64> {
    std::hint::black_box(f());
    let mut out: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    out.sort_by(|a, b| a.total_cmp(b));
    out
}

/// Top-level harness: parses the command line once.
pub struct Runner {
    filter: Option<String>,
}

impl Runner {
    /// Builds a runner from `std::env::args`, ignoring harness flags
    /// cargo passes (`--bench`, `--exact`, ...) and treating the first
    /// bare argument as a substring filter on case names.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Runner { filter }
    }

    /// Starts a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            name: name.to_string(),
            filter: self.filter.as_deref(),
            sample_size: 10,
        }
    }
}

/// A group of related cases sharing a sample size.
pub struct Group<'a> {
    name: String,
    filter: Option<&'a str>,
    sample_size: usize,
}

impl Group<'_> {
    /// Sets the number of timed samples per case.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one case. The closure runs once for warmup and then
    /// `sample_size` timed iterations.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{}", self.name, id);
        if let Some(fil) = self.filter {
            if !full.contains(fil) {
                return;
            }
        }
        let samples = sample_ms(self.sample_size, &mut f);
        let median = samples[samples.len() / 2];
        println!(
            "{full:<52} median {median:>9.3} ms  (min {:.3}, max {:.3}, n={})",
            samples[0],
            samples[samples.len() - 1],
            samples.len()
        );
    }
}
