//! Crash-fuzzing the exactly-once serving protocol.
//!
//! Each trial boots one shard, warms it with batches of mixed traffic,
//! kills it at a random persist point with a batch in flight, and then
//! plays the *exactly-once client*: every uncertain mutation is
//! resolved through the shard's recovered slot table — `Done` means the
//! retry is skipped, `NotStarted` means the retry is safe — and the
//! recovered state is audited against every verdict. A trial fails
//! when any of the detectable-operation guarantees breaks:
//!
//! * a **durably-acked** mutation whose stamp (or effect) did not
//!   survive the crash — a lost durably-acked write;
//! * a `Done` verdict contradicted by the recovered durable state — the
//!   stamp over-promised, so skipping the retry would *lose* the op;
//! * a resolution that is not deterministic, or a torn slot record
//!   under a release-ordering discipline — both impossible if stamps
//!   are persist-ordered after the writes they certify.
//!
//! `NotStarted` verdicts are retried; a retry absorbed by set semantics
//! (`applied = false`) is counted, not failed — that is the documented
//! stamp-lost-but-effect-durable window the idempotent retry exists
//! for. Under an unsound discipline (`nop`) the resolver must stay
//! empty: every op resolves `NotStarted` and serving degrades to
//! at-least-once instead of lying about exactly-once.
//!
//! Trials are seeded, so any failure replays exactly; the first few
//! violations per cell are kept verbatim as the counterexample
//! artifact.

use lrp_detect::{ResolvedStatus, SlotKind};
use lrp_exec::Xorshift64;
use lrp_lfds::{KeyDist, Structure};
use lrp_obs::Json;
use lrp_serve::shard::{KvOp, KvResult, Shard, ShardConfig, ShardReq};
use lrp_sim::Mechanism;
use std::collections::BTreeSet;

/// Crash-fuzz campaign parameters.
#[derive(Debug, Clone)]
pub struct CrashFuzzSpec {
    /// Structure every shard serves.
    pub structure: Structure,
    /// Mechanisms fuzzed (one cell per mechanism × distribution).
    pub mechs: Vec<Mechanism>,
    /// Key distributions fuzzed.
    pub dists: Vec<KeyDist>,
    /// Seeded trials per cell.
    pub trials: u64,
    /// Keys are drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Operations per batch (warm batches and the crashed batch).
    pub batch: usize,
    /// Committed batches executed before the crash.
    pub warm_batches: usize,
    /// Master seed; trial `t` of cell `c` derives its own stream.
    pub seed: u64,
}

impl CrashFuzzSpec {
    /// CI preset: 2 mechanisms × 2 distributions × 50 trials = 200
    /// crash-restarts, a few seconds total.
    pub fn full() -> CrashFuzzSpec {
        CrashFuzzSpec {
            structure: Structure::HashMap,
            mechs: vec![Mechanism::Lrp, Mechanism::Sb],
            dists: vec![
                KeyDist::Uniform,
                KeyDist::Zipfian {
                    theta: KeyDist::ZIPFIAN_DEFAULT_THETA,
                },
            ],
            trials: 50,
            key_range: 256,
            batch: 16,
            warm_batches: 3,
            seed: 1,
        }
    }

    /// Smoke preset: same matrix, 5 trials per cell.
    pub fn smoke() -> CrashFuzzSpec {
        CrashFuzzSpec {
            trials: 5,
            ..CrashFuzzSpec::full()
        }
    }
}

/// Accumulated results for one (mechanism × distribution) cell.
#[derive(Debug, Clone, Default)]
pub struct CellReport {
    /// Mechanism name.
    pub mech: String,
    /// Distribution name.
    pub dist: String,
    /// Trials run.
    pub trials: u64,
    /// In-flight mutations across all crashes.
    pub inflight: u64,
    /// Uncertain mutations resolved `Done` (retry skipped).
    pub resolved_done: u64,
    /// Uncertain mutations resolved `NotStarted` (retry performed).
    pub resolved_not_started: u64,
    /// Retries skipped because resolution proved durable execution —
    /// each one a duplicate a blind-retry client would have risked.
    pub duplicates_avoided: u64,
    /// Retries executed after a `NotStarted` verdict.
    pub retried: u64,
    /// Retries absorbed by set semantics (`applied = false`): the
    /// stamp-lost-but-effect-durable window, harmless by design.
    pub retries_absorbed: u64,
    /// Warm durably-acked mutations audited against the resolver.
    pub durable_audited: u64,
    /// Torn slot records observed (must be 0 under sound disciplines).
    pub torn_stamps: u64,
    /// Durably-acked keys the shard itself reported lost.
    pub lost_acked: u64,
    /// Guarantee violations (must be 0 for the campaign to pass).
    pub violations: u64,
    /// First few violations, verbatim, with their trial seeds.
    pub examples: Vec<String>,
}

impl CellReport {
    fn violate(&mut self, seed: u64, msg: String) {
        self.violations += 1;
        if self.examples.len() < 8 {
            self.examples.push(format!("seed {seed}: {msg}"));
        }
    }
}

/// Whole-campaign report.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// One entry per (mechanism × distribution) cell.
    pub cells: Vec<CellReport>,
    /// Total trials run.
    pub trials: u64,
    /// Total guarantee violations (0 = pass).
    pub violations: u64,
}

impl FuzzReport {
    /// True when no trial violated an exactly-once guarantee.
    pub fn pass(&self) -> bool {
        self.violations == 0
    }
}

/// Runs the campaign; `progress` fires once per finished cell.
pub fn run_crash_fuzz(spec: &CrashFuzzSpec, mut progress: impl FnMut(&CellReport)) -> FuzzReport {
    let mut report = FuzzReport::default();
    for (ci, &mech) in spec.mechs.iter().enumerate() {
        for (di, &dist) in spec.dists.iter().enumerate() {
            let mut cell = CellReport {
                mech: mech.name().to_string(),
                dist: dist.name().to_string(),
                ..CellReport::default()
            };
            for t in 0..spec.trials {
                let seed = spec
                    .seed
                    .wrapping_add(((ci as u64 * 31 + di as u64) << 32) | t)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    | 1;
                run_trial(spec, mech, dist, seed, &mut cell);
                cell.trials += 1;
            }
            report.trials += cell.trials;
            report.violations += cell.violations;
            progress(&cell);
            report.cells.push(cell);
        }
    }
    report
}

/// Draws `n` *distinct* keys so verdict-vs-state audits are free of
/// same-key ordering ambiguity inside the crashed batch.
fn distinct_keys(
    sampler: &lrp_lfds::KeySampler,
    rng: &mut Xorshift64,
    n: usize,
    range: u64,
) -> Vec<u64> {
    let mut keys = BTreeSet::new();
    let mut spins = 0u64;
    while keys.len() < n && spins < 10_000 {
        keys.insert(sampler.draw(rng));
        spins += 1;
    }
    let mut fill = 1;
    while keys.len() < n {
        // Pathologically skewed draw: top up deterministically.
        keys.insert(fill % range.max(1) + 1);
        fill += 1;
    }
    keys.into_iter().collect()
}

fn run_trial(
    spec: &CrashFuzzSpec,
    mech: Mechanism,
    dist: KeyDist,
    seed: u64,
    cell: &mut CellReport,
) {
    let mut cfg = ShardConfig::new(spec.structure);
    cfg.mechanism = mech;
    cfg.initial_size = 32;
    cfg.key_range = spec.key_range;
    cfg.seed = seed;
    let mut shard = Shard::new(cfg);
    let mut rng = Xorshift64::new(seed ^ 0xF0_22ED);
    let sampler = dist.sampler(spec.key_range);
    let sound = mech.discipline().orders_release_stamps();

    // Warm traffic: committed batches whose durable acks we must still
    // be able to account for after the crash. Each batch gets its own
    // client row so no slot is recycled — the exactly-once guarantee
    // only covers a client's last `ring` requests, and auditing a
    // legitimately recycled slot would be a false violation.
    let mut durable_acked: Vec<(ShardReq, KvResult)> = Vec::new();
    for b in 0..spec.warm_batches {
        let mut seq = 0u64;
        let ops: Vec<ShardReq> = (0..spec.batch)
            .map(|_| {
                let key = sampler.draw(&mut rng);
                let op = match rng.below(4) {
                    0 | 1 => KvOp::Put(key),
                    2 => KvOp::Del(key),
                    _ => KvOp::Get(key),
                };
                seq += 1;
                ShardReq::new(op, ((10 + b as u64) << 48) | seq)
            })
            .collect();
        let results = shard.execute(&ops);
        for (req, r) in ops.iter().zip(&results) {
            if req.op.is_mutation() && r.durable {
                durable_acked.push((*req, *r));
            }
        }
    }

    // The crashed batch: distinct keys, mutation-heavy.
    let keys = distinct_keys(&sampler, &mut rng, spec.batch, spec.key_range);
    let inflight: Vec<ShardReq> = keys
        .iter()
        .enumerate()
        .map(|(i, &key)| {
            let op = if rng.below(3) == 0 {
                KvOp::Del(key)
            } else {
                KvOp::Put(key)
            };
            ShardReq::new(op, (2 << 48) | i as u64)
        })
        .collect();
    let pre_crash = shard.committed().clone();
    let outcome = shard.crash(&inflight);
    cell.inflight += inflight.iter().filter(|r| r.op.is_mutation()).count() as u64;
    cell.torn_stamps += outcome.torn_stamps;
    cell.lost_acked += outcome.lost_acked.len() as u64;

    if sound {
        if !outcome.consistent {
            cell.violate(seed, format!("inconsistent restart under {}", cell.mech));
        }
        if outcome.torn_stamps != 0 {
            cell.violate(
                seed,
                format!("{} torn stamps under {}", outcome.torn_stamps, cell.mech),
            );
        }
        if !outcome.lost_acked.is_empty() {
            cell.violate(
                seed,
                format!("lost durably-acked keys {:?}", outcome.lost_acked),
            );
        }
        // Guarantee 1: every durably-acked warm mutation resolves
        // `Done` with exactly its recorded outcome.
        for (req, r) in &durable_acked {
            cell.durable_audited += 1;
            match shard.resolve(req.rid) {
                ResolvedStatus::Done { applied, key, .. } => {
                    if applied != r.applied || key != req.op.key() {
                        cell.violate(
                            seed,
                            format!(
                                "stamp for rid {:#x} replayed ({applied},{key}), acked ({},{})",
                                req.rid,
                                r.applied,
                                req.op.key()
                            ),
                        );
                    }
                }
                ResolvedStatus::NotStarted => cell.violate(
                    seed,
                    format!(
                        "durably-acked rid {:#x} (key {}) lost its stamp",
                        req.rid,
                        req.op.key()
                    ),
                ),
            }
        }
    } else {
        // Unsound discipline: the resolver must refuse to claim Done.
        for (req, _) in &durable_acked {
            if shard.resolve(req.rid).is_done() {
                cell.violate(
                    seed,
                    format!("unsound {} resolved rid {:#x} Done", cell.mech, req.rid),
                );
            }
        }
    }

    // Guarantee 2: every uncertain op resolves deterministically, and
    // `Done` verdicts agree with the recovered durable state.
    let mut retry: Vec<ShardReq> = Vec::new();
    for (i, req) in inflight.iter().enumerate() {
        let verdict = shard.resolve(req.rid);
        if verdict != shard.resolve(req.rid) {
            cell.violate(seed, format!("nondeterministic verdict for {:#x}", req.rid));
        }
        if !req.op.is_mutation() {
            continue;
        }
        match verdict {
            ResolvedStatus::Done {
                kind, applied, key, ..
            } => {
                cell.resolved_done += 1;
                cell.duplicates_avoided += 1;
                if key != req.op.key() {
                    cell.violate(
                        seed,
                        format!("stamp key {key} != request key {}", req.op.key()),
                    );
                    continue;
                }
                let present = shard.committed().contains(&key);
                let was = pre_crash.contains(&key);
                // Keys are distinct within the batch, so the recovered
                // presence of this key is decided by this op alone.
                let expect = match (kind, applied) {
                    (SlotKind::Put, true) => true,
                    (SlotKind::Del, true) => false,
                    (_, false) => was,
                };
                if present != expect {
                    cell.violate(
                        seed,
                        format!(
                            "Done({:?},{applied}) for key {key} but recovered present={present}",
                            kind
                        ),
                    );
                }
            }
            ResolvedStatus::NotStarted => {
                cell.resolved_not_started += 1;
                retry.push(ShardReq::new(req.op, (3 << 48) | i as u64));
            }
        }
    }

    // The exactly-once client retries only `NotStarted` ops; set
    // semantics make those retries idempotent even when the effect
    // persisted without its stamp.
    if !retry.is_empty() {
        let results = shard.execute(&retry);
        cell.retried += retry.len() as u64;
        for (req, r) in retry.iter().zip(&results) {
            if !r.applied {
                cell.retries_absorbed += 1;
            }
            // Guarantee 3: a durably-acked retry's effect is in the
            // committed durable state.
            if r.durable {
                let present = shard.committed().contains(&req.op.key());
                let want = matches!(req.op, KvOp::Put(_));
                if present != want {
                    cell.violate(
                        seed,
                        format!(
                            "retried {:?} durably acked but recovered present={present}",
                            req.op
                        ),
                    );
                }
            }
        }
    }
}

/// The campaign report as a `BENCH`-style JSON document.
pub fn report_json(spec: &CrashFuzzSpec, report: &FuzzReport) -> Json {
    let cells = report
        .cells
        .iter()
        .map(|c| {
            Json::obj([
                ("mech", Json::Str(c.mech.clone())),
                ("dist", Json::Str(c.dist.clone())),
                ("trials", Json::U64(c.trials)),
                ("inflight_mutations", Json::U64(c.inflight)),
                ("resolved_done", Json::U64(c.resolved_done)),
                ("resolved_not_started", Json::U64(c.resolved_not_started)),
                ("duplicates_avoided", Json::U64(c.duplicates_avoided)),
                ("retried", Json::U64(c.retried)),
                ("retries_absorbed", Json::U64(c.retries_absorbed)),
                ("durable_audited", Json::U64(c.durable_audited)),
                ("torn_stamps", Json::U64(c.torn_stamps)),
                ("lost_acked", Json::U64(c.lost_acked)),
                ("violations", Json::U64(c.violations)),
                (
                    "examples",
                    Json::Arr(c.examples.iter().map(|e| Json::Str(e.clone())).collect()),
                ),
            ])
        })
        .collect();
    Json::obj([
        ("record", Json::Str("crash-fuzz".into())),
        ("structure", Json::Str(spec.structure.name().into())),
        ("key_range", Json::U64(spec.key_range)),
        ("batch", Json::U64(spec.batch as u64)),
        ("warm_batches", Json::U64(spec.warm_batches as u64)),
        ("seed", Json::U64(spec.seed)),
        ("trials", Json::U64(report.trials)),
        ("violations", Json::U64(report.violations)),
        ("pass", Json::Bool(report.pass())),
        ("cells", Json::Arr(cells)),
    ])
}

/// Text table for the terminal.
pub fn render_report(report: &FuzzReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "crash-fuzz: {} trials, {} violations\n",
        report.trials, report.violations
    ));
    out.push_str(&format!(
        "  {:<6} {:<8} {:>6} {:>9} {:>6} {:>6} {:>8} {:>8} {:>5} {:>5}\n",
        "mech",
        "dist",
        "trials",
        "inflight",
        "done",
        "notst",
        "retried",
        "absorbed",
        "torn",
        "viol"
    ));
    for c in &report.cells {
        out.push_str(&format!(
            "  {:<6} {:<8} {:>6} {:>9} {:>6} {:>6} {:>8} {:>8} {:>5} {:>5}\n",
            c.mech,
            c.dist,
            c.trials,
            c.inflight,
            c.resolved_done,
            c.resolved_not_started,
            c.retried,
            c.retries_absorbed,
            c.torn_stamps,
            c.violations
        ));
    }
    for c in &report.cells {
        for e in &c.examples {
            out.push_str(&format!("  VIOLATION [{}/{}] {}\n", c.mech, c.dist, e));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_campaign_passes_with_zero_violations() {
        let spec = CrashFuzzSpec::smoke();
        let report = run_crash_fuzz(&spec, |_| {});
        assert_eq!(report.trials, 20, "2 mechs x 2 dists x 5 trials");
        assert!(
            report.pass(),
            "violations: {:?}",
            report
                .cells
                .iter()
                .flat_map(|c| c.examples.clone())
                .collect::<Vec<_>>()
        );
        // The campaign actually exercised the protocol: crashes left
        // ops uncertain and some resolved Done.
        let done: u64 = report.cells.iter().map(|c| c.resolved_done).sum();
        let not_started: u64 = report.cells.iter().map(|c| c.resolved_not_started).sum();
        assert!(done + not_started > 0, "no uncertain op was resolved");
    }

    #[test]
    fn nop_cell_degrades_to_at_least_once_without_violations() {
        let spec = CrashFuzzSpec {
            mechs: vec![Mechanism::Nop],
            dists: vec![KeyDist::Uniform],
            trials: 3,
            ..CrashFuzzSpec::smoke()
        };
        let report = run_crash_fuzz(&spec, |_| {});
        assert!(report.pass(), "nop must degrade gracefully, not violate");
        let c = &report.cells[0];
        assert_eq!(c.resolved_done, 0, "unsound discipline never claims Done");
        assert_eq!(c.retried, c.resolved_not_started);
    }

    #[test]
    fn campaign_is_deterministic_in_the_seed() {
        let spec = CrashFuzzSpec {
            trials: 2,
            ..CrashFuzzSpec::smoke()
        };
        let a = run_crash_fuzz(&spec, |_| {});
        let b = run_crash_fuzz(&spec, |_| {});
        let key = |r: &FuzzReport| {
            r.cells
                .iter()
                .map(|c| (c.resolved_done, c.resolved_not_started, c.retried))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(&a), key(&b));
    }
}
