//! `lrp-trace` — generate, inspect, and check workload traces.
//!
//! ```text
//! lrp-trace gen   --structure <name> [--size N] [--threads N] [--ops N]
//!                 [--seed N] [--out FILE]
//! lrp-trace info   <FILE>    # census + validation
//! lrp-trace check  <FILE>    # replay under every mechanism, verify RP
//!                            # and null recovery
//! lrp-trace report <FILE> [mech] [--trace-out FILE] [--metrics-out FILE]
//!                  [--sample-every N]   # full stat dump of one replay
//! ```
//!
//! Traces use the plain-text format of `lrp_model::codec`, so they can
//! be diffed, versioned, and shipped as regression inputs.

use lrp_bench::cli::Cli;
use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::{codec, Census, Trace};
use lrp_obs::RecorderConfig;
use lrp_recovery::{check_null_recovery, CrashPlan};
use lrp_sim::{Mechanism, Sim, SimConfig};

const USAGE: &str = "usage:\n  \
    lrp-trace gen --structure <linkedlist|hashmap|bstree|skiplist|queue> \
    [--size N] [--threads N] [--ops N] [--seed N] [--out FILE]\n  \
    lrp-trace info <FILE>\n  \
    lrp-trace check <FILE>\n  \
    lrp-trace report <FILE> [mech] [--trace-out FILE] [--metrics-out FILE] \
    [--sample-every N] [--no-critpath]\n\n\
    defaults:\n  \
    --size 64   --threads 4   --ops 25   --seed 1\n  \
    --out FILE           write the generated trace there instead of stdout\n  \
    report mech          lrp (one of nop|sb|bb|lrp|dpo)\n  \
    --trace-out FILE     write a Chrome trace-event JSON timeline\n  \
    --metrics-out FILE   write JSONL metrics (stats, histograms, blame, audit)\n  \
    --sample-every N     record time-series samples every N cycles (0 = off)\n  \
    --no-critpath        disable durability critical-path tracing\n\n\
    exit codes:\n  \
    0  success\n  \
    1  file read/write/parse error\n  \
    2  usage error (unknown flag or command, missing or invalid value)";

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    codec::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let structure: Option<Structure> = cli.opt_parse("structure");
    let size = cli.opt_parse("size").unwrap_or(64usize);
    let threads = cli.opt_parse("threads").unwrap_or(4u16);
    let ops = cli.opt_parse("ops").unwrap_or(25usize);
    let seed = cli.opt_parse("seed").unwrap_or(1u64);
    let out: Option<String> = cli.opt("out");
    let obs = ObsOut {
        trace_out: cli.opt("trace-out"),
        metrics_out: cli.opt("metrics-out"),
        sample_every: cli.opt_parse("sample-every").unwrap_or(0),
        critpath: !cli.flag("no-critpath"),
    };
    let pos = cli.positionals(1, 3);
    match pos[0].as_str() {
        "gen" => {
            let Some(structure) = structure else {
                cli.fail("gen needs --structure")
            };
            gen(structure, size, threads, ops, seed, out);
        }
        "info" => match pos.get(1) {
            Some(path) => info(path),
            None => cli.fail("info needs a trace file"),
        },
        "check" => match pos.get(1) {
            Some(path) => check(path),
            None => cli.fail("check needs a trace file"),
        },
        "report" => match pos.get(1) {
            Some(path) => report(
                &cli,
                path,
                pos.get(2).map(String::as_str).unwrap_or("lrp"),
                &obs,
            ),
            None => cli.fail("report needs a trace file"),
        },
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

fn gen(
    structure: Structure,
    size: usize,
    threads: u16,
    ops: usize,
    seed: u64,
    out: Option<String>,
) {
    let trace = WorkloadSpec::new(structure)
        .initial_size(size)
        .threads(threads)
        .ops_per_thread(ops)
        .seed(seed)
        .build_trace();
    trace.validate().expect("generated trace is well-formed");
    let text = codec::to_text(&trace);
    match out {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} events ({} ops) to {path}",
                trace.events.len(),
                trace.markers.len()
            );
        }
        None => print!("{text}"),
    }
}

fn info(path: &str) {
    let trace = load(path);
    match trace.validate() {
        Ok(()) => println!("trace: well-formed"),
        Err(e) => println!("trace: INVALID ({e})"),
    }
    println!("{}", Census::of(&trace));
    if !trace.roots.is_empty() {
        print!("roots:");
        for (name, a) in &trace.roots {
            print!(" {name}={a:#x}");
        }
        println!();
    }
}

/// Observability export options shared by the report subcommand.
struct ObsOut {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    sample_every: u64,
    critpath: bool,
}

impl ObsOut {
    fn wanted(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.sample_every > 0
    }
}

fn report(cli: &Cli, path: &str, mech: &str, obs: &ObsOut) {
    let trace = load(path);
    let Some(m) = Mechanism::EXTENDED.into_iter().find(|m| m.name() == mech) else {
        cli.fail(format!("unknown mechanism {mech:?}"))
    };
    let mut sim = Sim::new(SimConfig::new(m), &trace);
    if obs.wanted() {
        sim = sim.with_recorder(RecorderConfig {
            sample_every: obs.sample_every,
            critpath: obs.critpath,
            ..RecorderConfig::default()
        });
    }
    let r = sim.run();
    print!(
        "{}",
        lrp_sim::report::render(&format!("{path} under {mech}"), &r)
    );
    if let Some(rep) = r.obs.as_ref() {
        lrp_obs::metrics::warn_ring_drops("event", rep.dropped);
        if let Some(crit) = &rep.crit {
            println!(
                "critical path: {} paths, {} cycles, longest {} ({} conservation violations)",
                crit.paths(),
                crit.total_cycles(),
                crit.max_path,
                crit.audit.total_violations()
            );
        }
        if let Some(out) = &obs.trace_out {
            write_out(out, &lrp_obs::chrome::export(rep));
            eprintln!("wrote Chrome trace to {out}");
        }
        if let Some(out) = &obs.metrics_out {
            write_out(out, &lrp_obs::metrics::export_jsonl(rep, &r.stats));
            eprintln!("wrote JSONL metrics to {out}");
        }
        if rep.audit.total_violations()
            + rep.crit.as_ref().map_or(0, |c| c.audit.total_violations())
            > 0
        {
            eprintln!(
                "WARNING: {} invariant violations observed",
                rep.audit.total_violations()
                    + rep.crit.as_ref().map_or(0, |c| c.audit.total_violations())
            );
        }
    }
}

fn write_out(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn check(path: &str) {
    let trace = load(path);
    trace.validate().expect("trace is well-formed");
    let structure = Structure::infer_from_roots(trace.roots.iter().map(|(name, _)| name.as_str()));
    for m in Mechanism::ALL {
        let r = Sim::new(SimConfig::new(m), &trace).run();
        let rp = if m == Mechanism::Nop {
            "n/a".to_string()
        } else {
            match lrp_model::spec::check_rp(&trace, &r.schedule) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("VIOLATED ({} findings)", v.len()),
            }
        };
        let recovery = match (structure, m) {
            (Some(s), Mechanism::Lrp | Mechanism::Sb | Mechanism::Bb) => {
                let rep = check_null_recovery(s, &trace, &r.schedule, &CrashPlan::Sampled(32));
                if rep.all_recovered() {
                    format!("{} crash points ok", rep.crash_points)
                } else {
                    format!("{} FAILURES", rep.failures.len())
                }
            }
            _ => "n/a".to_string(),
        };
        println!(
            "{:<4} cycles={:<10} flushes={:<6} RP={:<10} recovery={}",
            m.name(),
            r.stats.cycles,
            r.stats.total_flushes(),
            rp,
            recovery
        );
    }
}
