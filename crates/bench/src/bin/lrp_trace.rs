//! `lrp-trace` — generate, inspect, and check workload traces.
//!
//! ```text
//! lrp-trace gen   --structure <name> [--size N] [--threads N] [--ops N]
//!                 [--seed N] [--out FILE]
//! lrp-trace info   <FILE>    # census + validation
//! lrp-trace check  <FILE>    # replay under every mechanism, verify RP
//!                            # and null recovery
//! lrp-trace report <FILE> [mech]   # full stat dump of one replay
//! ```
//!
//! Traces use the plain-text format of `lrp_model::codec`, so they can
//! be diffed, versioned, and shipped as regression inputs.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::{codec, Census, Trace};
use lrp_recovery::{check_null_recovery, CrashPlan};
use lrp_sim::{Mechanism, Sim, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage:\n  lrp-trace gen --structure <linkedlist|hashmap|bstree|skiplist|queue> \
         [--size N] [--threads N] [--ops N] [--seed N] [--out FILE]\n  \
         lrp-trace info <FILE>\n  lrp-trace check <FILE>"
    );
    std::process::exit(2);
}

fn parse_structure(name: &str) -> Structure {
    Structure::ALL
        .into_iter()
        .find(|s| s.name() == name)
        .unwrap_or_else(|| usage())
}

fn load(path: &str) -> Trace {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    codec::from_text(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("info") => info(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        Some("check") => check(args.get(1).map(String::as_str).unwrap_or_else(|| usage())),
        Some("report") => report(
            args.get(1).map(String::as_str).unwrap_or_else(|| usage()),
            args.get(2).map(String::as_str).unwrap_or("lrp"),
        ),
        _ => usage(),
    }
}

fn gen(args: &[String]) {
    let mut structure = None;
    let mut size = 64usize;
    let mut threads = 4u16;
    let mut ops = 25usize;
    let mut seed = 1u64;
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        let val = || args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--structure" => structure = Some(parse_structure(&val())),
            "--size" => size = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => ops = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--out" => out = Some(val()),
            _ => usage(),
        }
        i += 2;
    }
    let Some(structure) = structure else { usage() };
    let trace = WorkloadSpec::new(structure)
        .initial_size(size)
        .threads(threads)
        .ops_per_thread(ops)
        .seed(seed)
        .build_trace();
    trace.validate().expect("generated trace is well-formed");
    let text = codec::to_text(&trace);
    match out {
        Some(path) => {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "wrote {} events ({} ops) to {path}",
                trace.events.len(),
                trace.markers.len()
            );
        }
        None => print!("{text}"),
    }
}

fn info(path: &str) {
    let trace = load(path);
    match trace.validate() {
        Ok(()) => println!("trace: well-formed"),
        Err(e) => println!("trace: INVALID ({e})"),
    }
    println!("{}", Census::of(&trace));
    if !trace.roots.is_empty() {
        print!("roots:");
        for (name, a) in &trace.roots {
            print!(" {name}={a:#x}");
        }
        println!();
    }
}

fn report(path: &str, mech: &str) {
    let trace = load(path);
    let m = Mechanism::EXTENDED
        .into_iter()
        .find(|m| m.name() == mech)
        .unwrap_or_else(|| usage());
    let r = Sim::new(SimConfig::new(m), &trace).run();
    print!("{}", lrp_sim::report::render(&format!("{path} under {mech}"), &r));
}

fn check(path: &str) {
    let trace = load(path);
    trace.validate().expect("trace is well-formed");
    let structure = trace.roots.iter().find_map(|(name, _)| match name.as_str() {
        "head" => Some(Structure::LinkedList),
        "buckets" => Some(Structure::HashMap),
        "bst_r" => Some(Structure::Bst),
        "sl_head" => Some(Structure::SkipList),
        "q_anchor" => Some(Structure::Queue),
        _ => None,
    });
    for m in Mechanism::ALL {
        let r = Sim::new(SimConfig::new(m), &trace).run();
        let rp = if m == Mechanism::Nop {
            "n/a".to_string()
        } else {
            match lrp_model::spec::check_rp(&trace, &r.schedule) {
                Ok(()) => "ok".to_string(),
                Err(v) => format!("VIOLATED ({} findings)", v.len()),
            }
        };
        let recovery = match (structure, m) {
            (Some(s), Mechanism::Lrp | Mechanism::Sb | Mechanism::Bb) => {
                let rep = check_null_recovery(s, &trace, &r.schedule, &CrashPlan::Sampled(32));
                if rep.all_recovered() {
                    format!("{} crash points ok", rep.crash_points)
                } else {
                    format!("{} FAILURES", rep.failures.len())
                }
            }
            _ => "n/a".to_string(),
        };
        println!(
            "{:<4} cycles={:<10} flushes={:<6} RP={:<10} recovery={}",
            m.name(),
            r.stats.cycles,
            r.stats.total_flushes(),
            rp,
            recovery
        );
    }
}
