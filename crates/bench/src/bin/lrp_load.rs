//! `lrp-load` — the open/closed-loop load generator for `lrp-serve`.
//!
//! ```text
//! lrp-load --addr 127.0.0.1:4817 --requests 5000 --dist zipfian
//! lrp-load --addr $(cat /tmp/serve.addr) --crash-at 1000 --crash-shard 1
//! lrp-load --uds /tmp/lrp.sock --qps 500 --shutdown
//! ```
//!
//! Drives the wire protocol over N connections with a configurable key
//! skew and op mix, optionally injects a mid-run shard crash-restart,
//! then (unless `--no-verify`) replays a read-only verification pass:
//! every key whose last mutation was *durably acked* must read back in
//! the acked state. The JSON summary (throughput, client-observed
//! latency percentiles, shed rate, verification verdict) goes to stdout
//! and, with `--json-out`, to a file. Exit 4 flags a durability
//! violation — the signal CI gates on.

use lrp_bench::cli::Cli;
use lrp_lfds::KeyDist;
use lrp_serve::{probe, run_load, Bind, LoadSpec};

const USAGE: &str = "usage:\n  \
    lrp-load (--addr HOST:PORT | --uds PATH)\n           \
    [--conns N] [--requests N] [--window N]\n           \
    [--dist uniform|zipfian] [--theta F] [--key-range N]\n           \
    [--read-pct N] [--qps N] [--seed N] [--shed-retries N]\n           \
    [--crash-at N] [--crash-shard N]\n           \
    [--no-verify] [--shutdown] [--json-out FILE]\n  \
    lrp-load (--addr HOST:PORT | --uds PATH) --probe stats|metrics|ping\n\n\
    defaults:\n  \
    --conns 4      --requests 2000   --window 16   --dist uniform\n  \
    --theta 0.99   --key-range 256   --read-pct 20 --seed 1\n  \
    --qps 0        closed loop (as fast as the window allows)\n  \
    --shed-retries N  re-send a shed request up to N times, honoring the\n                 \
    server's retry-after hint before each re-send\n                 \
    (default 1; 0 gives up immediately)\n  \
    --crash-at N   inject a Crash admin request for --crash-shard\n                 \
    (default shard 0) after N data requests; off by default\n  \
    --no-verify    skip the read-back verification phase\n  \
    --shutdown     send Shutdown when done (stops lrp-serve)\n  \
    --probe WHAT   no load: send one admin request (stats = lifetime\n                 \
    counters, metrics = live telemetry snapshot, ping) and\n                 \
    print the reply JSON to stdout\n\n\
    exit codes:\n  \
    0  load completed, durability contract held\n  \
    1  I/O error (dial or transport failure, json-out write)\n  \
    2  usage error (unknown flag, missing or invalid value)\n  \
    4  durability violation: a durably-acked write read back wrong, or\n       \
    the crash report counted lost acked keys / failed validation";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let addr: Option<String> = cli.opt("addr");
    let uds: Option<String> = cli.opt("uds");
    let conns = cli.opt_parse("conns").unwrap_or(4usize);
    let requests = cli.opt_parse("requests").unwrap_or(2000u64);
    let window = cli.opt_parse("window").unwrap_or(16usize);
    let dist_name = cli.opt("dist").unwrap_or_else(|| "uniform".into());
    let theta: Option<f64> = cli.opt_parse("theta");
    let key_range = cli.opt_parse("key-range").unwrap_or(256u64);
    let read_pct = cli.opt_parse("read-pct").unwrap_or(20u8);
    let qps = cli.opt_parse("qps").unwrap_or(0u64);
    let seed = cli.opt_parse("seed").unwrap_or(1u64);
    let shed_retries = cli.opt_parse("shed-retries").unwrap_or(1u32);
    let crash_at: Option<u64> = cli.opt_parse("crash-at");
    let crash_shard = cli.opt_parse("crash-shard").unwrap_or(0u32);
    let no_verify = cli.flag("no-verify");
    let shutdown = cli.flag("shutdown");
    let json_out: Option<String> = cli.opt("json-out");
    let probe_what: Option<String> = cli.opt("probe");
    cli.positionals(0, 0);

    let target = match (addr, uds) {
        (Some(_), Some(_)) => cli.fail("--addr and --uds are mutually exclusive"),
        (Some(a), None) => Bind::Tcp(a),
        #[cfg(unix)]
        (None, Some(path)) => Bind::Uds(path.into()),
        #[cfg(not(unix))]
        (None, Some(_)) => cli.fail("--uds is only available on unix"),
        (None, None) => cli.fail("one of --addr or --uds is required"),
    };
    let mut key_dist: KeyDist = dist_name.parse().unwrap_or_else(|e: String| cli.fail(e));
    if let Some(theta) = theta {
        match &mut key_dist {
            KeyDist::Zipfian { theta: t } => *t = theta,
            KeyDist::Uniform => cli.fail("--theta only applies to --dist zipfian"),
        }
    }
    if read_pct > 100 {
        cli.fail("--read-pct must be in [0, 100]");
    }
    if conns == 0 {
        cli.fail("--conns must be at least 1");
    }

    if let Some(what) = &probe_what {
        if !matches!(what.as_str(), "stats" | "metrics" | "ping") {
            cli.fail(format!("unknown probe {what:?} (want stats|metrics|ping)"));
        }
        match probe(&target, what) {
            Ok(json) => {
                println!("{json}");
                return;
            }
            Err(e) => {
                eprintln!("probe failed: {e}");
                std::process::exit(1);
            }
        }
    }

    let mut spec = LoadSpec::new(target);
    spec.conns = conns;
    spec.requests = requests;
    spec.window = window.max(1);
    spec.key_dist = key_dist;
    spec.key_range = key_range;
    spec.read_pct = read_pct;
    spec.target_qps = qps;
    spec.seed = seed;
    spec.shed_retries = shed_retries;
    spec.crash_at = crash_at;
    spec.crash_shard = crash_shard;
    spec.verify = !no_verify;
    spec.shutdown = shutdown;

    let summary = run_load(&spec).unwrap_or_else(|e| {
        eprintln!("load failed: {e}");
        std::process::exit(1);
    });
    let doc = summary.to_json().to_pretty();
    println!("{doc}");
    if let Some(path) = &json_out {
        std::fs::write(path, &doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote load summary to {path}");
    }
    if summary.errors > 0 {
        eprintln!("{} transport error(s) during load", summary.errors);
        std::process::exit(1);
    }
    if !summary.durability_ok() {
        eprintln!(
            "durability violation: verify_violations={} crash_lost_acked={:?} crash_consistent={:?}",
            summary.verify_violations, summary.crash_lost_acked, summary.crash_consistent
        );
        std::process::exit(4);
    }
}
