//! `lrp-profile` — the persist-blame profiler.
//!
//! ```text
//! lrp-profile run  --structure queue --mech lrp --ret-capacity 4
//! lrp-profile diff --structure queue --a lrp --b bb
//! lrp-profile critpath --structure queue --mech lrp
//! lrp-profile critpath-diff --structure queue --a lrp --b bb
//! lrp-profile gate --baseline baselines/BENCH_baseline.json \
//!                  --current BENCH_campaign.json --ops-only
//! ```
//!
//! `run` replays one workload with blame attribution and prints the
//! per-`(site, cause)` tables; `--folded-out` additionally writes
//! folded stacks (`site;kind;cause cycles`) for flame-graph tools.
//! `diff` profiles the same workload under two mechanisms and ranks
//! the attribution deltas. `critpath` traces the durability critical
//! path and prints the per-segment latency breakdown (`--folded-out`
//! writes folded chain shapes); `critpath-diff` compares two
//! mechanisms' segment shares. `gate` compares two
//! `BENCH_campaign.json` summaries and fails (exit 1) on
//! out-of-tolerance regressions.

use lrp_bench::cli::Cli;
use lrp_bench::profile::{self, GateTolerances, ProfileSpec};
use lrp_lfds::Structure;
use lrp_obs::Json;
use lrp_sim::{Mechanism, NvmMode};

const USAGE: &str = "usage:\n  \
    lrp-profile run  --structure <linkedlist|hashmap|bstree|skiplist|queue>\n                   \
    [--mech M] [--mode cached|uncached] [--threads N] [--ops N]\n                   \
    [--size N] [--seed N] [--ret-capacity N] [--top N] [--folded-out FILE]\n  \
    lrp-profile diff --structure <name> [--a MECH] [--b MECH]\n                   \
    [--mode M] [--threads N] [--ops N] [--size N] [--seed N]\n                   \
    [--ret-capacity N] [--top N]\n  \
    lrp-profile critpath --structure <name> [--mech M] [--mode M]\n                   \
    [--threads N] [--ops N] [--size N] [--seed N]\n                   \
    [--ret-capacity N] [--top N] [--folded-out FILE]\n  \
    lrp-profile critpath-diff --structure <name> [--a MECH] [--b MECH]\n                   \
    [--mode M] [--threads N] [--ops N] [--size N] [--seed N]\n                   \
    [--ret-capacity N]\n  \
    lrp-profile gate --baseline FILE --current FILE [--tol-ops F]\n                   \
    [--tol-stall F] [--tol-latency F] [--ops-only] [--json-out FILE]\n\n\
    defaults:\n  \
    --mech lrp   --mode cached   --threads 4   --ops 25   --size 64   --seed 1\n  \
    --a lrp      --b bb          --top 20\n  \
    --tol-ops 0.20     maximum fractional ops/cycle drop\n  \
    --tol-stall 0.05   maximum absolute stall-share increase\n  \
    --tol-latency 0.50 maximum fractional latency p50/p99 increase\n  \
    --ops-only         gate on ops/cycle only (the CI posture)\n  \
    --ret-capacity N   override the RET size (watermark pinned to N)\n\n\
    exit codes:\n  \
    0  success (gate: every check within tolerance)\n  \
    1  gate regression detected, or a file read/write/parse error\n  \
    2  usage error (unknown flag or command, missing or invalid value)\n  \
    3  critpath conservation violation (C1/C2 audit failed)";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let structure: Option<Structure> = cli.opt_parse("structure");
    let mech = cli.opt("mech").unwrap_or_else(|| "lrp".to_string());
    let a = cli.opt("a").unwrap_or_else(|| "lrp".to_string());
    let b = cli.opt("b").unwrap_or_else(|| "bb".to_string());
    let mode_name = cli.opt("mode").unwrap_or_else(|| "cached".to_string());
    let threads = cli.opt_parse("threads").unwrap_or(4u16);
    let ops = cli.opt_parse("ops").unwrap_or(25usize);
    let size = cli.opt_parse("size").unwrap_or(64usize);
    let seed = cli.opt_parse("seed").unwrap_or(1u64);
    let ret_capacity: Option<usize> = cli.opt_parse("ret-capacity");
    let top = cli.opt_parse("top").unwrap_or(20usize);
    let folded_out: Option<String> = cli.opt("folded-out");
    let baseline: Option<String> = cli.opt("baseline");
    let current: Option<String> = cli.opt("current");
    let tol = GateTolerances {
        ops_frac: cli.opt_parse("tol-ops").unwrap_or(0.20),
        stall_share: cli.opt_parse("tol-stall").unwrap_or(0.05),
        latency_frac: cli.opt_parse("tol-latency").unwrap_or(0.50),
        ops_only: cli.flag("ops-only"),
    };
    let json_out: Option<String> = cli.opt("json-out");
    let pos = cli.positionals(1, 1);

    let mode = NvmMode::from_name(&mode_name)
        .unwrap_or_else(|| cli.fail(format!("unknown NVM mode {mode_name:?}")));
    let spec_for = |mech_name: &str, cli: &Cli| -> ProfileSpec {
        let Some(structure) = structure else {
            cli.fail("this command needs --structure")
        };
        let mechanism = Mechanism::from_name(mech_name)
            .unwrap_or_else(|| cli.fail(format!("unknown mechanism {mech_name:?}")));
        ProfileSpec {
            structure,
            mechanism,
            mode,
            threads,
            ops_per_thread: ops,
            initial_size: size,
            seed,
            ret_capacity,
        }
    };

    match pos[0].as_str() {
        "run" => {
            let spec = spec_for(&mech, &cli);
            let run = profile::run(&spec);
            print!("{}", profile::render_run(&spec, &run, top));
            if let Some(out) = &folded_out {
                write_out(out, &run.blame.folded());
                eprintln!("wrote folded stacks to {out}");
            }
        }
        "diff" => {
            let spec_a = spec_for(&a, &cli);
            let spec_b = spec_for(&b, &cli);
            let (_, _, rows) = profile::run_diff(&spec_a, &spec_b);
            print!("{}", profile::render_diff(&spec_a, &spec_b, &rows, top));
        }
        "critpath" => {
            let spec = spec_for(&mech, &cli);
            let run = profile::run(&spec);
            print!("{}", profile::render_critpath(&spec, &run, top));
            if let Some(out) = &folded_out {
                write_out(out, &run.crit.folded_stacks());
                eprintln!("wrote folded chains to {out}");
            }
            if run.crit.audit.total_violations() > 0 {
                eprintln!(
                    "critpath conservation violated: {} of {} checks",
                    run.crit.audit.total_violations(),
                    run.crit.audit.total_checks()
                );
                std::process::exit(3);
            }
        }
        "critpath-diff" => {
            let spec_a = spec_for(&a, &cli);
            let spec_b = spec_for(&b, &cli);
            let (run_a, run_b) = (profile::run(&spec_a), profile::run(&spec_b));
            let rows = profile::crit_diff(&run_a.crit, &run_b.crit);
            print!("{}", profile::render_crit_diff(&spec_a, &spec_b, &rows));
            let bad = run_a.crit.audit.total_violations() + run_b.crit.audit.total_violations();
            if bad > 0 {
                eprintln!("critpath conservation violated: {bad} check(s)");
                std::process::exit(3);
            }
        }
        "gate" => {
            let (Some(base_path), Some(cur_path)) = (&baseline, &current) else {
                cli.fail("gate needs --baseline and --current")
            };
            let base = load_summary(base_path);
            let cur = load_summary(cur_path);
            let verdict = profile::gate(&base, &cur, &tol).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            if let Some(out) = &json_out {
                write_out(out, &profile::verdict_json(&verdict, &tol).to_pretty());
                eprintln!("wrote gate verdict to {out}");
            }
            print!("{}", profile::render_gate(&verdict));
            if !verdict.pass() {
                std::process::exit(1);
            }
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

fn load_summary(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn write_out(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}
