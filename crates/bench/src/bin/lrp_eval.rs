//! `lrp-eval` — regenerates the paper's evaluation artifacts as text
//! tables.
//!
//! ```text
//! lrp-eval <table1|fig1|fig2|fig5|fig6|fig7|fig8|sens|claims|all> [--quick]
//!          [--threads N] [--ops N] [--seed N]
//! ```

use lrp_bench::cli::Cli;
use lrp_bench::experiments::{
    claims, fig2_conflicts, fig6, fig8, fig_norm_exec, size_sensitivity, EvalParams,
};
use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode, SimConfig};

const USAGE: &str = "usage: lrp-eval <table1|fig1|fig2|fig5|fig6|fig7|fig8|sens|claims|all> \
                     [--quick] [--threads N] [--ops N] [--seed N]";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let mut params = if cli.flag("quick") {
        EvalParams::quick()
    } else {
        EvalParams::full()
    };
    if let Some(threads) = cli.opt_parse("threads") {
        params.threads = threads;
    }
    if let Some(ops) = cli.opt_parse("ops") {
        params.ops_per_thread = ops;
    }
    if let Some(seed) = cli.opt_parse("seed") {
        params.seed = seed;
    }
    let cmd = cli.positionals(1, 1).remove(0);

    match cmd.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig5" => norm_exec(
            &params,
            NvmMode::Cached,
            "Figure 5: normalized execution time (cached mode, lower is better)",
        ),
        "fig6" => run_fig6(&params),
        "fig7" => norm_exec(
            &params,
            NvmMode::Uncached,
            "Figure 7: normalized execution time (uncached mode, lower is better)",
        ),
        "fig8" => run_fig8(&params),
        "sens" => sens(&params),
        "claims" => run_claims(&params),
        "all" => {
            table1();
            fig1();
            fig2();
            norm_exec(
                &params,
                NvmMode::Cached,
                "Figure 5: normalized execution time (cached mode)",
            );
            run_fig6(&params);
            norm_exec(
                &params,
                NvmMode::Uncached,
                "Figure 7: normalized execution time (uncached mode)",
            );
            run_fig8(&params);
            sens(&params);
            run_claims(&params);
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

fn table1() {
    println!("== Table 1: simulator configuration ==");
    println!("{}", SimConfig::new(Mechanism::Lrp).table1());
    println!();
}

fn fig1() {
    println!("== Figure 1: ARP cannot recover a log-free linked-list insert ==");
    let f = lrp_recovery::counterexample::figure1();
    println!(
        "ARP (adversarial, ARP-rule-legal persist order): {}/{} crash points UNRECOVERABLE",
        f.arp_failures, f.arp_points
    );
    println!(
        "LRP (simulated hardware run):                    0/{} crash points unrecoverable",
        f.lrp_points
    );
    println!();
}

fn fig2() {
    println!("== Figure 2: one-sided barriers eliminate conflicts ==");
    let (bb_crit, lrp_crit, bb_cycles, lrp_cycles) = fig2_conflicts();
    println!("cross-epoch same-line write micro-loop (64 iterations):");
    println!("  BB : {bb_crit} critical-path flushes, {bb_cycles} cycles");
    println!("  LRP: {lrp_crit} critical-path flushes, {lrp_cycles} cycles");
    println!();
}

fn norm_exec(params: &EvalParams, mode: NvmMode, title: &str) {
    println!("== {title} ==");
    println!("{:<12} {:>7} {:>7} {:>7}", "workload", "SB", "BB", "LRP");
    for r in fig_norm_exec(params, mode) {
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3}",
            r.workload.name(),
            r.normalized[&Mechanism::Sb],
            r.normalized[&Mechanism::Bb],
            r.normalized[&Mechanism::Lrp],
        );
    }
    println!();
}

fn run_fig6(params: &EvalParams) {
    println!("== Figure 6: % of write-backs in the critical path (lower is better) ==");
    println!("{:<12} {:>7} {:>7}", "workload", "BB", "LRP");
    for r in fig6(params) {
        println!(
            "{:<12} {:>6.1}% {:>6.1}%",
            r.workload.name(),
            r.bb_pct,
            r.lrp_pct
        );
    }
    println!();
}

fn run_fig8(params: &EvalParams) {
    println!("== Figure 8: persistency overhead (%) vs worker threads ==");
    for r in fig8(params) {
        println!("({})", r.workload.name());
        println!("{:>8} {:>8} {:>8}", "threads", "BB", "LRP");
        for (n, bb, lrp) in r.points {
            println!("{n:>8} {bb:>7.1}% {lrp:>7.1}%");
        }
    }
    println!();
}

fn sens(params: &EvalParams) {
    println!("== §6.4 size sensitivity (hashmap): overhead (%) vs initial size ==");
    println!("{:>10} {:>8} {:>8}", "size", "BB", "LRP");
    for (size, bb, lrp) in size_sensitivity(params, Structure::HashMap) {
        println!("{size:>10} {bb:>7.1}% {lrp:>7.1}%");
    }
    println!();
}

fn run_claims(params: &EvalParams) {
    println!("== Headline claims: paper vs measured ==");
    let rows = fig_norm_exec(params, NvmMode::Cached);
    let c = claims(&rows);
    let avg = |v: &[(Structure, f64)]| v.iter().map(|(_, x)| x).sum::<f64>() / v.len() as f64;
    let range = |v: &[(Structure, f64)]| {
        let lo = v.iter().map(|(_, x)| *x).fold(f64::INFINITY, f64::min);
        let hi = v.iter().map(|(_, x)| *x).fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (lo, hi) = range(&c.bb_over_sb);
    println!(
        "BB improvement over SB : paper 24%-68% (avg 52%) | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.bb_over_sb)
    );
    let (lo, hi) = range(&c.lrp_over_bb);
    println!(
        "LRP improvement over BB: paper 14%-44% (avg 33%) | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.lrp_over_bb)
    );
    let (lo, hi) = range(&c.lrp_over_nop);
    println!(
        "LRP overhead over NOP  : paper 2%-8% (avg 6%)    | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.lrp_over_nop)
    );
    println!();
}
