//! `lrp-eval` — regenerates the paper's evaluation artifacts as text
//! tables, or runs one instrumented structure×mechanism simulation.
//!
//! ```text
//! lrp-eval <table1|fig1|fig2|fig5|fig6|fig7|fig8|sens|claims|all> [--quick]
//!          [--threads N] [--ops N] [--seed N]
//! lrp-eval --structure <name> [--mech M] [--mode cached|uncached]
//!          [--trace-out FILE] [--metrics-out FILE] [--sample-every N]
//!          [--quick] [--threads N] [--ops N] [--seed N]
//! ```

use lrp_bench::cli::Cli;
use lrp_bench::experiments::{
    claims, fig2_conflicts, fig6, fig8, fig_norm_exec, size_sensitivity, EvalParams,
};
use lrp_lfds::Structure;
use lrp_obs::{chrome, metrics, RecorderConfig};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

const USAGE: &str = "usage:\n  \
    lrp-eval <table1|fig1|fig2|fig5|fig6|fig7|fig8|sens|claims|all> \
    [--quick] [--threads N] [--ops N] [--seed N]\n  \
    lrp-eval --structure <linkedlist|hashmap|bstree|skiplist|queue> \
    [--mech nop|sb|bb|lrp|dpo] [--mode cached|uncached] \
    [--trace-out FILE] [--metrics-out FILE] [--sample-every N] \
    [--quick] [--threads N] [--ops N] [--seed N]\n\n\
    defaults:\n  \
    --mech lrp     --mode cached\n  \
    --threads 32   --ops 30   --seed 42   (paper scale)\n  \
    --quick              4 threads, 12 ops/thread, small structures\n  \
    --trace-out FILE     write a Chrome trace-event JSON timeline\n  \
    --metrics-out FILE   write JSONL metrics (stats, histograms, blame, audit)\n  \
    --sample-every N     record time-series samples every N cycles (0 = off)\n  \
    --no-critpath        disable durability critical-path tracing\n\n\
    exit codes:\n  \
    0  success\n  \
    1  output file write error\n  \
    2  usage error (unknown flag or command, missing or invalid value)\n  \
    3  invariant audit violations observed (I1-I4, critpath C1-C2)";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let mut params = if cli.flag("quick") {
        EvalParams::quick()
    } else {
        EvalParams::full()
    };
    if let Some(threads) = cli.opt_parse("threads") {
        params.threads = threads;
    }
    if let Some(ops) = cli.opt_parse("ops") {
        params.ops_per_thread = ops;
    }
    if let Some(seed) = cli.opt_parse("seed") {
        params.seed = seed;
    }
    let structure: Option<Structure> = cli.opt_parse("structure");
    let no_critpath = cli.flag("no-critpath");
    if let Some(structure) = structure {
        let mech: Mechanism = cli.opt_parse("mech").unwrap_or(Mechanism::Lrp);
        let mode: NvmMode = cli.opt_parse("mode").unwrap_or(NvmMode::Cached);
        let trace_out: Option<String> = cli.opt("trace-out");
        let metrics_out: Option<String> = cli.opt("metrics-out");
        let sample_every: u64 = cli.opt_parse("sample-every").unwrap_or(0);
        cli.positionals(0, 0);
        run_one(
            &params,
            structure,
            mech,
            mode,
            trace_out,
            metrics_out,
            sample_every,
            !no_critpath,
        );
        return;
    }
    let cmd = cli.positionals(1, 1).remove(0);

    match cmd.as_str() {
        "table1" => table1(),
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig5" => norm_exec(
            &params,
            NvmMode::Cached,
            "Figure 5: normalized execution time (cached mode, lower is better)",
        ),
        "fig6" => run_fig6(&params),
        "fig7" => norm_exec(
            &params,
            NvmMode::Uncached,
            "Figure 7: normalized execution time (uncached mode, lower is better)",
        ),
        "fig8" => run_fig8(&params),
        "sens" => sens(&params),
        "claims" => run_claims(&params),
        "all" => {
            table1();
            fig1();
            fig2();
            norm_exec(
                &params,
                NvmMode::Cached,
                "Figure 5: normalized execution time (cached mode)",
            );
            run_fig6(&params);
            norm_exec(
                &params,
                NvmMode::Uncached,
                "Figure 7: normalized execution time (uncached mode)",
            );
            run_fig8(&params);
            sens(&params);
            run_claims(&params);
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

/// Runs one structure×mechanism simulation with the observability
/// recorder attached and writes the requested exports.
#[allow(clippy::too_many_arguments)]
fn run_one(
    params: &EvalParams,
    structure: Structure,
    mech: Mechanism,
    mode: NvmMode,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    sample_every: u64,
    critpath: bool,
) {
    let trace = params.trace(structure, params.threads);
    let cfg = SimConfig::new(mech).nvm_mode(mode);
    let rec = RecorderConfig {
        sample_every,
        critpath,
        ..RecorderConfig::default()
    };
    let r = Sim::new(cfg, &trace).with_recorder(rec).run();
    print!(
        "{}",
        lrp_sim::report::render(&format!("{} under {mech}", structure.name()), &r)
    );
    let obs = r.obs.as_ref().expect("recorder was attached");
    println!("-- observability --");
    println!(
        "events captured        {:>12} (dropped {})",
        obs.events.len(),
        obs.dropped
    );
    let deduped = metrics::warn_ring_drops("event", obs.dropped);
    if deduped > 0 {
        eprintln!("  ({deduped} further drop warnings deduplicated)");
    }
    println!("sample intervals       {:>12}", obs.intervals.len());
    println!("ret high water         {:>12}", obs.ret_high_water);
    for (name, hist) in metrics::hist_rows(obs) {
        if hist.is_empty() {
            println!("  {name:<20} (no samples)");
        } else {
            println!(
                "  {:<20} n={} mean={:.1} p50={} p99={} max={}",
                name,
                hist.count,
                hist.mean(),
                hist.percentile(0.5),
                hist.percentile(0.99),
                hist.max()
            );
        }
    }
    println!("-- invariant audit (I1-I4) --");
    for (name, c) in obs.audit.rows() {
        println!(
            "  {:<20} checks={:<8} violations={}",
            name, c.checks, c.violations
        );
    }
    let mut crit_violations = 0;
    if let Some(crit) = &obs.crit {
        println!("-- durability critical path --");
        println!(
            "  paths traced         {:>12} ({} cycles, longest {})",
            crit.paths(),
            crit.total_cycles(),
            crit.max_path
        );
        let shares = crit.shares();
        for kind in lrp_obs::CritSegKind::ALL {
            let k = kind.idx();
            if crit.seg_counts[k] > 0 {
                println!(
                    "  {:<20} n={:<6} cycles={:<10} share={:.1}%",
                    kind.name(),
                    crit.seg_counts[k],
                    crit.seg_cycles[k],
                    shares[k] * 100.0
                );
            }
        }
        for (name, c) in crit.audit.rows() {
            println!(
                "  {:<20} checks={:<8} violations={}",
                name, c.checks, c.violations
            );
        }
        crit_violations = crit.audit.total_violations();
    }
    if let Some(path) = trace_out {
        write_or_die(&path, &chrome::export(obs));
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = metrics_out {
        write_or_die(&path, &metrics::export_jsonl(obs, &r.stats));
        eprintln!("wrote JSONL metrics to {path}");
    }
    if obs.audit.total_violations() + crit_violations > 0 {
        eprintln!(
            "WARNING: {} invariant violations observed ({} I1-I4, {} critpath C1-C2)",
            obs.audit.total_violations() + crit_violations,
            obs.audit.total_violations(),
            crit_violations
        );
        std::process::exit(3);
    }
}

fn write_or_die(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}

fn table1() {
    println!("== Table 1: simulator configuration ==");
    println!("{}", SimConfig::new(Mechanism::Lrp).table1());
    println!();
}

fn fig1() {
    println!("== Figure 1: ARP cannot recover a log-free linked-list insert ==");
    let f = lrp_recovery::counterexample::figure1();
    println!(
        "ARP (adversarial, ARP-rule-legal persist order): {}/{} crash points UNRECOVERABLE",
        f.arp_failures, f.arp_points
    );
    println!(
        "LRP (simulated hardware run):                    0/{} crash points unrecoverable",
        f.lrp_points
    );
    println!();
}

fn fig2() {
    println!("== Figure 2: one-sided barriers eliminate conflicts ==");
    let (bb_crit, lrp_crit, bb_cycles, lrp_cycles) = fig2_conflicts();
    println!("cross-epoch same-line write micro-loop (64 iterations):");
    println!("  BB : {bb_crit} critical-path flushes, {bb_cycles} cycles");
    println!("  LRP: {lrp_crit} critical-path flushes, {lrp_cycles} cycles");
    println!();
}

fn norm_exec(params: &EvalParams, mode: NvmMode, title: &str) {
    println!("== {title} ==");
    println!("{:<12} {:>7} {:>7} {:>7}", "workload", "SB", "BB", "LRP");
    for r in fig_norm_exec(params, mode) {
        println!(
            "{:<12} {:>7.3} {:>7.3} {:>7.3}",
            r.workload.name(),
            r.normalized[&Mechanism::Sb],
            r.normalized[&Mechanism::Bb],
            r.normalized[&Mechanism::Lrp],
        );
    }
    println!();
}

fn run_fig6(params: &EvalParams) {
    println!("== Figure 6: % of write-backs in the critical path (lower is better) ==");
    println!("{:<12} {:>7} {:>7}", "workload", "BB", "LRP");
    for r in fig6(params) {
        println!(
            "{:<12} {:>6.1}% {:>6.1}%",
            r.workload.name(),
            r.bb_pct,
            r.lrp_pct
        );
    }
    println!();
}

fn run_fig8(params: &EvalParams) {
    println!("== Figure 8: persistency overhead (%) vs worker threads ==");
    for r in fig8(params) {
        println!("({})", r.workload.name());
        println!("{:>8} {:>8} {:>8}", "threads", "BB", "LRP");
        for (n, bb, lrp) in r.points {
            println!("{n:>8} {bb:>7.1}% {lrp:>7.1}%");
        }
    }
    println!();
}

fn sens(params: &EvalParams) {
    println!("== §6.4 size sensitivity (hashmap): overhead (%) vs initial size ==");
    println!("{:>10} {:>8} {:>8}", "size", "BB", "LRP");
    for (size, bb, lrp) in size_sensitivity(params, Structure::HashMap) {
        println!("{size:>10} {bb:>7.1}% {lrp:>7.1}%");
    }
    println!();
}

fn run_claims(params: &EvalParams) {
    println!("== Headline claims: paper vs measured ==");
    let rows = fig_norm_exec(params, NvmMode::Cached);
    let c = claims(&rows);
    let avg = |v: &[(Structure, f64)]| v.iter().map(|(_, x)| x).sum::<f64>() / v.len() as f64;
    let range = |v: &[(Structure, f64)]| {
        let lo = v.iter().map(|(_, x)| *x).fold(f64::INFINITY, f64::min);
        let hi = v.iter().map(|(_, x)| *x).fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    let (lo, hi) = range(&c.bb_over_sb);
    println!(
        "BB improvement over SB : paper 24%-68% (avg 52%) | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.bb_over_sb)
    );
    let (lo, hi) = range(&c.lrp_over_bb);
    println!(
        "LRP improvement over BB: paper 14%-44% (avg 33%) | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.lrp_over_bb)
    );
    let (lo, hi) = range(&c.lrp_over_nop);
    println!(
        "LRP overhead over NOP  : paper 2%-8% (avg 6%)    | measured {lo:.0}%-{hi:.0}% (avg {:.0}%)",
        avg(&c.lrp_over_nop)
    );
    println!();
}
