//! `lrp-campaign` — run a parallel, fault-tolerant evaluation campaign
//! over the (structure × mechanism × NVM mode × threads × seed) matrix
//! and roll the results up into machine-readable reports.
//!
//! ```text
//! lrp-campaign run [--smoke] [--workers N] [--timeout-secs N] [--resume]
//!                  [--structures a,b] [--mechanisms a,b] [--modes a,b]
//!                  [--threads a,b] [--seeds a,b] [--size N] [--ops N]
//!                  [--crash-samples N] [--out FILE] [--bench FILE]
//!                  [--no-bench] [--inject-panic CELL] [--quiet]
//! lrp-campaign matrix [--smoke] [...same matrix flags]
//! ```
//!
//! `run` streams one JSONL line per completed cell to `--out` (default
//! `campaign_results.jsonl`) and writes the aggregate summary to
//! `--bench` (default `BENCH_campaign.json`) plus a table on stdout.
//! `--resume` continues an interrupted campaign from the manifest:
//! `ok` cells are skipped, `failed`/`timed_out` cells run again, and a
//! manifest from a different matrix is refused. `matrix` prints the
//! cells a run would execute, without executing anything.

use lrp_bench::cli::Cli;
use lrp_campaign::{
    render_table, run_to_files, write_bench_json, CampaignConfig, CellOutcome, MatrixSpec,
};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage:\n  \
    lrp-campaign run [--smoke|--paper] [--workers N] [--timeout-secs N]\n                   \
    [--resume] [--structures a,b] [--mechanisms a,b] [--modes a,b]\n                   \
    [--threads a,b] [--seeds a,b] [--size N] [--ops N]\n                   \
    [--crash-samples N] [--out FILE] [--bench FILE]\n                   \
    [--no-bench] [--inject-panic CELL] [--quiet]\n  \
    lrp-campaign matrix [--smoke|--paper] [...matrix flags]\n\n\
    axes: structures linkedlist,hashmap,bstree,skiplist,queue\n          \
    mechanisms nop,sb,bb,lrp · modes cached,uncached\n\n\
    --paper runs the paper-scale tier: 64K-entry structures on the full\n    \
    64-core mesh (hashmap,bstree,skiplist x all four mechanisms)";

fn matrix_from(cli: &mut Cli) -> MatrixSpec {
    let mut m = match (cli.flag("paper"), cli.flag("smoke")) {
        (true, true) => cli.fail("--paper and --smoke are mutually exclusive"),
        (true, false) => MatrixSpec::paper(),
        (false, true) => MatrixSpec::smoke(),
        (false, false) => MatrixSpec::default_campaign(),
    };
    if let Some(v) = cli.opt_list("structures") {
        m.structures = v;
    }
    if let Some(v) = cli.opt_list("mechanisms") {
        m.mechanisms = v;
    }
    if let Some(v) = cli.opt_list("modes") {
        m.modes = v;
    }
    if let Some(v) = cli.opt_list("threads") {
        m.threads = v;
    }
    if let Some(v) = cli.opt_list("seeds") {
        m.seeds = v;
    }
    if let Some(v) = cli.opt_parse("size") {
        m.initial_size = v;
    }
    if let Some(v) = cli.opt_parse("ops") {
        m.ops_per_thread = v;
    }
    if let Some(v) = cli.opt_parse("crash-samples") {
        m.crash_samples = v;
    }
    m
}

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let matrix = matrix_from(&mut cli);

    let mut cfg = CampaignConfig::default();
    if let Some(w) = cli.opt_parse::<usize>("workers") {
        if w == 0 {
            cli.fail("--workers must be at least 1");
        }
        cfg.workers = w;
    }
    if let Some(t) = cli.opt_parse::<u64>("timeout-secs") {
        cfg.timeout = Duration::from_secs(t);
    }
    cfg.inject_panic = cli.opt("inject-panic");
    let resume = cli.flag("resume");
    let quiet = cli.flag("quiet");
    let out: PathBuf = cli
        .opt("out")
        .unwrap_or_else(|| "campaign_results.jsonl".to_string())
        .into();
    let no_bench = cli.flag("no-bench");
    let bench: PathBuf = cli
        .opt("bench")
        .unwrap_or_else(|| "BENCH_campaign.json".to_string())
        .into();

    let cmd = cli.positionals(1, 1).remove(0);
    match cmd.as_str() {
        "matrix" => {
            println!("{}", matrix.describe());
            println!(
                "fingerprint {} — {} cells:",
                matrix.fingerprint(),
                matrix.len()
            );
            for cell in matrix.cells() {
                println!("{:>5}  {}", cell.index, cell.id());
            }
        }
        "run" => {
            if matrix.is_empty() {
                cli.fail("the matrix has an empty axis; nothing to run");
            }
            let total = matrix.len();
            let outcome = run_to_files(&matrix, &cfg, &out, resume, |record| {
                if !quiet {
                    eprintln!(
                        "[{:>4}/{total}] {:<40} {}",
                        record.spec.index + 1,
                        record.spec.id(),
                        record.outcome.kind()
                    );
                }
            })
            .unwrap_or_else(|e| {
                eprintln!("campaign failed: {e}");
                std::process::exit(1);
            });

            if outcome.resumed > 0 && !quiet {
                eprintln!(
                    "resumed {} completed cell(s) from {}",
                    outcome.resumed,
                    out.display()
                );
            }
            print!("{}", render_table(&matrix, &outcome.summary));
            for r in outcome.summary.incomplete(&outcome.records) {
                let why = match &r.outcome {
                    CellOutcome::Failed { error } => format!("failed: {error}"),
                    CellOutcome::TimedOut { timeout_secs } => {
                        format!("timed out after {timeout_secs}s")
                    }
                    CellOutcome::Ok(_) => unreachable!("incomplete() filters ok cells"),
                };
                eprintln!("cell {} ({}) {}", r.spec.index, r.spec.id(), why);
            }
            if !no_bench {
                write_bench_json(&bench, &matrix, &outcome.summary).unwrap_or_else(|e| {
                    eprintln!("cannot write {}: {e}", bench.display());
                    std::process::exit(1);
                });
                if !quiet {
                    eprintln!("wrote {} and {}", out.display(), bench.display());
                }
            }
            // A campaign that ran everything cleanly exits 0; one with
            // failed/timed-out cells (or RP/recovery findings) exits 3
            // so CI notices without losing the partial results.
            let unhealthy = outcome.records.iter().any(|r| match &r.outcome {
                CellOutcome::Ok(res) => !res.healthy(),
                _ => true,
            });
            if unhealthy {
                std::process::exit(3);
            }
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}
