//! `lrp-check` — the crash-cut model checker as a CLI gate.
//!
//! ```text
//! lrp-check cross-validate --seeds 2 --json-out CHECK.json
//! lrp-check cross-validate --mutate-reorder --cx-out cx.txt   # exits 3
//! lrp-check enumerate --structures linkedlist --mechs lrp,nop
//! ```
//!
//! `cross-validate` runs each (structure × mechanism × seed) cell's
//! bounded workload through the timing simulator and asserts the
//! recorded persist stamps respect the mechanism's discipline and that
//! every realized crash cut is durably linearizable after null
//! recovery. `enumerate` skips the simulator and walks the *whole*
//! admissible-cut lattice of each mechanism's discipline. Violations
//! exit 3 and render a minimized counterexample (written to `--cx-out`
//! for CI artifact upload). NOP promises nothing: its enumerated
//! violations are reported as counts, never as failures.

use lrp_bench::cli::Cli;
use lrp_check::{cross_validate, enumerate_check, generator_preds, mutate_reorder, CheckBound};
use lrp_check::{cross_validate_schedule, CrossReport};
use lrp_lfds::Structure;
use lrp_obs::Json;
use lrp_recovery::Counterexample;
use lrp_sim::{Mechanism, Sim, SimConfig};

const USAGE: &str = "usage:\n  \
    lrp-check cross-validate [--structures a,b,..] [--mechs a,b,..]\n                 \
    [--threads N] [--ops N] [--size N] [--seed N] [--seeds N]\n                 \
    [--max-states N] [--mutate-reorder] [--json-out FILE] [--cx-out FILE]\n  \
    lrp-check enumerate      [--structures a,b,..] [--mechs a,b,..]\n                 \
    [--threads N] [--ops N] [--size N] [--seed N] [--seeds N]\n                 \
    [--max-states N] [--json-out FILE] [--cx-out FILE]\n\n\
    defaults:\n  \
    all five structures x nop,sb,bb,lrp,dpo\n                 \
    (--threads 2 --ops 4 --size 8 --seed 3 --seeds 2 --max-states 20000)\n  \
    --structures LIST  comma-separated subset (linkedlist,hashmap,bstree,\n                     \
    skiplist,queue)\n  \
    --mechs LIST       comma-separated subset (nop,sb,bb,lrp,dpo); each is\n                     \
    checked against the persist discipline it promises\n  \
    --seed N           first workload seed\n  \
    --seeds N          consecutive seeds per cell\n  \
    --max-states N     budget for the enumerate cut-lattice walk\n  \
    --mutate-reorder   cross-validate: swap one persist pair across a\n                     \
    discipline edge and require the checker to reject it (exits 3 on\n                     \
    the expected rejection -- CI asserts this)\n  \
    --json-out FILE    write the per-cell report as JSON\n  \
    --cx-out FILE      write the first counterexample for artifact upload\n\n\
    exit codes:\n  \
    0  every cell admissible and durably linearizable\n  \
    1  file write error, or a --mutate-reorder mutation went undetected\n  \
    2  usage error (unknown flag or command, missing or invalid value)\n  \
    3  violation found (counterexample on stdout, and --cx-out if given)";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let structures: Vec<Structure> = cli
        .opt_list("structures")
        .unwrap_or_else(|| Structure::ALL.to_vec());
    let mechs: Vec<Mechanism> = cli
        .opt_list("mechs")
        .unwrap_or_else(|| Mechanism::EXTENDED.to_vec());
    let mut bound = CheckBound::default();
    if let Some(v) = cli.opt_parse("threads") {
        bound.threads = v;
    }
    if let Some(v) = cli.opt_parse("ops") {
        bound.ops_per_thread = v;
    }
    if let Some(v) = cli.opt_parse("size") {
        bound.initial_size = v;
    }
    if let Some(v) = cli.opt_parse("seed") {
        bound.seed = v;
    }
    let seeds: u64 = cli.opt_parse("seeds").unwrap_or(2);
    if let Some(v) = cli.opt_parse("max-states") {
        bound.max_states = v;
    }
    let mutate = cli.flag("mutate-reorder");
    let json_out: Option<String> = cli.opt("json-out");
    let cx_out: Option<String> = cli.opt("cx-out");
    let pos = cli.positionals(1, 1);
    let first_seed = bound.seed;

    let mut cells: Vec<Json> = Vec::new();
    let fail = |cx: &Counterexample, cx_out: &Option<String>| -> ! {
        println!("{cx}");
        if let Some(path) = cx_out {
            write_out(path, &format!("{cx}\n"));
            eprintln!("wrote counterexample to {path}");
        }
        std::process::exit(3);
    };

    match pos[0].as_str() {
        "cross-validate" => {
            for s in &structures {
                for m in &mechs {
                    for seed in first_seed..first_seed + seeds {
                        bound.seed = seed;
                        if mutate {
                            match mutate_cell(*s, *m, &bound) {
                                // The expected outcome: report the first
                                // rejection and exit 3.
                                MutationOutcome::Caught(cx) => fail(&cx, &cx_out),
                                MutationOutcome::Missed => {
                                    eprintln!(
                                        "FATAL: {}/{} seed {seed}: mutated schedule \
                                         was accepted",
                                        m.name(),
                                        s.name()
                                    );
                                    std::process::exit(1);
                                }
                                MutationOutcome::NotApplicable => {}
                            }
                            continue;
                        }
                        match cross_validate(*s, *m, &bound) {
                            Ok(r) => {
                                eprintln!(
                                    "  {:<10} {:<4} seed {seed}: {} crash points, \
                                     {} edges, {} waived",
                                    s.name(),
                                    m.name(),
                                    r.crash_points,
                                    r.edges,
                                    r.waived
                                );
                                cells.push(cell_json(*s, *m, seed, &r));
                            }
                            Err(cx) => fail(&cx, &cx_out),
                        }
                    }
                }
            }
            if mutate {
                // Reachable only when no cell had a reorderable edge.
                eprintln!("FATAL: no cell produced a reorderable persist pair");
                std::process::exit(1);
            }
            report(
                "cross-validate",
                &bound,
                first_seed,
                seeds,
                cells,
                &json_out,
            );
        }
        "enumerate" => {
            for s in &structures {
                for m in &mechs {
                    let d = m.discipline();
                    for seed in first_seed..first_seed + seeds {
                        bound.seed = seed;
                        match enumerate_check(*s, d, &bound) {
                            Ok(r) => {
                                eprintln!(
                                    "  {:<10} {:<13} seed {seed}: {} cuts, {} states \
                                     checked, {} waived{}",
                                    s.name(),
                                    d.name(),
                                    r.stats.states,
                                    r.checked,
                                    r.waived,
                                    if r.stats.truncated {
                                        " (truncated)"
                                    } else {
                                        ""
                                    }
                                );
                                cells.push(Json::obj([
                                    ("structure", Json::Str(s.name().to_string())),
                                    ("mechanism", Json::Str(m.name().to_string())),
                                    ("discipline", Json::Str(d.name().to_string())),
                                    ("seed", Json::U64(seed)),
                                    ("cuts", Json::U64(r.stats.states as u64)),
                                    ("checked", Json::U64(r.checked as u64)),
                                    ("waived", Json::U64(r.waived as u64)),
                                    ("truncated", Json::Bool(r.stats.truncated)),
                                ]));
                            }
                            Err(cx) => fail(&cx, &cx_out),
                        }
                    }
                }
            }
            report("enumerate", &bound, first_seed, seeds, cells, &json_out);
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

/// Outcome of one `--mutate-reorder` cell.
enum MutationOutcome {
    /// The mutated schedule was rejected with this counterexample.
    Caught(Box<Counterexample>),
    /// The mutated schedule was accepted — a checker bug.
    Missed,
    /// No reorderable edge (NOP, or too few distinct stamps).
    NotApplicable,
}

fn mutate_cell(s: Structure, m: Mechanism, bound: &CheckBound) -> MutationOutcome {
    let d = m.discipline();
    if !d.guarantees_dl() {
        return MutationOutcome::NotApplicable;
    }
    let trace = bound.build_trace(s);
    let run = Sim::new(SimConfig::new(m), &trace).run();
    let preds = match generator_preds(&trace, d) {
        Ok(p) => p,
        Err(cx) => return MutationOutcome::Caught(cx),
    };
    let Some((mutated, _)) = mutate_reorder(&run.schedule, &preds) else {
        return MutationOutcome::NotApplicable;
    };
    let title = format!("{}/{} seed {} (mutated)", m.name(), s.name(), bound.seed);
    match cross_validate_schedule(s, d, &trace, &mutated, &title) {
        Ok(_) => MutationOutcome::Missed,
        Err(cx) => MutationOutcome::Caught(cx),
    }
}

fn cell_json(s: Structure, m: Mechanism, seed: u64, r: &CrossReport) -> Json {
    Json::obj([
        ("structure", Json::Str(s.name().to_string())),
        ("mechanism", Json::Str(m.name().to_string())),
        ("discipline", Json::Str(m.discipline().name().to_string())),
        ("seed", Json::U64(seed)),
        ("crash_points", Json::U64(r.crash_points as u64)),
        ("edges", Json::U64(r.edges as u64)),
        ("waived", Json::U64(r.waived as u64)),
    ])
}

fn report(
    command: &str,
    bound: &CheckBound,
    first_seed: u64,
    seeds: u64,
    cells: Vec<Json>,
    json_out: &Option<String>,
) {
    let ncells = cells.len();
    let j = Json::obj([
        ("command", Json::Str(command.to_string())),
        ("threads", Json::U64(bound.threads as u64)),
        ("ops_per_thread", Json::U64(bound.ops_per_thread as u64)),
        ("initial_size", Json::U64(bound.initial_size as u64)),
        ("first_seed", Json::U64(first_seed)),
        ("seeds", Json::U64(seeds)),
        ("max_states", Json::U64(bound.max_states as u64)),
        ("cells", Json::Arr(cells)),
    ]);
    if let Some(out) = json_out {
        write_out(out, &j.to_pretty());
        eprintln!("wrote report to {out}");
    }
    println!("{command}: {ncells} cells ok");
}

fn write_out(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}
