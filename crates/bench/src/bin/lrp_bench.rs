//! `lrp-bench` — host-side throughput benchmark and regression gate.
//!
//! ```text
//! lrp-bench host --smoke --json-out BENCH_host.json
//! lrp-bench gate --baseline baselines/BENCH_host.json \
//!                --current BENCH_host.json --max-regression 2.0
//! lrp-bench critpath-overhead --smoke
//! ```
//!
//! `host` replays a (structure × mechanism) matrix through the full
//! timing simulator and reports per-cell host throughput (simulated
//! cycles/sec, harness ops/sec, allocations/op); `gate` compares two
//! `BENCH_host.json` reports and fails (exit 1) when any cell's
//! ops/sec regressed by more than the allowed factor. `serve` boots an
//! in-process `lrp-serve` and measures end-to-end service throughput,
//! durable-ack latency, shed rate, tracing overhead, and crash-recovery
//! time (`BENCH_serve.json`); `serve-gate` compares two of those.
//! `critpath-overhead` replays the matrix bare and with the
//! critical-path recorder and fails (exit 1) if tracing moved
//! simulated ops/cycle beyond the budget (default 2%; the recorder is
//! timing-invisible, so the expected delta is zero).

use lrp_bench::alloc_count::CountingAlloc;
use lrp_bench::cli::Cli;
use lrp_bench::crashfuzz::{self, CrashFuzzSpec};
use lrp_bench::host::{self, HostSpec};
use lrp_bench::profile::render_gate;
use lrp_bench::serve_bench::{self, ServeBenchSpec};
use lrp_lfds::{KeyDist, Structure};
use lrp_obs::Json;
use lrp_sim::{Mechanism, NvmMode};

// The benchmark binary counts its own heap traffic so the report can
// include allocations/op — the metric the zero-alloc scan work gates on.
#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const USAGE: &str = "usage:\n  \
    lrp-bench host [--smoke] [--paper] [--jobs N] [--structures a,b,..]\n                 \
    [--mechs a,b,..] [--mode cached|uncached] [--threads N]\n                 \
    [--ops N] [--size N] [--seed N] [--samples N] [--json-out FILE]\n  \
    lrp-bench gate --baseline FILE --current FILE\n                 \
    [--max-regression F] [--json-out FILE]\n  \
    lrp-bench serve [--shards N] [--conns N] [--requests N] [--window N]\n                 \
    [--key-range N] [--read-pct N] [--seed N] [--json-out FILE]\n  \
    lrp-bench serve-gate --baseline FILE --current FILE\n                 \
    [--max-regression F] [--json-out FILE]\n  \
    lrp-bench critpath-overhead [--smoke] [--structures a,b,..]\n                 \
    [--mechs a,b,..] [--mode M] [--threads N] [--ops N] [--size N]\n                 \
    [--seed N] [--samples N] [--max-overhead F] [--json-out FILE]\n  \
    lrp-bench crash-fuzz [--smoke] [--trials N] [--mechs a,b,..]\n                 \
    [--dists uniform,zipfian] [--structures S] [--key-range N]\n                 \
    [--batch N] [--warm N] [--seed N] [--json-out FILE]\n\n\
    defaults:\n  \
    host runs the full matrix: all five structures x nop,sb,bb,lrp\n                 \
    (--threads 4 --ops 64 --size 128 --seed 1 --samples 5)\n  \
    --smoke            the CI matrix: hashmap x nop,lrp at t2, seconds total\n  \
    --paper            the paper-scale tier: 64K-entry structures on 64\n                     \
    simulated cores (hashmap,bstree,skiplist x all four\n                     \
    mechanisms; with --smoke, one structure x lrp,sb)\n  \
    --jobs N           build traces and probe cells on N worker threads;\n                     \
    timed samples still run solo so wall numbers stay fair\n  \
    --structures LIST  comma-separated subset (linkedlist,hashmap,bstree,\n                     \
    skiplist,queue)\n  \
    --mechs LIST       comma-separated subset (nop,sb,bb,lrp)\n  \
    --json-out FILE    write the report (host/serve) or verdict (gates)\n  \
    --max-regression F gate: fail a cell when current ops/sec falls below\n                     \
    baseline/F (default 2.0; serve-gate default 3.0 --\n                     \
    loopback service numbers are noisier than sim replays)\n  \
    serve runs four cells against an in-process server: uniform, zipfian,\n  \
    zipfian with span tracing (tracing overhead), zipfian with a mid-run\n  \
    crash-restart (client-observed recovery time)\n                 \
    (--shards 2 --conns 4 --requests 1200 --window 16)\n  \
    --max-overhead F   critpath-overhead: allowed fractional ops/cycle\n                     \
    delta from tracing (default 0.02)\n  \
    crash-fuzz crashes a shard at random persist points, then resolves\n  \
    every uncertain op through the recovered slot table and audits the\n  \
    exactly-once guarantees (no duplicate, no lost durably-acked write)\n                 \
    (default: lrp,sb x uniform,zipfian x 50 trials = 200 crashes;\n                 \
    --smoke runs 5 trials per cell; --trials N sets trials per cell)\n\n\
    exit codes:\n  \
    0  success (gates: no cell regressed beyond the allowed factor,\n     \
    critpath-overhead: tracing stayed within the budget)\n  \
    1  gate regression detected, or a file read/write/parse error\n  \
    2  usage error (unknown flag or command, missing or invalid value)\n  \
    4  crash-fuzz found an exactly-once violation";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let smoke = cli.flag("smoke");
    let paper = cli.flag("paper");
    let jobs: usize = cli.opt_parse("jobs").unwrap_or(1);
    let structures: Option<Vec<Structure>> = cli.opt_list("structures");
    let mechs: Option<Vec<Mechanism>> = cli.opt_list("mechs");
    let mode: Option<NvmMode> = cli.opt_parse("mode");
    let threads: Option<u16> = cli.opt_parse("threads");
    let ops: Option<usize> = cli.opt_parse("ops");
    let size: Option<usize> = cli.opt_parse("size");
    let seed: Option<u64> = cli.opt_parse("seed");
    let samples: Option<usize> = cli.opt_parse("samples");
    let shards: Option<usize> = cli.opt_parse("shards");
    let conns: Option<usize> = cli.opt_parse("conns");
    let requests: Option<u64> = cli.opt_parse("requests");
    let window: Option<usize> = cli.opt_parse("window");
    let key_range: Option<u64> = cli.opt_parse("key-range");
    let read_pct: Option<u8> = cli.opt_parse("read-pct");
    let baseline: Option<String> = cli.opt("baseline");
    let current: Option<String> = cli.opt("current");
    let max_regression: Option<f64> = cli.opt_parse("max-regression");
    let max_overhead: f64 = cli.opt_parse("max-overhead").unwrap_or(0.02);
    let trials: Option<u64> = cli.opt_parse("trials");
    let dists: Option<Vec<KeyDist>> = cli.opt_list("dists");
    let batch: Option<usize> = cli.opt_parse("batch");
    let warm: Option<usize> = cli.opt_parse("warm");
    let json_out: Option<String> = cli.opt("json-out");
    let pos = cli.positionals(1, 1);

    let fuzz_structures = structures.clone();
    let fuzz_mechs = mechs.clone();
    let host_spec = move || {
        let mut spec = match (paper, smoke) {
            (true, true) => HostSpec::paper_smoke(),
            (true, false) => HostSpec::paper(),
            (false, true) => HostSpec::smoke(),
            (false, false) => HostSpec::quick(),
        };
        if let Some(v) = structures {
            spec.structures = v;
        }
        if let Some(v) = mechs {
            spec.mechanisms = v;
        }
        if let Some(v) = mode {
            spec.mode = v;
        }
        if let Some(v) = threads {
            spec.threads = v;
        }
        if let Some(v) = ops {
            spec.ops_per_thread = v;
        }
        if let Some(v) = size {
            spec.initial_size = v;
        }
        if let Some(v) = seed {
            spec.seed = v;
        }
        if let Some(v) = samples {
            spec.samples = v;
        }
        spec
    };

    match pos[0].as_str() {
        "host" => {
            let spec = host_spec();
            let report = host::run_host_jobs(&spec, jobs, |cell| {
                eprintln!(
                    "  {:<24} {:>10.3} ms  ({:.0} ops/s)",
                    cell.key(),
                    cell.wall_ms_min,
                    cell.ops_per_sec()
                );
            });
            print!("{}", host::render_report(&report));
            if let Some(out) = &json_out {
                write_out(out, &host::report_json(&report).to_pretty());
                eprintln!("wrote host report to {out}");
            }
        }
        "gate" => {
            let max_regression = max_regression.unwrap_or(2.0);
            let (Some(base_path), Some(cur_path)) = (&baseline, &current) else {
                cli.fail("gate needs --baseline and --current")
            };
            let base = load_json(base_path);
            let cur = load_json(cur_path);
            let verdict = host::gate_host(&base, &cur, max_regression).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            if let Some(out) = &json_out {
                write_out(out, &host::gate_json(&verdict, max_regression).to_pretty());
                eprintln!("wrote gate verdict to {out}");
            }
            if let Ok(table) = host::render_gate_deltas(&base, &cur) {
                print!("{table}");
            }
            print!("{}", render_gate(&verdict));
            if !verdict.pass() {
                std::process::exit(1);
            }
        }
        "serve" => {
            let mut spec = ServeBenchSpec::smoke();
            if let Some(v) = shards {
                spec.shards = v.max(1);
            }
            if let Some(v) = conns {
                spec.conns = v.max(1);
            }
            if let Some(v) = requests {
                spec.requests = v;
            }
            if let Some(v) = window {
                spec.window = v.max(1);
            }
            if let Some(v) = key_range {
                spec.key_range = v.max(1);
            }
            if let Some(v) = read_pct {
                if v > 100 {
                    cli.fail("--read-pct must be in [0, 100]");
                }
                spec.read_pct = v;
            }
            if let Some(v) = seed {
                spec.seed = v;
            }
            let report = serve_bench::run_serve_bench(&spec, |cell| {
                eprintln!(
                    "  {:<16} {:>10.0} ops/s (shed {:.4})",
                    cell.name,
                    cell.ops_per_sec(),
                    cell.shed_rate()
                );
            })
            .unwrap_or_else(|e| {
                eprintln!("serve bench failed: {e}");
                std::process::exit(1);
            });
            print!("{}", serve_bench::render_report(&report));
            if let Some(out) = &json_out {
                write_out(out, &serve_bench::report_json(&report).to_pretty());
                eprintln!("wrote serve report to {out}");
            }
        }
        "serve-gate" => {
            let max_regression = max_regression.unwrap_or(3.0);
            let (Some(base_path), Some(cur_path)) = (&baseline, &current) else {
                cli.fail("serve-gate needs --baseline and --current")
            };
            let base = load_json(base_path);
            let cur = load_json(cur_path);
            let verdict =
                serve_bench::gate_serve(&base, &cur, max_regression).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(1);
                });
            if let Some(out) = &json_out {
                write_out(
                    out,
                    &serve_bench::gate_json(&verdict, max_regression).to_pretty(),
                );
                eprintln!("wrote serve-gate verdict to {out}");
            }
            print!("{}", render_gate(&verdict));
            if !verdict.pass() {
                std::process::exit(1);
            }
        }
        "critpath-overhead" => {
            let spec = host_spec();
            let cells = host::run_overhead(&spec, |cell| {
                eprintln!(
                    "  {:<24} wall {:>8.3} -> {:>8.3} ms ({:+.1}%)",
                    cell.key(),
                    cell.wall_ms_off,
                    cell.wall_ms_on,
                    cell.wall_overhead_frac() * 100.0
                );
            });
            let verdict = host::gate_overhead(&cells, max_overhead).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(1);
            });
            if let Some(out) = &json_out {
                write_out(
                    out,
                    &host::overhead_json(&cells, &verdict, max_overhead).to_pretty(),
                );
                eprintln!("wrote overhead report to {out}");
            }
            print!("{}", host::render_overhead(&cells, &verdict, max_overhead));
            if !verdict.pass() {
                std::process::exit(1);
            }
        }
        "crash-fuzz" => {
            let mut spec = if smoke {
                CrashFuzzSpec::smoke()
            } else {
                CrashFuzzSpec::full()
            };
            if let Some(v) = fuzz_structures {
                match v.as_slice() {
                    [s] => spec.structure = *s,
                    _ => cli.fail("crash-fuzz takes exactly one --structures entry"),
                }
            }
            if let Some(v) = fuzz_mechs {
                spec.mechs = v;
            }
            if let Some(v) = dists {
                spec.dists = v;
            }
            if let Some(v) = trials {
                spec.trials = v.max(1);
            }
            if let Some(v) = key_range {
                spec.key_range = v.max(1);
            }
            if let Some(v) = batch {
                spec.batch = v.max(1);
            }
            if let Some(v) = warm {
                spec.warm_batches = v;
            }
            if let Some(v) = seed {
                spec.seed = v;
            }
            let report = crashfuzz::run_crash_fuzz(&spec, |cell| {
                eprintln!(
                    "  {:<6} {:<8} {} trials, {} resolved Done, {} retried, {} violations",
                    cell.mech,
                    cell.dist,
                    cell.trials,
                    cell.resolved_done,
                    cell.retried,
                    cell.violations
                );
            });
            print!("{}", crashfuzz::render_report(&report));
            if let Some(out) = &json_out {
                write_out(out, &crashfuzz::report_json(&spec, &report).to_pretty());
                eprintln!("wrote crash-fuzz report to {out}");
            }
            if !report.pass() {
                std::process::exit(4);
            }
        }
        other => cli.fail(format!("unknown command {other:?}")),
    }
}

fn load_json(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    })
}

fn write_out(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
}
