//! `lrp-serve` — the sharded persistent-KV service front-end.
//!
//! ```text
//! lrp-serve --bind 127.0.0.1:0 --shards 2 --port-file /tmp/serve.addr
//! lrp-serve --uds /tmp/lrp.sock --structure skiplist --mech lrp
//! ```
//!
//! Starts N shards, each owning one simulated machine and one log-free
//! structure, and serves the length-prefixed wire protocol until a
//! client sends `Shutdown` (e.g. `lrp-load --shutdown`). On shutdown it
//! emits the per-shard metrics stream (JSONL) and fails with exit 4 if
//! any durably-acked write was lost or a null-recovery check failed —
//! the service-level durability contract of the paper.

use lrp_bench::cli::Cli;
use lrp_lfds::Structure;
use lrp_obs::RecorderConfig;
use lrp_serve::{Bind, Server, ServerConfig, ShardConfig};
use lrp_sim::{Mechanism, NvmMode};

const USAGE: &str = "usage:\n  \
    lrp-serve [--bind ADDR | --uds PATH] [--shards N]\n            \
    [--structure linkedlist|hashmap|bstree|skiplist] [--mech M]\n            \
    [--mode cached|uncached] [--sim-threads N] [--size N]\n            \
    [--key-range N] [--seed N] [--audit-samples N]\n            \
    [--batch-max N] [--batch-wait-ms N] [--queue-depth N]\n            \
    [--metrics-every-ms N] [--metrics-out FILE] [--port-file FILE]\n            \
    [--trace-out FILE] [--span-cap N]\n            \
    [--flight-dir DIR] [--flight-cap N] [--record]\n            \
    [--clients N] [--ring N] [--no-detect]\n\n\
    defaults:\n  \
    --bind 127.0.0.1:0   (ephemeral port; the bound address goes to\n                        \
    stderr and, with --port-file, to that file)\n  \
    --shards 2     --structure hashmap   --mech lrp   --mode cached\n  \
    --sim-threads 2  --size 64   --key-range 256   --seed 1\n  \
    --audit-samples 8  --batch-max 16  --batch-wait-ms 5\n  \
    --queue-depth 64   --metrics-every-ms 250\n  \
    --trace-out FILE   enable request-span tracing and write the retained\n                     \
    spans as a Chrome trace-event document at shutdown\n                     \
    (load into chrome://tracing or Perfetto)\n  \
    --span-cap N       spans retained per shard, drop-oldest (default 65536)\n  \
    --flight-dir DIR   dump each shard's flight-recorder ring as JSONL\n                     \
    into DIR on every crash-restart\n  \
    --flight-cap N     flight-recorder events per shard (default 256)\n  \
    --record       attach the event recorder (summaries only)\n  \
    --clients N    slot-table client rows per shard (default 64); a client\n                 \
    id's row is id mod N, so keep N above the live client count\n  \
    --ring N       slots per client row (default 32); must cover a client's\n                 \
    in-flight window or recycled slots lose resolvability\n  \
    --no-detect    disable the detectable-op slot table: Resolve answers\n                 \
    not-started for every rid (at-least-once serving)\n\n\
    the server runs until a client sends Shutdown (lrp-load --shutdown)\n\n\
    exit codes:\n  \
    0  clean shutdown, durability contract held\n  \
    1  I/O error (bind, port-file, or metrics-out write)\n  \
    2  usage error (unknown flag, missing or invalid value)\n  \
    4  durability violation: a durably-acked write was lost across a\n       \
    crash-restart, or a null-recovery validation failed";

fn main() {
    let mut cli = Cli::from_env(USAGE);
    let bind_addr = cli.opt("bind");
    let uds: Option<String> = cli.opt("uds");
    let shards = cli.opt_parse("shards").unwrap_or(2usize);
    let structure_name = cli.opt("structure").unwrap_or_else(|| "hashmap".into());
    let mech_name = cli.opt("mech").unwrap_or_else(|| "lrp".into());
    let mode_name = cli.opt("mode").unwrap_or_else(|| "cached".into());
    let sim_threads = cli.opt_parse("sim-threads").unwrap_or(2u16);
    let size = cli.opt_parse("size").unwrap_or(64usize);
    let key_range = cli.opt_parse("key-range").unwrap_or(256u64);
    let seed = cli.opt_parse("seed").unwrap_or(1u64);
    let audit_samples = cli.opt_parse("audit-samples").unwrap_or(8usize);
    let batch_max = cli.opt_parse("batch-max").unwrap_or(16usize);
    let batch_wait_ms = cli.opt_parse("batch-wait-ms").unwrap_or(5u64);
    let queue_depth = cli.opt_parse("queue-depth").unwrap_or(64usize);
    let metrics_every_ms = cli.opt_parse("metrics-every-ms").unwrap_or(250u64);
    let metrics_out: Option<String> = cli.opt("metrics-out");
    let port_file: Option<String> = cli.opt("port-file");
    let trace_out: Option<String> = cli.opt("trace-out");
    let span_cap = cli.opt_parse("span-cap").unwrap_or(65536usize);
    let flight_dir: Option<String> = cli.opt("flight-dir");
    let flight_cap = cli.opt_parse("flight-cap").unwrap_or(256usize);
    let record = cli.flag("record");
    let clients: Option<u64> = cli.opt_parse("clients");
    let ring: Option<u64> = cli.opt_parse("ring");
    let no_detect = cli.flag("no-detect");
    cli.positionals(0, 0);

    let structure = Structure::from_name(&structure_name)
        .unwrap_or_else(|| cli.fail(format!("unknown structure {structure_name:?}")));
    if structure == Structure::Queue {
        cli.fail("the service layer is a KV store; --structure queue is not servable");
    }
    let mechanism = Mechanism::from_name(&mech_name)
        .unwrap_or_else(|| cli.fail(format!("unknown mechanism {mech_name:?}")));
    let mode = NvmMode::from_name(&mode_name)
        .unwrap_or_else(|| cli.fail(format!("unknown NVM mode {mode_name:?}")));
    if shards == 0 {
        cli.fail("--shards must be at least 1");
    }
    if sim_threads < 2 {
        cli.fail("--sim-threads must be at least 2 (single-threaded batches rarely persist under lazy mechanisms)");
    }
    let uds_path = uds.clone();
    let bind = match (uds, bind_addr) {
        (Some(_), Some(_)) => cli.fail("--bind and --uds are mutually exclusive"),
        #[cfg(unix)]
        (Some(path), None) => Bind::Uds(path.into()),
        #[cfg(not(unix))]
        (Some(_), None) => cli.fail("--uds is only available on unix"),
        (None, addr) => Bind::Tcp(addr.unwrap_or_else(|| "127.0.0.1:0".into())),
    };

    let mut shard = ShardConfig::new(structure);
    shard.mechanism = mechanism;
    shard.nvm_mode = mode;
    shard.sim_threads = sim_threads;
    shard.initial_size = size;
    shard.key_range = key_range;
    shard.seed = seed;
    shard.audit_samples = audit_samples;
    if record {
        shard.recorder = Some(RecorderConfig::summaries_only());
    }
    if no_detect {
        if clients.is_some() || ring.is_some() {
            cli.fail("--no-detect conflicts with --clients/--ring");
        }
        shard.detect = None;
    } else if clients.is_some() || ring.is_some() {
        let mut spec = shard.detect.unwrap_or_default();
        if let Some(c) = clients {
            if c == 0 {
                cli.fail("--clients must be at least 1");
            }
            spec.clients = c;
        }
        if let Some(r) = ring {
            if r == 0 {
                cli.fail("--ring must be at least 1");
            }
            spec.ring = r;
        }
        shard.detect = Some(spec);
    }
    let mut cfg = ServerConfig::new(shard);
    cfg.bind = bind;
    cfg.shards = shards;
    cfg.batch_max = batch_max;
    cfg.batch_wait_ms = batch_wait_ms;
    cfg.queue_depth = queue_depth;
    cfg.metrics_every_ms = metrics_every_ms;
    // Tracing is opt-in: spans are only retained when a trace sink is
    // named, so the default serving path stays recording-free.
    cfg.spans = trace_out.as_ref().map(|_| span_cap);
    cfg.flight = flight_cap;
    cfg.flight_dir = flight_dir.map(Into::into);

    let server = Server::start(cfg).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    let published = match server.local_addr() {
        Some(addr) => addr.to_string(),
        None => uds_path.unwrap_or_else(|| "unix socket".into()),
    };
    eprintln!(
        "lrp-serve: {shards} shard(s) of {structure_name}/{mech_name}/{mode_name} on {published}"
    );
    if let Some(path) = &port_file {
        std::fs::write(path, &published).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    // Blocks until a client sends Shutdown.
    let report = server.join();
    if let Some(path) = &metrics_out {
        std::fs::write(path, report.to_jsonl()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote shard metrics to {path}");
    }
    if let Some(path) = &trace_out {
        std::fs::write(path, report.chrome_trace().to_compact()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {} span(s) to {path} ({} dropped)",
            report.spans().len(),
            report.span_dropped()
        );
    }
    let lost = report.lost_acked();
    let failures = report.recovery_failures();
    eprintln!("lrp-serve: shutdown complete (lost_acked={lost} recovery_failures={failures})");
    if lost > 0 || failures > 0 {
        std::process::exit(4);
    }
}
