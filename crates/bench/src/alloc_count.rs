//! Heap-allocation counting for alloc-regression assertions.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! `alloc`/`realloc` call. A binary or test opts in by declaring it as
//! its global allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: lrp_bench::alloc_count::CountingAlloc =
//!     lrp_bench::alloc_count::CountingAlloc;
//! ```
//!
//! Code that *reads* the counter (the host benchmark, the alloc-bound
//! tests) checks [`installed`] first, so the same library works in
//! binaries that did not opt in — they simply report no alloc data
//! instead of bogus zeros.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// A system-allocator wrapper that counts allocation calls.
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the only
// extra work is relaxed atomic bumps, which allocate nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        INSTALLED.store(true, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Whether [`CountingAlloc`] is this process's global allocator (true
/// once it has served at least one allocation, i.e. immediately in any
/// real program).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Total allocation calls served so far (alloc + realloc).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Total bytes requested so far.
pub fn bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Runs `f` and returns `(result, allocation calls during f)`.
///
/// The count is process-global, so keep other threads quiet while
/// measuring. Returns a count of 0 when the allocator is not
/// installed — callers should check [`installed`] when that matters.
pub fn count<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = allocations();
    let r = f();
    (r, allocations() - before)
}
