//! Host-throughput benchmark (`lrp-bench host`).
//!
//! Every subsystem in the workspace — campaign sweeps, the blame
//! profiler, the serve shard loop — ultimately spends its wall-clock
//! inside the discrete-event machine, so *simulated cycles per host
//! second* is the scaling metric that matters. This module replays a
//! (structure × mechanism) matrix with [`crate::microbench::sample_ms`]
//! timing each cell, and reports per-cell:
//!
//! * `sim_cycles` / `ops` — deterministic workload size (simulated),
//! * `wall_ms_min` / `wall_ms_median` — host wall time per replay,
//! * `sim_cycles_per_sec` / `ops_per_sec` — host throughput (from the
//!   minimum wall time, the standard noise-resistant estimator),
//! * `allocs_per_op` — heap allocations per harness op, when the
//!   counting allocator from [`crate::alloc_count`] is installed.
//!
//! [`gate_host`] compares two reports and fails any cell whose
//! ops/sec dropped by more than the allowed factor — the CI regression
//! gate of the hot-path overhaul, reusing the check/verdict machinery
//! of [`crate::profile`].

use crate::alloc_count;
use crate::microbench::sample_ms;
use crate::profile::{GateCheck, GateVerdict};
use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::Trace;
use lrp_obs::{Json, RecorderConfig};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

/// The benchmark matrix and workload shape.
#[derive(Debug, Clone)]
pub struct HostSpec {
    /// Tier name recorded in the report (`quick`, `smoke`, `paper`).
    pub tier: &'static str,
    /// Structures axis.
    pub structures: Vec<Structure>,
    /// Mechanisms axis.
    pub mechanisms: Vec<Mechanism>,
    /// NVM mode (one per report; the axis that matters is host-side).
    pub mode: NvmMode,
    /// Worker threads in the simulated workload.
    pub threads: u16,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// Initial structure population.
    pub initial_size: usize,
    /// Workload seed.
    pub seed: u64,
    /// Timed replays per cell (plus one untimed warmup).
    pub samples: usize,
}

impl HostSpec {
    /// The default matrix: all five LFDs × the paper's four mechanisms
    /// at a workload size that keeps the full matrix under a minute.
    pub fn quick() -> HostSpec {
        HostSpec {
            tier: "quick",
            structures: Structure::ALL.to_vec(),
            mechanisms: Mechanism::ALL.to_vec(),
            mode: NvmMode::Cached,
            threads: 4,
            ops_per_thread: 64,
            initial_size: 128,
            seed: 1,
            samples: 5,
        }
    }

    /// The CI smoke matrix: the shape of the smoke campaign (hashmap
    /// under NOP + LRP), seconds end-to-end.
    pub fn smoke() -> HostSpec {
        HostSpec {
            tier: "smoke",
            structures: vec![Structure::HashMap],
            mechanisms: vec![Mechanism::Nop, Mechanism::Lrp],
            threads: 2,
            ops_per_thread: 32,
            initial_size: 32,
            samples: 3,
            ..HostSpec::quick()
        }
    }

    /// The paper tier: the evaluation's SynchroBench scale — 64K
    /// initial entries on 64 simulated cores (the machine's full mesh)
    /// — for the structures the paper runs at that size. The O(n)
    /// linked list and the two-ended queue are excluded: at 64K
    /// entries a single traversal exceeds the whole quick-tier
    /// workload, and the paper sizes them separately.
    pub fn paper() -> HostSpec {
        HostSpec {
            tier: "paper",
            structures: vec![Structure::HashMap, Structure::Bst, Structure::SkipList],
            mechanisms: Mechanism::ALL.to_vec(),
            threads: 64,
            ops_per_thread: 64,
            initial_size: 64 * 1024,
            samples: 3,
            ..HostSpec::quick()
        }
    }

    /// The CI slice of the paper tier: one structure × LRP + SB at the
    /// full 64K-entry / 64-core scale, few samples — proves the
    /// paper-scale path completes inside a CI wall budget.
    pub fn paper_smoke() -> HostSpec {
        HostSpec {
            tier: "paper-smoke",
            structures: vec![Structure::HashMap],
            mechanisms: vec![Mechanism::Lrp, Mechanism::Sb],
            samples: 2,
            ..HostSpec::paper()
        }
    }
}

/// One timed (structure, mechanism) cell.
#[derive(Debug, Clone)]
pub struct HostCell {
    /// The structure under test.
    pub structure: Structure,
    /// The persistency mechanism.
    pub mechanism: Mechanism,
    /// Simulated cycles of one replay (deterministic).
    pub sim_cycles: u64,
    /// Harness ops of one replay (deterministic).
    pub ops: u64,
    /// Minimum wall time over the samples, milliseconds.
    pub wall_ms_min: f64,
    /// Median wall time, milliseconds.
    pub wall_ms_median: f64,
    /// Heap allocations per op of one replay (`None` unless the
    /// counting allocator is installed in this binary).
    pub allocs_per_op: Option<f64>,
}

impl HostCell {
    /// `structure/mechanism` report key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.structure.name(), self.mechanism.name())
    }

    /// Simulated cycles advanced per host second (min-time estimator).
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_ms_min > 0.0 {
            self.sim_cycles as f64 / (self.wall_ms_min / 1e3)
        } else {
            0.0
        }
    }

    /// Harness ops replayed per host second (min-time estimator).
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall_ms_min > 0.0 {
            self.ops as f64 / (self.wall_ms_min / 1e3)
        } else {
            0.0
        }
    }
}

/// The whole benchmark run.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Workload shape, echoed for reproducibility.
    pub spec: HostSpec,
    /// One entry per matrix cell, in matrix order.
    pub cells: Vec<HostCell>,
}

impl HostReport {
    /// Total wall time of the timed samples (min per cell), ms.
    pub fn total_wall_ms(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_ms_min).sum()
    }

    /// Aggregate simulated cycles per host second over the matrix.
    pub fn total_sim_cycles_per_sec(&self) -> f64 {
        let cycles: u64 = self.cells.iter().map(|c| c.sim_cycles).sum();
        let ms = self.total_wall_ms();
        if ms > 0.0 {
            cycles as f64 / (ms / 1e3)
        } else {
            0.0
        }
    }
}

/// Runs the benchmark matrix serially. Trace generation is excluded
/// from the timed region: the benchmark measures the simulator, not
/// the workload generator.
pub fn run_host(spec: &HostSpec, progress: impl FnMut(&HostCell)) -> HostReport {
    run_host_jobs(spec, 1, progress)
}

/// Runs the benchmark matrix with the untimed phases fanned out over
/// `jobs` work-stealing workers (the campaign scheduler's discipline,
/// via [`lrp_campaign::run_parallel`]):
///
/// 1. **Traces** — one workload trace per structure, in parallel.
/// 2. **Probes** — one untimed replay per cell for the deterministic
///    columns (`sim_cycles`, `ops`), in parallel.
/// 3. **Timing** — allocation counting and the timed samples run
///    strictly serially, in matrix order, after every worker has
///    retired: each cell is pinned solo on the machine, so wall-clock
///    numbers are directly comparable to a `--jobs 1` run.
///
/// Every reported number is byte-identical to [`run_host`]'s — the
/// simulator is deterministic and the phases that parallelize are the
/// untimed ones — only the end-to-end wall clock of the benchmark
/// itself shrinks.
pub fn run_host_jobs(
    spec: &HostSpec,
    jobs: usize,
    mut progress: impl FnMut(&HostCell),
) -> HostReport {
    let jobs = jobs.max(1);
    let traces: Vec<Trace> = lrp_campaign::run_parallel(
        spec.structures.clone(),
        jobs,
        |s| {
            WorkloadSpec::new(s)
                .initial_size(spec.initial_size)
                .threads(spec.threads)
                .ops_per_thread(spec.ops_per_thread)
                .seed(spec.seed)
                .build_trace()
        },
        |_| (),
    );
    let pairs: Vec<(usize, Mechanism)> = (0..spec.structures.len())
        .flat_map(|si| spec.mechanisms.iter().map(move |&m| (si, m)))
        .collect();
    let probes: Vec<(u64, u64)> = lrp_campaign::run_parallel(
        pairs.clone(),
        jobs,
        |(si, mechanism)| {
            let cfg = SimConfig::new(mechanism).nvm_mode(spec.mode);
            let r = Sim::new(cfg, &traces[si]).run();
            (r.stats.cycles, r.stats.ops)
        },
        |_| (),
    );
    let mut cells = Vec::with_capacity(pairs.len());
    for (&(si, mechanism), &(sim_cycles, ops)) in pairs.iter().zip(&probes) {
        let trace = &traces[si];
        let cfg = SimConfig::new(mechanism).nvm_mode(spec.mode);
        let allocs_per_op = alloc_count::installed().then(|| {
            let before = alloc_count::allocations();
            let r = Sim::new(cfg.clone(), trace).run();
            let allocs = alloc_count::allocations() - before;
            std::hint::black_box(&r);
            if r.stats.ops > 0 {
                allocs as f64 / r.stats.ops as f64
            } else {
                0.0
            }
        });
        let samples = sample_ms(spec.samples, || Sim::new(cfg.clone(), trace).run());
        let cell = HostCell {
            structure: spec.structures[si],
            mechanism,
            sim_cycles,
            ops,
            wall_ms_min: samples[0],
            wall_ms_median: samples[samples.len() / 2],
            allocs_per_op,
        };
        progress(&cell);
        cells.push(cell);
    }
    HostReport {
        spec: spec.clone(),
        cells,
    }
}

/// Serializes a report as the `BENCH_host.json` document.
pub fn report_json(r: &HostReport) -> Json {
    let cells = r
        .cells
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("structure", Json::Str(c.structure.name().to_string())),
                ("mechanism", Json::Str(c.mechanism.name().to_string())),
                ("sim_cycles", Json::U64(c.sim_cycles)),
                ("ops", Json::U64(c.ops)),
                ("wall_ms_min", Json::F64(c.wall_ms_min)),
                ("wall_ms_median", Json::F64(c.wall_ms_median)),
                ("sim_cycles_per_sec", Json::F64(c.sim_cycles_per_sec())),
                ("ops_per_sec", Json::F64(c.ops_per_sec())),
            ];
            if let Some(a) = c.allocs_per_op {
                fields.push(("allocs_per_op", Json::F64(a)));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj([
        ("type", Json::Str("host-bench".to_string())),
        ("tier", Json::Str(r.spec.tier.to_string())),
        ("mode", Json::Str(r.spec.mode.name().to_string())),
        ("threads", Json::U64(r.spec.threads as u64)),
        ("ops_per_thread", Json::U64(r.spec.ops_per_thread as u64)),
        ("initial_size", Json::U64(r.spec.initial_size as u64)),
        ("seed", Json::U64(r.spec.seed)),
        ("samples", Json::U64(r.spec.samples as u64)),
        ("total_wall_ms", Json::F64(r.total_wall_ms())),
        (
            "total_sim_cycles_per_sec",
            Json::F64(r.total_sim_cycles_per_sec()),
        ),
        ("cells", Json::Arr(cells)),
    ])
}

/// Renders the report as an aligned text table.
pub fn render_report(r: &HostReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "host throughput (mode={}, t{}, {} ops/thread, {} samples/cell)\n\
         {:<24} {:>12} {:>8} {:>10} {:>16} {:>12} {:>10}\n",
        r.spec.mode.name(),
        r.spec.threads,
        r.spec.ops_per_thread,
        r.spec.samples,
        "cell",
        "sim cycles",
        "ops",
        "wall ms",
        "sim cycles/s",
        "ops/s",
        "allocs/op",
    ));
    for c in &r.cells {
        out.push_str(&format!(
            "{:<24} {:>12} {:>8} {:>10.3} {:>16.0} {:>12.0} {:>10}\n",
            c.key(),
            c.sim_cycles,
            c.ops,
            c.wall_ms_min,
            c.sim_cycles_per_sec(),
            c.ops_per_sec(),
            c.allocs_per_op
                .map(|a| format!("{a:.1}"))
                .unwrap_or_else(|| "-".to_string()),
        ));
    }
    out.push_str(&format!(
        "total: {:.1} ms wall, {:.0} simulated cycles/sec aggregate\n",
        r.total_wall_ms(),
        r.total_sim_cycles_per_sec()
    ));
    out
}

fn host_err(msg: impl Into<String>) -> String {
    format!("bad host-bench report: {}", msg.into())
}

/// One cell's comparable metrics pulled out of a `BENCH_host.json`
/// document.
struct CellRow {
    key: String,
    ops_per_sec: f64,
    wall_ms_min: f64,
    allocs_per_op: Option<f64>,
}

/// Extracts the per-cell metric rows from a `BENCH_host.json` document.
fn extract(doc: &Json) -> Result<Vec<CellRow>, String> {
    if doc.get("type").and_then(Json::as_str) != Some("host-bench") {
        return Err(host_err("missing type: \"host-bench\""));
    }
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .ok_or_else(|| host_err("missing cells array"))?;
    let mut out = Vec::new();
    for c in cells {
        let structure = c
            .get("structure")
            .and_then(Json::as_str)
            .ok_or_else(|| host_err("cell without structure"))?;
        let mechanism = c
            .get("mechanism")
            .and_then(Json::as_str)
            .ok_or_else(|| host_err("cell without mechanism"))?;
        let ops = c
            .get("ops_per_sec")
            .and_then(Json::as_f64)
            .ok_or_else(|| host_err("cell without ops_per_sec"))?;
        out.push(CellRow {
            key: format!("{structure}/{mechanism}"),
            ops_per_sec: ops,
            wall_ms_min: c.get("wall_ms_min").and_then(Json::as_f64).unwrap_or(0.0),
            allocs_per_op: c.get("allocs_per_op").and_then(Json::as_f64),
        });
    }
    Ok(out)
}

/// Renders the per-cell wall-clock and allocations-per-op movement of
/// `current` against `baseline` as an aligned table — the human view
/// beside the machine-readable gate verdict. Only keys present in both
/// reports appear (the gate ignores one-sided cells too).
pub fn render_gate_deltas(baseline: &Json, current: &Json) -> Result<String, String> {
    let base = extract(baseline)?;
    let cur = extract(current)?;
    let mut out = format!(
        "{:<24} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}\n",
        "cell", "base ms", "cur ms", "wall", "base a/op", "cur a/op", "allocs",
    );
    let mut compared = 0;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.key == b.key) else {
            continue;
        };
        compared += 1;
        let wall_delta = if b.wall_ms_min > 0.0 {
            format!("{:+.0}%", (c.wall_ms_min / b.wall_ms_min - 1.0) * 100.0)
        } else {
            "-".to_string()
        };
        let (ba, ca, alloc_delta) = match (b.allocs_per_op, c.allocs_per_op) {
            (Some(ba), Some(ca)) if ba > 0.0 => (
                format!("{ba:.1}"),
                format!("{ca:.1}"),
                format!("{:+.0}%", (ca / ba - 1.0) * 100.0),
            ),
            (Some(ba), Some(ca)) => (format!("{ba:.1}"), format!("{ca:.1}"), "-".to_string()),
            (b, c) => (
                b.map(|a| format!("{a:.1}")).unwrap_or_else(|| "-".into()),
                c.map(|a| format!("{a:.1}")).unwrap_or_else(|| "-".into()),
                "-".to_string(),
            ),
        };
        out.push_str(&format!(
            "{:<24} {:>10.3} {:>10.3} {:>8} {:>10} {:>10} {:>8}\n",
            b.key, b.wall_ms_min, c.wall_ms_min, wall_delta, ba, ca, alloc_delta,
        ));
    }
    out.push_str(&format!("({compared} cells compared)\n"));
    Ok(out)
}

/// Gates `current` against `baseline`: a cell fails when its ops/sec
/// dropped below `baseline / max_regression` (2.0 = tolerate anything
/// better than a 2x slowdown — CI runners are noisy and heterogeneous).
/// Cells present in only one report are ignored, so growing the matrix
/// never fails the gate by itself.
pub fn gate_host(
    baseline: &Json,
    current: &Json,
    max_regression: f64,
) -> Result<GateVerdict, String> {
    if max_regression < 1.0 || max_regression.is_nan() {
        return Err("max regression factor must be >= 1.0".to_string());
    }
    let base = extract(baseline)?;
    let cur = extract(current)?;
    let mut checks = Vec::new();
    let mut compared = 0;
    for b in &base {
        let Some(c) = cur.iter().find(|c| c.key == b.key) else {
            continue;
        };
        compared += 1;
        checks.push(GateCheck {
            key: b.key.clone(),
            metric: "ops_per_sec".to_string(),
            baseline: b.ops_per_sec,
            current: c.ops_per_sec,
            tol: max_regression,
            pass: c.ops_per_sec * max_regression >= b.ops_per_sec,
        });
    }
    Ok(GateVerdict { compared, checks })
}

/// Serializes a gate verdict (mirrors `profile::verdict_json`'s shape,
/// with the host gate's single tolerance knob).
pub fn gate_json(v: &GateVerdict, max_regression: f64) -> Json {
    let checks = v
        .checks
        .iter()
        .map(|c| {
            Json::obj([
                ("key", Json::Str(c.key.clone())),
                ("metric", Json::Str(c.metric.clone())),
                ("baseline", Json::F64(c.baseline)),
                ("current", Json::F64(c.current)),
                ("tolerance", Json::F64(c.tol)),
                ("pass", Json::Bool(c.pass)),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("host-gate".to_string())),
        ("pass", Json::Bool(v.pass())),
        ("compared_keys", Json::U64(v.compared as u64)),
        ("max_regression", Json::F64(max_regression)),
        ("checks", Json::Arr(checks)),
    ])
}

/// One cell of the critical-path overhead comparison: the same
/// workload replayed bare and with a critpath-tracing recorder.
#[derive(Debug, Clone)]
pub struct OverheadCell {
    /// The structure under test.
    pub structure: Structure,
    /// The persistency mechanism.
    pub mechanism: Mechanism,
    /// Simulated cycles without a recorder.
    pub sim_cycles_off: u64,
    /// Simulated cycles with the critpath recorder.
    pub sim_cycles_on: u64,
    /// Harness ops without a recorder.
    pub ops_off: u64,
    /// Harness ops with the critpath recorder.
    pub ops_on: u64,
    /// Minimum wall time without a recorder, milliseconds.
    pub wall_ms_off: f64,
    /// Minimum wall time with the critpath recorder, milliseconds.
    pub wall_ms_on: f64,
}

impl OverheadCell {
    /// `structure/mechanism` report key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.structure.name(), self.mechanism.name())
    }

    /// Simulated ops/cycle without a recorder.
    pub fn opc_off(&self) -> f64 {
        if self.sim_cycles_off > 0 {
            self.ops_off as f64 / self.sim_cycles_off as f64
        } else {
            0.0
        }
    }

    /// Simulated ops/cycle with the critpath recorder.
    pub fn opc_on(&self) -> f64 {
        if self.sim_cycles_on > 0 {
            self.ops_on as f64 / self.sim_cycles_on as f64
        } else {
            0.0
        }
    }

    /// Host wall-time overhead of tracing, as a fraction of the bare
    /// replay (informational — wall clocks are noisy on shared CI).
    pub fn wall_overhead_frac(&self) -> f64 {
        if self.wall_ms_off > 0.0 {
            (self.wall_ms_on - self.wall_ms_off) / self.wall_ms_off
        } else {
            0.0
        }
    }
}

/// Replays the matrix with and without the critpath recorder. The
/// recorder is timing-invisible by construction, so the simulated
/// columns must match exactly; the wall columns measure host cost.
pub fn run_overhead(spec: &HostSpec, mut progress: impl FnMut(&OverheadCell)) -> Vec<OverheadCell> {
    let mut cells = Vec::new();
    for &structure in &spec.structures {
        let trace = WorkloadSpec::new(structure)
            .initial_size(spec.initial_size)
            .threads(spec.threads)
            .ops_per_thread(spec.ops_per_thread)
            .seed(spec.seed)
            .build_trace();
        for &mechanism in &spec.mechanisms {
            let cfg = SimConfig::new(mechanism).nvm_mode(spec.mode);
            let bare = Sim::new(cfg.clone(), &trace).run();
            let traced = Sim::new(cfg.clone(), &trace)
                .with_recorder(RecorderConfig::summaries_only())
                .run();
            let wall_off = sample_ms(spec.samples, || Sim::new(cfg.clone(), &trace).run());
            let wall_on = sample_ms(spec.samples, || {
                Sim::new(cfg.clone(), &trace)
                    .with_recorder(RecorderConfig::summaries_only())
                    .run()
            });
            let cell = OverheadCell {
                structure,
                mechanism,
                sim_cycles_off: bare.stats.cycles,
                sim_cycles_on: traced.stats.cycles,
                ops_off: bare.stats.ops,
                ops_on: traced.stats.ops,
                wall_ms_off: wall_off[0],
                wall_ms_on: wall_on[0],
            };
            progress(&cell);
            cells.push(cell);
        }
    }
    cells
}

/// Gates the overhead report: a cell fails when tracing moved its
/// simulated ops/cycle by more than `max_frac` (the issue's ≤2%
/// budget; the expected delta is exactly zero).
pub fn gate_overhead(cells: &[OverheadCell], max_frac: f64) -> Result<GateVerdict, String> {
    if !(0.0..=1.0).contains(&max_frac) {
        return Err("overhead budget must be a fraction in [0, 1]".to_string());
    }
    let checks = cells
        .iter()
        .map(|c| GateCheck {
            key: c.key(),
            metric: "ops_per_cycle".to_string(),
            baseline: c.opc_off(),
            current: c.opc_on(),
            tol: max_frac,
            pass: (c.opc_on() - c.opc_off()).abs() <= max_frac * c.opc_off(),
        })
        .collect::<Vec<_>>();
    Ok(GateVerdict {
        compared: checks.len(),
        checks,
    })
}

/// Serializes the overhead report plus its verdict.
pub fn overhead_json(cells: &[OverheadCell], v: &GateVerdict, max_frac: f64) -> Json {
    let rows = cells
        .iter()
        .map(|c| {
            Json::obj([
                ("structure", Json::Str(c.structure.name().to_string())),
                ("mechanism", Json::Str(c.mechanism.name().to_string())),
                ("sim_cycles_off", Json::U64(c.sim_cycles_off)),
                ("sim_cycles_on", Json::U64(c.sim_cycles_on)),
                ("ops_off", Json::U64(c.ops_off)),
                ("ops_on", Json::U64(c.ops_on)),
                ("ops_per_cycle_off", Json::F64(c.opc_off())),
                ("ops_per_cycle_on", Json::F64(c.opc_on())),
                ("wall_ms_off", Json::F64(c.wall_ms_off)),
                ("wall_ms_on", Json::F64(c.wall_ms_on)),
                ("wall_overhead_frac", Json::F64(c.wall_overhead_frac())),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("critpath-overhead".to_string())),
        ("pass", Json::Bool(v.pass())),
        ("max_overhead_frac", Json::F64(max_frac)),
        ("cells", Json::Arr(rows)),
    ])
}

/// Renders the overhead report as an aligned table.
pub fn render_overhead(cells: &[OverheadCell], v: &GateVerdict, max_frac: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "critpath tracing overhead (budget {:.1}% of simulated ops/cycle)\n\
         {:<24} {:>14} {:>14} {:>10} {:>10} {:>9}\n",
        max_frac * 100.0,
        "cell",
        "opc off",
        "opc on",
        "wall off",
        "wall on",
        "wall +%",
    ));
    for c in cells {
        out.push_str(&format!(
            "{:<24} {:>14.6} {:>14.6} {:>9.3}ms {:>9.3}ms {:>+8.1}%\n",
            c.key(),
            c.opc_off(),
            c.opc_on(),
            c.wall_ms_off,
            c.wall_ms_on,
            c.wall_overhead_frac() * 100.0,
        ));
    }
    out.push_str(&format!(
        "verdict: {} ({} cells compared)\n",
        if v.pass() { "PASS" } else { "FAIL" },
        v.compared
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::render_gate;

    fn tiny_spec() -> HostSpec {
        HostSpec {
            structures: vec![Structure::Queue],
            mechanisms: vec![Mechanism::Nop, Mechanism::Lrp],
            threads: 2,
            ops_per_thread: 8,
            initial_size: 16,
            samples: 1,
            ..HostSpec::quick()
        }
    }

    #[test]
    fn host_report_round_trips_through_json() {
        let report = run_host(&tiny_spec(), |_| {});
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            assert!(c.sim_cycles > 0 && c.ops > 0);
            assert!(c.sim_cycles_per_sec() > 0.0);
        }
        let doc = Json::parse(&report_json(&report).to_pretty()).unwrap();
        assert_eq!(doc.get("tier").and_then(Json::as_str), Some("quick"));
        let rows = extract(&doc).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].key, "queue/nop");
        assert!(rows
            .iter()
            .all(|r| r.ops_per_sec > 0.0 && r.wall_ms_min > 0.0));
        let rendered = render_report(&report);
        assert!(rendered.contains("queue/lrp"));
        let deltas = render_gate_deltas(&doc, &doc).unwrap();
        assert!(
            deltas.contains("queue/nop") && deltas.contains("+0%"),
            "{deltas}"
        );
    }

    #[test]
    fn host_gate_passes_self_and_fails_2x_regression() {
        let report = run_host(&tiny_spec(), |_| {});
        let doc = report_json(&report);
        let v = gate_host(&doc, &doc, 2.0).unwrap();
        assert!(v.pass(), "{}", render_gate(&v));
        assert_eq!(v.compared, 2);

        // A report with ops/sec quartered fails the 2x gate.
        let mut slow = report.clone();
        for c in &mut slow.cells {
            c.wall_ms_min *= 4.0;
        }
        let v = gate_host(&doc, &report_json(&slow), 2.0).unwrap();
        assert!(!v.pass());
        assert!(v.failures().iter().all(|c| c.metric == "ops_per_sec"));

        // ...and passes a permissive 8x gate.
        assert!(gate_host(&doc, &report_json(&slow), 8.0).unwrap().pass());
    }

    #[test]
    fn parallel_jobs_match_serial_deterministic_columns() {
        // The simulator is deterministic and only untimed phases fan
        // out, so every non-wall column is identical across job counts.
        let spec = tiny_spec();
        let serial = run_host(&spec, |_| {});
        let parallel = run_host_jobs(&spec, 4, |_| {});
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.key(), p.key());
            assert_eq!(s.sim_cycles, p.sim_cycles);
            assert_eq!(s.ops, p.ops);
        }
    }

    #[test]
    fn host_gate_rejects_junk_documents() {
        let junk = Json::obj([("type", Json::Str("campaign".to_string()))]);
        assert!(gate_host(&junk, &junk, 2.0).is_err());
        let report = report_json(&run_host(
            &HostSpec {
                mechanisms: vec![Mechanism::Nop],
                samples: 1,
                ops_per_thread: 4,
                initial_size: 8,
                structures: vec![Structure::Queue],
                ..HostSpec::quick()
            },
            |_| {},
        ));
        assert!(
            gate_host(&report, &report, 0.5).is_err(),
            "factor < 1 rejected"
        );
    }

    #[test]
    fn critpath_tracing_has_zero_simulated_overhead() {
        let cells = run_overhead(&tiny_spec(), |_| {});
        assert_eq!(cells.len(), 2);
        for c in &cells {
            // The recorder is timing-invisible: the simulated columns
            // match exactly, so the ops/cycle delta is zero — well
            // inside the 2% budget.
            assert_eq!(c.sim_cycles_off, c.sim_cycles_on, "{}", c.key());
            assert_eq!(c.ops_off, c.ops_on, "{}", c.key());
        }
        let v = gate_overhead(&cells, 0.02).unwrap();
        assert!(v.pass(), "{}", render_gate(&v));
        let doc = Json::parse(&overhead_json(&cells, &v, 0.02).to_pretty()).unwrap();
        assert_eq!(
            doc.get("type").and_then(Json::as_str),
            Some("critpath-overhead")
        );
        assert_eq!(doc.get("pass").and_then(Json::as_bool), Some(true));
        let rendered = render_overhead(&cells, &v, 0.02);
        assert!(rendered.contains("PASS"), "{rendered}");

        // A cell whose traced replay lost >2% ops/cycle fails the gate.
        let mut skewed = cells.clone();
        skewed[0].sim_cycles_on = skewed[0].sim_cycles_off + skewed[0].sim_cycles_off / 10;
        assert!(!gate_overhead(&skewed, 0.02).unwrap().pass());
        assert!(gate_overhead(&skewed, 2.0).is_err(), "budget > 1 rejected");
    }

    #[test]
    fn simulated_outcomes_are_wall_clock_invariant() {
        // The deterministic columns (sim_cycles, ops) must not vary
        // across runs even though wall time does.
        let a = run_host(&tiny_spec(), |_| {});
        let b = run_host(&tiny_spec(), |_| {});
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.sim_cycles, cb.sim_cycles);
            assert_eq!(ca.ops, cb.ops);
        }
    }
}
