//! Shared command-line parsing for the workspace binaries.
//!
//! The workspace builds fully offline (no `clap`), so the binaries used
//! to hand-roll their own `while i < args.len()` loops — each with
//! slightly different error behaviour. This module centralises that:
//! every binary gets `--help` (usage to stdout, exit 0), `--flag value`
//! and `--flag=value` forms, and a uniform exit code 2 with usage on
//! stderr for unknown flags, missing values, or unparseable values.
//!
//! Usage pattern: construct a [`Cli`], *extract* every flag the command
//! understands (each call removes the flag from the argument list), then
//! call [`Cli::positionals`] — anything left that still looks like a
//! flag is an error.

use std::fmt::Display;
use std::str::FromStr;

/// An argument list being destructively matched against known flags.
pub struct Cli {
    usage: String,
    args: Vec<String>,
}

impl Cli {
    /// Captures the process arguments. Prints `usage` and exits 0 if
    /// `--help`/`-h` appears anywhere.
    pub fn from_env(usage: &str) -> Cli {
        Cli::from_args(usage, std::env::args().skip(1).collect())
    }

    /// As [`Cli::from_env`] but over an explicit argument list
    /// (subcommand tails, tests).
    pub fn from_args(usage: &str, args: Vec<String>) -> Cli {
        let cli = Cli {
            usage: usage.to_string(),
            args,
        };
        if cli.args.iter().any(|a| a == "--help" || a == "-h") {
            println!("{}", cli.usage);
            std::process::exit(0);
        }
        cli
    }

    /// Reports a usage error and exits with code 2.
    pub fn fail(&self, msg: impl Display) -> ! {
        eprintln!("error: {msg}");
        eprintln!("{}", self.usage);
        std::process::exit(2);
    }

    /// Extracts a boolean `--name` flag.
    pub fn flag(&mut self, name: &str) -> bool {
        let key = format!("--{name}");
        if let Some(i) = self.args.iter().position(|a| *a == key) {
            self.args.remove(i);
            true
        } else {
            false
        }
    }

    /// Extracts `--name VALUE` or `--name=VALUE`. Exits 2 when the flag
    /// is present without a value.
    pub fn opt(&mut self, name: &str) -> Option<String> {
        let key = format!("--{name}");
        let eq = format!("--{name}=");
        let i = self
            .args
            .iter()
            .position(|a| *a == key || a.starts_with(&eq))?;
        let arg = self.args.remove(i);
        if let Some(v) = arg.strip_prefix(&eq) {
            return Some(v.to_string());
        }
        if i < self.args.len() && !self.args[i].starts_with("--") {
            return Some(self.args.remove(i));
        }
        self.fail(format!("flag --{name} needs a value"))
    }

    /// Extracts and parses `--name VALUE`. Exits 2 on a value `T` can't
    /// parse.
    pub fn opt_parse<T: FromStr>(&mut self, name: &str) -> Option<T> {
        let raw = self.opt(name)?;
        match raw.parse() {
            Ok(v) => Some(v),
            Err(_) => self.fail(format!("invalid value {raw:?} for --{name}")),
        }
    }

    /// Extracts and parses a comma-separated `--name a,b,c` list. Exits
    /// 2 on any unparseable element or an empty list.
    pub fn opt_list<T: FromStr>(&mut self, name: &str) -> Option<Vec<T>> {
        let raw = self.opt(name)?;
        let mut out = Vec::new();
        for part in raw.split(',') {
            match part.trim().parse() {
                Ok(v) => out.push(v),
                Err(_) => self.fail(format!("invalid element {part:?} in --{name}")),
            }
        }
        if out.is_empty() {
            self.fail(format!("--{name} needs at least one element"));
        }
        Some(out)
    }

    /// Consumes the remaining arguments as positionals. Exits 2 if any
    /// unextracted flag remains or the count is outside
    /// `[min, max]` (`max = usize::MAX` for unbounded).
    pub fn positionals(&mut self, min: usize, max: usize) -> Vec<String> {
        if let Some(bad) = self.args.iter().find(|a| a.starts_with("--")) {
            self.fail(format!("unknown flag {bad}"));
        }
        if self.args.len() < min || self.args.len() > max {
            self.fail(match (min, max) {
                (0, 0) => "unexpected positional arguments".to_string(),
                (a, b) if a == b => format!("expected {a} positional argument(s)"),
                (a, _) => format!("expected at least {a} positional argument(s)"),
            });
        }
        std::mem::take(&mut self.args)
    }
}
