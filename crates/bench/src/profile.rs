//! The persist-blame profiler behind the `lrp-profile` binary.
//!
//! Three entry points, all built on `lrp_obs::blame`:
//!
//! * [`run`] — replay one workload under one mechanism with the
//!   summaries-only recorder attached and return its [`BlameTable`]
//!   (per-site stall/persist attribution) plus the run's `Stats`;
//! * [`diff`](run_diff) — the same workload under two mechanisms,
//!   ranked by per-`(site, cause)` attribution delta. This is the
//!   LRP-vs-baseline view: RET-full drains show up under LRP sites,
//!   full-barrier drains under BB/SB sites;
//! * [`gate`] — a perf-regression gate over two `BENCH_campaign.json`
//!   summaries, comparing ops/cycle, stall-cycle shares, and latency
//!   p50/p99 per `(structure, mode, threads, mechanism)` key against
//!   per-metric tolerances.

use crate::experiments::EvalParams;
use lrp_lfds::{Structure, WorkloadSpec};
use lrp_obs::blame::{diff, BlameDelta};
use lrp_obs::{BlameTable, CritSegKind, CritSummary, Json, RecorderConfig, Stats};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};
use std::collections::BTreeMap;

/// One profiled workload replay.
#[derive(Debug, Clone)]
pub struct ProfileSpec {
    /// The data structure under test.
    pub structure: Structure,
    /// The persistency mechanism.
    pub mechanism: Mechanism,
    /// NVM mode (cached / uncached).
    pub mode: NvmMode,
    /// Worker threads.
    pub threads: u16,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// Initial structure population.
    pub initial_size: usize,
    /// Workload seed.
    pub seed: u64,
    /// RET capacity override. Shrinking the RET (with the watermark
    /// pinned to the capacity, which disables proactive drains) forces
    /// the stall-on-full-table path, making RET pressure visible on
    /// small workloads.
    pub ret_capacity: Option<usize>,
}

impl ProfileSpec {
    /// A profile of `structure` under `mechanism` with the `lrp-trace
    /// gen` workload defaults (4 threads, 25 ops/thread, 64 entries).
    pub fn new(structure: Structure, mechanism: Mechanism) -> ProfileSpec {
        ProfileSpec {
            structure,
            mechanism,
            mode: NvmMode::Cached,
            threads: 4,
            ops_per_thread: 25,
            initial_size: 64,
            seed: 1,
            ret_capacity: None,
        }
    }

    /// `structure/mechanism/mode/tN/sN` identifier for report headers.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/t{}/s{}",
            self.structure.name(),
            self.mechanism.name(),
            self.mode.name(),
            self.threads,
            self.seed
        )
    }
}

/// What [`run`] produced.
#[derive(Debug, Clone)]
pub struct ProfileRun {
    /// Simulator statistics.
    pub stats: Stats,
    /// Per-`(site, cause)` attribution. Computed online, so it is
    /// exact regardless of event-ring state; the only bounded part is
    /// the per-line sketch, whose eviction count [`render_run`] prints.
    pub blame: BlameTable,
    /// Durability critical-path digest (per-segment cycles, folded
    /// chains, C1/C2 conservation counters).
    pub crit: CritSummary,
}

/// Replays `spec` with blame attribution and returns the profile.
pub fn run(spec: &ProfileSpec) -> ProfileRun {
    let trace = WorkloadSpec::new(spec.structure)
        .initial_size(spec.initial_size)
        .threads(spec.threads)
        .ops_per_thread(spec.ops_per_thread)
        .seed(spec.seed)
        .build_trace();
    let mut cfg = SimConfig::new(spec.mechanism).nvm_mode(spec.mode);
    if let Some(cap) = spec.ret_capacity {
        cfg.lrp.ret_capacity = cap;
        cfg.lrp.ret_watermark = cap;
    }
    let result = Sim::new(cfg, &trace)
        .with_recorder(RecorderConfig::summaries_only())
        .run();
    let obs = result.obs.expect("recorder was attached");
    ProfileRun {
        stats: result.stats,
        blame: obs.blame,
        crit: obs.crit.unwrap_or_default(),
    }
}

/// Renders one run's critical-path attribution: the per-segment table
/// (*which causal wait* the release-to-persist cycles were spent on),
/// the folded chain shapes, and the C1/C2 conservation verdict.
pub fn render_critpath(spec: &ProfileSpec, run: &ProfileRun, top: usize) -> String {
    let c = &run.crit;
    let mut out = String::new();
    out.push_str(&format!(
        "critical path {}: {} persists traced, {} cycles release-to-persist \
         (p50 {}, p99 {}, max {})\n",
        spec.id(),
        c.paths(),
        c.total_cycles(),
        c.path.percentile(0.5),
        c.path.percentile(0.99),
        c.max_path,
    ));
    out.push_str(&format!(
        "\nsegments by kind:\n{:<16} {:>8} {:>12} {:>7} {:>8} {:>8} {:>8}\n",
        "segment", "count", "cycles", "share", "p50", "p99", "max"
    ));
    let shares = c.shares();
    let mut rows: Vec<usize> = (0..CritSegKind::ALL.len()).collect();
    rows.sort_by(|&a, &b| {
        c.seg_cycles[b]
            .cmp(&c.seg_cycles[a])
            .then(CritSegKind::ALL[a].name().cmp(CritSegKind::ALL[b].name()))
    });
    for k in rows {
        if c.seg_counts[k] == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<16} {:>8} {:>12} {:>6.1}% {:>8} {:>8} {:>8}\n",
            CritSegKind::ALL[k].name(),
            c.seg_counts[k],
            c.seg_cycles[k],
            shares[k] * 100.0,
            c.seg_hist[k].percentile(0.5),
            c.seg_hist[k].percentile(0.99),
            c.seg_hist[k].max(),
        ));
    }
    out.push_str(&format!(
        "\nfolded chains (top {top} by cycles{}):\n",
        if c.folded_dropped > 0 {
            format!("; {} chains dropped past the shape cap", c.folded_dropped)
        } else {
            String::new()
        }
    ));
    for line in c.folded_stacks().lines().take(top) {
        out.push_str(&format!("  {line}\n"));
    }
    let (c1, c2) = (c.audit.c1, c.audit.c2);
    out.push_str(&format!(
        "\nconservation: c1 {}/{} (segments sum to measured latency), \
         c2 {}/{} (longest path within wall time)\n",
        c1.checks - c1.violations,
        c1.checks,
        c2.checks - c2.violations,
        c2.checks,
    ));
    if c.audit.total_violations() > 0 {
        out.push_str(&format!(
            "CONSERVATION VIOLATIONS: {}\n",
            c.audit.total_violations()
        ));
    }
    out
}

/// One segment kind's side-by-side comparison in a critical-path diff.
#[derive(Debug, Clone)]
pub struct CritDeltaRow {
    /// The segment kind compared.
    pub kind: CritSegKind,
    /// Cycles charged to the kind in A.
    pub a_cycles: u64,
    /// Cycles charged to the kind in B.
    pub b_cycles: u64,
    /// The kind's share of A's critical-path cycles.
    pub a_share: f64,
    /// The kind's share of B's critical-path cycles.
    pub b_share: f64,
}

impl CritDeltaRow {
    /// Share shift in percentage points (A − B).
    pub fn share_delta(&self) -> f64 {
        self.a_share - self.b_share
    }
}

/// Compares two critical-path digests kind-by-kind, largest absolute
/// share shift first — the edge-level LRP-vs-baseline view.
pub fn crit_diff(a: &CritSummary, b: &CritSummary) -> Vec<CritDeltaRow> {
    let (sa, sb) = (a.shares(), b.shares());
    let mut rows: Vec<CritDeltaRow> = CritSegKind::ALL
        .iter()
        .map(|&kind| {
            let k = kind.idx();
            CritDeltaRow {
                kind,
                a_cycles: a.seg_cycles[k],
                b_cycles: b.seg_cycles[k],
                a_share: sa[k],
                b_share: sb[k],
            }
        })
        .collect();
    rows.sort_by(|x, y| {
        y.share_delta()
            .abs()
            .partial_cmp(&x.share_delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(x.kind.name().cmp(y.kind.name()))
    });
    rows
}

/// Renders a differential critical-path profile.
pub fn render_crit_diff(a: &ProfileSpec, b: &ProfileSpec, rows: &[CritDeltaRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "differential critical path: A = {} vs B = {} (share in percentage points)\n",
        a.id(),
        b.id()
    ));
    out.push_str(&format!(
        "{:<16} {:>12} {:>8} {:>12} {:>8} {:>8}\n",
        "segment", "A cycles", "A share", "B cycles", "B share", "delta"
    ));
    for r in rows.iter().filter(|r| r.a_cycles > 0 || r.b_cycles > 0) {
        out.push_str(&format!(
            "{:<16} {:>12} {:>7.1}% {:>12} {:>7.1}% {:>+7.1}pp\n",
            r.kind.name(),
            r.a_cycles,
            r.a_share * 100.0,
            r.b_cycles,
            r.b_share * 100.0,
            r.share_delta() * 100.0,
        ));
    }
    out
}

/// Renders one run's blame tables: exact `(site, cause)` totals plus
/// the per-line heavy hitters from the space-saving sketch.
pub fn render_run(spec: &ProfileSpec, run: &ProfileRun, top: usize) -> String {
    let mut out = String::new();
    let ops_per_cycle = if run.stats.cycles > 0 {
        run.stats.ops as f64 / run.stats.cycles as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "profile {}: {} cycles, {} ops ({ops_per_cycle:.6} ops/cycle), {} cycles charged\n",
        spec.id(),
        run.stats.cycles,
        run.stats.ops,
        run.blame.total_cycles()
    ));
    out.push_str(&format!(
        "\nblame by (site, cause), top {top} by charged cycles:\n{:<40} {:<6} {:<14} {:>8} {:>12}\n",
        "site", "kind", "cause", "count", "cycles"
    ));
    let mut rows: Vec<_> = run
        .blame
        .exact
        .iter()
        .filter(|(_, c)| c.cycles > 0)
        .collect();
    rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(b.0)));
    for ((site, cause), cell) in rows.into_iter().take(top) {
        out.push_str(&format!(
            "{:<40} {:<6} {:<14} {:>8} {:>12}\n",
            site,
            cause.kind(),
            cause.name(),
            cell.count,
            cell.cycles
        ));
    }
    out.push_str(&format!(
        "\nper-line heavy hitters (sketch: {} keys, {} evictions{}):\n{:<40} {:<14} {:>10} {:>12} {:>8}\n",
        run.blame.sketch.len(),
        run.blame.sketch.evictions(),
        if run.blame.sketch.evictions() == 0 {
            "; weights exact"
        } else {
            "; weights are upper bounds"
        },
        "site",
        "cause",
        "line",
        "cycles",
        "±err"
    ));
    for (key, cell) in run.blame.sketch.top(top) {
        out.push_str(&format!(
            "{:<40} {:<14} {:>#10x} {:>12} {:>8}\n",
            key.site,
            key.cause.name(),
            key.line,
            cell.weight,
            cell.error
        ));
    }
    out
}

/// Profiles the same workload under two mechanisms and returns both
/// runs plus their blame delta, largest attribution shift first.
pub fn run_diff(a: &ProfileSpec, b: &ProfileSpec) -> (ProfileRun, ProfileRun, Vec<BlameDelta>) {
    let ra = run(a);
    let rb = run(b);
    let rows = diff(&ra.blame, &rb.blame);
    (ra, rb, rows)
}

/// Renders a differential profile.
pub fn render_diff(a: &ProfileSpec, b: &ProfileSpec, rows: &[BlameDelta], top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "differential blame: A = {} vs B = {} (delta = A - B cycles)\n",
        a.id(),
        b.id()
    ));
    out.push_str(&format!(
        "{:<40} {:<6} {:<14} {:>12} {:>12} {:>13}\n",
        "site", "kind", "cause", "A cycles", "B cycles", "delta"
    ));
    for row in rows.iter().filter(|r| r.delta() != 0).take(top) {
        out.push_str(&format!(
            "{:<40} {:<6} {:<14} {:>12} {:>12} {:>+13}\n",
            row.site,
            row.cause.kind(),
            row.cause.name(),
            row.a_cycles,
            row.b_cycles,
            row.delta()
        ));
    }
    out
}

/// Per-metric regression tolerances for [`gate`].
#[derive(Debug, Clone)]
pub struct GateTolerances {
    /// Maximum fractional ops/cycle drop (0.20 = fail below 80% of
    /// baseline throughput).
    pub ops_frac: f64,
    /// Maximum absolute increase of any stall cause's share of total
    /// cycles (0.05 = fail when a cause grows by more than 5 points).
    pub stall_share: f64,
    /// Maximum fractional increase of latency p50/p99 (0.50 = fail
    /// above 150% of baseline).
    pub latency_frac: f64,
    /// When set, only ops/cycle is gated (stall shares and latency
    /// percentiles are reported as informational checks that always
    /// pass). This is the CI posture: fail the build on throughput
    /// regressions only.
    pub ops_only: bool,
}

impl Default for GateTolerances {
    fn default() -> Self {
        GateTolerances {
            ops_frac: 0.20,
            stall_share: 0.05,
            latency_frac: 0.50,
            ops_only: false,
        }
    }
}

/// One metric comparison at one matrix key.
#[derive(Debug, Clone)]
pub struct GateCheck {
    /// `structure/mode/tN/mechanism` matrix key.
    pub key: String,
    /// Metric name (`ops_per_cycle`, `stall_share/<cause>`,
    /// `<hist>/p50`, `<hist>/p99`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The tolerance applied.
    pub tol: f64,
    /// Whether the current value is within tolerance.
    pub pass: bool,
}

/// The gate's machine-readable outcome.
#[derive(Debug, Clone)]
pub struct GateVerdict {
    /// Matrix keys present in both summaries.
    pub compared: usize,
    /// Every metric comparison performed.
    pub checks: Vec<GateCheck>,
}

impl GateVerdict {
    /// True when every check passed.
    pub fn pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// The failing checks.
    pub fn failures(&self) -> Vec<&GateCheck> {
        self.checks.iter().filter(|c| !c.pass).collect()
    }
}

/// The metrics the gate extracts per matrix key.
#[derive(Debug, Clone, Default)]
struct KeyMetrics {
    ops_per_cycle: Option<f64>,
    /// `(cause name, stall cycles / total cycles)`.
    stall_shares: Vec<(String, f64)>,
    /// `(hist/percentile label, cycles)`.
    latencies: Vec<(String, f64)>,
}

fn summary_err(msg: impl Into<String>) -> String {
    format!("bad campaign summary: {}", msg.into())
}

/// Extracts gate metrics from a `BENCH_campaign.json` document, keyed
/// by `structure/mode/tN/mechanism` (skipping keys with no ok cells).
fn extract(doc: &Json) -> Result<BTreeMap<String, KeyMetrics>, String> {
    if doc.get("type").and_then(Json::as_str) != Some("campaign") {
        return Err(summary_err("missing type: \"campaign\""));
    }
    let groups = doc
        .get("groups")
        .and_then(Json::as_arr)
        .ok_or_else(|| summary_err("missing groups array"))?;
    let mut keys = BTreeMap::new();
    for g in groups {
        let structure = g
            .get("structure")
            .and_then(Json::as_str)
            .ok_or_else(|| summary_err("group without structure"))?;
        let mode = g
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| summary_err("group without mode"))?;
        let threads = g
            .get("threads")
            .and_then(Json::as_u64)
            .ok_or_else(|| summary_err("group without threads"))?;
        let mechs = g
            .get("mechanisms")
            .and_then(Json::as_arr)
            .ok_or_else(|| summary_err("group without mechanisms"))?;
        for m in mechs {
            if m.get("ok").and_then(Json::as_u64).unwrap_or(0) == 0 {
                continue;
            }
            let mech = m
                .get("mechanism")
                .and_then(Json::as_str)
                .ok_or_else(|| summary_err("mechanism entry without name"))?;
            let key = format!("{structure}/{mode}/t{threads}/{mech}");
            let mut metrics = KeyMetrics::default();
            if let Some(stats) = m.get("merged_stats") {
                let cycles = stats.get("cycles").and_then(Json::as_f64).unwrap_or(0.0);
                let ops = stats.get("ops").and_then(Json::as_f64).unwrap_or(0.0);
                if cycles > 0.0 {
                    metrics.ops_per_cycle = Some(ops / cycles);
                    if let Some(Json::Obj(stalls)) = stats.get("stalls") {
                        for (cause, v) in stalls {
                            let share = v.as_f64().unwrap_or(0.0) / cycles;
                            metrics.stall_shares.push((cause.clone(), share));
                        }
                    }
                }
            }
            if let Some(hists) = m.get("hists") {
                for name in ["flush_to_ack", "release_to_persist"] {
                    let Some(h) = hists.get(name) else { continue };
                    let h = lrp_obs::metrics::parse_hist(h).map_err(summary_err)?;
                    if h.is_empty() {
                        continue;
                    }
                    for (label, p) in [("p50", 0.5), ("p99", 0.99)] {
                        metrics
                            .latencies
                            .push((format!("{name}/{label}"), h.percentile(p) as f64));
                    }
                }
            }
            keys.insert(key, metrics);
        }
    }
    Ok(keys)
}

/// Compares two campaign summaries. Only keys present in both are
/// gated, so growing the matrix never fails the gate by itself.
pub fn gate(baseline: &Json, current: &Json, tol: &GateTolerances) -> Result<GateVerdict, String> {
    let base = extract(baseline)?;
    let cur = extract(current)?;
    let mut checks = Vec::new();
    let mut compared = 0;
    for (key, b) in &base {
        let Some(c) = cur.get(key) else { continue };
        compared += 1;
        if let (Some(b_opc), Some(c_opc)) = (b.ops_per_cycle, c.ops_per_cycle) {
            checks.push(GateCheck {
                key: key.clone(),
                metric: "ops_per_cycle".to_string(),
                baseline: b_opc,
                current: c_opc,
                tol: tol.ops_frac,
                pass: c_opc >= b_opc * (1.0 - tol.ops_frac),
            });
        }
        for (cause, b_share) in &b.stall_shares {
            let c_share = c
                .stall_shares
                .iter()
                .find(|(name, _)| name == cause)
                .map_or(0.0, |&(_, s)| s);
            checks.push(GateCheck {
                key: key.clone(),
                metric: format!("stall_share/{cause}"),
                baseline: *b_share,
                current: c_share,
                tol: tol.stall_share,
                pass: tol.ops_only || c_share <= b_share + tol.stall_share,
            });
        }
        for (label, b_lat) in &b.latencies {
            let Some(&(_, c_lat)) = c.latencies.iter().find(|(l, _)| l == label) else {
                continue;
            };
            checks.push(GateCheck {
                key: key.clone(),
                metric: label.clone(),
                baseline: *b_lat,
                current: c_lat,
                tol: tol.latency_frac,
                pass: tol.ops_only || c_lat <= b_lat * (1.0 + tol.latency_frac),
            });
        }
    }
    Ok(GateVerdict { compared, checks })
}

/// The gate verdict as a machine-readable JSON document.
pub fn verdict_json(v: &GateVerdict, tol: &GateTolerances) -> Json {
    let checks = v
        .checks
        .iter()
        .map(|c| {
            Json::obj([
                ("key", Json::Str(c.key.clone())),
                ("metric", Json::Str(c.metric.clone())),
                ("baseline", Json::F64(c.baseline)),
                ("current", Json::F64(c.current)),
                ("tolerance", Json::F64(c.tol)),
                ("pass", Json::Bool(c.pass)),
            ])
        })
        .collect();
    Json::obj([
        ("type", Json::Str("gate".to_string())),
        ("pass", Json::Bool(v.pass())),
        ("compared_keys", Json::U64(v.compared as u64)),
        (
            "tolerances",
            Json::obj([
                ("ops_frac", Json::F64(tol.ops_frac)),
                ("stall_share", Json::F64(tol.stall_share)),
                ("latency_frac", Json::F64(tol.latency_frac)),
                ("ops_only", Json::Bool(tol.ops_only)),
            ]),
        ),
        ("checks", Json::Arr(checks)),
    ])
}

/// Renders the gate outcome for terminals: every failure, then the
/// verdict line.
pub fn render_gate(v: &GateVerdict) -> String {
    let mut out = String::new();
    for c in v.failures() {
        out.push_str(&format!(
            "FAIL {} {}: baseline {:.6} -> current {:.6} (tolerance {:.2})\n",
            c.key, c.metric, c.baseline, c.current, c.tol
        ));
    }
    out.push_str(&format!(
        "gate: {} ({} keys compared, {} checks, {} failed)\n",
        if v.pass() { "PASS" } else { "FAIL" },
        v.compared,
        v.checks.len(),
        v.failures().len()
    ));
    out
}

/// The quick-scale profile specs used by docs and tests: the workload
/// shape of `EvalParams::quick()` for `structure` under `mechanism`.
pub fn quick_spec(structure: Structure, mechanism: Mechanism) -> ProfileSpec {
    let p = EvalParams::quick();
    ProfileSpec {
        structure,
        mechanism,
        mode: NvmMode::Cached,
        threads: p.threads,
        ops_per_thread: p.ops_per_thread,
        initial_size: p.initial_size(structure),
        seed: p.seed,
        ret_capacity: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_campaign::{run_campaign, summarize, summary_json, CampaignConfig, MatrixSpec};
    use lrp_obs::blame::BlameCause;

    #[test]
    fn profiled_run_attributes_cycles_to_labeled_sites() {
        let run = run(&quick_spec(Structure::Queue, Mechanism::Lrp));
        assert!(!run.blame.is_empty());
        assert!(
            run.blame
                .exact
                .keys()
                .any(|(site, _)| site.starts_with("queue/")),
            "queue sites must be labeled: {:?}",
            run.blame.exact.keys().collect::<Vec<_>>()
        );
        let rendered = render_run(&quick_spec(Structure::Queue, Mechanism::Lrp), &run, 10);
        assert!(rendered.contains("queue/"));
        assert!(rendered.contains("ops/cycle"));
    }

    #[test]
    fn queue_lrp_vs_bb_differential_shows_mechanism_signatures() {
        // Shrink the RET (watermark = capacity disables proactive
        // drains) so LRP's stall-on-full-table path fires even on the
        // quick workload.
        let mut a = quick_spec(Structure::Queue, Mechanism::Lrp);
        a.ret_capacity = Some(2);
        let b = quick_spec(Structure::Queue, Mechanism::Bb);
        let (ra, rb, rows) = run_diff(&a, &b);
        assert!(!rows.is_empty(), "differential blame table is non-empty");
        assert!(
            ra.blame
                .exact
                .iter()
                .any(|((site, cause), cell)| *cause == BlameCause::RetFull
                    && site.starts_with("queue/")
                    && cell.cycles > 0),
            "LRP must charge RET-full stalls to queue sites: {:?}",
            ra.blame.exact
        );
        assert!(
            rb.blame
                .exact
                .iter()
                .any(|((site, cause), cell)| *cause == BlameCause::BarrierDrain
                    && site.starts_with("queue/")
                    && cell.cycles > 0),
            "BB must charge full-barrier drains to queue sites: {:?}",
            rb.blame.exact
        );
        assert_eq!(rb.blame.cycles_for_cause(BlameCause::RetFull), 0);
        let rendered = render_diff(&a, &b, &rows, 20);
        assert!(rendered.contains("ret_full") || rendered.contains("barrier_drain"));
    }

    #[test]
    fn folded_export_is_loadable_and_site_labeled() {
        let run = run(&quick_spec(Structure::Queue, Mechanism::Lrp));
        let folded = run.blame.folded();
        assert!(folded.lines().count() > 0);
        assert!(folded.contains("queue/"));
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3, "bad folded line {line:?}");
            count.parse::<u64>().unwrap();
        }
    }

    fn smoke_summary() -> Json {
        let matrix = MatrixSpec::smoke();
        let records = run_campaign(
            matrix.cells(),
            &CampaignConfig {
                workers: 1,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        summary_json(&matrix, &summarize(&matrix, &records))
    }

    /// Multiplies every `merged_stats.cycles` by `num/den`, which moves
    /// ops/cycle by the inverse factor.
    fn scale_merged_cycles(doc: &mut Json, num: u64, den: u64) {
        match doc {
            Json::Obj(pairs) => {
                for (k, v) in pairs.iter_mut() {
                    if k == "merged_stats" {
                        if let Json::Obj(stats) = v {
                            for (sk, sv) in stats.iter_mut() {
                                if sk == "cycles" {
                                    if let Json::U64(n) = sv {
                                        *sv = Json::U64(*n * num / den);
                                    }
                                }
                            }
                        }
                    } else {
                        scale_merged_cycles(v, num, den);
                    }
                }
            }
            Json::Arr(items) => {
                for item in items.iter_mut() {
                    scale_merged_cycles(item, num, den);
                }
            }
            _ => {}
        }
    }

    #[test]
    fn gate_passes_baseline_against_itself_and_fails_a_25pct_regression() {
        let baseline = smoke_summary();
        let tol = GateTolerances::default();

        let self_check = gate(&baseline, &baseline, &tol).unwrap();
        assert!(self_check.pass(), "{}", render_gate(&self_check));
        assert!(self_check.compared > 0);

        // 4/3 more cycles for the same ops => ops/cycle drops 25%,
        // beyond the default 20% tolerance.
        let mut current = baseline.clone();
        scale_merged_cycles(&mut current, 4, 3);
        let v = gate(&baseline, &current, &tol).unwrap();
        assert!(!v.pass());
        assert!(
            v.failures().iter().all(|c| c.metric == "ops_per_cycle"),
            "only throughput regressed: {}",
            render_gate(&v)
        );

        // The same regression with ops-only gating still fails.
        let ops_only = GateTolerances {
            ops_only: true,
            ..GateTolerances::default()
        };
        assert!(!gate(&baseline, &current, &ops_only).unwrap().pass());

        // A tolerance looser than the regression passes.
        let loose = GateTolerances {
            ops_frac: 0.30,
            ..GateTolerances::default()
        };
        assert!(gate(&baseline, &current, &loose).unwrap().pass());
    }

    #[test]
    fn gate_verdict_json_is_machine_readable() {
        let baseline = smoke_summary();
        let tol = GateTolerances::default();
        let v = gate(&baseline, &baseline, &tol).unwrap();
        let doc = Json::parse(&verdict_json(&v, &tol).to_pretty()).unwrap();
        assert_eq!(doc.get("type").and_then(Json::as_str), Some("gate"));
        assert_eq!(doc.get("pass").and_then(Json::as_bool), Some(true));
        assert!(doc.get("checks").and_then(Json::as_arr).is_some());
        assert_eq!(
            doc.get("tolerances")
                .and_then(|t| t.get("ops_frac"))
                .and_then(Json::as_f64),
            Some(0.20)
        );
    }

    #[test]
    fn gate_rejects_non_campaign_documents() {
        let junk = Json::obj([("type", Json::Str("gate".to_string()))]);
        assert!(gate(&junk, &junk, &GateTolerances::default()).is_err());
    }

    #[test]
    fn attribution_does_not_change_simulated_timing() {
        // The profiler's recorder must be timing-invisible: the same
        // spec with and without the recorder yields identical stats.
        let spec = quick_spec(Structure::Queue, Mechanism::Lrp);
        let trace = WorkloadSpec::new(spec.structure)
            .initial_size(spec.initial_size)
            .threads(spec.threads)
            .ops_per_thread(spec.ops_per_thread)
            .seed(spec.seed)
            .build_trace();
        let cfg = SimConfig::new(spec.mechanism).nvm_mode(spec.mode);
        let plain = Sim::new(cfg.clone(), &trace).run();
        let profiled = run(&spec);
        assert_eq!(plain.stats, profiled.stats);
    }

    #[test]
    fn critpath_render_reports_segments_and_clean_conservation() {
        let spec = quick_spec(Structure::Queue, Mechanism::Lrp);
        let r = run(&spec);
        assert!(!r.crit.is_empty(), "LRP quick run must trace releases");
        assert_eq!(r.crit.audit.total_violations(), 0);
        let rendered = render_critpath(&spec, &r, 10);
        assert!(rendered.contains("nvm_queue"), "{rendered}");
        assert!(rendered.contains("conservation"), "{rendered}");
        assert!(!rendered.contains("CONSERVATION VIOLATIONS"), "{rendered}");
    }

    #[test]
    fn critpath_diff_orders_by_share_shift_and_shows_mechanism_signatures() {
        let a = quick_spec(Structure::Queue, Mechanism::Lrp);
        let b = quick_spec(Structure::Queue, Mechanism::Bb);
        let (ra, rb) = (run(&a), run(&b));
        // BB drains the store buffer at every release boundary; LRP
        // defers, so barrier_drain cycles belong to B only.
        assert_eq!(
            ra.crit.seg_cycles[CritSegKind::BarrierDrain.idx()],
            0,
            "LRP issues no full-barrier drains"
        );
        let rows = crit_diff(&ra.crit, &rb.crit);
        assert_eq!(rows.len(), CritSegKind::ALL.len());
        for pair in rows.windows(2) {
            assert!(
                pair[0].share_delta().abs() >= pair[1].share_delta().abs(),
                "rows sorted by |share shift|"
            );
        }
        let rendered = render_crit_diff(&a, &b, &rows);
        assert!(
            rendered.contains("differential critical path"),
            "{rendered}"
        );
        assert!(rendered.contains("nvm_queue"), "{rendered}");
    }
}
