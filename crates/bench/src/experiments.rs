//! Experiment runners, one per table/figure of §6.
//!
//! Sizing follows §6.1 with the documented substitution: the paper's
//! default of 64 K initial entries is kept for the sublinear structures
//! (hash map, BST, skip list); the O(n)-per-op linked list is scaled to
//! 512 entries so a full figure regenerates in minutes on a laptop
//! (the interpreted executor is ~10³× slower than the paper's native
//! Pin runs). Thread count defaults to the paper's 32 workers.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::Trace;
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig, Stats};
use std::collections::HashMap;

/// How large to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalScale {
    /// Paper-shaped sizes (64 K entries, 32 threads): minutes per figure.
    Full,
    /// Tiny sizes for tests and CI: seconds per figure.
    Quick,
}

/// Common experiment parameters.
#[derive(Debug, Clone)]
pub struct EvalParams {
    /// Size/thread preset.
    pub scale: EvalScale,
    /// Worker threads (paper default: 32).
    pub threads: u16,
    /// Operations per worker.
    pub ops_per_thread: usize,
    /// Master seed.
    pub seed: u64,
}

impl EvalParams {
    /// The paper-shaped configuration.
    pub fn full() -> Self {
        EvalParams {
            scale: EvalScale::Full,
            threads: 32,
            ops_per_thread: 30,
            seed: 42,
        }
    }

    /// A fast configuration for tests.
    pub fn quick() -> Self {
        EvalParams {
            scale: EvalScale::Quick,
            threads: 4,
            ops_per_thread: 12,
            seed: 42,
        }
    }

    /// Initial structure size for `s` at this scale.
    pub fn initial_size(&self, s: Structure) -> usize {
        match (self.scale, s) {
            (EvalScale::Full, Structure::LinkedList) => 512,
            (EvalScale::Full, Structure::Queue) => 1024,
            (EvalScale::Full, _) => 65536,
            (EvalScale::Quick, _) => 48,
        }
    }

    /// Builds the workload trace for `s` with `threads` workers.
    pub fn trace(&self, s: Structure, threads: u16) -> Trace {
        WorkloadSpec::new(s)
            .initial_size(self.initial_size(s))
            .threads(threads)
            .ops_per_thread(self.ops_per_thread)
            .seed(self.seed)
            .build_trace()
    }
}

/// Runs one trace under one mechanism (cached or uncached NVM).
pub fn run_sim(trace: &Trace, mech: Mechanism, mode: NvmMode) -> Stats {
    let cfg = SimConfig::new(mech).nvm_mode(mode);
    Sim::new(cfg, trace).run().stats
}

/// One row of Figure 5/7: execution time of each mechanism normalized to
/// NOP (lower is better).
#[derive(Debug, Clone)]
pub struct NormRow {
    /// Workload name.
    pub workload: Structure,
    /// Normalized execution time per mechanism.
    pub normalized: HashMap<Mechanism, f64>,
}

/// Figure 5 (cached mode) or Figure 7 (uncached mode): normalized
/// execution time of SB/BB/LRP over the five LFDs.
pub fn fig_norm_exec(params: &EvalParams, mode: NvmMode) -> Vec<NormRow> {
    Structure::ALL
        .iter()
        .map(|&s| {
            let t = params.trace(s, params.threads);
            let nop = run_sim(&t, Mechanism::Nop, mode).cycles as f64;
            let normalized = [Mechanism::Sb, Mechanism::Bb, Mechanism::Lrp]
                .into_iter()
                .map(|m| (m, run_sim(&t, m, mode).cycles as f64 / nop))
                .collect();
            NormRow {
                workload: s,
                normalized,
            }
        })
        .collect()
}

/// One row of Figure 6: % of write-backs on the issuing core's critical
/// path, BB vs LRP.
#[derive(Debug, Clone)]
pub struct CritRow {
    /// Workload name.
    pub workload: Structure,
    /// Critical write-back percentage for BB.
    pub bb_pct: f64,
    /// Critical write-back percentage for LRP.
    pub lrp_pct: f64,
}

/// Figure 6: critical-path write-back fractions.
pub fn fig6(params: &EvalParams) -> Vec<CritRow> {
    Structure::ALL
        .iter()
        .map(|&s| {
            let t = params.trace(s, params.threads);
            let bb = run_sim(&t, Mechanism::Bb, NvmMode::Cached);
            let lrp = run_sim(&t, Mechanism::Lrp, NvmMode::Cached);
            CritRow {
                workload: s,
                bb_pct: 100.0 * bb.critical_writeback_fraction(),
                lrp_pct: 100.0 * lrp.critical_writeback_fraction(),
            }
        })
        .collect()
}

/// One series of Figure 8: persistency overhead (%) over NOP as the
/// thread count varies.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Workload name.
    pub workload: Structure,
    /// `(threads, BB overhead %, LRP overhead %)` per point.
    pub points: Vec<(u16, f64, f64)>,
}

/// Figure 8(a–e): thread sweep, 1–32 workers (scaled under `Quick`).
pub fn fig8(params: &EvalParams) -> Vec<SweepRow> {
    let threads: &[u16] = match params.scale {
        EvalScale::Full => &[1, 8, 16, 32],
        EvalScale::Quick => &[1, 2, 4],
    };
    Structure::ALL
        .iter()
        .map(|&s| {
            let points = threads
                .iter()
                .map(|&n| {
                    let t = params.trace(s, n);
                    let nop = run_sim(&t, Mechanism::Nop, NvmMode::Cached).cycles as f64;
                    let ovh =
                        |m| 100.0 * (run_sim(&t, m, NvmMode::Cached).cycles as f64 / nop - 1.0);
                    (n, ovh(Mechanism::Bb), ovh(Mechanism::Lrp))
                })
                .collect();
            SweepRow {
                workload: s,
                points,
            }
        })
        .collect()
}

/// §6.4 size sensitivity: LRP overhead over NOP as the structure size
/// varies (the paper reports a flat trend for 8 K–1 M).
pub fn size_sensitivity(params: &EvalParams, s: Structure) -> Vec<(usize, f64, f64)> {
    let sizes: &[usize] = match params.scale {
        EvalScale::Full => &[32 * 1024, 128 * 1024, 512 * 1024],
        EvalScale::Quick => &[16, 48, 128],
    };
    sizes
        .iter()
        .map(|&size| {
            let t = WorkloadSpec::new(s)
                .initial_size(size)
                .threads(params.threads)
                .ops_per_thread(params.ops_per_thread)
                .seed(params.seed)
                .build_trace();
            let nop = run_sim(&t, Mechanism::Nop, NvmMode::Cached).cycles as f64;
            let bb = run_sim(&t, Mechanism::Bb, NvmMode::Cached).cycles as f64;
            let lrp = run_sim(&t, Mechanism::Lrp, NvmMode::Cached).cycles as f64;
            (size, 100.0 * (bb / nop - 1.0), 100.0 * (lrp / nop - 1.0))
        })
        .collect()
}

/// Figure 2 micro-demonstration: cross-epoch writes to one line conflict
/// under the full barrier but coalesce under RP's one-sided barrier.
/// Returns `(bb_critical_flushes, lrp_critical_flushes, bb_cycles,
/// lrp_cycles)`.
pub fn fig2_conflicts() -> (u64, u64, u64, u64) {
    use lrp_model::litmus::LitmusBuilder;
    // One thread alternates: write A (line La), release F (line Lf),
    // write A again — the Figure 2a pattern where WB hits WA's line from
    // a newer epoch.
    let mut b = LitmusBuilder::new(1);
    let la = 0x1000;
    let lf = 0x2000;
    for i in 0..64u64 {
        b.write(0, la, i);
        b.write_rel(0, lf, i);
    }
    let t = b.build();
    let bb = run_sim(&t, Mechanism::Bb, NvmMode::Cached);
    let lrp = run_sim(&t, Mechanism::Lrp, NvmMode::Cached);
    let crit = |s: &Stats| {
        s.flushes
            .get(&lrp_sim::stats::FlushClass::Critical)
            .copied()
            .unwrap_or(0)
    };
    (crit(&bb), crit(&lrp), bb.cycles, lrp.cycles)
}

/// Derived headline claims (paper vs measured), from Figure 5/6/7 data.
#[derive(Debug, Clone)]
pub struct Claims {
    /// BB's improvement over SB per workload, %.
    pub bb_over_sb: Vec<(Structure, f64)>,
    /// LRP's improvement over BB per workload, %.
    pub lrp_over_bb: Vec<(Structure, f64)>,
    /// LRP overhead over NOP per workload, %.
    pub lrp_over_nop: Vec<(Structure, f64)>,
}

/// Computes the claims table from Figure 5 rows.
pub fn claims(rows: &[NormRow]) -> Claims {
    let mut c = Claims {
        bb_over_sb: Vec::new(),
        lrp_over_bb: Vec::new(),
        lrp_over_nop: Vec::new(),
    };
    for r in rows {
        let sb = r.normalized[&Mechanism::Sb];
        let bb = r.normalized[&Mechanism::Bb];
        let lrp = r.normalized[&Mechanism::Lrp];
        c.bb_over_sb.push((r.workload, 100.0 * (1.0 - bb / sb)));
        c.lrp_over_bb.push((r.workload, 100.0 * (1.0 - lrp / bb)));
        c.lrp_over_nop.push((r.workload, 100.0 * (lrp - 1.0)));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig5_has_sane_shape() {
        let rows = fig_norm_exec(&EvalParams::quick(), NvmMode::Cached);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            for (&m, &v) in &r.normalized {
                assert!(v >= 0.95, "{m} below NOP on {}: {v}", r.workload);
                assert!(v < 20.0, "{m} absurd on {}: {v}", r.workload);
            }
        }
    }

    #[test]
    fn quick_fig6_lrp_not_worse_than_bb() {
        for r in fig6(&EvalParams::quick()) {
            assert!(
                r.lrp_pct <= r.bb_pct + 25.0,
                "{}: lrp {} vs bb {}",
                r.workload,
                r.lrp_pct,
                r.bb_pct
            );
        }
    }

    #[test]
    fn quick_fig8_produces_all_points() {
        let rows = fig8(&EvalParams::quick());
        assert_eq!(rows.len(), 5);
        for r in rows {
            assert_eq!(r.points.len(), 3);
        }
    }

    #[test]
    fn fig2_bb_conflicts_lrp_coalesces() {
        let (bb_crit, lrp_crit, bb_cycles, lrp_cycles) = fig2_conflicts();
        assert!(bb_crit > 0, "BB must take critical conflict flushes");
        assert_eq!(lrp_crit, 0, "LRP's one-sided barrier removes them");
        assert!(lrp_cycles <= bb_cycles);
    }

    #[test]
    fn claims_math() {
        let rows = vec![NormRow {
            workload: Structure::Queue,
            normalized: [
                (Mechanism::Sb, 2.0),
                (Mechanism::Bb, 1.5),
                (Mechanism::Lrp, 1.2),
            ]
            .into_iter()
            .collect(),
        }];
        let c = claims(&rows);
        assert!((c.bb_over_sb[0].1 - 25.0).abs() < 1e-9);
        assert!((c.lrp_over_bb[0].1 - 20.0).abs() < 1e-9);
        assert!((c.lrp_over_nop[0].1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn size_sensitivity_runs() {
        let pts = size_sensitivity(&EvalParams::quick(), Structure::HashMap);
        assert_eq!(pts.len(), 3);
    }
}
