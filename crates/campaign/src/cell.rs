//! End-to-end execution of one campaign cell: generate the workload
//! trace, replay it under the simulator, validate the persist schedule
//! against the RP specification, and check null recovery over sampled
//! crash points.

use crate::matrix::CellSpec;
use lrp_lfds::WorkloadSpec;
use lrp_obs::{BlameTable, CritSummary, Hist, RecorderConfig};
use lrp_recovery::{check_null_recovery, CrashPlan};
use lrp_sim::{Mechanism, Sim, SimConfig, Stats};

/// The deterministic measurement record of one completed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Simulator statistics.
    pub stats: Stats,
    /// Whether the RP specification was checked (skipped for NOP, which
    /// makes no persistency guarantees).
    pub rp_checked: bool,
    /// RP violations found (0 when unchecked).
    pub rp_violations: u64,
    /// Whether null recovery was checked.
    pub recovery_checked: bool,
    /// Crash points examined.
    pub recovery_points: u64,
    /// Crash points that failed validation.
    pub recovery_failures: u64,
    /// Events in the generated trace.
    pub trace_events: u64,
    /// Completed data-structure operations in the trace.
    pub trace_ops: u64,
    /// Flush issue → persist ack latency (cycles).
    pub flush_to_ack: Hist,
    /// Release commit → release persisted latency (cycles).
    pub release_to_persist: Hist,
    /// RET entry lifetime (cycles).
    pub ret_residency: Hist,
    /// Per-`OpSite` blame attribution of stall cycles and persist
    /// latency.
    pub blame: BlameTable,
    /// I1–I4 audit observations performed.
    pub audit_checks: u64,
    /// I1–I4 audit observations where the invariant did not hold.
    pub audit_violations: u64,
    /// Durability critical-path digest (per-segment cycles, folded
    /// chains, C1/C2 conservation counters).
    pub crit: CritSummary,
}

impl CellResult {
    /// True when every checked property held.
    pub fn healthy(&self) -> bool {
        self.rp_violations == 0 && self.recovery_failures == 0
    }
}

/// Runs one cell to completion. Panics propagate to the caller — the
/// scheduler wraps this in `catch_unwind` plus a watchdog.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    let trace = WorkloadSpec::new(spec.structure)
        .initial_size(spec.initial_size)
        .threads(spec.threads)
        .ops_per_thread(spec.ops_per_thread)
        .seed(spec.seed)
        .build_trace();
    trace.validate().expect("generated trace is well-formed");

    let cfg = SimConfig::new(spec.mechanism).nvm_mode(spec.mode);
    // Summaries-only recording: online histograms and audit counters,
    // no event ring and no time series, so cells stay cheap.
    let run = Sim::new(cfg, &trace)
        .with_recorder(RecorderConfig::summaries_only())
        .run();
    let obs = run.obs.as_ref().expect("recorder was attached");

    let (rp_checked, rp_violations) = if spec.mechanism == Mechanism::Nop {
        (false, 0)
    } else {
        match lrp_model::spec::check_rp(&trace, &run.schedule) {
            Ok(()) => (true, 0),
            Err(v) => (true, v.len() as u64),
        }
    };

    let (recovery_checked, recovery_points, recovery_failures) = if spec.mechanism == Mechanism::Nop
    {
        (false, 0, 0)
    } else {
        let plan = CrashPlan::Random {
            samples: spec.crash_samples,
            seed: spec.seed,
        };
        let report = check_null_recovery(spec.structure, &trace, &run.schedule, &plan);
        (
            true,
            report.crash_points as u64,
            report.failures.len() as u64,
        )
    };

    CellResult {
        flush_to_ack: obs.flush_to_ack.clone(),
        release_to_persist: obs.release_to_persist.clone(),
        ret_residency: obs.ret_residency.clone(),
        blame: obs.blame.clone(),
        audit_checks: obs.audit.total_checks(),
        audit_violations: obs.audit.total_violations(),
        crit: obs.crit.clone().unwrap_or_default(),
        stats: run.stats,
        rp_checked,
        rp_violations,
        recovery_checked,
        recovery_points,
        recovery_failures,
        trace_events: trace.events.len() as u64,
        trace_ops: trace.markers.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixSpec;

    #[test]
    fn smoke_cells_run_healthy() {
        for spec in MatrixSpec::smoke().cells() {
            let r = run_cell(&spec);
            assert!(r.healthy(), "{}: {r:?}", spec.id());
            assert!(r.stats.cycles > 0);
            assert!(r.trace_events > 0);
            // Critical-path conservation: one chain per traced release,
            // segments summing to the measured latency, inside wall time.
            assert_eq!(r.crit.audit.total_violations(), 0, "{}", spec.id());
            assert_eq!(r.crit.path.count, r.release_to_persist.count);
            assert_eq!(r.crit.path.sum, r.release_to_persist.sum);
            assert!(r.crit.max_path <= r.stats.cycles);
            if spec.mechanism == Mechanism::Nop {
                assert!(!r.rp_checked && !r.recovery_checked);
            } else {
                assert!(r.rp_checked && r.recovery_checked);
                assert!(r.recovery_points > 0);
            }
        }
    }

    #[test]
    fn cell_results_are_deterministic() {
        let spec = &MatrixSpec::smoke().cells()[1];
        assert_eq!(run_cell(spec), run_cell(spec));
    }
}
