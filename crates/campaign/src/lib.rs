//! `lrp-campaign`: a parallel, fault-tolerant evaluation-campaign
//! subsystem with machine-readable reports.
//!
//! A *campaign* sweeps the paper's evaluation matrix — data structure ×
//! persistency mechanism × NVM mode × thread count × seed — and runs
//! every cell end-to-end: generate the workload trace (`lrp-lfds` /
//! `lrp-exec`), replay it under the timing simulator (`lrp-sim`),
//! validate the persist schedule against the RP specification
//! (`lrp-model`), and check null recovery over sampled crash points
//! (`lrp-recovery`).
//!
//! Design pillars:
//!
//! * **Parallel yet deterministic** — cells are sharded across OS
//!   threads by a work-stealing [`scheduler`], but every aggregate is a
//!   pure function of the matrix and per-cell outcomes, so an N-worker
//!   campaign reports byte-for-byte what a serial one would.
//! * **Fault-tolerant** — each cell runs behind `catch_unwind` and a
//!   watchdog ([`isolation`]); one diverging or panicking replay records
//!   a `failed`/`timed_out` cell instead of killing the sweep.
//! * **Resumable** — completed cells stream to a JSONL manifest
//!   ([`report`]); a resumed campaign skips `ok` cells, re-runs the
//!   rest, and refuses a manifest whose matrix fingerprint differs.
//! * **Machine-readable** — results roll up into a versioned
//!   `BENCH_campaign.json` (geomean normalized execution times, 95%
//!   CIs over seeds, critical write-back fractions) plus a plain-text
//!   table ([`aggregate`], [`report`]).

pub mod aggregate;
pub mod cell;
pub mod isolation;
pub mod matrix;
pub mod report;
pub mod scheduler;

/// The deterministic JSON model — now defined in `lrp-obs` (the
/// observability exporters share it), re-exported here under its
/// historical path.
pub use lrp_obs::json;

pub use aggregate::{summarize, CampaignSummary, GroupSummary, MechSummary, OverallRow};
pub use cell::{run_cell, CellResult};
pub use isolation::{CellOutcome, CellRecord};
pub use json::Json;
pub use matrix::{CellSpec, MatrixSpec};
pub use report::{
    render_table, run_to_files, summary_json, write_bench_json, CampaignOutcome, FORMAT_VERSION,
};
pub use scheduler::{run_campaign, run_parallel, CampaignConfig};
