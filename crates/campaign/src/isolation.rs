//! Fault isolation for campaign cells.
//!
//! Each cell runs on its own detached OS thread behind `catch_unwind`
//! and a watchdog timeout: a diverging or panicking replay degrades to a
//! recorded [`CellOutcome::Failed`]/[`CellOutcome::TimedOut`] instead of
//! killing the sweep. A timed-out cell's thread cannot be killed, so it
//! is left to finish in the background (the simulator's own `max_cycles`
//! safety valve bounds how long that can be) while the campaign moves on.

use crate::cell::{run_cell, CellResult};
use crate::matrix::CellSpec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How one cell ended.
// The Ok payload dwarfs the error variants, but only one outcome per
// matrix cell ever lives at a time — not worth a Box indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Ran to completion (the result itself may still record RP or
    /// recovery violations — those are findings, not faults).
    Ok(CellResult),
    /// The cell panicked; the payload is the panic message.
    Failed {
        /// Panic message.
        error: String,
    },
    /// The watchdog expired before the cell finished.
    TimedOut {
        /// Configured timeout that expired.
        timeout_secs: f64,
    },
}

impl CellOutcome {
    /// Stable outcome tag for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Failed { .. } => "failed",
            CellOutcome::TimedOut { .. } => "timed_out",
        }
    }
}

/// One cell's spec, outcome, and (non-deterministic, report-only) wall
/// time. Aggregates must never read `wall_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell that ran.
    pub spec: CellSpec,
    /// How it ended.
    pub outcome: CellOutcome,
    /// Wall-clock milliseconds (diagnostic only; excluded from
    /// aggregates so parallel and serial campaigns agree byte-for-byte).
    pub wall_ms: f64,
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `spec` on a watchdogged detached thread; `inject_panic` forces a
/// deliberate panic (fault-injection for testing the isolation path).
pub fn run_isolated(spec: &CellSpec, timeout: Duration, inject_panic: bool) -> CellRecord {
    let started = Instant::now();
    let (tx, rx) = mpsc::channel::<Result<CellResult, String>>();
    let cell = spec.clone();
    let builder = std::thread::Builder::new().name(format!("cell-{}", cell.index));
    let handle = builder.spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected fault in cell {}", cell.id());
            }
            run_cell(&cell)
        }))
        .map_err(panic_message);
        // The receiver may have timed out and gone away; that's fine.
        let _ = tx.send(outcome);
    });
    let outcome = match handle {
        Err(e) => CellOutcome::Failed {
            error: format!("spawn failed: {e}"),
        },
        Ok(handle) => match rx.recv_timeout(timeout) {
            Ok(Ok(result)) => {
                let _ = handle.join();
                CellOutcome::Ok(result)
            }
            Ok(Err(error)) => {
                let _ = handle.join();
                CellOutcome::Failed { error }
            }
            Err(_) => CellOutcome::TimedOut {
                timeout_secs: timeout.as_secs_f64(),
            },
        },
    };
    CellRecord {
        spec: spec.clone(),
        outcome,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Silences the default panic printer for cell threads while `f` runs,
/// so an injected or genuine cell fault doesn't spray a backtrace into
/// campaign output; panics on other threads keep the previous hook
/// behaviour.
pub fn with_quiet_cell_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::sync::Arc;
    let prev: Arc<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send> =
        Arc::from(std::panic::take_hook());
    let delegate = prev.clone();
    std::panic::set_hook(Box::new(move |info| {
        let is_cell = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("cell-"));
        if !is_cell {
            delegate(info);
        }
    }));
    let result = f();
    std::panic::set_hook(Box::new(move |info| prev(info)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixSpec;

    fn smoke_cell() -> CellSpec {
        MatrixSpec::smoke().cells().remove(1)
    }

    #[test]
    fn healthy_cell_completes() {
        let rec = run_isolated(&smoke_cell(), Duration::from_secs(120), false);
        assert_eq!(rec.outcome.kind(), "ok");
        assert!(rec.wall_ms >= 0.0);
    }

    #[test]
    fn injected_panic_is_captured_not_propagated() {
        with_quiet_cell_panics(|| {
            let rec = run_isolated(&smoke_cell(), Duration::from_secs(120), true);
            match rec.outcome {
                CellOutcome::Failed { ref error } => {
                    assert!(error.contains("injected fault"), "{error}");
                }
                ref other => panic!("expected Failed, got {other:?}"),
            }
        });
    }

    #[test]
    fn watchdog_fires_on_a_stuck_cell() {
        // A zero timeout expires before any real cell can finish.
        let rec = run_isolated(&smoke_cell(), Duration::from_millis(0), false);
        assert_eq!(rec.outcome.kind(), "timed_out");
    }
}
