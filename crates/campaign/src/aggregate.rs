//! Deterministic aggregation of campaign cell results.
//!
//! Shapes follow the paper's figures: per-(structure, mode, threads)
//! groups with normalized-to-NOP execution time (Fig. 5/7), critical
//! write-back fractions (Fig. 6), thread sweeps (Fig. 8), plus geomean
//! speedups and 95% confidence intervals over the seed axis.
//!
//! Everything here is a pure function of the matrix and the per-cell
//! outcomes — never of wall-clock time or worker interleaving — so a
//! parallel campaign aggregates byte-identically to a serial one.

use crate::isolation::{CellOutcome, CellRecord};
use crate::matrix::MatrixSpec;
use lrp_lfds::Structure;
use lrp_obs::{BlameTable, CritSummary, Hist};
use lrp_sim::{Mechanism, NvmMode, Stats};
use std::collections::HashMap;

/// Geometric mean; `None` when empty or any value is non-positive.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Arithmetic mean; `None` when empty.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs).expect("non-empty");
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Normal-approximation 95% confidence interval for the mean.
pub fn ci95(xs: &[f64]) -> Option<(f64, f64)> {
    let m = mean(xs)?;
    let half = 1.96 * stddev(xs) / (xs.len() as f64).sqrt();
    Some((m - half, m + half))
}

/// One mechanism's aggregate within a (structure, mode, threads) group.
#[derive(Debug, Clone)]
pub struct MechSummary {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Cells that completed.
    pub ok: usize,
    /// Cells that panicked.
    pub failed: usize,
    /// Cells the watchdog reaped.
    pub timed_out: usize,
    /// `(seed, cycles)` for completed cells, in matrix seed order.
    pub cycles_by_seed: Vec<(u64, u64)>,
    /// Execution time normalized to the same-seed NOP run (Fig. 5/7
    /// metric), in matrix seed order; empty without NOP coverage.
    pub normalized: Vec<f64>,
    /// Geomean of `normalized` over seeds.
    pub norm_geomean: Option<f64>,
    /// 95% CI of `normalized` over seeds.
    pub norm_ci95: Option<(f64, f64)>,
    /// Mean critical write-back fraction over seeds (Fig. 6 metric).
    pub critical_fraction_mean: Option<f64>,
    /// All completed cells' counters merged.
    pub merged: Stats,
    /// All completed cells' flush-to-ack latency histograms merged.
    pub flush_to_ack: Hist,
    /// All completed cells' release-to-persist latency histograms merged.
    pub release_to_persist: Hist,
    /// All completed cells' RET-residency histograms merged.
    pub ret_residency: Hist,
    /// All completed cells' blame tables merged.
    pub blame: BlameTable,
    /// All completed cells' critical-path digests merged.
    pub crit: CritSummary,
    /// Total I1–I4 audit violations (0 for a healthy mechanism).
    pub audit_violations: u64,
    /// Total RP violations (0 for a healthy mechanism).
    pub rp_violations: u64,
    /// Total crash points examined by null-recovery checking.
    pub recovery_points: u64,
    /// Total crash points that failed recovery.
    pub recovery_failures: u64,
}

/// Aggregates for one (structure, mode, threads) point, all mechanisms.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Workload structure.
    pub structure: Structure,
    /// NVM mode.
    pub mode: NvmMode,
    /// Worker threads.
    pub threads: u16,
    /// Per-mechanism aggregates, in matrix mechanism order.
    pub mechs: Vec<MechSummary>,
}

/// Campaign-wide rollup of one (mode, mechanism) pair across every
/// structure, thread count, and seed.
#[derive(Debug, Clone)]
pub struct OverallRow {
    /// NVM mode.
    pub mode: NvmMode,
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Geomean normalized execution time (the headline speedup number).
    pub norm_geomean: Option<f64>,
    /// 95% CI of normalized execution time.
    pub norm_ci95: Option<(f64, f64)>,
    /// Mean critical write-back fraction.
    pub critical_fraction_mean: Option<f64>,
}

/// The full aggregate view of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Cells in the matrix.
    pub total_cells: usize,
    /// Completed cells.
    pub ok: usize,
    /// Panicked cells.
    pub failed: usize,
    /// Timed-out cells.
    pub timed_out: usize,
    /// Per-group aggregates in canonical matrix order.
    pub groups: Vec<GroupSummary>,
    /// Campaign-wide rollups, mode-major then matrix mechanism order.
    pub overall: Vec<OverallRow>,
}

impl CampaignSummary {
    /// Ids of cells that did not complete, in matrix order.
    pub fn incomplete<'a>(&self, records: &'a [CellRecord]) -> Vec<&'a CellRecord> {
        records
            .iter()
            .filter(|r| !matches!(r.outcome, CellOutcome::Ok(_)))
            .collect()
    }
}

type Key = (Structure, Mechanism, NvmMode, u16, u64);

/// Builds the deterministic aggregate view of `records` for `matrix`.
/// Records may cover only part of the matrix (failed cells, interrupted
/// campaigns); missing cells simply don't contribute.
pub fn summarize(matrix: &MatrixSpec, records: &[CellRecord]) -> CampaignSummary {
    let by_key: HashMap<Key, &CellRecord> = records
        .iter()
        .map(|r| {
            let s = &r.spec;
            ((s.structure, s.mechanism, s.mode, s.threads, s.seed), r)
        })
        .collect();

    let mut ok = 0;
    let mut failed = 0;
    let mut timed_out = 0;
    for r in records {
        match r.outcome {
            CellOutcome::Ok(_) => ok += 1,
            CellOutcome::Failed { .. } => failed += 1,
            CellOutcome::TimedOut { .. } => timed_out += 1,
        }
    }

    let mut groups = Vec::new();
    for &structure in &matrix.structures {
        for &mode in &matrix.modes {
            for &threads in &matrix.threads {
                let mut mechs = Vec::new();
                for &mechanism in &matrix.mechanisms {
                    mechs.push(summarize_mech(
                        matrix, &by_key, structure, mode, threads, mechanism,
                    ));
                }
                groups.push(GroupSummary {
                    structure,
                    mode,
                    threads,
                    mechs,
                });
            }
        }
    }

    let mut overall = Vec::new();
    for &mode in &matrix.modes {
        for &mechanism in &matrix.mechanisms {
            let mut normalized = Vec::new();
            let mut fractions = Vec::new();
            for g in groups.iter().filter(|g| g.mode == mode) {
                for m in g.mechs.iter().filter(|m| m.mechanism == mechanism) {
                    normalized.extend_from_slice(&m.normalized);
                    if let Some(f) = m.critical_fraction_mean {
                        fractions.push(f);
                    }
                }
            }
            overall.push(OverallRow {
                mode,
                mechanism,
                norm_geomean: geomean(&normalized),
                norm_ci95: ci95(&normalized),
                critical_fraction_mean: mean(&fractions),
            });
        }
    }

    CampaignSummary {
        total_cells: matrix.len(),
        ok,
        failed,
        timed_out,
        groups,
        overall,
    }
}

fn summarize_mech(
    matrix: &MatrixSpec,
    by_key: &HashMap<Key, &CellRecord>,
    structure: Structure,
    mode: NvmMode,
    threads: u16,
    mechanism: Mechanism,
) -> MechSummary {
    let mut s = MechSummary {
        mechanism,
        ok: 0,
        failed: 0,
        timed_out: 0,
        cycles_by_seed: Vec::new(),
        normalized: Vec::new(),
        norm_geomean: None,
        norm_ci95: None,
        critical_fraction_mean: None,
        merged: Stats::default(),
        flush_to_ack: Hist::new(),
        release_to_persist: Hist::new(),
        ret_residency: Hist::new(),
        blame: BlameTable::default(),
        crit: CritSummary::default(),
        audit_violations: 0,
        rp_violations: 0,
        recovery_points: 0,
        recovery_failures: 0,
    };
    let mut fractions = Vec::new();
    for &seed in &matrix.seeds {
        let Some(rec) = by_key.get(&(structure, mechanism, mode, threads, seed)) else {
            continue;
        };
        match &rec.outcome {
            CellOutcome::Failed { .. } => s.failed += 1,
            CellOutcome::TimedOut { .. } => s.timed_out += 1,
            CellOutcome::Ok(result) => {
                s.ok += 1;
                s.cycles_by_seed.push((seed, result.stats.cycles));
                s.merged.merge(&result.stats);
                s.flush_to_ack.merge(&result.flush_to_ack);
                s.release_to_persist.merge(&result.release_to_persist);
                s.ret_residency.merge(&result.ret_residency);
                s.blame.merge(&result.blame);
                s.crit.merge(&result.crit);
                s.audit_violations += result.audit_violations;
                s.rp_violations += result.rp_violations;
                s.recovery_points += result.recovery_points;
                s.recovery_failures += result.recovery_failures;
                if result.stats.total_flushes() > 0 {
                    fractions.push(result.stats.critical_writeback_fraction());
                }
                // Normalize to the same-seed NOP run when it completed.
                if mechanism != Mechanism::Nop {
                    if let Some(nop) = by_key.get(&(structure, Mechanism::Nop, mode, threads, seed))
                    {
                        if let CellOutcome::Ok(nop_result) = &nop.outcome {
                            if nop_result.stats.cycles > 0 {
                                s.normalized.push(
                                    result.stats.cycles as f64 / nop_result.stats.cycles as f64,
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    s.norm_geomean = geomean(&s.normalized);
    s.norm_ci95 = ci95(&s.normalized);
    s.critical_fraction_mean = mean(&fractions);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::run_cell;
    use crate::matrix::MatrixSpec;

    #[test]
    fn geomean_and_ci_helpers() {
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[2.0, 0.0]), None);
        let g = geomean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - 2f64.sqrt()).abs() < 1e-12);
        let (lo, hi) = ci95(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!((lo, hi), (2.0, 2.0));
        let (lo, hi) = ci95(&[1.0, 3.0]).unwrap();
        assert!(lo < 2.0 && 2.0 < hi);
    }

    /// Merging per-cell stats must equal accumulating the same runs
    /// serially, and the aggregate view must expose exactly that merge.
    #[test]
    fn merged_stats_equal_serial_accumulation() {
        let mut matrix = MatrixSpec::smoke();
        matrix.seeds = vec![1, 2, 3];
        let cells = matrix.cells();
        let records: Vec<CellRecord> = cells
            .iter()
            .map(|spec| CellRecord {
                spec: spec.clone(),
                outcome: CellOutcome::Ok(run_cell(spec)),
                wall_ms: 0.0,
            })
            .collect();

        let mut serial = Stats::default();
        let mut expected_ops = 0;
        for r in &records {
            if let (CellOutcome::Ok(res), Mechanism::Lrp) = (&r.outcome, r.spec.mechanism) {
                serial.merge(&res.stats);
                expected_ops += res.stats.ops;
            }
        }

        let summary = summarize(&matrix, &records);
        let lrp = summary.groups[0]
            .mechs
            .iter()
            .find(|m| m.mechanism == Mechanism::Lrp)
            .unwrap();
        assert_eq!(lrp.merged, serial);
        assert_eq!(lrp.merged.ops, expected_ops);
        assert_eq!(lrp.ok, 3);
        assert_eq!(lrp.cycles_by_seed.len(), 3);
        assert_eq!(lrp.normalized.len(), 3);
        assert!(lrp.norm_geomean.unwrap() >= 0.9);
        let (lo, hi) = lrp.norm_ci95.unwrap();
        assert!(lo <= lrp.norm_geomean.unwrap() * 1.2 && hi >= lo);
    }

    #[test]
    fn failed_cells_are_counted_not_aggregated() {
        let matrix = MatrixSpec::smoke();
        let cells = matrix.cells();
        let records: Vec<CellRecord> = cells
            .iter()
            .map(|spec| CellRecord {
                spec: spec.clone(),
                outcome: if spec.mechanism == Mechanism::Lrp {
                    CellOutcome::Failed {
                        error: "injected".to_string(),
                    }
                } else {
                    CellOutcome::Ok(run_cell(spec))
                },
                wall_ms: 0.0,
            })
            .collect();
        let summary = summarize(&matrix, &records);
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.ok, 1);
        let lrp = summary.groups[0]
            .mechs
            .iter()
            .find(|m| m.mechanism == Mechanism::Lrp)
            .unwrap();
        assert_eq!(lrp.failed, 1);
        assert_eq!(lrp.ok, 0);
        assert!(lrp.cycles_by_seed.is_empty());
        assert_eq!(lrp.merged, Stats::default());
    }

    #[test]
    fn partial_records_summarize_without_panicking() {
        let matrix = MatrixSpec::smoke();
        let summary = summarize(&matrix, &[]);
        assert_eq!(summary.ok, 0);
        assert_eq!(summary.total_cells, matrix.len());
        assert!(summary
            .groups
            .iter()
            .all(|g| g.mechs.iter().all(|m| m.norm_geomean.is_none())));
    }
}
