//! Work-stealing parallel execution of a campaign's cells.
//!
//! Cells are dealt round-robin onto per-worker deques; each worker
//! drains its own deque from the front and, when empty, steals from the
//! back of a victim's. Results stream to the caller's sink in completion
//! order (for JSONL persistence) and are returned sorted by cell index,
//! so every aggregate downstream is a pure function of the matrix — the
//! worker count and steal interleaving cannot perturb reports.

use crate::isolation::{run_isolated, with_quiet_cell_panics, CellRecord};
use crate::matrix::CellSpec;
use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Execution policy for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker OS threads (1 = serial; results are identical either way).
    pub workers: usize,
    /// Watchdog timeout per cell.
    pub timeout: Duration,
    /// Cell id or index that should deliberately panic (isolation-path
    /// fault injection; `None` in real campaigns).
    pub inject_panic: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            timeout: Duration::from_secs(300),
            inject_panic: None,
        }
    }
}

impl CampaignConfig {
    /// True when fault injection targets `spec`.
    fn injects(&self, spec: &CellSpec) -> bool {
        self.inject_panic
            .as_deref()
            .is_some_and(|t| t == spec.id() || t == spec.index.to_string())
    }
}

/// Runs `f` over `items` on `workers` work-stealing threads and
/// returns the results in item order.
///
/// Items are dealt round-robin onto per-worker deques; each worker
/// drains its own deque from the front and, when empty, steals from
/// the back of a victim's — the same discipline [`run_campaign`] uses
/// for campaign cells, exposed generically so other fan-outs (the
/// host benchmark's `--jobs`, trace pre-building) reuse it. `each`
/// runs on the caller's thread once per completed item in completion
/// order (for streaming persistence or progress lines). With
/// `workers <= 1` everything runs serially on the caller's thread and
/// no threads are spawned.
pub fn run_parallel<T, R>(
    items: Vec<T>,
    workers: usize,
    f: impl Fn(T) -> R + Sync,
    mut each: impl FnMut(&R),
) -> Vec<R>
where
    T: Send,
    R: Send,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, total);
    if workers == 1 {
        return items
            .into_iter()
            .map(|item| {
                let r = f(item);
                each(&r);
                r
            })
            .collect();
    }

    let mut deques: Vec<VecDeque<(usize, T)>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].push_back((i, item));
    }
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> = deques.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut out: Vec<Option<R>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let deques = &deques;
            let f = &f;
            scope.spawn(move || {
                loop {
                    // Own work first (front), then steal (back).
                    let next = deques[w].lock().unwrap().pop_front().or_else(|| {
                        (1..workers)
                            .find_map(|d| deques[(w + d) % workers].lock().unwrap().pop_back())
                    });
                    let Some((i, item)) = next else { break };
                    if tx.send((i, f(item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            each(&r);
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|r| r.expect("a worker died before completing its item"))
        .collect()
}

/// Runs `cells` under `cfg`, invoking `sink` once per completed cell in
/// completion order, and returns all records sorted by cell index.
pub fn run_campaign(
    cells: Vec<CellSpec>,
    cfg: &CampaignConfig,
    mut sink: impl FnMut(&CellRecord),
) -> Vec<CellRecord> {
    let mut records = with_quiet_cell_panics(|| {
        run_parallel(
            cells,
            cfg.workers,
            |spec| run_isolated(&spec, cfg.timeout, cfg.injects(&spec)),
            |record| sink(record),
        )
    });
    // Item order is matrix order already; sort by the specs' own index
    // so callers can rely on it even for hand-built cell lists.
    records.sort_by_key(|r| r.spec.index);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolation::CellOutcome;
    use crate::matrix::MatrixSpec;

    fn quick_matrix() -> MatrixSpec {
        let mut m = MatrixSpec::smoke();
        m.seeds = vec![1, 2];
        m.threads = vec![1, 2];
        m
    }

    fn strip_wall(records: &[CellRecord]) -> Vec<(usize, CellOutcome)> {
        records
            .iter()
            .map(|r| (r.spec.index, r.outcome.clone()))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let cells = quick_matrix().cells();
        let serial = run_campaign(
            cells.clone(),
            &CampaignConfig {
                workers: 1,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        let parallel = run_campaign(
            cells,
            &CampaignConfig {
                workers: 4,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        assert_eq!(strip_wall(&serial), strip_wall(&parallel));
        assert!(serial
            .iter()
            .all(|r| matches!(r.outcome, CellOutcome::Ok(_))));
    }

    #[test]
    fn sink_sees_every_cell_once() {
        let cells = quick_matrix().cells();
        let n = cells.len();
        let mut seen = Vec::new();
        let records = run_campaign(
            cells,
            &CampaignConfig {
                workers: 3,
                ..CampaignConfig::default()
            },
            |r| seen.push(r.spec.index),
        );
        assert_eq!(records.len(), n);
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert!(records
            .windows(2)
            .all(|w| w[0].spec.index < w[1].spec.index));
    }

    #[test]
    fn injected_panic_degrades_one_cell_only() {
        let cells = quick_matrix().cells();
        let target = cells[1].id();
        let records = run_campaign(
            cells,
            &CampaignConfig {
                workers: 2,
                inject_panic: Some(target.clone()),
                ..CampaignConfig::default()
            },
            |_| {},
        );
        let failed: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.outcome, CellOutcome::Failed { .. }))
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].spec.id(), target);
        assert!(records
            .iter()
            .filter(|r| r.spec.id() != target)
            .all(|r| matches!(r.outcome, CellOutcome::Ok(_))));
    }

    #[test]
    fn run_parallel_matches_serial_and_preserves_item_order() {
        let items: Vec<usize> = (0..37).collect();
        let mut seen = 0;
        let parallel = run_parallel(items.clone(), 4, |i| i * 2 + 1, |_| seen += 1);
        assert_eq!(seen, 37);
        assert_eq!(parallel, (0..37).map(|i| i * 2 + 1).collect::<Vec<_>>());
        let serial = run_parallel(items, 1, |i| i * 2 + 1, |_| {});
        assert_eq!(parallel, serial);
        assert_eq!(run_parallel(Vec::<usize>::new(), 8, |i| i, |_| {}), vec![]);
    }

    #[test]
    fn empty_matrix_is_a_noop() {
        let records = run_campaign(Vec::new(), &CampaignConfig::default(), |_| {
            panic!("no cells should complete")
        });
        assert!(records.is_empty());
    }
}
