//! Work-stealing parallel execution of a campaign's cells.
//!
//! Cells are dealt round-robin onto per-worker deques; each worker
//! drains its own deque from the front and, when empty, steals from the
//! back of a victim's. Results stream to the caller's sink in completion
//! order (for JSONL persistence) and are returned sorted by cell index,
//! so every aggregate downstream is a pure function of the matrix — the
//! worker count and steal interleaving cannot perturb reports.

use crate::isolation::{run_isolated, with_quiet_cell_panics, CellRecord};
use crate::matrix::CellSpec;
use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Execution policy for one campaign run.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Worker OS threads (1 = serial; results are identical either way).
    pub workers: usize,
    /// Watchdog timeout per cell.
    pub timeout: Duration,
    /// Cell id or index that should deliberately panic (isolation-path
    /// fault injection; `None` in real campaigns).
    pub inject_panic: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            timeout: Duration::from_secs(300),
            inject_panic: None,
        }
    }
}

impl CampaignConfig {
    /// True when fault injection targets `spec`.
    fn injects(&self, spec: &CellSpec) -> bool {
        self.inject_panic
            .as_deref()
            .is_some_and(|t| t == spec.id() || t == spec.index.to_string())
    }
}

/// Runs `cells` under `cfg`, invoking `sink` once per completed cell in
/// completion order, and returns all records sorted by cell index.
pub fn run_campaign(
    cells: Vec<CellSpec>,
    cfg: &CampaignConfig,
    mut sink: impl FnMut(&CellRecord),
) -> Vec<CellRecord> {
    let total = cells.len();
    if total == 0 {
        return Vec::new();
    }
    let workers = cfg.workers.clamp(1, total.max(1));

    // Deal cells round-robin so every worker starts with a comparable
    // slice of the matrix (neighbouring cells have similar cost).
    let mut deques: Vec<VecDeque<CellSpec>> = (0..workers).map(|_| VecDeque::new()).collect();
    for (i, cell) in cells.into_iter().enumerate() {
        deques[i % workers].push_back(cell);
    }
    let deques: Vec<Mutex<VecDeque<CellSpec>>> = deques.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<CellRecord>();
    let mut records: Vec<CellRecord> = Vec::with_capacity(total);

    with_quiet_cell_panics(|| {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let deques = &deques;
                let cfg = cfg.clone();
                scope.spawn(move || {
                    loop {
                        // Own work first (front), then steal (back).
                        let next = deques[w].lock().unwrap().pop_front().or_else(|| {
                            (1..workers)
                                .find_map(|d| deques[(w + d) % workers].lock().unwrap().pop_back())
                        });
                        let Some(spec) = next else { break };
                        let record = run_isolated(&spec, cfg.timeout, cfg.injects(&spec));
                        if tx.send(record).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for record in rx {
                sink(&record);
                records.push(record);
            }
        });
    });

    records.sort_by_key(|r| r.spec.index);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolation::CellOutcome;
    use crate::matrix::MatrixSpec;

    fn quick_matrix() -> MatrixSpec {
        let mut m = MatrixSpec::smoke();
        m.seeds = vec![1, 2];
        m.threads = vec![1, 2];
        m
    }

    fn strip_wall(records: &[CellRecord]) -> Vec<(usize, CellOutcome)> {
        records
            .iter()
            .map(|r| (r.spec.index, r.outcome.clone()))
            .collect()
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let cells = quick_matrix().cells();
        let serial = run_campaign(
            cells.clone(),
            &CampaignConfig {
                workers: 1,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        let parallel = run_campaign(
            cells,
            &CampaignConfig {
                workers: 4,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        assert_eq!(strip_wall(&serial), strip_wall(&parallel));
        assert!(serial
            .iter()
            .all(|r| matches!(r.outcome, CellOutcome::Ok(_))));
    }

    #[test]
    fn sink_sees_every_cell_once() {
        let cells = quick_matrix().cells();
        let n = cells.len();
        let mut seen = Vec::new();
        let records = run_campaign(
            cells,
            &CampaignConfig {
                workers: 3,
                ..CampaignConfig::default()
            },
            |r| seen.push(r.spec.index),
        );
        assert_eq!(records.len(), n);
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
        assert!(records
            .windows(2)
            .all(|w| w[0].spec.index < w[1].spec.index));
    }

    #[test]
    fn injected_panic_degrades_one_cell_only() {
        let cells = quick_matrix().cells();
        let target = cells[1].id();
        let records = run_campaign(
            cells,
            &CampaignConfig {
                workers: 2,
                inject_panic: Some(target.clone()),
                ..CampaignConfig::default()
            },
            |_| {},
        );
        let failed: Vec<_> = records
            .iter()
            .filter(|r| matches!(r.outcome, CellOutcome::Failed { .. }))
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].spec.id(), target);
        assert!(records
            .iter()
            .filter(|r| r.spec.id() != target)
            .all(|r| matches!(r.outcome, CellOutcome::Ok(_))));
    }

    #[test]
    fn empty_matrix_is_a_noop() {
        let records = run_campaign(Vec::new(), &CampaignConfig::default(), |_| {
            panic!("no cells should complete")
        });
        assert!(records.is_empty());
    }
}
