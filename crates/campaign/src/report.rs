//! Machine-readable campaign artifacts.
//!
//! Two outputs, both byte-deterministic for a given matrix and cell
//! outcomes:
//!
//! * a **JSONL manifest** (one header line, then one line per completed
//!   cell, appended as cells finish) — the resume log. Wall-clock times
//!   appear here for diagnostics but never feed any aggregate;
//! * a **summary report** (`BENCH_campaign.json` + a plain-text table)
//!   rolled up from the manifest. The summary contains no wall times at
//!   all, so serial and parallel campaigns write identical bytes.
//!
//! Resume semantics: the manifest header carries the matrix
//! [`fingerprint`](crate::matrix::MatrixSpec::fingerprint); resuming
//! against a different matrix is refused. `Ok` cells are skipped on
//! resume; `failed`/`timed_out` cells run again; when a cell appears
//! more than once the last record wins.

use crate::aggregate::{summarize, CampaignSummary};
use crate::cell::CellResult;
use crate::isolation::{CellOutcome, CellRecord};
use crate::json::Json;
use crate::matrix::{CellSpec, MatrixSpec};
use crate::scheduler::{run_campaign, CampaignConfig};
use lrp_lfds::Structure;
use lrp_obs::blame::{blame_json, parse_blame};
use lrp_obs::critpath::{crit_json, parse_crit};
use lrp_obs::metrics::{hist_json, stats_json};
use lrp_obs::{BlameTable, CritSummary, Hist};
use lrp_sim::{Mechanism, NvmMode, Stats};
use std::io::{self, Write as _};
use std::path::Path;

/// Manifest / report format version; bump on breaking layout changes.
pub const FORMAT_VERSION: u64 = 1;

fn opt_f64(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::F64)
}

fn opt_ci(v: Option<(f64, f64)>) -> Json {
    v.map_or(Json::Null, |(lo, hi)| {
        Json::Arr(vec![Json::F64(lo), Json::F64(hi)])
    })
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// The JSONL manifest header line.
pub fn header_json(matrix: &MatrixSpec) -> Json {
    Json::obj([
        ("type", Json::Str("campaign-header".to_string())),
        ("format_version", Json::U64(FORMAT_VERSION)),
        ("fingerprint", Json::Str(matrix.fingerprint())),
        ("matrix", Json::Str(matrix.describe())),
        ("cells", Json::U64(matrix.len() as u64)),
    ])
}

fn field_u64(doc: &Json, key: &str) -> io::Result<u64> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad_data(format!("missing or non-integer field {key:?}")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> io::Result<&'a str> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad_data(format!("missing or non-string field {key:?}")))
}

fn field_bool(doc: &Json, key: &str) -> io::Result<bool> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| bad_data(format!("missing or non-boolean field {key:?}")))
}

fn parse_stats(doc: &Json) -> io::Result<Stats> {
    lrp_obs::metrics::parse_stats(doc).map_err(bad_data)
}

fn result_json(r: &CellResult) -> Json {
    Json::obj([
        ("stats", stats_json(&r.stats)),
        ("rp_checked", Json::Bool(r.rp_checked)),
        ("rp_violations", Json::U64(r.rp_violations)),
        ("recovery_checked", Json::Bool(r.recovery_checked)),
        ("recovery_points", Json::U64(r.recovery_points)),
        ("recovery_failures", Json::U64(r.recovery_failures)),
        ("trace_events", Json::U64(r.trace_events)),
        ("trace_ops", Json::U64(r.trace_ops)),
        (
            "hists",
            Json::obj([
                ("flush_to_ack", hist_json(&r.flush_to_ack)),
                ("release_to_persist", hist_json(&r.release_to_persist)),
                ("ret_residency", hist_json(&r.ret_residency)),
            ]),
        ),
        ("blame", blame_json(&r.blame)),
        ("critpath", crit_json(&r.crit)),
        (
            "audit",
            Json::obj([
                ("checks", Json::U64(r.audit_checks)),
                ("violations", Json::U64(r.audit_violations)),
            ]),
        ),
    ])
}

/// Parses the `critpath` key; pre-critpath manifests lack it entirely,
/// which parses as an empty digest.
fn field_crit(doc: &Json) -> io::Result<CritSummary> {
    match doc.get("critpath") {
        Some(c) => parse_crit(c).map_err(bad_data),
        None => Ok(CritSummary::default()),
    }
}

/// Parses the `blame` key; pre-profiler manifests lack it entirely,
/// which parses as an empty table.
fn field_blame(doc: &Json) -> io::Result<BlameTable> {
    match doc.get("blame") {
        Some(b) => parse_blame(b).map_err(bad_data),
        None => Ok(BlameTable::default()),
    }
}

/// Parses one named histogram under the `hists` key; pre-observability
/// manifests lack it entirely, which parses as an empty histogram.
fn field_hist(doc: &Json, name: &str) -> io::Result<Hist> {
    match doc.get("hists").and_then(|h| h.get(name)) {
        Some(h) => lrp_obs::metrics::parse_hist(h).map_err(bad_data),
        None => Ok(Hist::new()),
    }
}

fn parse_result(doc: &Json) -> io::Result<CellResult> {
    let audit = doc.get("audit");
    let audit_u64 = |key: &str| -> io::Result<u64> {
        match audit {
            Some(a) => field_u64(a, key),
            None => Ok(0),
        }
    };
    Ok(CellResult {
        stats: parse_stats(
            doc.get("stats")
                .ok_or_else(|| bad_data("missing field \"stats\""))?,
        )?,
        rp_checked: field_bool(doc, "rp_checked")?,
        rp_violations: field_u64(doc, "rp_violations")?,
        recovery_checked: field_bool(doc, "recovery_checked")?,
        recovery_points: field_u64(doc, "recovery_points")?,
        recovery_failures: field_u64(doc, "recovery_failures")?,
        trace_events: field_u64(doc, "trace_events")?,
        trace_ops: field_u64(doc, "trace_ops")?,
        flush_to_ack: field_hist(doc, "flush_to_ack")?,
        release_to_persist: field_hist(doc, "release_to_persist")?,
        ret_residency: field_hist(doc, "ret_residency")?,
        blame: field_blame(doc)?,
        crit: field_crit(doc)?,
        audit_checks: audit_u64("checks")?,
        audit_violations: audit_u64("violations")?,
    })
}

fn spec_json(spec: &CellSpec) -> Json {
    Json::obj([
        ("structure", Json::Str(spec.structure.name().to_string())),
        ("mechanism", Json::Str(spec.mechanism.name().to_string())),
        ("mode", Json::Str(spec.mode.name().to_string())),
        ("threads", Json::U64(spec.threads as u64)),
        ("seed", Json::U64(spec.seed)),
        ("initial_size", Json::U64(spec.initial_size as u64)),
        ("ops_per_thread", Json::U64(spec.ops_per_thread as u64)),
        ("crash_samples", Json::U64(spec.crash_samples as u64)),
    ])
}

fn parse_spec(doc: &Json, index: usize) -> io::Result<CellSpec> {
    let structure = Structure::from_name(field_str(doc, "structure")?)
        .ok_or_else(|| bad_data("unknown structure"))?;
    let mechanism = Mechanism::from_name(field_str(doc, "mechanism")?)
        .ok_or_else(|| bad_data("unknown mechanism"))?;
    let mode =
        NvmMode::from_name(field_str(doc, "mode")?).ok_or_else(|| bad_data("unknown NVM mode"))?;
    Ok(CellSpec {
        index,
        structure,
        mechanism,
        mode,
        threads: field_u64(doc, "threads")? as u16,
        seed: field_u64(doc, "seed")?,
        initial_size: field_u64(doc, "initial_size")? as usize,
        ops_per_thread: field_u64(doc, "ops_per_thread")? as usize,
        crash_samples: field_u64(doc, "crash_samples")? as usize,
    })
}

/// One manifest JSONL line for a completed cell.
pub fn cell_json(record: &CellRecord) -> Json {
    let mut pairs = vec![
        ("type", Json::Str("cell".to_string())),
        ("index", Json::U64(record.spec.index as u64)),
        ("id", Json::Str(record.spec.id())),
        ("spec", spec_json(&record.spec)),
        ("outcome", Json::Str(record.outcome.kind().to_string())),
    ];
    match &record.outcome {
        CellOutcome::Ok(result) => pairs.push(("result", result_json(result))),
        CellOutcome::Failed { error } => pairs.push(("error", Json::Str(error.clone()))),
        CellOutcome::TimedOut { timeout_secs } => {
            pairs.push(("timeout_secs", Json::F64(*timeout_secs)));
        }
    }
    pairs.push(("wall_ms", Json::F64(record.wall_ms)));
    Json::obj(pairs)
}

/// Parses one manifest cell line back into a [`CellRecord`].
pub fn parse_cell_line(line: &str) -> io::Result<CellRecord> {
    let doc = Json::parse(line).map_err(bad_data)?;
    if field_str(&doc, "type")? != "cell" {
        return Err(bad_data("not a cell record"));
    }
    let index = field_u64(&doc, "index")? as usize;
    let spec = parse_spec(
        doc.get("spec")
            .ok_or_else(|| bad_data("missing field \"spec\""))?,
        index,
    )?;
    let outcome = match field_str(&doc, "outcome")? {
        "ok" => CellOutcome::Ok(parse_result(
            doc.get("result")
                .ok_or_else(|| bad_data("ok record without result"))?,
        )?),
        "failed" => CellOutcome::Failed {
            error: field_str(&doc, "error")?.to_string(),
        },
        "timed_out" => CellOutcome::TimedOut {
            timeout_secs: doc
                .get("timeout_secs")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad_data("timed_out record without timeout_secs"))?,
        },
        other => return Err(bad_data(format!("unknown outcome {other:?}"))),
    };
    let wall_ms = doc.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    Ok(CellRecord {
        spec,
        outcome,
        wall_ms,
    })
}

/// Loads a manifest, enforcing the header fingerprint against `matrix`.
/// Returns records keyed by canonical cell index (last record wins);
/// records whose spec no longer matches the matrix cell at that index
/// are dropped as stale.
pub fn load_manifest(path: &Path, matrix: &MatrixSpec) -> io::Result<Vec<CellRecord>> {
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header =
        Json::parse(lines.next().ok_or_else(|| bad_data("empty manifest"))?).map_err(bad_data)?;
    if field_str(&header, "type")? != "campaign-header" {
        return Err(bad_data("manifest does not start with a campaign header"));
    }
    let fp = field_str(&header, "fingerprint")?;
    if fp != matrix.fingerprint() {
        return Err(bad_data(format!(
            "manifest fingerprint {fp} does not match matrix {} — refusing to resume a \
             different campaign",
            matrix.fingerprint()
        )));
    }
    let cells = matrix.cells();
    let mut slots: Vec<Option<CellRecord>> = vec![None; cells.len()];
    for line in lines {
        let record = parse_cell_line(line)?;
        let idx = record.spec.index;
        if cells.get(idx).is_some_and(|c| *c == record.spec) {
            slots[idx] = Some(record);
        }
    }
    Ok(slots.into_iter().flatten().collect())
}

/// The summary document written to `BENCH_campaign.json`. Contains no
/// wall-clock data: its bytes depend only on the matrix and the cell
/// outcomes.
pub fn summary_json(matrix: &MatrixSpec, summary: &CampaignSummary) -> Json {
    let matrix_doc = Json::obj([
        (
            "structures",
            Json::Arr(
                matrix
                    .structures
                    .iter()
                    .map(|s| Json::Str(s.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "mechanisms",
            Json::Arr(
                matrix
                    .mechanisms
                    .iter()
                    .map(|m| Json::Str(m.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "modes",
            Json::Arr(
                matrix
                    .modes
                    .iter()
                    .map(|m| Json::Str(m.name().to_string()))
                    .collect(),
            ),
        ),
        (
            "threads",
            Json::Arr(
                matrix
                    .threads
                    .iter()
                    .map(|&t| Json::U64(t as u64))
                    .collect(),
            ),
        ),
        (
            "seeds",
            Json::Arr(matrix.seeds.iter().map(|&s| Json::U64(s)).collect()),
        ),
        ("initial_size", Json::U64(matrix.initial_size as u64)),
        ("ops_per_thread", Json::U64(matrix.ops_per_thread as u64)),
        ("crash_samples", Json::U64(matrix.crash_samples as u64)),
    ]);

    let groups = summary
        .groups
        .iter()
        .map(|g| {
            let mechs = g
                .mechs
                .iter()
                .map(|m| {
                    Json::obj([
                        ("mechanism", Json::Str(m.mechanism.name().to_string())),
                        ("ok", Json::U64(m.ok as u64)),
                        ("failed", Json::U64(m.failed as u64)),
                        ("timed_out", Json::U64(m.timed_out as u64)),
                        (
                            "cycles_by_seed",
                            Json::Arr(
                                m.cycles_by_seed
                                    .iter()
                                    .map(|&(seed, cycles)| {
                                        Json::Arr(vec![Json::U64(seed), Json::U64(cycles)])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "normalized",
                            Json::Arr(m.normalized.iter().map(|&x| Json::F64(x)).collect()),
                        ),
                        ("norm_geomean", opt_f64(m.norm_geomean)),
                        ("norm_ci95", opt_ci(m.norm_ci95)),
                        (
                            "critical_writeback_fraction",
                            opt_f64(m.critical_fraction_mean),
                        ),
                        ("rp_violations", Json::U64(m.rp_violations)),
                        ("audit_violations", Json::U64(m.audit_violations)),
                        ("recovery_points", Json::U64(m.recovery_points)),
                        ("recovery_failures", Json::U64(m.recovery_failures)),
                        ("merged_stats", stats_json(&m.merged)),
                        (
                            "hists",
                            Json::obj([
                                ("flush_to_ack", hist_json(&m.flush_to_ack)),
                                ("release_to_persist", hist_json(&m.release_to_persist)),
                                ("ret_residency", hist_json(&m.ret_residency)),
                            ]),
                        ),
                        ("blame", blame_json(&m.blame)),
                        ("critpath", crit_json(&m.crit)),
                    ])
                })
                .collect();
            Json::obj([
                ("structure", Json::Str(g.structure.name().to_string())),
                ("mode", Json::Str(g.mode.name().to_string())),
                ("threads", Json::U64(g.threads as u64)),
                ("mechanisms", Json::Arr(mechs)),
            ])
        })
        .collect();

    let overall = summary
        .overall
        .iter()
        .map(|row| {
            Json::obj([
                ("mode", Json::Str(row.mode.name().to_string())),
                ("mechanism", Json::Str(row.mechanism.name().to_string())),
                ("norm_geomean", opt_f64(row.norm_geomean)),
                ("norm_ci95", opt_ci(row.norm_ci95)),
                (
                    "critical_writeback_fraction",
                    opt_f64(row.critical_fraction_mean),
                ),
            ])
        })
        .collect();

    Json::obj([
        ("type", Json::Str("campaign".to_string())),
        ("format_version", Json::U64(FORMAT_VERSION)),
        ("fingerprint", Json::Str(matrix.fingerprint())),
        ("matrix", matrix_doc),
        (
            "cells",
            Json::obj([
                ("total", Json::U64(summary.total_cells as u64)),
                ("ok", Json::U64(summary.ok as u64)),
                ("failed", Json::U64(summary.failed as u64)),
                ("timed_out", Json::U64(summary.timed_out as u64)),
            ]),
        ),
        ("groups", Json::Arr(groups)),
        ("overall", Json::Arr(overall)),
    ])
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |x| format!("{x:.3}"))
}

/// Plain-text summary table (the human-readable companion to
/// `BENCH_campaign.json`).
pub fn render_table(matrix: &MatrixSpec, summary: &CampaignSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "campaign {}: {} cells (ok {}, failed {}, timed_out {})\n",
        matrix.fingerprint(),
        summary.total_cells,
        summary.ok,
        summary.failed,
        summary.timed_out
    ));
    out.push_str("\noverall (execution time normalized to NOP; lower is better):\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>8} {:>18} {:>9}\n",
        "mode", "mechanism", "geomean", "95% CI", "crit-wb"
    ));
    for row in &summary.overall {
        if row.mechanism == Mechanism::Nop {
            continue;
        }
        let ci = row
            .norm_ci95
            .map_or_else(|| "-".to_string(), |(lo, hi)| format!("[{lo:.3}, {hi:.3}]"));
        out.push_str(&format!(
            "{:<10} {:<10} {:>8} {:>18} {:>9}\n",
            row.mode.name(),
            row.mechanism.name(),
            fmt_opt(row.norm_geomean),
            ci,
            fmt_opt(row.critical_fraction_mean)
        ));
    }
    out.push_str("\nper-structure normalized execution time (geomean over seeds):\n");
    let mechs: Vec<Mechanism> = matrix
        .mechanisms
        .iter()
        .copied()
        .filter(|&m| m != Mechanism::Nop)
        .collect();
    out.push_str(&format!("{:<12} {:<10} {:>3}", "structure", "mode", "t"));
    for m in &mechs {
        out.push_str(&format!(" {:>8}", m.name()));
    }
    out.push('\n');
    for g in &summary.groups {
        out.push_str(&format!(
            "{:<12} {:<10} {:>3}",
            g.structure.name(),
            g.mode.name(),
            g.threads
        ));
        for m in &mechs {
            let v = g
                .mechs
                .iter()
                .find(|s| s.mechanism == *m)
                .and_then(|s| s.norm_geomean);
            out.push_str(&format!(" {:>8}", fmt_opt(v)));
        }
        out.push('\n');
    }
    out.push_str("\nlatency histograms (cycles, merged over seeds; mean/p50/p99):\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:>3} {:<10} {:>22} {:>22} {:>22}\n",
        "structure", "mode", "t", "mechanism", "flush-to-ack", "rel-to-persist", "ret-residency"
    ));
    let fmt_hist = |h: &lrp_obs::Hist| {
        if h.is_empty() {
            "-".to_string()
        } else {
            format!(
                "{:.0}/{}/{}",
                h.mean(),
                h.percentile(0.5),
                h.percentile(0.99)
            )
        }
    };
    for g in &summary.groups {
        for m in &g.mechs {
            if m.ok == 0 || m.mechanism == Mechanism::Nop {
                continue;
            }
            out.push_str(&format!(
                "{:<12} {:<10} {:>3} {:<10} {:>22} {:>22} {:>22}\n",
                g.structure.name(),
                g.mode.name(),
                g.threads,
                m.mechanism.name(),
                fmt_hist(&m.flush_to_ack),
                fmt_hist(&m.release_to_persist),
                fmt_hist(&m.ret_residency)
            ));
        }
    }
    out.push_str("\nblame attribution (top sites by charged cycles):\n");
    out.push_str(&format!(
        "{:<12} {:<10} {:>3} {:<10} {:<34} {:<14} {:>12}\n",
        "structure", "mode", "t", "mechanism", "site", "cause", "cycles"
    ));
    for g in &summary.groups {
        for m in &g.mechs {
            if m.ok == 0 || m.mechanism == Mechanism::Nop || m.blame.is_empty() {
                continue;
            }
            let mut rows: Vec<_> = m.blame.exact.iter().filter(|(_, c)| c.cycles > 0).collect();
            rows.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then_with(|| a.0.cmp(b.0)));
            for ((site, cause), cell) in rows.into_iter().take(3) {
                out.push_str(&format!(
                    "{:<12} {:<10} {:>3} {:<10} {:<34} {:<14} {:>12}\n",
                    g.structure.name(),
                    g.mode.name(),
                    g.threads,
                    m.mechanism.name(),
                    site,
                    cause.name(),
                    cell.cycles
                ));
            }
        }
    }
    out
}

/// What a [`run_to_files`] campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Every cell record (cached + freshly run), sorted by index.
    pub records: Vec<CellRecord>,
    /// The deterministic aggregate view.
    pub summary: CampaignSummary,
    /// Cells satisfied from the resume manifest without re-running.
    pub resumed: usize,
}

/// Runs (or resumes) a campaign, streaming each completed cell to the
/// JSONL manifest at `jsonl_path` and returning the aggregate view.
/// `progress` fires once per freshly run cell, in completion order.
pub fn run_to_files(
    matrix: &MatrixSpec,
    cfg: &CampaignConfig,
    jsonl_path: &Path,
    resume: bool,
    mut progress: impl FnMut(&CellRecord),
) -> io::Result<CampaignOutcome> {
    let cells = matrix.cells();

    let cached: Vec<CellRecord> = if resume && jsonl_path.exists() {
        load_manifest(jsonl_path, matrix)?
            .into_iter()
            .filter(|r| matches!(r.outcome, CellOutcome::Ok(_)))
            .collect()
    } else {
        Vec::new()
    };
    let have: Vec<bool> = {
        let mut have = vec![false; cells.len()];
        for r in &cached {
            have[r.spec.index] = true;
        }
        have
    };
    let to_run: Vec<CellSpec> = cells.into_iter().filter(|c| !have[c.index]).collect();

    let mut file = if resume && jsonl_path.exists() {
        std::fs::OpenOptions::new().append(true).open(jsonl_path)?
    } else {
        if let Some(parent) = jsonl_path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::fs::File::create(jsonl_path)?;
        writeln!(f, "{}", header_json(matrix).to_compact())?;
        f
    };

    let mut write_err: Option<io::Error> = None;
    let fresh = run_campaign(to_run, cfg, |record| {
        let line = cell_json(record).to_compact();
        // Flush per line so an interrupted campaign can still resume.
        let r = writeln!(file, "{line}").and_then(|()| file.flush());
        if let (Err(e), None) = (r, write_err.as_ref()) {
            write_err = Some(e);
        }
        progress(record);
    });
    if let Some(e) = write_err {
        return Err(e);
    }

    let resumed = cached.len();
    let mut records = cached;
    records.extend(fresh);
    records.sort_by_key(|r| r.spec.index);
    let summary = summarize(matrix, &records);
    Ok(CampaignOutcome {
        records,
        summary,
        resumed,
    })
}

/// Writes `BENCH_campaign.json` (pretty, trailing newline) at `path`.
pub fn write_bench_json(
    path: &Path,
    matrix: &MatrixSpec,
    summary: &CampaignSummary,
) -> io::Result<()> {
    std::fs::write(path, summary_json(matrix, summary).to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "lrp-campaign-test-{}-{tag}-{n}.jsonl",
            std::process::id()
        ))
    }

    fn serial_cfg() -> CampaignConfig {
        CampaignConfig {
            workers: 1,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn cell_lines_round_trip() {
        let matrix = MatrixSpec::smoke();
        for spec in matrix.cells() {
            let record =
                crate::isolation::run_isolated(&spec, std::time::Duration::from_secs(120), false);
            let line = cell_json(&record).to_compact();
            let back = parse_cell_line(&line).unwrap();
            // Serialized forms agree exactly (zero-valued map entries may
            // differ in-memory; the manifest bytes are the contract).
            assert_eq!(cell_json(&back).to_compact(), line);
            assert_eq!(back.spec, record.spec);
            assert_eq!(back.outcome.kind(), "ok");
        }
    }

    #[test]
    fn failed_and_timed_out_lines_round_trip() {
        let spec = MatrixSpec::smoke().cells().remove(0);
        for outcome in [
            CellOutcome::Failed {
                error: "boom \"quoted\"\npanic".to_string(),
            },
            CellOutcome::TimedOut { timeout_secs: 1.5 },
        ] {
            let record = CellRecord {
                spec: spec.clone(),
                outcome,
                wall_ms: 12.25,
            };
            let line = cell_json(&record).to_compact();
            let back = parse_cell_line(&line).unwrap();
            assert_eq!(back, record);
        }
    }

    #[test]
    fn campaign_writes_manifest_and_resume_skips_ok_cells() {
        let matrix = MatrixSpec::smoke();
        let path = temp_path("resume");
        let first = run_to_files(&matrix, &serial_cfg(), &path, false, |_| {}).unwrap();
        assert_eq!(first.resumed, 0);
        assert_eq!(first.summary.ok, matrix.len());

        let mut fresh_runs = 0;
        let second =
            run_to_files(&matrix, &serial_cfg(), &path, true, |_| fresh_runs += 1).unwrap();
        assert_eq!(fresh_runs, 0, "resume must not re-run ok cells");
        assert_eq!(second.resumed, matrix.len());
        assert_eq!(
            summary_json(&matrix, &second.summary).to_pretty(),
            summary_json(&matrix, &first.summary).to_pretty(),
            "resumed summary must be byte-identical"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_reruns_failed_cells() {
        let matrix = MatrixSpec::smoke();
        let path = temp_path("rerun");
        let target = matrix.cells()[1].id();
        let broken = run_to_files(
            &matrix,
            &CampaignConfig {
                workers: 1,
                inject_panic: Some(target),
                ..CampaignConfig::default()
            },
            &path,
            false,
            |_| {},
        )
        .unwrap();
        assert_eq!(broken.summary.failed, 1);

        let mut fresh_runs = 0;
        let healed =
            run_to_files(&matrix, &serial_cfg(), &path, true, |_| fresh_runs += 1).unwrap();
        assert_eq!(fresh_runs, 1, "only the failed cell re-runs");
        assert_eq!(healed.resumed, matrix.len() - 1);
        assert_eq!(healed.summary.ok, matrix.len());
        assert_eq!(healed.summary.failed, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_a_different_matrix() {
        let matrix = MatrixSpec::smoke();
        let path = temp_path("fingerprint");
        run_to_files(&matrix, &serial_cfg(), &path, false, |_| {}).unwrap();
        let mut other = matrix.clone();
        other.seeds = vec![7];
        let err = run_to_files(&other, &serial_cfg(), &path, true, |_| {}).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn parallel_and_serial_summaries_are_byte_identical() {
        let mut matrix = MatrixSpec::smoke();
        matrix.seeds = vec![1, 2];
        let cells = matrix.cells();
        let serial = run_campaign(cells.clone(), &serial_cfg(), |_| {});
        let parallel = run_campaign(
            cells,
            &CampaignConfig {
                workers: 4,
                ..CampaignConfig::default()
            },
            |_| {},
        );
        let a = summary_json(&matrix, &summarize(&matrix, &serial)).to_pretty();
        let b = summary_json(&matrix, &summarize(&matrix, &parallel)).to_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"norm_geomean\""));
    }

    #[test]
    fn table_renders_headline_rows() {
        let matrix = MatrixSpec::smoke();
        let records = run_campaign(matrix.cells(), &serial_cfg(), |_| {});
        let summary = summarize(&matrix, &records);
        let table = render_table(&matrix, &summary);
        assert!(table.contains("ok 2"));
        assert!(table.contains("lrp"));
        assert!(table.contains("hashmap"));
        assert!(
            !table.contains("nop "),
            "NOP baseline has no normalized row"
        );
    }
}
