//! Campaign matrix: the cross product of the paper's evaluation axes
//! (§6 — structure × mechanism × NVM mode × thread count × seed),
//! enumerated in a single canonical order so cell indices, resume
//! manifests, and aggregate reports all agree.

use lrp_lfds::Structure;
use lrp_sim::{Mechanism, NvmMode};

/// One point of the evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Position in the canonical enumeration (stable across runs of the
    /// same matrix; the resume key).
    pub index: usize,
    /// Workload data structure.
    pub structure: Structure,
    /// Persistency mechanism.
    pub mechanism: Mechanism,
    /// NVM latency mode.
    pub mode: NvmMode,
    /// Worker threads in the generated workload.
    pub threads: u16,
    /// Workload seed (also seeds the crash-point sampler).
    pub seed: u64,
    /// Initial structure size.
    pub initial_size: usize,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Crash points sampled for null-recovery checking.
    pub crash_samples: usize,
}

impl CellSpec {
    /// Human- and machine-readable cell identifier, e.g.
    /// `hashmap/lrp/cached/t4/s1`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/t{}/s{}",
            self.structure.name(),
            self.mechanism.name(),
            self.mode.name(),
            self.threads,
            self.seed
        )
    }
}

/// The full campaign matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Structures axis.
    pub structures: Vec<Structure>,
    /// Mechanisms axis.
    pub mechanisms: Vec<Mechanism>,
    /// NVM modes axis.
    pub modes: Vec<NvmMode>,
    /// Thread-count axis.
    pub threads: Vec<u16>,
    /// Seeds axis (confidence intervals aggregate over this).
    pub seeds: Vec<u64>,
    /// Initial structure size; `0` picks a per-structure default that
    /// keeps the O(n)-per-op structures tractable.
    pub initial_size: usize,
    /// Operations per worker thread.
    pub ops_per_thread: usize,
    /// Crash points sampled per cell for null-recovery checking.
    pub crash_samples: usize,
}

impl MatrixSpec {
    /// The default campaign: all five LFDs, the paper's four comparison
    /// mechanisms, both NVM modes, a small thread sweep, three seeds.
    pub fn default_campaign() -> Self {
        MatrixSpec {
            structures: Structure::ALL.to_vec(),
            mechanisms: Mechanism::ALL.to_vec(),
            modes: NvmMode::ALL.to_vec(),
            threads: vec![1, 4],
            seeds: vec![1, 2, 3],
            initial_size: 0,
            ops_per_thread: 16,
            crash_samples: 24,
        }
    }

    /// The CI smoke subset: one structure, NOP + LRP, one mode, one
    /// seed. Completes in seconds.
    pub fn smoke() -> Self {
        MatrixSpec {
            structures: vec![Structure::HashMap],
            mechanisms: vec![Mechanism::Nop, Mechanism::Lrp],
            modes: vec![NvmMode::Cached],
            threads: vec![2],
            seeds: vec![1],
            initial_size: 32,
            ops_per_thread: 10,
            crash_samples: 8,
        }
    }

    /// The paper tier: SynchroBench scale — 64K initial entries on the
    /// machine's full 64-core mesh, cached NVM, one seed. Only the
    /// structures the paper evaluates at that size (the O(n) linked
    /// list and the queue are excluded — a single traversal at 64K
    /// entries dwarfs the rest of the matrix). Crash sampling is
    /// lighter than the default campaign: each sample replays the
    /// whole trace, and the traces are three orders larger here.
    pub fn paper() -> Self {
        MatrixSpec {
            structures: vec![Structure::HashMap, Structure::Bst, Structure::SkipList],
            mechanisms: Mechanism::ALL.to_vec(),
            modes: vec![NvmMode::Cached],
            threads: vec![64],
            seeds: vec![1],
            initial_size: 64 * 1024,
            ops_per_thread: 64,
            crash_samples: 4,
        }
    }

    /// Effective initial size for `s` (per-structure default when
    /// `initial_size` is 0: the O(n) linked list stays small).
    pub fn size_for(&self, s: Structure) -> usize {
        if self.initial_size != 0 {
            return self.initial_size;
        }
        match s {
            Structure::LinkedList => 64,
            Structure::Queue => 128,
            _ => 256,
        }
    }

    /// Number of cells in the matrix.
    pub fn len(&self) -> usize {
        self.structures.len()
            * self.mechanisms.len()
            * self.modes.len()
            * self.threads.len()
            * self.seeds.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every cell in canonical order (structure, mechanism,
    /// mode, threads, seed — innermost last).
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.len());
        for &structure in &self.structures {
            for &mechanism in &self.mechanisms {
                for &mode in &self.modes {
                    for &threads in &self.threads {
                        for &seed in &self.seeds {
                            out.push(CellSpec {
                                index: out.len(),
                                structure,
                                mechanism,
                                mode,
                                threads,
                                seed,
                                initial_size: self.size_for(structure),
                                ops_per_thread: self.ops_per_thread,
                                crash_samples: self.crash_samples,
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Canonical one-line description (the fingerprint input, also shown
    /// in reports).
    pub fn describe(&self) -> String {
        let join = |items: Vec<String>| items.join(",");
        format!(
            "structures={} mechanisms={} modes={} threads={} seeds={} size={} ops={} crash_samples={}",
            join(self.structures.iter().map(|s| s.name().to_string()).collect()),
            join(self.mechanisms.iter().map(|m| m.name().to_string()).collect()),
            join(self.modes.iter().map(|m| m.name().to_string()).collect()),
            join(self.threads.iter().map(|t| t.to_string()).collect()),
            join(self.seeds.iter().map(|s| s.to_string()).collect()),
            self.initial_size,
            self.ops_per_thread,
            self.crash_samples,
        )
    }

    /// FNV-1a fingerprint of the canonical description; a resume refuses
    /// to mix results from a different matrix.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.describe().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_canonical_and_indexed() {
        let m = MatrixSpec::default_campaign();
        let cells = m.cells();
        assert_eq!(cells.len(), m.len());
        assert_eq!(cells.len(), 5 * 4 * 2 * 2 * 3);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
        // Innermost axis is the seed.
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[2].seed, 3);
        assert_eq!(cells[3].threads, 4);
        // Enumeration is deterministic.
        assert_eq!(m.cells(), cells);
    }

    #[test]
    fn ids_are_unique() {
        let cells = MatrixSpec::default_campaign().cells();
        let mut ids: Vec<String> = cells.iter().map(|c| c.id()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn fingerprint_tracks_matrix_shape() {
        let a = MatrixSpec::default_campaign();
        let mut b = a.clone();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seeds.push(4);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint().len(), 16);
    }

    #[test]
    fn smoke_matrix_is_small() {
        let m = MatrixSpec::smoke();
        assert_eq!(m.len(), 2);
        assert!(m.cells().iter().any(|c| c.mechanism == Mechanism::Nop));
    }

    #[test]
    fn paper_matrix_is_paper_scale() {
        let m = MatrixSpec::paper();
        assert_eq!(m.len(), 3 * 4);
        assert_eq!(m.initial_size, 64 * 1024);
        assert!(m.cells().iter().all(|c| c.threads == 64));
        assert!(!m.structures.contains(&Structure::LinkedList));
        assert!(!m.structures.contains(&Structure::Queue));
    }

    #[test]
    fn size_defaults_keep_linked_list_small() {
        let m = MatrixSpec::default_campaign();
        assert!(m.size_for(Structure::LinkedList) < m.size_for(Structure::HashMap));
        let mut fixed = m.clone();
        fixed.initial_size = 99;
        assert_eq!(fixed.size_for(Structure::LinkedList), 99);
    }
}
