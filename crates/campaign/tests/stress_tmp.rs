use lrp_campaign::run_parallel;

#[test]
fn stress_steal_contention() {
    for round in 0..2000 {
        let items: Vec<usize> = (0..16).collect();
        let r = run_parallel(items, 8, |i| i, |_| {});
        assert_eq!(r.len(), 16, "round {round}");
    }
}
