//! lrp-blame: streaming attribution of persist cost to `OpSite`s.
//!
//! A [`BlameTable`] charges stall cycles and persist latency to
//! `(site, cause)` keys as the run executes. Two stores cooperate:
//!
//! * **exact per-site totals** — a map keyed by `(site, cause)`; like the
//!   online histograms, these never drop, so they stay correct even when
//!   the export ring overflows;
//! * a **space-saving top-K sketch** over `(site, cause, line)` — the
//!   per-cache-line heavy hitters, in bounded memory. The classic
//!   space-saving guarantee applies: a key's reported weight
//!   overestimates its true weight by at most its recorded `error`, and
//!   any key whose true weight exceeds `total/capacity` is present.
//!   Evictions are counted and exposed, never silent.
//!
//! Site labels follow the `structure/operation[/phase]` naming scheme
//! (e.g. `queue/enqueue/link-next`); `"unknown"` collects unlabeled work.

use crate::json::Json;
use crate::stats::{FlushClass, StallCause};
use lrp_model::LineAddr;
use std::collections::BTreeMap;

/// Default sketch capacity (distinct `(site, cause, line)` keys tracked).
pub const DEFAULT_SKETCH_CAPACITY: usize = 512;

/// Why cycles were charged to a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlameCause {
    /// A raw core stall, by its machine-level cause.
    Stall(StallCause),
    /// A store-side stall taken while the RET was full — LRP's
    /// critical-path drain (§5.1's stall-on-full-table).
    RetFull,
    /// A store-side stall taken behind a mechanism flush barrier — the
    /// BB/SB full-barrier drain on the issuing core's critical path.
    BarrierDrain,
    /// Persist latency (issue→ack) of a flush, by its class.
    Flush(FlushClass),
}

impl BlameCause {
    /// Every cause, in the stable order used by serialized reports.
    pub const ALL: [BlameCause; 11] = [
        BlameCause::Stall(StallCause::LoadMiss),
        BlameCause::Stall(StallCause::StoreDrain),
        BlameCause::Stall(StallCause::MechFlush),
        BlameCause::Stall(StallCause::PersistAck),
        BlameCause::Stall(StallCause::RfWait),
        BlameCause::RetFull,
        BlameCause::BarrierDrain,
        BlameCause::Flush(FlushClass::Critical),
        BlameCause::Flush(FlushClass::Background),
        BlameCause::Flush(FlushClass::Sync),
        BlameCause::Flush(FlushClass::Directory),
    ];

    /// The folded-stack middle frame: what family of cost this is.
    pub fn kind(self) -> &'static str {
        match self {
            BlameCause::Stall(_) | BlameCause::RetFull | BlameCause::BarrierDrain => "stall",
            BlameCause::Flush(_) => "flush",
        }
    }

    /// Stable snake_case detail name (the folded-stack leaf frame).
    pub fn name(self) -> &'static str {
        match self {
            BlameCause::Stall(c) => c.name(),
            BlameCause::RetFull => "ret_full",
            BlameCause::BarrierDrain => "barrier_drain",
            BlameCause::Flush(c) => c.name(),
        }
    }

    /// Parses a `(kind, name)` pair back into a cause.
    pub fn from_parts(kind: &str, name: &str) -> Option<BlameCause> {
        BlameCause::ALL
            .into_iter()
            .find(|c| c.kind() == kind && c.name() == name)
    }
}

/// Exact accumulated blame for one `(site, cause)` key.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlameCell {
    /// Charges recorded.
    pub count: u64,
    /// Cycles charged.
    pub cycles: u64,
}

/// One tracked heavy-hitter key: a cache line at a site, per cause.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LineKey {
    /// The `OpSite` label.
    pub site: String,
    /// What cost was charged.
    pub cause: BlameCause,
    /// The cache line blamed.
    pub line: LineAddr,
}

/// A sketch counter: `weight` may overestimate by at most `error`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchCell {
    /// Estimated cycles charged to this key (upper bound).
    pub weight: u64,
    /// Maximum overestimate inherited from evicted keys.
    pub error: u64,
}

/// A space-saving top-K heavy-hitter sketch with deterministic
/// tie-breaking (smallest key evicts first among minimum weights).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpaceSaving {
    cap: usize,
    counters: BTreeMap<LineKey, SketchCell>,
    evictions: u64,
}

impl SpaceSaving {
    /// A sketch tracking at most `cap` distinct keys (`0` disables it).
    pub fn new(cap: usize) -> SpaceSaving {
        SpaceSaving {
            cap,
            counters: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Adds `weight` to `key`, evicting the minimum-weight counter when
    /// the sketch is at capacity and the key is new.
    pub fn add(&mut self, key: LineKey, weight: u64) {
        self.add_with_error(key, weight, 0);
    }

    fn add_with_error(&mut self, key: LineKey, weight: u64, error: u64) {
        if self.cap == 0 {
            self.evictions += 1;
            return;
        }
        if let Some(c) = self.counters.get_mut(&key) {
            c.weight = c.weight.saturating_add(weight);
            c.error = c.error.saturating_add(error);
            return;
        }
        if self.counters.len() < self.cap {
            self.counters.insert(key, SketchCell { weight, error });
            return;
        }
        // Space-saving eviction: the new key inherits the minimum
        // counter's weight as both weight floor and error bound.
        let victim = self
            .counters
            .iter()
            .min_by_key(|(k, c)| (c.weight, (*k).clone()))
            .map(|(k, c)| (k.clone(), c.weight))
            .expect("non-empty at capacity");
        self.counters.remove(&victim.0);
        self.evictions += 1;
        self.counters.insert(
            key,
            SketchCell {
                weight: victim.1.saturating_add(weight),
                error: victim.1.saturating_add(error),
            },
        );
    }

    /// Distinct keys currently tracked.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when nothing has been tracked.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Counters evicted (or refused, for a zero-capacity sketch). When
    /// zero, every reported weight is exact.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// All tracked counters in key order.
    pub fn entries(&self) -> impl Iterator<Item = (&LineKey, &SketchCell)> {
        self.counters.iter()
    }

    /// The `n` heaviest keys, weight-descending (key order breaks ties).
    pub fn top(&self, n: usize) -> Vec<(&LineKey, &SketchCell)> {
        let mut v: Vec<_> = self.counters.iter().collect();
        v.sort_by(|a, b| b.1.weight.cmp(&a.1.weight).then_with(|| a.0.cmp(b.0)));
        v.truncate(n);
        v
    }

    /// Folds another sketch into this one. When the union of keys fits
    /// the capacity the merge is exact (weights and errors sum);
    /// otherwise overflow keys go through the eviction path and the
    /// result remains a valid space-saving summary of the union.
    pub fn merge(&mut self, other: &SpaceSaving) {
        for (k, c) in &other.counters {
            self.add_with_error(k.clone(), c.weight, c.error);
        }
        self.evictions += other.evictions;
    }
}

/// The streaming attribution table: exact `(site, cause)` totals plus
/// the per-line heavy-hitter sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameTable {
    /// Exact per-`(site, cause)` totals (never dropped).
    pub exact: BTreeMap<(String, BlameCause), BlameCell>,
    /// The bounded per-line sketch.
    pub sketch: SpaceSaving,
}

impl Default for BlameTable {
    fn default() -> Self {
        BlameTable::new(DEFAULT_SKETCH_CAPACITY)
    }
}

impl BlameTable {
    /// A table whose sketch tracks `sketch_capacity` line keys.
    pub fn new(sketch_capacity: usize) -> BlameTable {
        BlameTable {
            exact: BTreeMap::new(),
            sketch: SpaceSaving::new(sketch_capacity),
        }
    }

    /// Charges `cycles` of `cause` at `line` to `site`.
    pub fn charge(&mut self, site: &str, cause: BlameCause, line: LineAddr, cycles: u64) {
        let cell = self.exact.entry((site.to_string(), cause)).or_default();
        cell.count += 1;
        cell.cycles = cell.cycles.saturating_add(cycles);
        self.sketch.add(
            LineKey {
                site: site.to_string(),
                cause,
                line,
            },
            cycles,
        );
    }

    /// True when nothing has been charged.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Total cycles charged across all keys.
    pub fn total_cycles(&self) -> u64 {
        self.exact.values().map(|c| c.cycles).sum()
    }

    /// Cycles charged to one `(site, cause)` key (0 when absent).
    pub fn cycles_for(&self, site: &str, cause: BlameCause) -> u64 {
        self.exact
            .get(&(site.to_string(), cause))
            .map(|c| c.cycles)
            .unwrap_or(0)
    }

    /// Cycles charged to `cause` summed over all sites.
    pub fn cycles_for_cause(&self, cause: BlameCause) -> u64 {
        self.exact
            .iter()
            .filter(|((_, c), _)| *c == cause)
            .map(|(_, cell)| cell.cycles)
            .sum()
    }

    /// Folds another table into this one. Exact totals merge exactly;
    /// the sketch merge is exact while the key union fits its capacity.
    pub fn merge(&mut self, other: &BlameTable) {
        for ((site, cause), cell) in &other.exact {
            let mine = self.exact.entry((site.clone(), *cause)).or_default();
            mine.count += cell.count;
            mine.cycles = mine.cycles.saturating_add(cell.cycles);
        }
        self.sketch.merge(&other.sketch);
    }

    /// Folded-stacks flame-graph export: one `site;kind;cause cycles`
    /// line per non-zero key, loadable by standard flamegraph tools.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for ((site, cause), cell) in &self.exact {
            if cell.cycles == 0 {
                continue;
            }
            out.push_str(&format!(
                "{};{};{} {}\n",
                site,
                cause.kind(),
                cause.name(),
                cell.cycles
            ));
        }
        out
    }
}

/// One row of a differential profile: how blame moved between runs.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameDelta {
    /// The `OpSite` label.
    pub site: String,
    /// The cost family.
    pub cause: BlameCause,
    /// Cycles in run A.
    pub a_cycles: u64,
    /// Cycles in run B.
    pub b_cycles: u64,
}

impl BlameDelta {
    /// Signed `a - b` cycle delta.
    pub fn delta(&self) -> i128 {
        self.a_cycles as i128 - self.b_cycles as i128
    }
}

/// Ranks every `(site, cause)` key appearing in either table by the
/// magnitude of its attribution delta, largest first (key order breaks
/// ties deterministically).
pub fn diff(a: &BlameTable, b: &BlameTable) -> Vec<BlameDelta> {
    let mut keys: Vec<&(String, BlameCause)> = a.exact.keys().collect();
    for k in b.exact.keys() {
        if !a.exact.contains_key(k) {
            keys.push(k);
        }
    }
    let mut rows: Vec<BlameDelta> = keys
        .into_iter()
        .map(|(site, cause)| BlameDelta {
            site: site.clone(),
            cause: *cause,
            a_cycles: a.cycles_for(site, *cause),
            b_cycles: b.cycles_for(site, *cause),
        })
        .collect();
    rows.sort_by(|x, y| {
        y.delta()
            .abs()
            .cmp(&x.delta().abs())
            .then_with(|| (&x.site, x.cause).cmp(&(&y.site, y.cause)))
    });
    rows
}

/// Serializes a table (exact totals + sketch) for machine consumption.
pub fn blame_json(t: &BlameTable) -> Json {
    let exact = t
        .exact
        .iter()
        .map(|((site, cause), cell)| {
            Json::obj([
                ("site", Json::Str(site.clone())),
                ("kind", Json::Str(cause.kind().to_string())),
                ("cause", Json::Str(cause.name().to_string())),
                ("count", Json::U64(cell.count)),
                ("cycles", Json::U64(cell.cycles)),
            ])
        })
        .collect();
    let lines = t
        .sketch
        .entries()
        .map(|(k, c)| {
            Json::obj([
                ("site", Json::Str(k.site.clone())),
                ("kind", Json::Str(k.cause.kind().to_string())),
                ("cause", Json::Str(k.cause.name().to_string())),
                ("line", Json::U64(k.line)),
                ("weight", Json::U64(c.weight)),
                ("error", Json::U64(c.error)),
            ])
        })
        .collect();
    Json::obj([
        ("sketch_capacity", Json::U64(t.sketch.capacity() as u64)),
        ("sketch_evictions", Json::U64(t.sketch.evictions())),
        ("exact", Json::Arr(exact)),
        ("lines", Json::Arr(lines)),
    ])
}

fn parse_cause(doc: &Json) -> Result<BlameCause, String> {
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing blame kind")?;
    let name = doc
        .get("cause")
        .and_then(Json::as_str)
        .ok_or("missing blame cause")?;
    BlameCause::from_parts(kind, name).ok_or_else(|| format!("unknown blame cause {kind}:{name}"))
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing blame field {key:?}"))
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing blame field {key:?}"))
}

/// Parses a table serialized by [`blame_json`].
pub fn parse_blame(doc: &Json) -> Result<BlameTable, String> {
    let cap = get_u64(doc, "sketch_capacity")? as usize;
    let mut t = BlameTable::new(cap);
    for e in doc
        .get("exact")
        .and_then(Json::as_arr)
        .ok_or("missing blame exact array")?
    {
        let cause = parse_cause(e)?;
        t.exact.insert(
            (get_str(e, "site")?, cause),
            BlameCell {
                count: get_u64(e, "count")?,
                cycles: get_u64(e, "cycles")?,
            },
        );
    }
    for e in doc
        .get("lines")
        .and_then(Json::as_arr)
        .ok_or("missing blame lines array")?
    {
        let key = LineKey {
            site: get_str(e, "site")?,
            cause: parse_cause(e)?,
            line: get_u64(e, "line")?,
        };
        t.sketch.counters.insert(
            key,
            SketchCell {
                weight: get_u64(e, "weight")?,
                error: get_u64(e, "error")?,
            },
        );
    }
    t.sketch.evictions = get_u64(doc, "sketch_evictions")?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(site: &str, line: LineAddr) -> LineKey {
        LineKey {
            site: site.to_string(),
            cause: BlameCause::RetFull,
            line,
        }
    }

    #[test]
    fn sketch_is_bounded_and_counts_evictions() {
        let mut s = SpaceSaving::new(4);
        for i in 0..10u64 {
            s.add(key("a", i * 64), 1);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.evictions(), 6);
    }

    #[test]
    fn sketch_keeps_the_heavy_hitter() {
        let mut s = SpaceSaving::new(4);
        s.add(key("hot", 0x40), 1000);
        for i in 1..50u64 {
            s.add(key("cold", i * 64), 1);
        }
        let top = s.top(1);
        assert_eq!(top[0].0.site, "hot");
        assert!(top[0].1.weight >= 1000, "weight is an upper bound");
    }

    #[test]
    fn sketch_under_capacity_is_exact() {
        let mut s = SpaceSaving::new(16);
        s.add(key("a", 0x40), 10);
        s.add(key("a", 0x40), 5);
        s.add(key("b", 0x80), 3);
        assert_eq!(s.evictions(), 0);
        let top = s.top(2);
        assert_eq!(top[0].1.weight, 15);
        assert_eq!(top[0].1.error, 0);
        assert_eq!(top[1].1.weight, 3);
    }

    #[test]
    fn charge_accumulates_exact_totals() {
        let mut t = BlameTable::new(8);
        t.charge("queue/enqueue/link-next", BlameCause::RetFull, 0x40, 100);
        t.charge("queue/enqueue/link-next", BlameCause::RetFull, 0x80, 20);
        t.charge(
            "queue/dequeue",
            BlameCause::Flush(FlushClass::Critical),
            0x40,
            350,
        );
        assert_eq!(
            t.cycles_for("queue/enqueue/link-next", BlameCause::RetFull),
            120
        );
        assert_eq!(
            t.cycles_for_cause(BlameCause::Flush(FlushClass::Critical)),
            350
        );
        assert_eq!(t.total_cycles(), 470);
    }

    fn sample(tag: &str, n: u64) -> BlameTable {
        let mut t = BlameTable::new(64);
        for i in 0..n {
            t.charge(
                &format!("{tag}/op"),
                BlameCause::Stall(StallCause::StoreDrain),
                i * 64,
                10 + i,
            );
            t.charge("shared/op", BlameCause::RetFull, 0x1000, 7);
        }
        t
    }

    #[test]
    fn merge_matches_serial_and_is_order_independent() {
        let a = sample("a", 3);
        let b = sample("b", 5);
        let c = sample("c", 2);
        // Serial: one table charged with everything.
        let mut serial = BlameTable::new(64);
        for part in [&a, &b, &c] {
            for ((site, cause), cell) in &part.exact {
                // Re-derive serial charges from the parts' exact cells.
                let mine = serial.exact.entry((site.clone(), *cause)).or_default();
                mine.count += cell.count;
                mine.cycles += cell.cycles;
            }
        }
        let mut fwd = BlameTable::new(64);
        fwd.merge(&a);
        fwd.merge(&b);
        fwd.merge(&c);
        let mut rev = BlameTable::new(64);
        rev.merge(&c);
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(fwd.exact, rev.exact);
        assert_eq!(
            fwd.sketch, rev.sketch,
            "under-capacity sketch merge is exact"
        );
        assert_eq!(fwd.exact, serial.exact);
        // Associativity: (a+b)+c == a+(b+c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
    }

    #[test]
    fn merge_equals_serial_charging() {
        let mut serial = BlameTable::new(64);
        let mut a = BlameTable::new(64);
        let mut b = BlameTable::new(64);
        for (i, part) in [(0u64, &mut a), (1, &mut b)] {
            for j in 0..4u64 {
                part.charge("s/op", BlameCause::RetFull, (i * 4 + j) * 64, j + 1);
            }
        }
        for i in 0..8u64 {
            serial.charge("s/op", BlameCause::RetFull, i * 64, i % 4 + 1);
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn folded_output_is_flamegraph_loadable() {
        let mut t = BlameTable::new(8);
        t.charge("queue/enqueue/link-next", BlameCause::RetFull, 0x40, 120);
        t.charge(
            "queue/dequeue",
            BlameCause::Flush(FlushClass::Background),
            0x80,
            350,
        );
        let folded = t.folded();
        assert!(folded.contains("queue/enqueue/link-next;stall;ret_full 120\n"));
        assert!(folded.contains("queue/dequeue;flush;background 350\n"));
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 3);
            count.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn diff_ranks_by_delta_magnitude() {
        let mut a = BlameTable::new(8);
        a.charge("x/op", BlameCause::RetFull, 0x40, 1000);
        a.charge("y/op", BlameCause::BarrierDrain, 0x80, 10);
        let mut b = BlameTable::new(8);
        b.charge("y/op", BlameCause::BarrierDrain, 0x80, 500);
        let rows = diff(&a, &b);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].site, "x/op");
        assert_eq!(rows[0].delta(), 1000);
        assert_eq!(rows[1].delta(), -490);
    }

    #[test]
    fn json_round_trip() {
        let mut t = sample("rt", 6);
        t.charge("rt/extra", BlameCause::Flush(FlushClass::Sync), 0xF00, 42);
        let doc = blame_json(&t);
        let back = parse_blame(&Json::parse(&doc.to_compact()).unwrap()).unwrap();
        assert_eq!(back, t);
        assert_eq!(blame_json(&back).to_compact(), doc.to_compact());
    }

    #[test]
    fn causes_have_stable_parseable_names() {
        for c in BlameCause::ALL {
            assert_eq!(BlameCause::from_parts(c.kind(), c.name()), Some(c));
        }
        assert_eq!(BlameCause::from_parts("stall", "nope"), None);
    }
}
