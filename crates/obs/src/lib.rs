//! `lrp-obs`: observability for the LRP pipeline.
//!
//! The simulator's aggregate [`stats::Stats`] answer *how much*; this
//! crate answers *when* and *in what order* — the questions that matter
//! when diagnosing persist-ordering behaviour (which write-backs sit on
//! the critical path, how long a release waits between the
//! acquire-triggered scan and its persist ack, how full the 32-entry RET
//! runs). Everything is hand-rolled: the workspace builds fully offline
//! with zero external dependencies.
//!
//! Four layers, all reached through one [`recorder::Recorder`] that the
//! timing substrate threads through as an `Option` (disabled recording
//! costs one branch per event site):
//!
//! * **Event tracing** ([`event`]) — a bounded drop-oldest ring buffer
//!   of typed events: epoch advances, RET insert/squash/drain,
//!   persist-engine FSM transitions, flush issue/ack with
//!   [`stats::FlushClass`], coherence-detected release→acquire
//!   synchronisation, and stall begin/end with [`stats::StallCause`].
//! * **Time-series metrics** ([`series`], [`hist`]) — per-interval
//!   counter deltas sampled every N cycles (ops, flushes by class,
//!   stalls by cause, NoC messages, RET occupancy high-water), plus
//!   log2-bucket latency histograms (flush-to-ack, release-to-persist,
//!   RET residency) that are computed online and therefore immune to
//!   ring-buffer drops.
//! * **Invariant audit** ([`audit`]) — counters that *observe* (never
//!   enforce) invariants I1–I4 of §5.1 at the points where the machine
//!   is supposed to uphold them, giving a cheap always-on sanity signal.
//! * **Blame attribution** ([`blame`]) — streaming `(site, cause)` blame
//!   tables charging stall cycles and persist latency to `OpSite` labels
//!   (`structure/operation[/phase]`), with a space-saving top-K sketch
//!   of per-cache-line heavy hitters. Computed online like the
//!   histograms, so ring-buffer drops never skew attribution.
//! * **Request spans** ([`span`]) — a zero-dep span tracer for the
//!   serving layer: span id + parent id + typed phase
//!   (wire→queue→batch→execute→persist→ack), collected in a bounded
//!   drop-oldest [`span::SpanLog`], exported as Chrome async events
//!   nesting under per-shard tracks, and audited for well-formedness by
//!   [`span::audit_chains`].
//! * **Exporters** ([`chrome`], [`metrics`]) — Chrome trace-event JSON
//!   (loadable in Perfetto / `about://tracing`) and a JSONL metrics
//!   stream sharing the campaign aggregator's `Stats` serialization.
//!
//! [`stats`] (the aggregate counters) and [`json`] (the deterministic
//! JSON model) live here so that every layer — mechanism crates, the
//! simulator, the campaign runner — can speak the same vocabulary
//! without circular dependencies; `lrp-sim` and `lrp-campaign` re-export
//! them under their historical paths.

pub mod audit;
pub mod blame;
pub mod chrome;
pub mod critpath;
pub mod event;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod series;
pub mod span;
pub mod stats;

pub use audit::{AuditCounter, InvariantAudit};
pub use blame::{BlameCause, BlameCell, BlameDelta, BlameTable, LineKey, SpaceSaving};
pub use critpath::{CritAudit, CritEdge, CritPath, CritSegKind, CritSummary, EvRef};
pub use event::{EngineState, EventKind, MechEvent, TraceEvent};
pub use hist::Hist;
pub use json::Json;
pub use recorder::{ObsReport, Recorder, RecorderConfig};
pub use series::{GaugeSample, GaugeSeries, IntervalSample, GAUGE_COUNTERS};
pub use span::{audit_chains, chrome_trace, ChainAudit, Span, SpanId, SpanLog, SpanPhase};
pub use stats::{FlushClass, StallCause, Stats};
