//! Chrome trace-event exporter.
//!
//! Produces the JSON object format (`{"traceEvents": [...]}`) that
//! Perfetto and `about://tracing` load directly. Layout:
//!
//! * **pid 1 "cores"** — one track per core: stalls as complete spans,
//!   flush issues / epoch advances / sync detections as instants;
//! * **pid 2 "persist-engine"** — one track per core: FSM states as
//!   complete spans (Idle elided), RET activity as instants, plus a RET
//!   occupancy counter per core;
//! * **pid 3 "nvm"** — one track per core: each flush's issue→ack
//!   in-flight window as a complete span.
//!
//! Timestamps are simulated cycles written into the `ts`/`dur`
//! microsecond fields (the unit label is cosmetic; relative scale is
//! what matters for inspection). Events are sorted per track so `ts` is
//! monotonically non-decreasing within every `(pid, tid)`.

use crate::event::{EngineState, EventKind, MechEvent};
use crate::json::Json;
use crate::recorder::ObsReport;

const PID_CORES: u64 = 1;
const PID_ENGINE: u64 = 2;
const PID_NVM: u64 = 3;

fn event(
    name: &str,
    ph: &str,
    pid: u64,
    tid: u64,
    ts: u64,
    extra: Vec<(&'static str, Json)>,
) -> (u64, u64, u64, Json) {
    let mut pairs = vec![
        ("name", Json::Str(name.to_string())),
        ("ph", Json::Str(ph.to_string())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(tid)),
        ("ts", Json::U64(ts)),
    ];
    pairs.extend(extra);
    (pid, tid, ts, Json::obj(pairs))
}

fn instant(name: &str, pid: u64, tid: u64, ts: u64, args: Json) -> (u64, u64, u64, Json) {
    event(
        name,
        "i",
        pid,
        tid,
        ts,
        vec![("s", Json::Str("t".to_string())), ("args", args)],
    )
}

fn span(name: &str, pid: u64, tid: u64, ts: u64, dur: u64, args: Json) -> (u64, u64, u64, Json) {
    event(
        name,
        "X",
        pid,
        tid,
        ts,
        vec![("dur", Json::U64(dur)), ("args", args)],
    )
}

fn counter(name: String, pid: u64, tid: u64, ts: u64, value: u64) -> (u64, u64, u64, Json) {
    (
        pid,
        tid,
        ts,
        Json::obj([
            ("name", Json::Str(name)),
            ("ph", Json::Str("C".to_string())),
            ("pid", Json::U64(pid)),
            ("tid", Json::U64(tid)),
            ("ts", Json::U64(ts)),
            ("args", Json::obj([("entries", Json::U64(value))])),
        ]),
    )
}

fn line_args(line: u64) -> Json {
    Json::obj([("line", Json::Str(format!("{line:#x}")))])
}

fn process_meta(pid: u64, name: &str) -> Json {
    Json::obj([
        ("name", Json::Str("process_name".to_string())),
        ("ph", Json::Str("M".to_string())),
        ("pid", Json::U64(pid)),
        ("tid", Json::U64(0)),
        ("args", Json::obj([("name", Json::Str(name.to_string()))])),
    ])
}

/// Renders the report as a Chrome trace-event JSON document.
pub fn export(report: &ObsReport) -> String {
    let mut items: Vec<(u64, u64, u64, Json)> = Vec::new();
    // Open engine-FSM span per core: (since, state).
    let mut engine_open: Vec<Option<(u64, EngineState)>> =
        vec![None; report.ncores.max(1) as usize + 1];
    let mut last_t = 0;

    for ev in &report.events {
        let (t, core) = (ev.t, ev.core as u64);
        last_t = last_t.max(t);
        match ev.kind {
            EventKind::StallBegin { .. } => {} // covered by the StallEnd span
            EventKind::StallEnd { cause, cycles } => {
                items.push(span(
                    &format!("stall:{}", cause.name()),
                    PID_CORES,
                    core,
                    t.saturating_sub(cycles),
                    cycles,
                    Json::obj([]),
                ));
            }
            EventKind::FlushIssue { line, class } => {
                items.push(instant(
                    &format!("flush:{}", class.name()),
                    PID_CORES,
                    core,
                    t,
                    line_args(line),
                ));
            }
            EventKind::FlushAck { line, latency } => {
                items.push(span(
                    "persist",
                    PID_NVM,
                    core,
                    t.saturating_sub(latency),
                    latency,
                    line_args(line),
                ));
            }
            EventKind::SyncDetected { line, acquirer } => {
                items.push(instant(
                    "sync",
                    PID_CORES,
                    core,
                    t,
                    Json::obj([
                        ("line", Json::Str(format!("{line:#x}"))),
                        ("acquirer", Json::U64(acquirer as u64)),
                    ]),
                ));
            }
            EventKind::Engine { to, .. } => {
                if let Some(slot) = engine_open.get_mut(ev.core as usize) {
                    if let Some((since, state)) = slot.take() {
                        if state != EngineState::Idle {
                            items.push(span(
                                state.name(),
                                PID_ENGINE,
                                core,
                                since,
                                t.saturating_sub(since),
                                Json::obj([]),
                            ));
                        }
                    }
                    *slot = Some((t, to));
                }
            }
            EventKind::Mech(m) => match m {
                MechEvent::EpochAdvance { epoch, wrapped } => {
                    items.push(instant(
                        "epoch",
                        PID_CORES,
                        core,
                        t,
                        Json::obj([
                            ("epoch", Json::U64(epoch as u64)),
                            ("wrapped", Json::Bool(wrapped)),
                        ]),
                    ));
                }
                MechEvent::RetInsert {
                    line, occupancy, ..
                } => {
                    items.push(instant("ret-insert", PID_ENGINE, core, t, line_args(line)));
                    items.push(counter(
                        format!("ret-occupancy-c{core}"),
                        PID_ENGINE,
                        core,
                        t,
                        occupancy as u64,
                    ));
                }
                MechEvent::RetSquash { line, occupancy } => {
                    items.push(instant("ret-squash", PID_ENGINE, core, t, line_args(line)));
                    items.push(counter(
                        format!("ret-occupancy-c{core}"),
                        PID_ENGINE,
                        core,
                        t,
                        occupancy as u64,
                    ));
                }
                MechEvent::RetDrain { line, full, .. } => {
                    items.push(instant(
                        if full { "ret-full-drain" } else { "ret-drain" },
                        PID_ENGINE,
                        core,
                        t,
                        line_args(line),
                    ));
                }
            },
        }
    }
    // Close any engine span still open at the end of the trace.
    for (core, slot) in engine_open.into_iter().enumerate() {
        if let Some((since, state)) = slot {
            if state != EngineState::Idle {
                items.push(span(
                    state.name(),
                    PID_ENGINE,
                    core as u64,
                    since,
                    last_t.saturating_sub(since),
                    Json::obj([]),
                ));
            }
        }
    }

    // Perfetto tolerates out-of-order events, but a monotone `ts` per
    // track is part of this exporter's contract (and easier to diff).
    items.sort_by_key(|&(pid, tid, ts, _)| (pid, tid, ts));

    let mut events: Vec<Json> = vec![
        process_meta(PID_CORES, "cores"),
        process_meta(PID_ENGINE, "persist-engine"),
        process_meta(PID_NVM, "nvm"),
    ];
    events.extend(items.into_iter().map(|(_, _, _, j)| j));
    Json::obj([("traceEvents", Json::Arr(events))]).to_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};
    use crate::stats::{FlushClass, StallCause, Stats};

    fn sample_report() -> ObsReport {
        let mut r = Recorder::new(RecorderConfig::default(), 2);
        r.stall_begin(10, 0, StallCause::LoadMiss);
        r.stall_end(40, 0, StallCause::LoadMiss, 30, None, false);
        r.flush_issue(50, 1, 0x40, FlushClass::Critical, 0, &[]);
        r.engine_state(50, 1, EngineState::Scan);
        r.engine_state(66, 1, EngineState::Flush);
        r.engine_state(70, 1, EngineState::Drain);
        r.flush_ack(170, 1, 0x40);
        r.engine_state(170, 1, EngineState::Idle);
        r.sync_detected(200, 1, 0x40, 0);
        r.mech_events(
            210,
            1,
            &[
                MechEvent::EpochAdvance {
                    epoch: 2,
                    wrapped: false,
                },
                MechEvent::RetInsert {
                    line: 0x40,
                    epoch: 2,
                    occupancy: 1,
                },
            ],
        );
        r.finish(300, &Stats::default())
    }

    #[test]
    fn export_is_valid_json_with_expected_tracks() {
        let text = export(&sample_report());
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 10);
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"stall:load_miss"));
        assert!(names.contains(&"flush:critical"));
        assert!(names.contains(&"persist"));
        assert!(names.contains(&"scan"));
        assert!(names.contains(&"sync"));
        assert!(names.contains(&"ret-insert"));
    }

    #[test]
    fn ts_is_monotone_per_track() {
        let doc = Json::parse(&export(&sample_report())).unwrap();
        let mut last: std::collections::HashMap<(u64, u64), u64> = Default::default();
        for e in doc.get("traceEvents").unwrap().as_arr().unwrap() {
            if e.get("ph").and_then(Json::as_str) == Some("M") {
                continue;
            }
            let key = (
                e.get("pid").unwrap().as_u64().unwrap(),
                e.get("tid").unwrap().as_u64().unwrap(),
            );
            let ts = e.get("ts").unwrap().as_u64().unwrap();
            if let Some(&prev) = last.get(&key) {
                assert!(ts >= prev, "track {key:?} went backwards");
            }
            last.insert(key, ts);
        }
    }
}
