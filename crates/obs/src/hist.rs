//! Log2-bucket latency histograms.
//!
//! Bucket `b` holds values whose highest set bit is `b - 1`, i.e. the
//! range `[2^(b-1), 2^b)`; bucket 0 holds exactly the value 0. With 33
//! buckets every `u64` up to `2^32 - 1` lands in its own power-of-two
//! bucket and anything larger saturates into the last — plenty for
//! cycle-denominated latencies.

/// Number of buckets (`0` plus 32 power-of-two ranges).
pub const BUCKETS: usize = 33;

/// A fixed-size log2 histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket counts.
    pub buckets: [u64; BUCKETS],
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index for a value.
pub fn bucket_of(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// The largest value a bucket can hold (saturating for the last).
pub fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Hist {
    /// A fresh, empty histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[bucket_of(v)] += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-quantile (`0.0..=1.0`), resolved to
    /// bucket granularity and clamped by the exact min/max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Rebuilds a histogram from serialized fields; `min` is the
    /// *reported* min (0 for an empty histogram, per [`Hist::min`]).
    pub fn from_parts(count: u64, sum: u64, min: u64, max: u64, buckets: [u64; BUCKETS]) -> Hist {
        Hist {
            count,
            sum,
            buckets,
            min: if count == 0 { u64::MAX } else { min },
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn records_track_exact_extrema() {
        let mut h = Hist::new();
        for v in [5, 120, 120, 350, 7] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 602);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 350);
        assert!((h.mean() - 120.4).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Hist::new();
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn percentile_is_an_upper_bound() {
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!((50..=63).contains(&p50), "{p50}");
        assert!((99..=100).contains(&p99), "{p99}");
        assert_eq!(h.percentile(1.0), 100);
    }

    #[test]
    fn merge_matches_serial_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut serial = Hist::new();
        for v in [1, 2, 3, 100] {
            a.record(v);
            serial.record(v);
        }
        for v in [7, 0, 4096] {
            b.record(v);
            serial.record(v);
        }
        a.merge(&b);
        assert_eq!(a, serial);
    }

    #[test]
    fn parts_round_trip() {
        let mut h = Hist::new();
        h.record(42);
        h.record(7);
        let back = Hist::from_parts(h.count, h.sum, h.min(), h.max(), h.buckets);
        assert_eq!(back, h);
        let empty = Hist::from_parts(0, 0, 0, 0, [0; BUCKETS]);
        assert_eq!(empty, Hist::new());
    }
}
