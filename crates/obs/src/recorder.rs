//! The recorder: one object the timing substrate threads through as an
//! `Option<Recorder>`, so disabled observability costs a single branch
//! per event site.
//!
//! The recorder feeds three independent consumers from the same hook
//! calls: the bounded event ring (export-only, may drop oldest), the
//! online histograms and time-series sampler (never drop), and the
//! invariant audit counters.

use crate::audit::InvariantAudit;
use crate::blame::{BlameCause, BlameTable};
use crate::critpath::{CritPath, CritSegKind, CritSummary};
use crate::event::{EngineState, EventKind, EventRing, MechEvent, Time, TraceEvent};
use crate::hist::Hist;
use crate::series::{IntervalSample, Sampler};
use crate::stats::{FlushClass, StallCause, Stats};
use lrp_model::{EventId, LineAddr};
use std::collections::HashMap;
use std::collections::VecDeque;

/// What to record and how much to keep.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Maximum events retained in the ring (`0` keeps none — histogram
    /// and audit collection still run).
    pub ring_capacity: usize,
    /// Emit a time-series interval every this many cycles (`0` disables
    /// the time series).
    pub sample_every: u64,
    /// Trace durability critical paths ([`crate::critpath`]). On by
    /// default: the engine is online, bounded, and conservation-audited,
    /// so every recorded run gets attribution for free.
    pub critpath: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_capacity: 1 << 16,
            sample_every: 0,
            critpath: true,
        }
    }
}

impl RecorderConfig {
    /// A histogram/audit-only configuration (no event ring, no time
    /// series) — what campaign cells use, where per-event traces would
    /// be too heavy but latency summaries are wanted.
    pub fn summaries_only() -> RecorderConfig {
        RecorderConfig {
            ring_capacity: 0,
            sample_every: 0,
            critpath: true,
        }
    }
}

/// Everything one instrumented run produced.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Cores the machine ran.
    pub ncores: u32,
    /// Sampling period (0 when the time series was disabled).
    pub sample_every: u64,
    /// Retained trace events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events the ring evicted or refused.
    pub dropped: u64,
    /// Completed time-series intervals.
    pub intervals: Vec<IntervalSample>,
    /// Cycles from flush issue to persist ack.
    pub flush_to_ack: Hist,
    /// Cycles from a release's store commit to its write persisting.
    pub release_to_persist: Hist,
    /// Cycles a released line spent in the RET before its flush issued.
    pub ret_residency: Hist,
    /// I1–I4 observation counters.
    pub audit: InvariantAudit,
    /// Highest RET occupancy observed on any core over the whole run.
    pub ret_high_water: u32,
    /// Per-`(site, cause)` blame attribution with line heavy hitters.
    pub blame: BlameTable,
    /// `OpSite` labels referenced by [`TraceEvent::site`] and the blame
    /// table (index 0 = unknown).
    pub site_names: Vec<String>,
    /// Durability critical-path digest (`None` when tracing was off).
    pub crit: Option<CritSummary>,
}

/// Outstanding flush issues awaiting their acks, oldest first.
type FlushIssueFifo = VecDeque<(Time, u16, FlushClass)>;

/// Collects events, metrics, and audits during one simulation run.
#[derive(Debug)]
pub struct Recorder {
    ncores: u32,
    sample_every: u64,
    ring: EventRing,
    sampler: Option<Sampler>,
    flush_to_ack: Hist,
    release_to_persist: Hist,
    ret_residency: Hist,
    /// FIFO of issue (time, site, class) per (core, line): acks match
    /// the oldest issue.
    open_flush: HashMap<(u32, LineAddr), FlushIssueFifo>,
    /// Release store commit times awaiting their persist.
    release_commit: HashMap<EventId, Time>,
    /// RET entry times per (core, line).
    ret_entered: HashMap<(u32, LineAddr), Time>,
    engine: Vec<EngineState>,
    /// I1–I4 audit counters; the substrate calls its observation
    /// methods directly at each enforcement point.
    pub audit: InvariantAudit,
    ret_high_water: u32,
    blame: BlameTable,
    site_names: Vec<String>,
    /// The site each core is currently executing (set by the substrate).
    core_site: Vec<u16>,
    /// A RET-full drain was observed on this core and not yet consumed
    /// by a store-side stall: the next store-drain stall is RET blame.
    ret_full_pending: Vec<bool>,
    /// Durability critical-path engine (`None` when disabled).
    crit: Option<CritPath>,
}

impl Recorder {
    /// A recorder for a machine with `ncores` hardware threads.
    pub fn new(cfg: RecorderConfig, ncores: u32) -> Recorder {
        Recorder {
            ncores,
            sample_every: cfg.sample_every,
            ring: EventRing::new(cfg.ring_capacity),
            sampler: (cfg.sample_every > 0).then(|| Sampler::new(cfg.sample_every)),
            flush_to_ack: Hist::new(),
            release_to_persist: Hist::new(),
            ret_residency: Hist::new(),
            open_flush: HashMap::new(),
            release_commit: HashMap::new(),
            ret_entered: HashMap::new(),
            engine: vec![EngineState::Idle; ncores as usize],
            audit: InvariantAudit::new(),
            ret_high_water: 0,
            blame: BlameTable::default(),
            site_names: Vec::new(),
            core_site: vec![0; ncores as usize],
            ret_full_pending: vec![false; ncores as usize],
            crit: cfg.critpath.then(CritPath::new),
        }
    }

    /// Installs the trace's `OpSite` intern table, resolved when blame
    /// charges and exports render labels.
    pub fn set_site_names(&mut self, names: Vec<String>) {
        self.site_names = names;
    }

    /// The substrate reports the site `core` is currently executing.
    pub fn set_core_site(&mut self, core: u32, site: u16) {
        self.core_site[core as usize] = site;
    }

    /// Installs the attached mechanism's classification for demand-free
    /// flush-issue waits (barrier mechanisms spend them draining epochs;
    /// lazy mechanisms defer by design). No-op when critpath is off.
    pub fn set_crit_drain_kind(&mut self, kind: CritSegKind) {
        if let Some(cp) = self.crit.as_mut() {
            cp.set_drain_kind(kind);
        }
    }

    fn push(&mut self, t: Time, core: u32, kind: EventKind) {
        let site = self.core_site[core as usize];
        self.push_at_site(t, core, site, kind);
    }

    fn push_at_site(&mut self, t: Time, core: u32, site: u16, kind: EventKind) {
        self.ring.push(TraceEvent {
            t,
            core,
            site,
            kind,
        });
    }

    fn charge(&mut self, site: u16, cause: BlameCause, line: LineAddr, cycles: u64) {
        let name = self
            .site_names
            .get(site as usize)
            .map(String::as_str)
            .unwrap_or("unknown");
        self.blame.charge(name, cause, line, cycles);
    }

    /// A core began stalling.
    pub fn stall_begin(&mut self, t: Time, core: u32, cause: StallCause) {
        self.push(t, core, EventKind::StallBegin { cause });
    }

    /// A core resumed after `cycles` stalled on `cause`. `line` is the
    /// cache line the stall waited on when known; `mech_wait` is true
    /// when the head of the store queue was held up by a mechanism
    /// flush barrier while the stall ended.
    ///
    /// Attribution refinement (observation-only; [`Stats`] stays keyed
    /// by the raw cause): a store-side stall with a pending RET-full
    /// drain is charged as [`BlameCause::RetFull`]; otherwise a
    /// store-side stall behind a barrier is [`BlameCause::BarrierDrain`].
    pub fn stall_end(
        &mut self,
        t: Time,
        core: u32,
        cause: StallCause,
        cycles: Time,
        line: Option<LineAddr>,
        mech_wait: bool,
    ) {
        let blame = if cause == StallCause::StoreDrain && self.ret_full_pending[core as usize] {
            self.ret_full_pending[core as usize] = false;
            BlameCause::RetFull
        } else if cause == StallCause::StoreDrain && mech_wait {
            BlameCause::BarrierDrain
        } else {
            BlameCause::Stall(cause)
        };
        let site = self.core_site[core as usize];
        self.charge(site, blame, line.unwrap_or(0), cycles);
        self.push(t, core, EventKind::StallEnd { cause, cycles });
    }

    /// A line flush was issued toward the NVM controllers on behalf of
    /// the op at `site` (the store that materialized the flush).
    /// `covered` are the writes the flush carries; open critical-path
    /// chains among them capture the issue as their interior milestone,
    /// classified here: a synchronisation-demanded flush is a coherence
    /// transfer, an unconsumed RET-full drain marks capacity pressure,
    /// and anything else is the mechanism's drain kind.
    pub fn flush_issue(
        &mut self,
        t: Time,
        core: u32,
        line: LineAddr,
        class: FlushClass,
        site: u16,
        covered: &[EventId],
    ) {
        if let Some(cp) = self.crit.as_mut() {
            let kind = if matches!(class, FlushClass::Sync | FlushClass::Directory) {
                CritSegKind::CoherenceXfer
            } else if self.ret_full_pending[core as usize] {
                CritSegKind::RetFull
            } else {
                cp.drain_kind()
            };
            cp.flush_issued(t, kind, covered);
        }
        self.open_flush
            .entry((core, line))
            .or_default()
            .push_back((t, site, class));
        self.push_at_site(t, core, site, EventKind::FlushIssue { line, class });
    }

    /// A flush ack arrived for `line` at `core`; persist latency is
    /// charged to the issuing site.
    pub fn flush_ack(&mut self, t: Time, core: u32, line: LineAddr) {
        let (latency, site) = match self.open_flush.get_mut(&(core, line)) {
            Some(q) => {
                let (issued, site, class) = q.pop_front().unwrap_or((t, 0, FlushClass::Critical));
                if q.is_empty() {
                    self.open_flush.remove(&(core, line));
                }
                let latency = t.saturating_sub(issued);
                self.charge(site, BlameCause::Flush(class), line, latency);
                (latency, site)
            }
            None => (0, self.core_site[core as usize]),
        };
        self.flush_to_ack.record(latency);
        self.push_at_site(t, core, site, EventKind::FlushAck { line, latency });
    }

    /// A release store committed (left the store buffer into the L1);
    /// `ev` identifies the write for the release-to-persist histogram.
    pub fn release_committed(&mut self, t: Time, ev: EventId) {
        self.release_commit.insert(ev, t);
        if let Some(cp) = self.crit.as_mut() {
            cp.release_committed(t, ev);
        }
    }

    /// Writes `covered` just persisted; releases among them complete
    /// their release-to-persist measurement.
    pub fn persisted(&mut self, t: Time, covered: &[EventId]) {
        for ev in covered {
            if let Some(committed) = self.release_commit.remove(ev) {
                self.release_to_persist.record(t.saturating_sub(committed));
            }
        }
        if let Some(cp) = self.crit.as_mut() {
            cp.persisted(t, covered);
        }
    }

    /// Coherence downgraded a released line: a release→acquire
    /// synchronisation between `core` (the releaser) and `acquirer`.
    pub fn sync_detected(&mut self, t: Time, core: u32, line: LineAddr, acquirer: u32) {
        self.push(t, core, EventKind::SyncDetected { line, acquirer });
    }

    /// The persist-engine FSM at `core` moved to `to` (consecutive
    /// duplicates are elided).
    pub fn engine_state(&mut self, t: Time, core: u32, to: EngineState) {
        let from = self.engine[core as usize];
        if from == to {
            return;
        }
        self.engine[core as usize] = to;
        self.push(t, core, EventKind::Engine { from, to });
    }

    /// Drained mechanism events from `core`, stamped at `t`.
    pub fn mech_events(&mut self, t: Time, core: u32, events: &[MechEvent]) {
        for &ev in events {
            match ev {
                MechEvent::RetInsert {
                    line, occupancy, ..
                } => {
                    self.ret_entered.insert((core, line), t);
                    self.note_ret_occupancy(occupancy);
                }
                MechEvent::RetSquash { line, occupancy } => {
                    if let Some(entered) = self.ret_entered.remove(&(core, line)) {
                        self.ret_residency.record(t.saturating_sub(entered));
                    }
                    self.note_ret_occupancy(occupancy);
                }
                MechEvent::RetDrain { full: true, .. } => {
                    self.ret_full_pending[core as usize] = true;
                }
                MechEvent::EpochAdvance { .. } | MechEvent::RetDrain { .. } => {}
            }
            self.push(t, core, EventKind::Mech(ev));
        }
    }

    fn note_ret_occupancy(&mut self, occ: u32) {
        self.ret_high_water = self.ret_high_water.max(occ);
        if let Some(s) = self.sampler.as_mut() {
            s.note_ret_occupancy(occ);
        }
    }

    /// Closes a time-series interval if `now` crossed a boundary.
    pub fn maybe_sample(&mut self, now: Time, stats: &Stats) {
        if let Some(s) = self.sampler.as_mut() {
            s.maybe_sample(now, stats);
        }
    }

    /// Finalises the run into its report.
    pub fn finish(mut self, now: Time, stats: &Stats) -> ObsReport {
        if let Some(s) = self.sampler.as_mut() {
            s.finish(now, stats);
        }
        ObsReport {
            ncores: self.ncores,
            sample_every: self.sample_every,
            dropped: self.ring.dropped(),
            events: self.ring.into_events(),
            intervals: self.sampler.map(|s| s.intervals).unwrap_or_default(),
            flush_to_ack: self.flush_to_ack,
            release_to_persist: self.release_to_persist,
            ret_residency: self.ret_residency,
            audit: self.audit,
            ret_high_water: self.ret_high_water,
            blame: self.blame,
            site_names: self.site_names,
            crit: self.crit.map(|cp| cp.finish(now)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_latency_matches_issue_to_ack() {
        let mut r = Recorder::new(RecorderConfig::default(), 2);
        r.flush_issue(100, 0, 0x40, FlushClass::Critical, 0, &[]);
        r.flush_issue(110, 0, 0x40, FlushClass::Background, 0, &[]);
        r.flush_ack(220, 0, 0x40); // matches the t=100 issue
        r.flush_ack(300, 0, 0x40); // matches the t=110 issue
        let report = r.finish(400, &Stats::default());
        assert_eq!(report.flush_to_ack.count, 2);
        assert_eq!(report.flush_to_ack.min(), 120);
        assert_eq!(report.flush_to_ack.max(), 190);
    }

    #[test]
    fn flush_blame_charges_the_issuing_site() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.set_site_names(vec!["unknown".into(), "queue/enqueue/link-next".into()]);
        r.flush_issue(100, 0, 0x40, FlushClass::Critical, 1, &[]);
        r.flush_ack(220, 0, 0x40);
        let report = r.finish(400, &Stats::default());
        assert_eq!(
            report.blame.cycles_for(
                "queue/enqueue/link-next",
                BlameCause::Flush(FlushClass::Critical)
            ),
            120
        );
    }

    #[test]
    fn store_stall_after_ret_full_drain_is_ret_blame() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.set_site_names(vec!["unknown".into(), "q/enq".into()]);
        r.set_core_site(0, 1);
        r.mech_events(
            10,
            0,
            &[MechEvent::RetDrain {
                line: 0x40,
                epoch: 3,
                full: true,
            }],
        );
        r.stall_begin(10, 0, StallCause::StoreDrain);
        r.stall_end(90, 0, StallCause::StoreDrain, 80, Some(0x40), true);
        // The pending flag is consumed: the next barrier stall is not RET.
        r.stall_begin(100, 0, StallCause::StoreDrain);
        r.stall_end(150, 0, StallCause::StoreDrain, 50, Some(0x80), true);
        // Non-store stalls keep their raw cause.
        r.stall_end(200, 0, StallCause::LoadMiss, 30, Some(0xC0), false);
        let report = r.finish(300, &Stats::default());
        assert_eq!(report.blame.cycles_for("q/enq", BlameCause::RetFull), 80);
        assert_eq!(
            report.blame.cycles_for("q/enq", BlameCause::BarrierDrain),
            50
        );
        assert_eq!(
            report
                .blame
                .cycles_for("q/enq", BlameCause::Stall(StallCause::LoadMiss)),
            30
        );
    }

    #[test]
    fn events_carry_the_core_site() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.set_site_names(vec!["unknown".into(), "hashmap/insert".into()]);
        r.stall_begin(5, 0, StallCause::LoadMiss);
        r.set_core_site(0, 1);
        r.stall_begin(10, 0, StallCause::LoadMiss);
        let report = r.finish(20, &Stats::default());
        assert_eq!(report.events[0].site, 0);
        assert_eq!(report.events[1].site, 1);
        assert_eq!(report.site_names[1], "hashmap/insert");
    }

    #[test]
    fn release_to_persist_tracks_only_releases() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.release_committed(50, 7);
        r.persisted(170, &[3, 7, 9]); // 3 and 9 are plain writes
        r.persisted(400, &[7]); // already measured: ignored
        let report = r.finish(500, &Stats::default());
        assert_eq!(report.release_to_persist.count, 1);
        assert_eq!(report.release_to_persist.max(), 120);
    }

    #[test]
    fn ret_residency_and_high_water() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.mech_events(
            10,
            0,
            &[MechEvent::RetInsert {
                line: 0x80,
                epoch: 1,
                occupancy: 5,
            }],
        );
        r.mech_events(
            90,
            0,
            &[MechEvent::RetSquash {
                line: 0x80,
                occupancy: 4,
            }],
        );
        let report = r.finish(100, &Stats::default());
        assert_eq!(report.ret_residency.count, 1);
        assert_eq!(report.ret_residency.max(), 80);
        assert_eq!(report.ret_high_water, 5);
    }

    #[test]
    fn engine_transitions_elide_duplicates() {
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.engine_state(10, 0, EngineState::Scan);
        r.engine_state(20, 0, EngineState::Scan);
        r.engine_state(30, 0, EngineState::Flush);
        r.engine_state(40, 0, EngineState::Idle);
        let report = r.finish(50, &Stats::default());
        let transitions: Vec<_> = report
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Engine { .. }))
            .collect();
        assert_eq!(transitions.len(), 3);
    }

    #[test]
    fn critpath_classifies_sync_ret_and_drain_issues() {
        use crate::critpath::CritSegKind;
        let mut r = Recorder::new(RecorderConfig::default(), 1);
        r.set_crit_drain_kind(CritSegKind::BarrierDrain);
        // Sync-class issue: the pre-issue wait is a coherence transfer.
        r.release_committed(0, 1);
        r.flush_issue(20, 0, 0x40, FlushClass::Sync, 0, &[1]);
        r.persisted(50, &[1]);
        // Unconsumed RET-full drain: capacity pressure.
        r.mech_events(
            60,
            0,
            &[MechEvent::RetDrain {
                line: 0x80,
                epoch: 1,
                full: true,
            }],
        );
        r.release_committed(60, 2);
        r.flush_issue(70, 0, 0x80, FlushClass::Critical, 0, &[2]);
        r.persisted(100, &[2]);
        // Plain critical issue: the mechanism's drain kind.
        r.ret_full_pending[0] = false;
        r.release_committed(100, 3);
        r.flush_issue(130, 0, 0xC0, FlushClass::Critical, 0, &[3]);
        r.persisted(200, &[3]);
        let report = r.finish(300, &Stats::default());
        let crit = report.crit.expect("critpath on by default");
        assert_eq!(crit.paths(), 3);
        assert_eq!(crit.seg_cycles[CritSegKind::CoherenceXfer.idx()], 20);
        assert_eq!(crit.seg_cycles[CritSegKind::RetFull.idx()], 10);
        assert_eq!(crit.seg_cycles[CritSegKind::BarrierDrain.idx()], 30);
        assert_eq!(crit.seg_cycles[CritSegKind::NvmQueue.idx()], 30 + 30 + 70);
        assert_eq!(crit.audit.total_violations(), 0);
        // Conservation against the independent latency histogram.
        assert_eq!(crit.path.sum, report.release_to_persist.sum);
        assert_eq!(crit.path.count, report.release_to_persist.count);
    }

    #[test]
    fn critpath_off_yields_no_summary_and_same_metrics() {
        let cfg = RecorderConfig {
            critpath: false,
            ..RecorderConfig::default()
        };
        let mut r = Recorder::new(cfg, 1);
        r.release_committed(50, 7);
        r.persisted(170, &[7]);
        let report = r.finish(500, &Stats::default());
        assert!(report.crit.is_none());
        assert_eq!(report.release_to_persist.count, 1);
    }

    #[test]
    fn summaries_only_keeps_no_events_but_all_metrics() {
        let mut r = Recorder::new(RecorderConfig::summaries_only(), 1);
        r.flush_issue(0, 0, 0x40, FlushClass::Sync, 0, &[]);
        r.flush_ack(120, 0, 0x40);
        let report = r.finish(200, &Stats::default());
        assert!(report.events.is_empty());
        assert_eq!(report.flush_to_ack.count, 1);
        assert!(report.intervals.is_empty());
        assert!(
            !report.blame.is_empty(),
            "blame survives summaries-only mode"
        );
    }
}
