//! Typed trace events and the bounded ring buffer that holds them.
//!
//! Events exist for *export* (Chrome trace / debugging); every derived
//! metric (histograms, time series, audits) is computed online by the
//! recorder, so a full ring dropping its oldest events never skews the
//! numbers — only the exported timeline shortens.

use crate::stats::{FlushClass, StallCause};
use lrp_model::LineAddr;

/// Simulated time in cycles.
pub type Time = u64;

/// The persist-engine FSM state, as observed at the per-core flush
/// sequencer (§5.2's persist engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineState {
    /// No queued jobs, no pending persists.
    #[default]
    Idle,
    /// Charging the L1 scan cost before issuing a run's first stage.
    Scan,
    /// Issuing a stage's flushes.
    Flush,
    /// Waiting for outstanding persist acks before the next stage.
    Drain,
}

impl EngineState {
    /// Every state, in FSM order.
    pub const ALL: [EngineState; 4] = [
        EngineState::Idle,
        EngineState::Scan,
        EngineState::Flush,
        EngineState::Drain,
    ];

    /// Stable snake_case key for serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            EngineState::Idle => "idle",
            EngineState::Scan => "scan",
            EngineState::Flush => "flush",
            EngineState::Drain => "drain",
        }
    }
}

/// An event emitted by a persistency mechanism (`PersistMech`), with no
/// notion of simulated time or core identity — mechanisms are
/// substrate-independent, so the simulator stamps both when it drains
/// the mechanism's buffer into the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechEvent {
    /// The per-thread epoch counter advanced (a release committed).
    EpochAdvance {
        /// The new epoch value.
        epoch: u16,
        /// The counter wrapped at its limit and forced a full drain.
        wrapped: bool,
    },
    /// A released line entered the Release Epoch Table.
    RetInsert {
        /// The released line.
        line: LineAddr,
        /// Its release epoch.
        epoch: u16,
        /// RET occupancy after the insert.
        occupancy: u32,
    },
    /// A RET entry left because its line's flush was issued.
    RetSquash {
        /// The line whose entry was removed.
        line: LineAddr,
        /// RET occupancy after the squash.
        occupancy: u32,
    },
    /// A store to a released line (or RET pressure) triggered a drain of
    /// RET entries.
    RetDrain {
        /// The line whose store triggered the drain.
        line: LineAddr,
        /// The epoch up to which entries drain.
        epoch: u16,
        /// `true` when the table was full and the store stalls
        /// (critical-path drain); `false` for the watermark-triggered
        /// background drain.
        full: bool,
    },
}

/// One recorded event, stamped with cycle time and originating core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub t: Time,
    /// Core (hardware-thread) index; directory/NVM events carry the
    /// core on whose behalf they act.
    pub core: u32,
    /// The [`OpSite`](crate::BlameTable) the originating core was
    /// executing (an index into the run's site-name table; 0 = unknown).
    pub site: u16,
    /// What happened.
    pub kind: EventKind,
}

/// Everything the tracer can record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A mechanism-level event (epoch / RET activity).
    Mech(MechEvent),
    /// The persist-engine FSM moved to a new state.
    Engine {
        /// Previous state.
        from: EngineState,
        /// New state.
        to: EngineState,
    },
    /// A line flush was issued toward the NVM controllers.
    FlushIssue {
        /// The flushed line.
        line: LineAddr,
        /// Why it was issued.
        class: FlushClass,
    },
    /// A previously issued flush was acknowledged persistent.
    FlushAck {
        /// The flushed line.
        line: LineAddr,
        /// Cycles from issue to ack.
        latency: Time,
    },
    /// Coherence detected a release→acquire synchronisation: another
    /// core's access downgraded a released line.
    SyncDetected {
        /// The released line being downgraded.
        line: LineAddr,
        /// The requesting (acquiring) core.
        acquirer: u32,
    },
    /// A core began stalling.
    StallBegin {
        /// Why.
        cause: StallCause,
    },
    /// A core resumed execution.
    StallEnd {
        /// Why it had stalled.
        cause: StallCause,
        /// Stall duration in cycles.
        cycles: Time,
    },
}

/// A bounded drop-oldest ring of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct EventRing {
    buf: std::collections::VecDeque<TraceEvent>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `cap` events (`0` disables recording).
    pub fn new(cap: usize) -> EventRing {
        EventRing {
            buf: std::collections::VecDeque::with_capacity(cap.min(4096)),
            cap,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or refused, for a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring into a time-ordered vector.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: Time) -> TraceEvent {
        TraceEvent {
            t,
            core: 0,
            site: 0,
            kind: EventKind::StallBegin {
                cause: StallCause::LoadMiss,
            },
        }
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = EventRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let times: Vec<Time> = r.into_events().iter().map(|e| e.t).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_ring_records_nothing() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn engine_states_have_stable_names() {
        let names: Vec<&str> = EngineState::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["idle", "scan", "flush", "drain"]);
    }
}
