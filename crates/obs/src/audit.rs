//! Invariant audit counters for §5.1's I1–I4.
//!
//! The machine *enforces* the invariants through its flush sequencer and
//! directory protocol; these counters *observe* the enforcement points
//! and count how often the claimed condition actually held. A violation
//! count of zero is the cheap always-on sanity signal; a non-zero count
//! localises which invariant a regression broke without re-deriving
//! behaviour from aggregate totals. Auditing never changes machine
//! behaviour.

/// Checks performed / violations seen for one invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AuditCounter {
    /// Times the invariant's enforcement point was observed.
    pub checks: u64,
    /// Observations where the invariant did not hold.
    pub violations: u64,
}

impl AuditCounter {
    fn observe(&mut self, ok: bool) {
        self.checks += 1;
        if !ok {
            self.violations += 1;
        }
    }
}

/// Audit counters for the four LRP invariants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvariantAudit {
    /// I1 — a released line's write-back leaves the L1 only after all
    /// earlier writes have persisted.
    pub i1: AuditCounter,
    /// I2 — a downgrade response for a released line is sent only after
    /// the release itself (and its priors) persisted.
    pub i2: AuditCounter,
    /// I3 — a successful acquire-RMW retires only once its own write's
    /// persist is acknowledged.
    pub i3: AuditCounter,
    /// I4 — the directory persists L1 write-backs carrying unpersisted
    /// writes before making them visible.
    pub i4: AuditCounter,
}

impl InvariantAudit {
    /// A fresh audit with no observations.
    pub fn new() -> InvariantAudit {
        InvariantAudit::default()
    }

    /// I1 enforcement point: a released victim's write-back is sent to
    /// the directory. `pending_persists` is the core's outstanding
    /// persist count at that moment; the invariant demands it be zero.
    pub fn release_writeback(&mut self, pending_persists: u64) {
        self.i1.observe(pending_persists == 0);
    }

    /// I2 enforcement point: a downgrade response for a released line is
    /// sent. The line must have persisted locally (`line_persisted`) and
    /// no prior persist may still be outstanding.
    pub fn release_downgrade(&mut self, pending_persists: u64, line_persisted: bool) {
        self.i2.observe(pending_persists == 0 && line_persisted);
    }

    /// I3 enforcement point: an acquire-RMW's store retires.
    /// `persist_acked` is whether its synchronous persist completed.
    pub fn rmw_retire(&mut self, persist_acked: bool) {
        self.i3.observe(persist_acked);
    }

    /// I4 enforcement point: the directory received a data write-back.
    /// `carries_writes` is whether it still covers unpersisted writes,
    /// `will_persist` whether the directory persists it before granting.
    pub fn dir_writeback(&mut self, carries_writes: bool, will_persist: bool) {
        self.i4.observe(!carries_writes || will_persist);
    }

    /// Total observations across all four invariants.
    pub fn total_checks(&self) -> u64 {
        self.i1.checks + self.i2.checks + self.i3.checks + self.i4.checks
    }

    /// Total violations across all four invariants.
    pub fn total_violations(&self) -> u64 {
        self.i1.violations + self.i2.violations + self.i3.violations + self.i4.violations
    }

    /// `(name, counter)` rows in invariant order, for reports.
    pub fn rows(&self) -> [(&'static str, AuditCounter); 4] {
        [
            ("i1", self.i1),
            ("i2", self.i2),
            ("i3", self.i3),
            ("i4", self.i4),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_observations_count_checks_only() {
        let mut a = InvariantAudit::new();
        a.release_writeback(0);
        a.release_downgrade(0, true);
        a.rmw_retire(true);
        a.dir_writeback(true, true);
        a.dir_writeback(false, false); // no writes carried: vacuously ok
        assert_eq!(a.total_checks(), 5);
        assert_eq!(a.total_violations(), 0);
    }

    #[test]
    fn corrupted_stream_is_flagged() {
        // A deliberately corrupted event stream: each enforcement point
        // reports the condition the invariant forbids.
        let mut a = InvariantAudit::new();
        a.release_writeback(3); // I1: priors still pending
        a.release_downgrade(0, false); // I2: line not persisted
        a.release_downgrade(1, true); // I2: priors pending
        a.rmw_retire(false); // I3: retired without its ack
        a.dir_writeback(true, false); // I4: visible without a persist
        assert_eq!(a.i1.violations, 1);
        assert_eq!(a.i2.violations, 2);
        assert_eq!(a.i3.violations, 1);
        assert_eq!(a.i4.violations, 1);
        assert_eq!(a.total_violations(), 5);
        assert_eq!(a.total_checks(), 5);
    }

    #[test]
    fn rows_are_stable() {
        let names: Vec<&str> = InvariantAudit::new().rows().iter().map(|r| r.0).collect();
        assert_eq!(names, vec!["i1", "i2", "i3", "i4"]);
    }
}
