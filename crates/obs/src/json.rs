//! Minimal JSON document model, writer, and parser.
//!
//! The workspace builds fully offline (no `serde`), and campaign
//! artifacts must be *byte-deterministic* so that parallel and serial
//! runs produce identical reports. This module therefore keeps objects
//! as insertion-ordered key/value vectors (no hash-map iteration order
//! leaks into the output) and formats numbers with Rust's shortest
//! round-trip `Display`.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts, event counts).
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering (JSONL records).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (report files).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                if f.is_finite() {
                    // Shortest round-trip formatting; integral floats
                    // print without a fraction and parse back as U64,
                    // which `as_f64` treats interchangeably.
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (strict enough for our own output).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                pairs.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if tok.is_empty() {
        return Err(format!("expected a value at byte {start}"));
    }
    if !tok.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = tok.parse::<u64>() {
            return Ok(Json::U64(n));
        }
    }
    tok.parse::<f64>()
        .map(Json::F64)
        .map_err(|e| format!("bad number {tok:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering_is_stable() {
        let doc = Json::obj([
            ("b", Json::U64(2)),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::Str("x\"y\n".to_string())),
            ("f", Json::F64(1.5)),
        ]);
        assert_eq!(
            doc.to_compact(),
            r#"{"b":2,"a":[true,null],"s":"x\"y\n","f":1.5}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let doc = Json::obj([("k", Json::Arr(vec![Json::U64(1)]))]);
        assert_eq!(doc.to_pretty(), "{\n  \"k\": [\n    1\n  ]\n}\n");
    }

    #[test]
    fn parse_round_trips_own_output() {
        let doc = Json::obj([
            ("cycles", Json::U64(123_456_789_012)),
            ("frac", Json::F64(0.3333333333333333)),
            ("name", Json::Str("hashmap/lrp".to_string())),
            ("nested", Json::obj([("deep", Json::Arr(vec![]))])),
            ("flag", Json::Bool(false)),
            ("nothing", Json::Null),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = Json::parse(r#"{"a":{"b":[1,2.5,"x"]},"ok":true}"#).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn non_finite_floats_write_as_null() {
        assert_eq!(Json::F64(f64::NAN).to_compact(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_compact(), "null");
    }
}
