//! JSONL metrics exporter, plus the canonical `Stats` and `Hist` JSON
//! encodings shared with the campaign aggregator's manifests.
//!
//! The stream is line-oriented: one `obs-header` line, one `interval`
//! line per time-series sample, one `hist` line per latency histogram,
//! one `audit` line, and a final `aggregate` line carrying the run's
//! end-of-run [`Stats`] in exactly the encoding campaign manifests use
//! — so campaign tooling can consume either source interchangeably.

use crate::hist::{Hist, BUCKETS};
use crate::json::Json;
use crate::recorder::ObsReport;
use crate::series::IntervalSample;
use crate::stats::{FlushClass, StallCause, Stats};

/// Metrics stream format version; bump on breaking layout changes.
pub const METRICS_VERSION: u64 = 1;

/// The canonical JSON encoding of [`Stats`] (used verbatim by campaign
/// manifests and the `aggregate` line of the metrics stream).
pub fn stats_json(s: &Stats) -> Json {
    Json::obj([
        ("cycles", Json::U64(s.cycles)),
        ("ops", Json::U64(s.ops)),
        ("load_hits", Json::U64(s.load_hits)),
        ("load_misses", Json::U64(s.load_misses)),
        ("stores", Json::U64(s.stores)),
        ("downgrades", Json::U64(s.downgrades)),
        ("evictions", Json::U64(s.evictions)),
        (
            "flushes",
            Json::Obj(
                s.flushes_by_class()
                    .iter()
                    .map(|&(c, n)| (c.name().to_string(), Json::U64(n)))
                    .collect(),
            ),
        ),
        ("covered_writes", Json::U64(s.covered_writes)),
        (
            "stalls",
            Json::Obj(
                s.stalls_by_cause()
                    .iter()
                    .map(|&(c, n)| (c.name().to_string(), Json::U64(n)))
                    .collect(),
            ),
        ),
        ("noc_messages", Json::U64(s.noc_messages)),
        ("nvm_requests", Json::U64(s.nvm_requests)),
        ("engine_runs", Json::U64(s.engine_runs)),
    ])
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses the [`stats_json`] encoding back into [`Stats`].
pub fn parse_stats(doc: &Json) -> Result<Stats, String> {
    let mut s = Stats {
        cycles: field_u64(doc, "cycles")?,
        ops: field_u64(doc, "ops")?,
        load_hits: field_u64(doc, "load_hits")?,
        load_misses: field_u64(doc, "load_misses")?,
        stores: field_u64(doc, "stores")?,
        downgrades: field_u64(doc, "downgrades")?,
        evictions: field_u64(doc, "evictions")?,
        covered_writes: field_u64(doc, "covered_writes")?,
        noc_messages: field_u64(doc, "noc_messages")?,
        nvm_requests: field_u64(doc, "nvm_requests")?,
        engine_runs: field_u64(doc, "engine_runs")?,
        ..Stats::default()
    };
    let flushes = doc
        .get("flushes")
        .ok_or_else(|| "missing field \"flushes\"".to_string())?;
    for class in FlushClass::ALL {
        let n = field_u64(flushes, class.name())?;
        // Zero counts stay out of the map, matching how `record_flush`
        // populates it.
        if n > 0 {
            s.flushes.insert(class, n);
        }
    }
    let stalls = doc
        .get("stalls")
        .ok_or_else(|| "missing field \"stalls\"".to_string())?;
    for cause in StallCause::ALL {
        let n = field_u64(stalls, cause.name())?;
        if n > 0 {
            s.stalls.insert(cause, n);
        }
    }
    Ok(s)
}

/// The canonical JSON encoding of a [`Hist`].
pub fn hist_json(h: &Hist) -> Json {
    Json::obj([
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("min", Json::U64(h.min())),
        ("max", Json::U64(h.max())),
        ("mean", Json::F64(h.mean())),
        ("p50", Json::U64(h.percentile(0.5))),
        ("p99", Json::U64(h.percentile(0.99))),
        (
            "buckets",
            Json::Arr(h.buckets.iter().map(|&n| Json::U64(n)).collect()),
        ),
    ])
}

/// Parses the [`hist_json`] encoding back into a [`Hist`].
pub fn parse_hist(doc: &Json) -> Result<Hist, String> {
    let arr = doc
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing field \"buckets\"".to_string())?;
    if arr.len() != BUCKETS {
        return Err(format!("expected {BUCKETS} buckets, got {}", arr.len()));
    }
    let mut buckets = [0u64; BUCKETS];
    for (slot, v) in buckets.iter_mut().zip(arr) {
        *slot = v.as_u64().ok_or_else(|| "non-integer bucket".to_string())?;
    }
    Ok(Hist::from_parts(
        field_u64(doc, "count")?,
        field_u64(doc, "sum")?,
        field_u64(doc, "min")?,
        field_u64(doc, "max")?,
        buckets,
    ))
}

fn interval_json(s: &IntervalSample) -> Json {
    Json::obj([
        ("type", Json::Str("interval".to_string())),
        ("start", Json::U64(s.start)),
        ("end", Json::U64(s.end)),
        ("ops", Json::U64(s.ops)),
        (
            "flushes",
            Json::Obj(
                FlushClass::ALL
                    .iter()
                    .zip(s.flushes.iter())
                    .map(|(c, &n)| (c.name().to_string(), Json::U64(n)))
                    .collect(),
            ),
        ),
        (
            "stalls",
            Json::Obj(
                StallCause::ALL
                    .iter()
                    .zip(s.stalls.iter())
                    .map(|(c, &n)| (c.name().to_string(), Json::U64(n)))
                    .collect(),
            ),
        ),
        ("noc_messages", Json::U64(s.noc_messages)),
        ("nvm_requests", Json::U64(s.nvm_requests)),
        ("ret_high_water", Json::U64(s.ret_high_water as u64)),
    ])
}

/// The three latency histograms in their stable stream order.
pub fn hist_rows(report: &ObsReport) -> [(&'static str, &Hist); 3] {
    [
        ("flush_to_ack", &report.flush_to_ack),
        ("release_to_persist", &report.release_to_persist),
        ("ret_residency", &report.ret_residency),
    ]
}

/// One stderr warning per drained ring (never one per drop): prints
/// nothing when `dropped` is zero, otherwise a single aggregate line
/// naming the ring. Returns the number of per-drop warnings the single
/// line stands in for — the dedup count recorded in the JSONL export.
pub fn warn_ring_drops(ring: &str, dropped: u64) -> u64 {
    if dropped == 0 {
        return 0;
    }
    eprintln!(
        "WARNING: {ring} ring dropped {dropped} event(s); \
         raise its capacity for complete traces \
         (histograms, audits, blame, and critical paths are computed \
         online and stay exact)"
    );
    dropped.saturating_sub(1)
}

fn audit_json(report: &ObsReport) -> Json {
    let mut pairs = vec![("type", Json::Str("audit".to_string()))];
    for (name, c) in report.audit.rows() {
        pairs.push((
            name,
            Json::obj([
                ("checks", Json::U64(c.checks)),
                ("violations", Json::U64(c.violations)),
            ]),
        ));
    }
    pairs.push((
        "total_violations",
        Json::U64(report.audit.total_violations()),
    ));
    Json::obj(pairs)
}

/// Renders the full JSONL metrics stream for one run.
pub fn export_jsonl(report: &ObsReport, stats: &Stats) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("type", Json::Str("obs-header".to_string())),
        ("format_version", Json::U64(METRICS_VERSION)),
        ("sample_every", Json::U64(report.sample_every)),
        ("cores", Json::U64(report.ncores as u64)),
        ("events_recorded", Json::U64(report.events.len() as u64)),
        ("events_dropped", Json::U64(report.dropped)),
        // Per-drop warnings coalesced into the single stderr line (see
        // `warn_ring_drops`): drops minus the one warning printed.
        (
            "drop_warnings_deduped",
            Json::U64(report.dropped.saturating_sub(1)),
        ),
        ("ret_high_water", Json::U64(report.ret_high_water as u64)),
    ]);
    out.push_str(&header.to_compact());
    out.push('\n');
    for interval in &report.intervals {
        out.push_str(&interval_json(interval).to_compact());
        out.push('\n');
    }
    for (name, hist) in hist_rows(report) {
        let mut doc = vec![
            ("type", Json::Str("hist".to_string())),
            ("name", Json::Str(name.to_string())),
        ];
        if let Json::Obj(pairs) = hist_json(hist) {
            doc.extend(pairs.into_iter().map(|(k, v)| {
                // Keys come from hist_json's static set.
                let k: &'static str = match k.as_str() {
                    "count" => "count",
                    "sum" => "sum",
                    "min" => "min",
                    "max" => "max",
                    "mean" => "mean",
                    "p50" => "p50",
                    "p99" => "p99",
                    _ => "buckets",
                };
                (k, v)
            }));
        }
        out.push_str(&Json::obj(doc).to_compact());
        out.push('\n');
    }
    out.push_str(&audit_json(report).to_compact());
    out.push('\n');
    if let Some(crit) = &report.crit {
        let line = Json::obj([
            ("type", Json::Str("critpath".to_string())),
            ("critpath", crate::critpath::crit_json(crit)),
        ]);
        out.push_str(&line.to_compact());
        out.push('\n');
    }
    let blame = Json::obj([
        ("type", Json::Str("blame".to_string())),
        ("blame", crate::blame::blame_json(&report.blame)),
    ]);
    out.push_str(&blame.to_compact());
    out.push('\n');
    let aggregate = Json::obj([
        ("type", Json::Str("aggregate".to_string())),
        ("stats", stats_json(stats)),
    ]);
    out.push_str(&aggregate.to_compact());
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, RecorderConfig};

    fn sample_stats() -> Stats {
        let mut s = Stats {
            cycles: 1000,
            ops: 64,
            load_hits: 40,
            load_misses: 8,
            stores: 16,
            noc_messages: 200,
            nvm_requests: 12,
            engine_runs: 3,
            covered_writes: 20,
            ..Stats::default()
        };
        s.record_flush(FlushClass::Critical, 2);
        s.record_flush(FlushClass::Background, 1);
        s.record_stall(StallCause::PersistAck, 77);
        s
    }

    #[test]
    fn stats_encoding_round_trips() {
        let s = sample_stats();
        let back = parse_stats(&stats_json(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn hist_encoding_round_trips() {
        let mut h = Hist::new();
        for v in [0, 1, 120, 350, 4096] {
            h.record(v);
        }
        let back = parse_hist(&hist_json(&h)).unwrap();
        assert_eq!(back, h);
        assert_eq!(parse_hist(&hist_json(&Hist::new())).unwrap(), Hist::new());
    }

    #[test]
    fn stream_lines_all_parse_and_cover_all_types() {
        let mut r = Recorder::new(
            RecorderConfig {
                ring_capacity: 16,
                sample_every: 100,
                ..RecorderConfig::default()
            },
            2,
        );
        let stats = sample_stats();
        r.release_committed(5, 9);
        r.flush_issue(10, 0, 0x40, FlushClass::Critical, 0, &[9]);
        r.flush_ack(130, 0, 0x40);
        r.persisted(130, &[9]);
        r.maybe_sample(150, &stats);
        let text = export_jsonl(&r.finish(1000, &stats), &stats);
        let mut types = Vec::new();
        for line in text.lines() {
            let doc = Json::parse(line).unwrap();
            types.push(doc.get("type").unwrap().as_str().unwrap().to_string());
        }
        assert_eq!(types[0], "obs-header");
        assert!(types.iter().filter(|t| *t == "interval").count() >= 2);
        assert_eq!(types.iter().filter(|t| *t == "hist").count(), 3);
        assert_eq!(types[types.len() - 4], "audit");
        assert_eq!(types[types.len() - 3], "critpath");
        assert_eq!(types[types.len() - 2], "blame");
        assert_eq!(types[types.len() - 1], "aggregate");
    }

    #[test]
    fn critpath_line_round_trips_through_the_stream() {
        let mut r = Recorder::new(RecorderConfig::summaries_only(), 1);
        r.release_committed(50, 7);
        r.flush_issue(80, 0, 0x40, FlushClass::Critical, 0, &[7]);
        r.persisted(200, &[7]);
        let report = r.finish(1000, &Stats::default());
        let text = export_jsonl(&report, &Stats::default());
        let line = text
            .lines()
            .find(|l| l.contains("\"type\":\"critpath\""))
            .expect("critpath line present");
        let doc = Json::parse(line).unwrap();
        let back = crate::critpath::parse_crit(doc.get("critpath").unwrap()).unwrap();
        assert_eq!(Some(back), report.crit);
    }

    #[test]
    fn drop_dedup_count_is_drops_minus_the_one_warning() {
        assert_eq!(warn_ring_drops("obs", 0), 0); // silent: nothing dropped
        assert_eq!(warn_ring_drops("obs", 1), 0); // one warning for one drop
        assert_eq!(warn_ring_drops("obs", 17), 16); // 16 duplicates deduped
        let mut r = Recorder::new(
            RecorderConfig {
                ring_capacity: 1,
                sample_every: 0,
                ..RecorderConfig::default()
            },
            1,
        );
        for t in 0..5 {
            r.stall_begin(t, 0, StallCause::LoadMiss);
        }
        let report = r.finish(10, &Stats::default());
        let text = export_jsonl(&report, &Stats::default());
        let header = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(header.get("events_dropped").unwrap().as_u64(), Some(4));
        assert_eq!(
            header.get("drop_warnings_deduped").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn blame_line_round_trips_through_the_stream() {
        let mut r = Recorder::new(RecorderConfig::summaries_only(), 1);
        r.set_site_names(vec!["unknown".into(), "queue/enqueue".into()]);
        r.flush_issue(10, 0, 0x40, FlushClass::Critical, 1, &[]);
        r.flush_ack(130, 0, 0x40);
        let report = r.finish(1000, &Stats::default());
        let text = export_jsonl(&report, &Stats::default());
        let line = text
            .lines()
            .find(|l| l.contains("\"type\":\"blame\""))
            .expect("blame line present");
        let doc = Json::parse(line).unwrap();
        let back = crate::blame::parse_blame(doc.get("blame").unwrap()).unwrap();
        assert_eq!(back, report.blame);
    }
}
