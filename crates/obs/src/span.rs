//! Request-scoped span tracing for the serving layer.
//!
//! The simulator-side [`recorder`](crate::recorder) answers *what the
//! machine did*; this module answers *where a request spent its time*
//! between wire-in and ack. A [`Span`] is one phase of one request's
//! life — wire decode, queue wait, batch formation, simulated
//! execution, persist-schedule stamping, or the ack write — tied
//! together by span id + parent id into a per-request tree whose root
//! covers the whole request. The ack span carries the simulated persist
//! stamp that justified a durable ack, so a Chrome trace shows not just
//! *that* an ack was durable but *which* persist made it so.
//!
//! Spans are recorded into a bounded drop-oldest [`SpanLog`] (drops are
//! counted, mirroring the event ring), exported as Chrome trace-event
//! JSON with one process track per shard ([`chrome_trace`]), and
//! checked for well-formedness by [`audit_chains`] — the test- and
//! CI-facing oracle that every durable ack has a complete
//! wire→queue→batch→execute→persist→ack chain nested inside its root.

use crate::json::Json;
use std::collections::VecDeque;

/// Span identifier; 0 is reserved for "no parent".
pub type SpanId = u64;

/// The typed phase a span covers. Root spans are `Request`; every other
/// phase is a child of exactly one root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// The whole request, wire-in to ack written. `op` is the wire op
    /// kind (0 get, 1 put, 2 del).
    Request {
        /// Wire op kind (0 get, 1 put, 2 del).
        op: u8,
    },
    /// Frame received → request decoded and routed.
    Wire {
        /// Payload bytes decoded.
        bytes: u32,
    },
    /// Admission to the shard queue → drained by the batcher.
    Queue {
        /// Queue depth observed at admission (or rejection).
        depth: u32,
        /// The request was shed by admission control (chain ends in a
        /// non-durable ack).
        shed: bool,
    },
    /// Batch formation window (first op available → batch closed).
    Batch {
        /// Shard batch number.
        batch: u64,
        /// Requests in the batch.
        size: u32,
    },
    /// Simulated execution (trace build + timing simulator run).
    Execute {
        /// Shard batch number.
        batch: u64,
    },
    /// Persist-schedule stamping and the commit/null-recovery check.
    Persist {
        /// Shard batch number.
        batch: u64,
        /// Final persist stamp of the batch (0 = nothing persisted).
        final_stamp: u64,
    },
    /// Reply write. For durable acks `persist_stamp` is the simulated
    /// cycle of the op's last persisted write — the stamp that
    /// justified the ack.
    Ack {
        /// The reply carried `durable: true`.
        durable: bool,
        /// Simulated persist stamp justifying a durable ack (0 when
        /// non-durable or read-only).
        persist_stamp: u64,
        /// The op was in flight when its shard crashed (`Crashed`
        /// reply; never durable).
        crashed: bool,
    },
}

impl SpanPhase {
    /// Stable phase name (Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            SpanPhase::Request { .. } => "request",
            SpanPhase::Wire { .. } => "wire",
            SpanPhase::Queue { .. } => "queue",
            SpanPhase::Batch { .. } => "batch",
            SpanPhase::Execute { .. } => "execute",
            SpanPhase::Persist { .. } => "persist",
            SpanPhase::Ack { .. } => "ack",
        }
    }
}

/// One recorded span. Times are microseconds since an epoch the
/// recording layer chooses (the serve layer uses server start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// This span's id (unique per [`SpanLog`], never 0).
    pub id: SpanId,
    /// Parent span id (0 = this is a root).
    pub parent: SpanId,
    /// The wire request id the span belongs to.
    pub req: u64,
    /// Track the span renders under (the serve layer uses the shard
    /// index).
    pub track: u32,
    /// Start, microseconds since epoch.
    pub start_us: u64,
    /// End, microseconds since epoch (`>= start_us`).
    pub end_us: u64,
    /// Typed phase.
    pub phase: SpanPhase,
}

/// A bounded drop-oldest span collector with counted drops — the same
/// contract as the event ring: recording never blocks and never grows
/// without bound, and truncation is detectable.
#[derive(Debug)]
pub struct SpanLog {
    cap: usize,
    spans: VecDeque<Span>,
    dropped: u64,
    next: SpanId,
}

impl SpanLog {
    /// A log retaining at most `cap` spans (`0` keeps none but still
    /// allocates ids and counts drops).
    pub fn new(cap: usize) -> SpanLog {
        SpanLog {
            cap,
            spans: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
            next: 1,
        }
    }

    /// Allocates a fresh span id (for roots handed out before their
    /// children are recorded).
    pub fn alloc(&mut self) -> SpanId {
        let id = self.next;
        self.next += 1;
        id
    }

    /// Records a completed span, evicting the oldest when full.
    pub fn record(&mut self, mut span: Span) {
        if span.id == 0 {
            span.id = self.alloc();
        }
        self.next = self.next.max(span.id + 1);
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.spans.len() >= self.cap {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Spans evicted or refused so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes every retained span (oldest first), leaving the log empty
    /// but still counting.
    pub fn drain(&mut self) -> Vec<Span> {
        self.spans.drain(..).collect()
    }
}

fn span_args(s: &Span) -> Json {
    let mut pairs: Vec<(&'static str, Json)> = vec![("req", Json::U64(s.req))];
    match s.phase {
        SpanPhase::Request { op } => pairs.push(("op", Json::U64(op as u64))),
        SpanPhase::Wire { bytes } => pairs.push(("bytes", Json::U64(bytes as u64))),
        SpanPhase::Queue { depth, shed } => {
            pairs.push(("depth", Json::U64(depth as u64)));
            pairs.push(("shed", Json::Bool(shed)));
        }
        SpanPhase::Batch { batch, size } => {
            pairs.push(("batch", Json::U64(batch)));
            pairs.push(("size", Json::U64(size as u64)));
        }
        SpanPhase::Execute { batch } => pairs.push(("batch", Json::U64(batch))),
        SpanPhase::Persist { batch, final_stamp } => {
            pairs.push(("batch", Json::U64(batch)));
            pairs.push(("final_stamp", Json::U64(final_stamp)));
        }
        SpanPhase::Ack {
            durable,
            persist_stamp,
            crashed,
        } => {
            pairs.push(("durable", Json::Bool(durable)));
            pairs.push(("persist_stamp", Json::U64(persist_stamp)));
            pairs.push(("crashed", Json::Bool(crashed)));
        }
    }
    Json::obj(pairs)
}

/// Base pid for per-shard span tracks (the simulator exporter uses pids
/// 1–3; shard N renders as process `10 + N`).
pub const SPAN_PID_BASE: u64 = 10;

/// Exports spans as a Chrome trace-event document. Each request renders
/// as one async-event group (`ph: "b"`/`"e"` keyed by track + root span
/// id — ids are only unique per shard log, so the group id is
/// track-qualified) under its shard's process track, so concurrent
/// requests on the same shard nest independently. Spans whose parent
/// fell out of the log are exported as their own group — truncated but
/// still visible.
pub fn chrome_trace(spans: &[Span]) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len() * 2 + 4);
    let mut tracks: Vec<u32> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    for t in &tracks {
        events.push(Json::obj([
            ("name", Json::Str("process_name".into())),
            ("ph", Json::Str("M".into())),
            ("pid", Json::U64(SPAN_PID_BASE + *t as u64)),
            ("tid", Json::U64(0)),
            (
                "args",
                Json::obj([("name", Json::Str(format!("shard-{t}")))]),
            ),
        ]));
    }
    // Group per request chain: root first, then children by start time,
    // each as a begin/end pair in timestamp order within the group.
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| {
        let s = &spans[i];
        let group = if s.parent == 0 { s.id } else { s.parent };
        (s.track, group, s.parent != 0, s.start_us, s.id)
    });
    for i in order {
        let s = &spans[i];
        let group = if s.parent == 0 { s.id } else { s.parent };
        let id = format!("{}.{group:#x}", s.track);
        let common = |ph: &str, ts: u64| {
            Json::obj([
                ("name", Json::Str(s.phase.name().into())),
                ("cat", Json::Str("req".into())),
                ("ph", Json::Str(ph.into())),
                ("id", Json::Str(id.clone())),
                ("pid", Json::U64(SPAN_PID_BASE + s.track as u64)),
                ("tid", Json::U64(0)),
                ("ts", Json::U64(ts)),
            ])
        };
        let mut b = common("b", s.start_us);
        if let Json::Obj(pairs) = &mut b {
            pairs.push(("args".into(), span_args(s)));
        }
        events.push(b);
        events.push(common("e", s.end_us));
    }
    Json::obj([("traceEvents", Json::Arr(events))])
}

/// What [`audit_chains`] found.
#[derive(Debug, Clone, Default)]
pub struct ChainAudit {
    /// Root (`Request`) spans seen.
    pub roots: usize,
    /// Roots whose ack carried `durable: true`.
    pub durable_acks: usize,
    /// Durable-ack roots with the full
    /// wire→queue→batch→execute→persist→ack chain.
    pub complete_durable_chains: usize,
    /// Complete durable chains whose ack also carries a non-zero
    /// persist stamp (the stamp that justified the ack).
    pub stamped_durable_chains: usize,
    /// Well-formedness violations (missing phases on durable chains,
    /// children escaping their root's window or track, out-of-order
    /// phases). Empty = well-formed.
    pub problems: Vec<String>,
}

impl ChainAudit {
    /// True when every durable ack has a complete, properly nested
    /// chain.
    pub fn well_formed(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Checks span-tree well-formedness over a drained span set: every
/// child lies inside its root's window, phases start in chain order,
/// and every durable ack has the complete six-phase chain. Chains are
/// keyed by `(track, id)` — per-shard logs allocate ids independently,
/// so the same numeric id on two tracks is two distinct requests.
/// Orphans (parent evicted from the log) are skipped, not flagged —
/// bounded logs truncate under load by design.
pub fn audit_chains(spans: &[Span]) -> ChainAudit {
    use std::collections::HashMap;
    let mut audit = ChainAudit::default();
    let mut roots: HashMap<(u32, SpanId), &Span> = HashMap::new();
    for s in spans {
        if s.parent == 0 {
            if !matches!(s.phase, SpanPhase::Request { .. }) {
                audit.problems.push(format!(
                    "span {} (req {}) is parentless but not a request root",
                    s.id, s.req
                ));
                continue;
            }
            roots.insert((s.track, s.id), s);
        }
    }
    audit.roots = roots.len();
    let mut children: HashMap<(u32, SpanId), Vec<&Span>> = HashMap::new();
    for s in spans {
        if s.parent != 0 && roots.contains_key(&(s.track, s.parent)) {
            children.entry((s.track, s.parent)).or_default().push(s);
        }
    }
    const CHAIN: [&str; 6] = ["wire", "queue", "batch", "execute", "persist", "ack"];
    for (rid, root) in &roots {
        let mut kids = children.remove(rid).unwrap_or_default();
        kids.sort_by_key(|s| (s.start_us, s.id));
        let mut durable = false;
        let mut stamped = false;
        let mut last_start = 0u64;
        let mut have: Vec<&'static str> = Vec::with_capacity(kids.len());
        for k in &kids {
            if k.end_us < k.start_us {
                audit.problems.push(format!(
                    "req {}: {} span ends before it starts",
                    root.req,
                    k.phase.name()
                ));
            }
            if k.start_us < root.start_us || k.end_us > root.end_us {
                audit.problems.push(format!(
                    "req {}: {} span [{}, {}] escapes root [{}, {}]",
                    root.req,
                    k.phase.name(),
                    k.start_us,
                    k.end_us,
                    root.start_us,
                    root.end_us
                ));
            }
            if k.start_us < last_start {
                audit.problems.push(format!(
                    "req {}: {} span starts before its predecessor",
                    root.req,
                    k.phase.name()
                ));
            }
            last_start = k.start_us;
            have.push(k.phase.name());
            if let SpanPhase::Ack {
                durable: d,
                persist_stamp,
                ..
            } = k.phase
            {
                durable = d;
                stamped = d && persist_stamp > 0;
            }
        }
        if durable {
            audit.durable_acks += 1;
            let complete = CHAIN.iter().all(|p| have.contains(p));
            if complete {
                audit.complete_durable_chains += 1;
                if stamped {
                    audit.stamped_durable_chains += 1;
                }
                // Durable chains must also appear in chain order.
                let idx: Vec<usize> = have
                    .iter()
                    .filter_map(|p| CHAIN.iter().position(|c| c == p))
                    .collect();
                if idx.windows(2).any(|w| w[0] > w[1]) {
                    audit.problems.push(format!(
                        "req {}: durable chain phases out of order: {have:?}",
                        root.req
                    ));
                }
            } else {
                audit.problems.push(format!(
                    "req {}: durable ack with incomplete chain {have:?}",
                    root.req
                ));
            }
        }
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(log: &mut SpanLog, req: u64, durable: bool, stamp: u64) -> SpanId {
        let root = log.alloc();
        let t0 = req * 100;
        log.record(Span {
            id: root,
            parent: 0,
            req,
            track: 0,
            start_us: t0,
            end_us: t0 + 60,
            phase: SpanPhase::Request { op: 1 },
        });
        let phases = [
            (SpanPhase::Wire { bytes: 17 }, t0, t0 + 1),
            (
                SpanPhase::Queue {
                    depth: 3,
                    shed: false,
                },
                t0 + 1,
                t0 + 10,
            ),
            (SpanPhase::Batch { batch: 0, size: 4 }, t0 + 10, t0 + 20),
            (SpanPhase::Execute { batch: 0 }, t0 + 20, t0 + 40),
            (
                SpanPhase::Persist {
                    batch: 0,
                    final_stamp: 900,
                },
                t0 + 40,
                t0 + 50,
            ),
            (
                SpanPhase::Ack {
                    durable,
                    persist_stamp: stamp,
                    crashed: false,
                },
                t0 + 50,
                t0 + 60,
            ),
        ];
        for (phase, s, e) in phases {
            log.record(Span {
                id: 0,
                parent: root,
                req,
                track: 0,
                start_us: s,
                end_us: e,
                phase,
            });
        }
        root
    }

    #[test]
    fn complete_chains_audit_clean_and_count_stamps() {
        let mut log = SpanLog::new(1024);
        chain(&mut log, 1, true, 840);
        chain(&mut log, 2, false, 0);
        chain(&mut log, 3, true, 0);
        let spans = log.drain();
        let audit = audit_chains(&spans);
        assert!(audit.well_formed(), "{:?}", audit.problems);
        assert_eq!(audit.roots, 3);
        assert_eq!(audit.durable_acks, 2);
        assert_eq!(audit.complete_durable_chains, 2);
        assert_eq!(audit.stamped_durable_chains, 1);
    }

    #[test]
    fn missing_phases_on_a_durable_chain_are_flagged() {
        let mut log = SpanLog::new(1024);
        let root = log.alloc();
        log.record(Span {
            id: root,
            parent: 0,
            req: 7,
            track: 1,
            start_us: 0,
            end_us: 10,
            phase: SpanPhase::Request { op: 1 },
        });
        log.record(Span {
            id: 0,
            parent: root,
            req: 7,
            track: 1,
            start_us: 5,
            end_us: 10,
            phase: SpanPhase::Ack {
                durable: true,
                persist_stamp: 12,
                crashed: false,
            },
        });
        let audit = audit_chains(&log.drain());
        assert_eq!(audit.durable_acks, 1);
        assert_eq!(audit.complete_durable_chains, 0);
        assert!(!audit.well_formed());
        assert!(audit.problems[0].contains("incomplete chain"));
    }

    #[test]
    fn nesting_violations_are_flagged() {
        let mut log = SpanLog::new(16);
        let root = log.alloc();
        log.record(Span {
            id: root,
            parent: 0,
            req: 9,
            track: 0,
            start_us: 100,
            end_us: 200,
            phase: SpanPhase::Request { op: 0 },
        });
        log.record(Span {
            id: 0,
            parent: root,
            req: 9,
            track: 0,
            start_us: 50, // escapes the root window
            end_us: 150,
            phase: SpanPhase::Wire { bytes: 9 },
        });
        let audit = audit_chains(&log.drain());
        assert!(audit.problems.iter().any(|p| p.contains("escapes root")));
    }

    #[test]
    fn colliding_ids_on_different_tracks_stay_distinct_chains() {
        // Per-shard logs allocate ids independently, so merging two
        // shards' spans yields colliding numeric ids on different
        // tracks — those must audit as separate, complete chains.
        let mut log_a = SpanLog::new(64);
        let mut log_b = SpanLog::new(64);
        chain(&mut log_a, 1, true, 500);
        chain(&mut log_b, 2, true, 700);
        let mut merged = log_a.drain();
        let mut other = log_b.drain();
        for s in &mut other {
            s.track = 1;
        }
        assert_eq!(merged[0].id, other[0].id, "ids collide by construction");
        merged.extend(other);
        let audit = audit_chains(&merged);
        assert!(audit.well_formed(), "{:?}", audit.problems);
        assert_eq!(audit.roots, 2);
        assert_eq!(audit.complete_durable_chains, 2);
        assert_eq!(audit.stamped_durable_chains, 2);
        // ...and the Chrome export keys the two groups apart.
        let doc = chrome_trace(&merged);
        let events = Json::parse(&doc.to_compact()).unwrap();
        let ids: std::collections::HashSet<String> = events
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("id").and_then(Json::as_str).map(String::from))
            .collect();
        assert_eq!(ids.len(), 2, "one async group id per request chain");
    }

    #[test]
    fn the_log_is_bounded_and_counts_drops() {
        let mut log = SpanLog::new(4);
        for req in 0..10 {
            log.record(Span {
                id: 0,
                parent: 0,
                req,
                track: 0,
                start_us: req,
                end_us: req + 1,
                phase: SpanPhase::Request { op: 0 },
            });
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        let spans = log.drain();
        assert_eq!(spans[0].req, 6, "oldest spans were evicted first");
        assert!(log.is_empty());
    }

    #[test]
    fn chrome_export_is_valid_json_with_paired_async_events() {
        let mut log = SpanLog::new(1024);
        chain(&mut log, 1, true, 840);
        let spans = log.drain();
        let doc = chrome_trace(&spans);
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("b"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("e"))
            .count();
        assert_eq!(begins, spans.len());
        assert_eq!(begins, ends);
        // Process metadata names the shard track.
        let meta = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .unwrap();
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("shard-0")
        );
        // The ack begin-event carries the persist stamp.
        let ack = events
            .iter()
            .find(|e| {
                e.get("name").and_then(Json::as_str) == Some("ack")
                    && e.get("ph").and_then(Json::as_str) == Some("b")
            })
            .unwrap();
        assert_eq!(
            ack.get("args")
                .unwrap()
                .get("persist_stamp")
                .unwrap()
                .as_u64(),
            Some(840)
        );
    }
}
