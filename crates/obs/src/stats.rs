//! Run statistics: execution time, stall breakdown, and the write-back
//! classification behind Figure 6.

/// Why a core was stalled (cycles accumulate per cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StallCause {
    /// Waiting for a load miss.
    LoadMiss,
    /// Waiting for the store buffer to drain (RMW serialization or a
    /// full buffer).
    StoreDrain,
    /// Waiting for a mechanism flush (`flush_before`).
    MechFlush,
    /// Waiting for an RMW-acquire / strict-barrier persist ack
    /// (`persist_line_after`).
    PersistAck,
    /// Waiting for a reads-from producer on another core to perform.
    RfWait,
}

impl StallCause {
    /// Every cause, in the stable order used by serialized reports.
    pub const ALL: [StallCause; 5] = [
        StallCause::LoadMiss,
        StallCause::StoreDrain,
        StallCause::MechFlush,
        StallCause::PersistAck,
        StallCause::RfWait,
    ];

    /// Stable snake_case key for machine-readable reports.
    pub fn name(self) -> &'static str {
        match self {
            StallCause::LoadMiss => "load_miss",
            StallCause::StoreDrain => "store_drain",
            StallCause::MechFlush => "mech_flush",
            StallCause::PersistAck => "persist_ack",
            StallCause::RfWait => "rf_wait",
        }
    }
}

/// Why a flush was issued (write-back classification for Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlushClass {
    /// The issuing core stalls for it: store `flush_before`, eviction
    /// `flush_before` (I1), RMW persists, RET-full drains. These are the
    /// paper's "write-backs in the critical path".
    Critical,
    /// Proactive or watermark-triggered background flushes.
    Background,
    /// Triggered by a coherence downgrade — the *requestor* waits but
    /// the write-back's own core does not (§6.4 measures criticality at
    /// the processor doing the write-back).
    Sync,
    /// Directory-side write-back persists (invariant I4) and volatile
    /// LLC write-backs.
    Directory,
}

impl FlushClass {
    /// Every class, in the stable order used by serialized reports.
    pub const ALL: [FlushClass; 4] = [
        FlushClass::Critical,
        FlushClass::Background,
        FlushClass::Sync,
        FlushClass::Directory,
    ];

    /// Stable snake_case key for machine-readable reports.
    pub fn name(self) -> &'static str {
        match self {
            FlushClass::Critical => "critical",
            FlushClass::Background => "background",
            FlushClass::Sync => "sync",
            FlushClass::Directory => "directory",
        }
    }
}

/// Aggregate statistics for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Cycle at which the last core retired its last operation.
    pub cycles: u64,
    /// Memory operations replayed.
    pub ops: u64,
    /// L1 load hits / misses.
    pub load_hits: u64,
    /// L1 load misses.
    pub load_misses: u64,
    /// Stores performed.
    pub stores: u64,
    /// Coherence downgrades (Fwd-GetS/GetM) served by L1s.
    pub downgrades: u64,
    /// L1 dirty evictions.
    pub evictions: u64,
    /// NVM line flushes by class.
    pub flushes: std::collections::HashMap<FlushClass, u64>,
    /// Total writes covered by all flushes (for coalescing ratios).
    pub covered_writes: u64,
    /// Stall cycles by cause, summed over cores.
    pub stalls: std::collections::HashMap<StallCause, u64>,
    /// Messages injected into the NoC.
    pub noc_messages: u64,
    /// NVM requests served (reads + persists).
    pub nvm_requests: u64,
    /// Engine runs executed (jobs with at least one flush).
    pub engine_runs: u64,
}

impl Stats {
    /// Records a flush of `covered` writes with the given class.
    pub fn record_flush(&mut self, class: FlushClass, covered: usize) {
        *self.flushes.entry(class).or_insert(0) += 1;
        self.covered_writes += covered as u64;
    }

    /// Adds stall cycles.
    pub fn record_stall(&mut self, cause: StallCause, cycles: u64) {
        *self.stalls.entry(cause).or_insert(0) += cycles;
    }

    /// Total flushes across classes.
    pub fn total_flushes(&self) -> u64 {
        self.flushes.values().sum()
    }

    /// Fraction of write-backs on the issuing core's critical path
    /// (Figure 6's metric), in `[0, 1]`. Returns 0 when nothing flushed.
    pub fn critical_writeback_fraction(&self) -> f64 {
        let total = self.total_flushes();
        if total == 0 {
            return 0.0;
        }
        let crit = self
            .flushes
            .get(&FlushClass::Critical)
            .copied()
            .unwrap_or(0);
        crit as f64 / total as f64
    }

    /// Moves one background write-back into the critical class: a store
    /// had to wait for a proactively issued flush to complete (the
    /// residual conflict the paper's proactive flushing cannot hide).
    pub fn reclassify_background_to_critical(&mut self) {
        let bg = self.flushes.entry(FlushClass::Background).or_insert(0);
        if *bg > 0 {
            *bg -= 1;
            *self.flushes.entry(FlushClass::Critical).or_insert(0) += 1;
        }
    }

    /// Folds another run's counters into this one. Merging is
    /// commutative and associative except for `cycles`, which takes the
    /// maximum (runs are notionally concurrent cells of a campaign, so
    /// the merged "makespan" is the longest run).
    pub fn merge(&mut self, other: &Stats) {
        self.cycles = self.cycles.max(other.cycles);
        self.ops += other.ops;
        self.load_hits += other.load_hits;
        self.load_misses += other.load_misses;
        self.stores += other.stores;
        self.downgrades += other.downgrades;
        self.evictions += other.evictions;
        for (&class, &n) in &other.flushes {
            *self.flushes.entry(class).or_insert(0) += n;
        }
        self.covered_writes += other.covered_writes;
        for (&cause, &n) in &other.stalls {
            *self.stalls.entry(cause).or_insert(0) += n;
        }
        self.noc_messages += other.noc_messages;
        self.nvm_requests += other.nvm_requests;
        self.engine_runs += other.engine_runs;
    }

    /// Flush counts in the stable [`FlushClass::ALL`] order (classes with
    /// zero flushes included) — the serialization-friendly view of the
    /// `flushes` map.
    pub fn flushes_by_class(&self) -> [(FlushClass, u64); 4] {
        FlushClass::ALL.map(|c| (c, self.flushes.get(&c).copied().unwrap_or(0)))
    }

    /// Stall cycles in the stable [`StallCause::ALL`] order.
    pub fn stalls_by_cause(&self) -> [(StallCause, u64); 5] {
        StallCause::ALL.map(|c| (c, self.stalls.get(&c).copied().unwrap_or(0)))
    }

    /// Average writes coalesced per flush.
    pub fn coalescing(&self) -> f64 {
        let total = self.total_flushes();
        if total == 0 {
            return 0.0;
        }
        self.covered_writes as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_classification_math() {
        let mut s = Stats::default();
        s.record_flush(FlushClass::Critical, 3);
        s.record_flush(FlushClass::Background, 2);
        s.record_flush(FlushClass::Background, 1);
        s.record_flush(FlushClass::Sync, 1);
        assert_eq!(s.total_flushes(), 4);
        assert!((s.critical_writeback_fraction() - 0.25).abs() < 1e-9);
        assert!((s.coalescing() - 7.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = Stats::default();
        assert_eq!(s.critical_writeback_fraction(), 0.0);
        assert_eq!(s.coalescing(), 0.0);
    }

    #[test]
    fn stall_accumulation() {
        let mut s = Stats::default();
        s.record_stall(StallCause::LoadMiss, 10);
        s.record_stall(StallCause::LoadMiss, 5);
        assert_eq!(s.stalls[&StallCause::LoadMiss], 15);
    }

    fn sample(cycles: u64, ops: u64, crit: usize) -> Stats {
        let mut s = Stats {
            cycles,
            ops,
            stores: ops / 2,
            noc_messages: ops * 3,
            ..Stats::default()
        };
        for _ in 0..crit {
            s.record_flush(FlushClass::Critical, 2);
        }
        s.record_stall(StallCause::RfWait, cycles / 10);
        s
    }

    #[test]
    fn merge_sums_counters_and_takes_max_cycles() {
        let a = sample(100, 40, 3);
        let b = sample(250, 10, 1);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.cycles, 250);
        assert_eq!(m.ops, 50);
        assert_eq!(m.stores, 25);
        assert_eq!(m.noc_messages, 150);
        assert_eq!(m.flushes[&FlushClass::Critical], 4);
        assert_eq!(m.covered_writes, 8);
        assert_eq!(m.stalls[&StallCause::RfWait], 35);
    }

    #[test]
    fn merge_is_commutative_and_matches_serial_sum() {
        let runs = [sample(10, 4, 1), sample(20, 6, 0), sample(5, 2, 2)];
        let mut fwd = Stats::default();
        for r in &runs {
            fwd.merge(r);
        }
        let mut rev = Stats::default();
        for r in runs.iter().rev() {
            rev.merge(r);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.ops, runs.iter().map(|r| r.ops).sum::<u64>());
        assert_eq!(
            fwd.total_flushes(),
            runs.iter().map(|r| r.total_flushes()).sum::<u64>()
        );
        assert_eq!(fwd.cycles, 20);
    }

    #[test]
    fn stable_views_cover_all_variants_in_order() {
        let mut s = Stats::default();
        s.record_flush(FlushClass::Sync, 1);
        s.record_stall(StallCause::PersistAck, 7);
        let f = s.flushes_by_class();
        assert_eq!(f.len(), 4);
        assert_eq!(f[2], (FlushClass::Sync, 1));
        assert!(f
            .iter()
            .map(|(c, _)| c.name())
            .eq(FlushClass::ALL.iter().map(|c| c.name())));
        let st = s.stalls_by_cause();
        assert_eq!(st[3], (StallCause::PersistAck, 7));
    }
}
