//! Durability critical-path engine: per-persist causal chains from the
//! triggering release back to its persist ack.
//!
//! The blame profiler ([`crate::blame`]) charges stall cycles to sites
//! — *how much* each op paid. This module answers the sharper question
//! *which causal chain made this persist late*: of the cycles between a
//! release's store commit and its write persisting, how many were spent
//! waiting on a RET-full drain, sitting in the NVM queue, draining a
//! barrier epoch, or riding a coherence transfer to the directory.
//!
//! The engine is online with bounded memory. A chain opens when a
//! release commits, captures at most one interior milestone (the flush
//! issue that materialized the line, classified at issue time), and
//! retires the moment its persist stamps — collapsing into per-kind
//! log2 histograms, a folded chain-shape map for flamegraph rendering,
//! and two audit counters in the I1–I4 style ([`CritAudit`]):
//!
//! * **C1 (conservation)** — every retired chain's segments must sum to
//!   exactly its measured release-to-persist latency, and its
//!   milestones must be time-ordered (commit ≤ issue ≤ persist).
//! * **C2 (wall bound)** — the longest retired path can never exceed
//!   the run's wall time.
//!
//! Edges are typed [`CritEdge`]s between [`EvRef`] endpoints so the
//! chain vocabulary is explicit, but retirement consumes edges into the
//! summary immediately — no edge log is ever retained.

use crate::audit::AuditCounter;
use crate::event::Time;
use crate::hist::Hist;
use crate::json::Json;
use crate::metrics::{hist_json, parse_hist};
use lrp_model::EventId;
use std::collections::{BTreeMap, HashMap};

/// What a critical-path segment's cycles were spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CritSegKind {
    /// Waiting behind a RET-capacity drain before the flush could issue.
    RetFull,
    /// In flight between flush issue and the NVM controller's ack.
    NvmQueue,
    /// Waiting behind an SB/BB epoch drain before the flush could issue.
    BarrierDrain,
    /// Carried by a coherence transfer (a synchronisation-triggered
    /// flush, or a directory-persisted eviction write-back).
    CoherenceXfer,
    /// Deferred by release-order bookkeeping: the lazy window between a
    /// release's commit and the demand that finally issued its flush.
    ReleaseOrder,
}

impl CritSegKind {
    /// Every kind, in stable report order.
    pub const ALL: [CritSegKind; 5] = [
        CritSegKind::RetFull,
        CritSegKind::NvmQueue,
        CritSegKind::BarrierDrain,
        CritSegKind::CoherenceXfer,
        CritSegKind::ReleaseOrder,
    ];

    /// Stable snake_case name (JSON keys, folded-stack frames).
    pub fn name(self) -> &'static str {
        match self {
            CritSegKind::RetFull => "ret_full",
            CritSegKind::NvmQueue => "nvm_queue",
            CritSegKind::BarrierDrain => "barrier_drain",
            CritSegKind::CoherenceXfer => "coherence_xfer",
            CritSegKind::ReleaseOrder => "release_order",
        }
    }

    /// Index into [`CritSegKind::ALL`]-shaped arrays.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// An endpoint of a causal edge: a milestone in one write's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvRef {
    /// The release store left the store buffer into the L1.
    ReleaseCommit(EventId),
    /// The flush covering the write was handed to the NVM controllers.
    FlushIssue(EventId),
    /// The write's persist was stamped durable.
    Persist(EventId),
}

/// One typed causal edge on a persist's critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritEdge {
    /// Where the wait began.
    pub from: EvRef,
    /// The milestone that ended it.
    pub to: EvRef,
    /// What the cycles were spent on.
    pub kind: CritSegKind,
    /// Length of the segment.
    pub cycles: u64,
}

/// Conservation audit counters, in the I1–I4 [`AuditCounter`] style:
/// observed at every chain retirement, never enforcing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CritAudit {
    /// C1 — segments sum to the measured release-to-persist latency and
    /// milestones are time-ordered (one check per retired chain).
    pub c1: AuditCounter,
    /// C2 — the longest retired path never exceeds wall time (one check
    /// per finished run).
    pub c2: AuditCounter,
}

impl CritAudit {
    /// Total conservation checks.
    pub fn total_checks(&self) -> u64 {
        self.c1.checks + self.c2.checks
    }

    /// Total conservation violations.
    pub fn total_violations(&self) -> u64 {
        self.c1.violations + self.c2.violations
    }

    /// `(name, counter)` rows in stable order, for reports.
    pub fn rows(&self) -> [(&'static str, AuditCounter); 2] {
        [("c1_conservation", self.c1), ("c2_wall_bound", self.c2)]
    }

    /// Folds another audit's counts into this one.
    pub fn merge(&mut self, other: &CritAudit) {
        self.c1.checks += other.c1.checks;
        self.c1.violations += other.c1.violations;
        self.c2.checks += other.c2.checks;
        self.c2.violations += other.c2.violations;
    }
}

/// Distinct folded chain shapes retained before further shapes collapse
/// into the drop counter. With ≤2-segment chains over five kinds the
/// shape space is 30, so the cap only matters if chains grow.
pub const FOLDED_CAP: usize = 64;

/// The bounded, mergeable digest every retired chain collapses into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CritSummary {
    /// Total cycles per segment kind, [`CritSegKind::ALL`] order.
    pub seg_cycles: [u64; 5],
    /// Segments seen per kind, [`CritSegKind::ALL`] order.
    pub seg_counts: [u64; 5],
    /// Log2 histogram of segment length per kind.
    pub seg_hist: [Hist; 5],
    /// Log2 histogram of whole-path length (one entry per retired
    /// chain); its `count` is the number of persisted releases traced.
    pub path: Hist,
    /// Longest retired path, for the C2 wall bound.
    pub max_path: u64,
    /// Folded chain shapes (`"kind;kind"`) → (paths, cycles), for
    /// flamegraph-style rendering.
    pub folded: BTreeMap<String, (u64, u64)>,
    /// Chains whose shape did not fit under [`FOLDED_CAP`].
    pub folded_dropped: u64,
    /// C1/C2 conservation counters.
    pub audit: CritAudit,
}

impl CritSummary {
    /// True when no chain ever retired.
    pub fn is_empty(&self) -> bool {
        self.path.count == 0 && self.audit.total_checks() == 0
    }

    /// Number of retired chains.
    pub fn paths(&self) -> u64 {
        self.path.count
    }

    /// Total cycles across every segment of every retired chain.
    pub fn total_cycles(&self) -> u64 {
        self.seg_cycles.iter().sum()
    }

    /// Per-kind share of total critical-path cycles, ALL order
    /// (all-zero when nothing retired).
    pub fn shares(&self) -> [f64; 5] {
        let total = self.total_cycles();
        let mut out = [0.0; 5];
        if total > 0 {
            for (slot, &c) in out.iter_mut().zip(self.seg_cycles.iter()) {
                *slot = c as f64 / total as f64;
            }
        }
        out
    }

    /// Consumes one retired chain. `latency` is the independently
    /// measured release-to-persist interval; `ordered` is whether the
    /// chain's milestones were time-ordered.
    fn consume(&mut self, edges: &[CritEdge], latency: u64, ordered: bool) {
        let mut sum = 0u64;
        let mut shape = String::new();
        for e in edges {
            let k = e.kind.idx();
            self.seg_cycles[k] += e.cycles;
            self.seg_counts[k] += 1;
            self.seg_hist[k].record(e.cycles);
            sum += e.cycles;
            if !shape.is_empty() {
                shape.push(';');
            }
            shape.push_str(e.kind.name());
        }
        self.path.record(latency);
        self.max_path = self.max_path.max(latency);
        self.audit.c1.checks += 1;
        if sum != latency || !ordered {
            self.audit.c1.violations += 1;
        }
        if let Some(slot) = self.folded.get_mut(&shape) {
            slot.0 += 1;
            slot.1 += latency;
        } else if self.folded.len() < FOLDED_CAP {
            self.folded.insert(shape, (1, latency));
        } else {
            self.folded_dropped += 1;
        }
    }

    /// Folds another summary into this one (exact for everything except
    /// the shape map, which re-applies the cap).
    pub fn merge(&mut self, other: &CritSummary) {
        for k in 0..5 {
            self.seg_cycles[k] += other.seg_cycles[k];
            self.seg_counts[k] += other.seg_counts[k];
            self.seg_hist[k].merge(&other.seg_hist[k]);
        }
        self.path.merge(&other.path);
        self.max_path = self.max_path.max(other.max_path);
        self.audit.merge(&other.audit);
        self.folded_dropped += other.folded_dropped;
        for (shape, &(n, cycles)) in &other.folded {
            if let Some(slot) = self.folded.get_mut(shape) {
                slot.0 += n;
                slot.1 += cycles;
            } else if self.folded.len() < FOLDED_CAP {
                self.folded.insert(shape.clone(), (n, cycles));
            } else {
                self.folded_dropped += n;
            }
        }
    }

    /// Folded-stacks text (`chain cycles`, one line per shape, heaviest
    /// first) for flamegraph tooling.
    pub fn folded_stacks(&self) -> String {
        let mut rows: Vec<(&str, u64)> = self
            .folded
            .iter()
            .map(|(shape, &(_, cycles))| (shape.as_str(), cycles))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        for (shape, cycles) in rows {
            out.push_str(shape);
            out.push(' ');
            out.push_str(&cycles.to_string());
            out.push('\n');
        }
        out
    }
}

/// An open chain: a committed release whose persist has not stamped.
#[derive(Debug, Clone, Copy)]
struct OpenChain {
    commit: Time,
    /// The flush-issue milestone, classified at issue time (`None`
    /// until the line's flush materializes — or never, on the
    /// directory-persisted write-back path).
    issue: Option<(Time, CritSegKind)>,
}

/// The online engine: feeds on recorder hook calls, retires chains the
/// moment their persist stamps, and never holds more state than the
/// simulator holds unpersisted releases.
#[derive(Debug)]
pub struct CritPath {
    open: HashMap<EventId, OpenChain>,
    /// What cycles between a release's commit and a demand-free flush
    /// issue mean under the attached mechanism (barrier mechanisms
    /// spend them draining epochs; lazy mechanisms defer by design).
    drain_kind: CritSegKind,
    summary: CritSummary,
}

impl Default for CritPath {
    fn default() -> Self {
        CritPath::new()
    }
}

impl CritPath {
    /// A fresh engine with the lazy-mechanism default drain kind.
    pub fn new() -> CritPath {
        CritPath {
            open: HashMap::new(),
            drain_kind: CritSegKind::ReleaseOrder,
            summary: CritSummary::default(),
        }
    }

    /// Installs the mechanism's drain classification (see
    /// `PersistMech::crit_drain_kind` in `lrp-core`).
    pub fn set_drain_kind(&mut self, kind: CritSegKind) {
        self.drain_kind = kind;
    }

    /// The installed drain classification.
    pub fn drain_kind(&self) -> CritSegKind {
        self.drain_kind
    }

    /// A release store committed: its chain opens.
    pub fn release_committed(&mut self, t: Time, ev: EventId) {
        self.open.insert(
            ev,
            OpenChain {
                commit: t,
                issue: None,
            },
        );
    }

    /// A flush covering `covered` issued toward the NVM controllers;
    /// `kind` classifies what the pre-issue wait was spent on. Only the
    /// first issue per open chain is a milestone (re-flushes of a line
    /// already in flight don't restart the clock).
    pub fn flush_issued(&mut self, t: Time, kind: CritSegKind, covered: &[EventId]) {
        for ev in covered {
            if let Some(chain) = self.open.get_mut(ev) {
                if chain.issue.is_none() {
                    chain.issue = Some((t, kind));
                }
            }
        }
    }

    /// Writes `covered` persisted at `t`: their chains retire into the
    /// summary.
    pub fn persisted(&mut self, t: Time, covered: &[EventId]) {
        for ev in covered {
            if let Some(chain) = self.open.remove(ev) {
                self.retire(*ev, chain, t);
            }
        }
    }

    fn retire(&mut self, ev: EventId, chain: OpenChain, t: Time) {
        let latency = t.saturating_sub(chain.commit);
        let mut edges = [CritEdge {
            from: EvRef::ReleaseCommit(ev),
            to: EvRef::Persist(ev),
            kind: CritSegKind::CoherenceXfer,
            cycles: latency,
        }; 2];
        let (n, ordered) = match chain.issue {
            Some((it, kind)) if chain.commit <= it && it <= t => {
                edges[0] = CritEdge {
                    from: EvRef::ReleaseCommit(ev),
                    to: EvRef::FlushIssue(ev),
                    kind,
                    cycles: it - chain.commit,
                };
                edges[1] = CritEdge {
                    from: EvRef::FlushIssue(ev),
                    to: EvRef::Persist(ev),
                    kind: CritSegKind::NvmQueue,
                    cycles: t - it,
                };
                (2, t >= chain.commit)
            }
            // No observed issue: the write reached NVM as a
            // directory-persisted write-back — the whole interval is the
            // coherence transfer that carried it there.
            None => (1, t >= chain.commit),
            // An issue stamp outside [commit, persist] is itself a C1
            // ordering violation; fall back to the single-edge chain so
            // conservation still describes the measured interval.
            Some(_) => (1, false),
        };
        self.summary.consume(&edges[..n], latency, ordered);
    }

    /// Chains still open (committed releases whose persist has not
    /// stamped) — bounded by the machine's in-flight persist window.
    pub fn open_chains(&self) -> usize {
        self.open.len()
    }

    /// Finalises the run: performs the C2 wall-bound check against
    /// `wall` (end-of-run cycle count) and yields the summary. Chains
    /// still open never retired and are dropped, matching the
    /// release-to-persist histogram's behaviour.
    pub fn finish(mut self, wall: Time) -> CritSummary {
        self.summary.audit.c2.checks += 1;
        if self.summary.max_path > wall {
            self.summary.audit.c2.violations += 1;
        }
        self.summary
    }
}

/// The canonical JSON encoding of a [`CritSummary`].
pub fn crit_json(c: &CritSummary) -> Json {
    let mut segments = Vec::with_capacity(5);
    for kind in CritSegKind::ALL {
        let k = kind.idx();
        segments.push((
            kind.name().to_string(),
            Json::obj([
                ("count", Json::U64(c.seg_counts[k])),
                ("cycles", Json::U64(c.seg_cycles[k])),
                ("hist", hist_json(&c.seg_hist[k])),
            ]),
        ));
    }
    let folded: Vec<Json> = c
        .folded
        .iter()
        .map(|(shape, &(n, cycles))| {
            Json::obj([
                ("chain", Json::Str(shape.clone())),
                ("paths", Json::U64(n)),
                ("cycles", Json::U64(cycles)),
            ])
        })
        .collect();
    let mut audit = Vec::with_capacity(3);
    for (name, counter) in c.audit.rows() {
        audit.push((
            name.to_string(),
            Json::obj([
                ("checks", Json::U64(counter.checks)),
                ("violations", Json::U64(counter.violations)),
            ]),
        ));
    }
    Json::obj([
        ("paths", hist_json(&c.path)),
        ("max_path", Json::U64(c.max_path)),
        ("segments", Json::Obj(segments)),
        ("folded", Json::Arr(folded)),
        ("folded_dropped", Json::U64(c.folded_dropped)),
        ("audit", Json::Obj(audit)),
    ])
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

/// Parses the [`crit_json`] encoding back into a [`CritSummary`].
pub fn parse_crit(doc: &Json) -> Result<CritSummary, String> {
    let mut c = CritSummary {
        path: parse_hist(
            doc.get("paths")
                .ok_or_else(|| "missing field \"paths\"".to_string())?,
        )?,
        max_path: field_u64(doc, "max_path")?,
        folded_dropped: field_u64(doc, "folded_dropped")?,
        ..CritSummary::default()
    };
    let segments = doc
        .get("segments")
        .ok_or_else(|| "missing field \"segments\"".to_string())?;
    for kind in CritSegKind::ALL {
        let seg = segments
            .get(kind.name())
            .ok_or_else(|| format!("missing segment {:?}", kind.name()))?;
        let k = kind.idx();
        c.seg_counts[k] = field_u64(seg, "count")?;
        c.seg_cycles[k] = field_u64(seg, "cycles")?;
        c.seg_hist[k] = parse_hist(
            seg.get("hist")
                .ok_or_else(|| format!("segment {:?} missing hist", kind.name()))?,
        )?;
    }
    let folded = doc
        .get("folded")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing field \"folded\"".to_string())?;
    for row in folded {
        let shape = row
            .get("chain")
            .and_then(Json::as_str)
            .ok_or_else(|| "folded row missing chain".to_string())?;
        c.folded.insert(
            shape.to_string(),
            (field_u64(row, "paths")?, field_u64(row, "cycles")?),
        );
    }
    let audit = doc
        .get("audit")
        .ok_or_else(|| "missing field \"audit\"".to_string())?;
    for (name, counter) in [
        ("c1_conservation", &mut c.audit.c1),
        ("c2_wall_bound", &mut c.audit.c2),
    ] {
        let row = audit
            .get(name)
            .ok_or_else(|| format!("missing audit row {name:?}"))?;
        counter.checks = field_u64(row, "checks")?;
        counter.violations = field_u64(row, "violations")?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_segment_chain_conserves_latency() {
        let mut cp = CritPath::new();
        cp.set_drain_kind(CritSegKind::BarrierDrain);
        cp.release_committed(100, 7);
        cp.flush_issued(160, CritSegKind::BarrierDrain, &[3, 7]);
        cp.persisted(250, &[7]);
        let s = cp.finish(1000);
        assert_eq!(s.paths(), 1);
        assert_eq!(s.seg_cycles[CritSegKind::BarrierDrain.idx()], 60);
        assert_eq!(s.seg_cycles[CritSegKind::NvmQueue.idx()], 90);
        assert_eq!(s.total_cycles(), 150);
        assert_eq!(s.path.sum, 150);
        assert_eq!(s.max_path, 150);
        assert_eq!(s.audit.total_violations(), 0);
        assert_eq!(s.audit.c1.checks, 1);
        assert_eq!(s.audit.c2.checks, 1);
        assert_eq!(s.folded.get("barrier_drain;nvm_queue"), Some(&(1, 150)));
    }

    #[test]
    fn issueless_chain_is_one_coherence_segment() {
        let mut cp = CritPath::new();
        cp.release_committed(40, 9);
        cp.persisted(100, &[9]);
        let s = cp.finish(200);
        assert_eq!(s.seg_cycles[CritSegKind::CoherenceXfer.idx()], 60);
        assert_eq!(s.seg_counts[CritSegKind::CoherenceXfer.idx()], 1);
        assert_eq!(s.audit.total_violations(), 0);
        assert_eq!(s.folded.get("coherence_xfer"), Some(&(1, 60)));
    }

    #[test]
    fn only_the_first_issue_is_a_milestone() {
        let mut cp = CritPath::new();
        cp.release_committed(10, 1);
        cp.flush_issued(30, CritSegKind::RetFull, &[1]);
        cp.flush_issued(70, CritSegKind::BarrierDrain, &[1]); // re-flush: ignored
        cp.persisted(110, &[1]);
        let s = cp.finish(200);
        assert_eq!(s.seg_cycles[CritSegKind::RetFull.idx()], 20);
        assert_eq!(s.seg_cycles[CritSegKind::NvmQueue.idx()], 80);
        assert_eq!(s.seg_cycles[CritSegKind::BarrierDrain.idx()], 0);
        assert_eq!(s.audit.total_violations(), 0);
    }

    #[test]
    fn non_release_events_never_open_chains() {
        let mut cp = CritPath::new();
        cp.flush_issued(10, CritSegKind::RetFull, &[5]);
        cp.persisted(50, &[5]);
        let s = cp.finish(100);
        assert!(s.is_empty() || s.paths() == 0);
        assert_eq!(s.paths(), 0);
    }

    #[test]
    fn wall_bound_violation_is_counted() {
        let mut cp = CritPath::new();
        cp.release_committed(0, 2);
        cp.persisted(500, &[2]);
        let s = cp.finish(400); // wall shorter than the path: impossible
        assert_eq!(s.audit.c2.violations, 1);
        assert_eq!(s.audit.total_violations(), 1);
    }

    #[test]
    fn out_of_order_issue_is_a_c1_violation_but_still_conserves() {
        let mut cp = CritPath::new();
        cp.release_committed(100, 3);
        // A corrupted stream: the issue stamp predates the commit.
        cp.flush_issued(50, CritSegKind::NvmQueue, &[3]);
        cp.persisted(200, &[3]);
        let s = cp.finish(1000);
        assert_eq!(s.audit.c1.violations, 1);
        // The fallback single-edge chain still sums to the interval.
        assert_eq!(s.total_cycles(), 100);
    }

    #[test]
    fn merge_matches_serial_consumption() {
        let mut a = CritPath::new();
        a.release_committed(0, 1);
        a.flush_issued(10, CritSegKind::RetFull, &[1]);
        a.persisted(40, &[1]);
        let mut b = CritPath::new();
        b.release_committed(5, 2);
        b.persisted(90, &[2]);
        let mut serial = CritPath::new();
        serial.release_committed(0, 1);
        serial.flush_issued(10, CritSegKind::RetFull, &[1]);
        serial.persisted(40, &[1]);
        serial.release_committed(5, 2);
        serial.persisted(90, &[2]);
        let mut merged = a.finish(100);
        merged.merge(&b.finish(100));
        let mut expect = serial.finish(100);
        // Two finishes contribute two C2 checks; align before comparing.
        expect.audit.c2.checks += 1;
        assert_eq!(merged, expect);
    }

    #[test]
    fn folded_cap_drops_new_shapes_only() {
        let mut s = CritSummary::default();
        for i in 0..(FOLDED_CAP as u32 + 4) {
            let edges = [CritEdge {
                from: EvRef::ReleaseCommit(i),
                to: EvRef::Persist(i),
                kind: CritSegKind::ALL[(i % 5) as usize],
                cycles: i as u64,
            }];
            // Force distinct shapes by chaining distinct kind names:
            // 5 base shapes repeat, so drops require a synthetic map.
            s.consume(&edges, i as u64, true);
        }
        assert_eq!(s.folded.len(), 5); // only 5 distinct single-kind shapes
        assert_eq!(s.folded_dropped, 0);
        // Saturate the map artificially, then one more new shape drops.
        for i in 0..FOLDED_CAP as u64 {
            s.folded.entry(format!("synthetic{i}")).or_insert((1, 1));
        }
        s.consume(
            &[
                CritEdge {
                    from: EvRef::ReleaseCommit(0),
                    to: EvRef::FlushIssue(0),
                    kind: CritSegKind::RetFull,
                    cycles: 1,
                },
                CritEdge {
                    from: EvRef::FlushIssue(0),
                    to: EvRef::Persist(0),
                    kind: CritSegKind::RetFull,
                    cycles: 1,
                },
            ],
            2,
            true,
        );
        assert_eq!(s.folded_dropped, 1);
    }

    #[test]
    fn shares_sum_to_one_and_json_round_trips() {
        let mut cp = CritPath::new();
        cp.set_drain_kind(CritSegKind::BarrierDrain);
        cp.release_committed(0, 1);
        cp.flush_issued(30, CritSegKind::BarrierDrain, &[1]);
        cp.persisted(100, &[1]);
        cp.release_committed(10, 2);
        cp.persisted(90, &[2]);
        let s = cp.finish(500);
        let sum: f64 = s.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        let back = parse_crit(&Json::parse(&crit_json(&s).to_compact()).unwrap()).unwrap();
        assert_eq!(back, s);
        // Empty summaries round-trip too (the campaign's NOP cells).
        let empty = CritSummary::default();
        let back = parse_crit(&crit_json(&empty)).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn folded_stacks_renders_heaviest_first() {
        let mut cp = CritPath::new();
        cp.release_committed(0, 1);
        cp.flush_issued(5, CritSegKind::RetFull, &[1]);
        cp.persisted(10, &[1]);
        cp.release_committed(0, 2);
        cp.persisted(400, &[2]);
        let s = cp.finish(1000);
        let text = s.folded_stacks();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "coherence_xfer 400");
        assert_eq!(lines[1], "ret_full;nvm_queue 10");
    }
}
