//! Time-series sampling: per-interval deltas of the aggregate counters.
//!
//! The sampler snapshots [`Stats`] whenever simulated time crosses an
//! `every`-cycle boundary and emits the *delta* since the previous
//! snapshot. The event loop only observes time at event pops, so a
//! quiet machine can jump several boundaries at once; the sampler then
//! emits one wider interval (its `start`/`end` record the actual span)
//! rather than fabricating empty ones. By construction the deltas over
//! a run sum exactly to the final aggregate `Stats`.

use crate::stats::{FlushClass, StallCause, Stats};

/// Counter deltas over one sampling interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// First cycle covered (inclusive).
    pub start: u64,
    /// Last cycle covered (exclusive).
    pub end: u64,
    /// Operations retired.
    pub ops: u64,
    /// Flushes issued, in [`FlushClass::ALL`] order.
    pub flushes: [u64; 4],
    /// Stall cycles accrued, in [`StallCause::ALL`] order.
    pub stalls: [u64; 5],
    /// NoC messages injected.
    pub noc_messages: u64,
    /// NVM requests served.
    pub nvm_requests: u64,
    /// Highest RET occupancy observed on any core during the interval.
    pub ret_high_water: u32,
}

/// A cheap fixed-shape snapshot of the delta-tracked `Stats` fields.
#[derive(Debug, Clone, Copy, Default)]
struct Mark {
    ops: u64,
    flushes: [u64; 4],
    stalls: [u64; 5],
    noc_messages: u64,
    nvm_requests: u64,
}

impl Mark {
    fn of(s: &Stats) -> Mark {
        Mark {
            ops: s.ops,
            flushes: FlushClass::ALL.map(|c| s.flushes.get(&c).copied().unwrap_or(0)),
            stalls: StallCause::ALL.map(|c| s.stalls.get(&c).copied().unwrap_or(0)),
            noc_messages: s.noc_messages,
            nvm_requests: s.nvm_requests,
        }
    }
}

/// Emits [`IntervalSample`]s every `every` cycles.
#[derive(Debug, Clone)]
pub struct Sampler {
    every: u64,
    last_end: u64,
    mark: Mark,
    ret_high: u32,
    /// Completed intervals, in time order.
    pub intervals: Vec<IntervalSample>,
}

impl Sampler {
    /// A sampler emitting an interval every `every` cycles (`every` must
    /// be non-zero; a disabled sampler is simply not constructed).
    pub fn new(every: u64) -> Sampler {
        Sampler {
            every: every.max(1),
            last_end: 0,
            mark: Mark::default(),
            ret_high: 0,
            intervals: Vec::new(),
        }
    }

    /// Notes a RET occupancy observation for the high-water mark.
    pub fn note_ret_occupancy(&mut self, occ: u32) {
        self.ret_high = self.ret_high.max(occ);
    }

    fn emit(&mut self, end: u64, s: &Stats) {
        let now = Mark::of(s);
        let mut sample = IntervalSample {
            start: self.last_end,
            end,
            ops: now.ops - self.mark.ops,
            noc_messages: now.noc_messages - self.mark.noc_messages,
            nvm_requests: now.nvm_requests - self.mark.nvm_requests,
            ret_high_water: self.ret_high,
            ..IntervalSample::default()
        };
        for i in 0..4 {
            sample.flushes[i] = now.flushes[i] - self.mark.flushes[i];
        }
        for i in 0..5 {
            sample.stalls[i] = now.stalls[i] - self.mark.stalls[i];
        }
        self.intervals.push(sample);
        self.last_end = end;
        self.mark = now;
        self.ret_high = 0;
    }

    /// Called with the current time at each event-loop step; closes an
    /// interval when a boundary has been crossed.
    pub fn maybe_sample(&mut self, now: u64, s: &Stats) {
        let boundary = now - (now % self.every);
        if boundary > self.last_end {
            self.emit(boundary, s);
        }
    }

    /// Closes the final (possibly partial) interval at end of run.
    pub fn finish(&mut self, now: u64, s: &Stats) {
        if now > self.last_end || self.intervals.is_empty() {
            self.emit(now.max(self.last_end), s);
        }
    }
}

/// Sums interval deltas — the consistency check's counterpart to the
/// final aggregate `Stats`.
pub fn sum_intervals(intervals: &[IntervalSample]) -> IntervalSample {
    let mut total = IntervalSample::default();
    for s in intervals {
        total.end = total.end.max(s.end);
        total.ops += s.ops;
        for i in 0..4 {
            total.flushes[i] += s.flushes[i];
        }
        for i in 0..5 {
            total.stalls[i] += s.stalls[i];
        }
        total.noc_messages += s.noc_messages;
        total.nvm_requests += s.nvm_requests;
        total.ret_high_water = total.ret_high_water.max(s.ret_high_water);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ops: u64, crit: u64, noc: u64) -> Stats {
        let mut s = Stats {
            ops,
            noc_messages: noc,
            ..Stats::default()
        };
        if crit > 0 {
            s.flushes.insert(FlushClass::Critical, crit);
        }
        s
    }

    #[test]
    fn deltas_sum_to_final_counters() {
        let mut smp = Sampler::new(100);
        smp.maybe_sample(40, &stats(2, 0, 5)); // no boundary yet
        assert!(smp.intervals.is_empty());
        smp.maybe_sample(130, &stats(10, 1, 20));
        smp.maybe_sample(450, &stats(25, 3, 60)); // jumped several boundaries
        smp.finish(470, &stats(30, 4, 70));
        let total = sum_intervals(&smp.intervals);
        assert_eq!(total.ops, 30);
        assert_eq!(total.flushes[0], 4);
        assert_eq!(total.noc_messages, 70);
        assert_eq!(total.end, 470);
        let spans: Vec<(u64, u64)> = smp.intervals.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 100), (100, 400), (400, 470)]);
    }

    #[test]
    fn ret_high_water_resets_per_interval() {
        let mut smp = Sampler::new(10);
        smp.note_ret_occupancy(28);
        smp.maybe_sample(10, &stats(1, 0, 0));
        smp.note_ret_occupancy(3);
        smp.finish(15, &stats(2, 0, 0));
        assert_eq!(smp.intervals[0].ret_high_water, 28);
        assert_eq!(smp.intervals[1].ret_high_water, 3);
    }

    #[test]
    fn empty_run_still_emits_one_interval() {
        let mut smp = Sampler::new(1000);
        smp.finish(0, &stats(0, 0, 0));
        assert_eq!(smp.intervals.len(), 1);
        assert_eq!(sum_intervals(&smp.intervals).ops, 0);
    }
}
