//! Time-series sampling: per-interval deltas of the aggregate counters.
//!
//! The sampler snapshots [`Stats`] whenever simulated time crosses an
//! `every`-cycle boundary and emits the *delta* since the previous
//! snapshot. The event loop only observes time at event pops, so a
//! quiet machine can jump several boundaries at once; the sampler then
//! emits one wider interval (its `start`/`end` record the actual span)
//! rather than fabricating empty ones. By construction the deltas over
//! a run sum exactly to the final aggregate `Stats`.

use crate::stats::{FlushClass, StallCause, Stats};

/// Counter deltas over one sampling interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// First cycle covered (inclusive).
    pub start: u64,
    /// Last cycle covered (exclusive).
    pub end: u64,
    /// Operations retired.
    pub ops: u64,
    /// Flushes issued, in [`FlushClass::ALL`] order.
    pub flushes: [u64; 4],
    /// Stall cycles accrued, in [`StallCause::ALL`] order.
    pub stalls: [u64; 5],
    /// NoC messages injected.
    pub noc_messages: u64,
    /// NVM requests served.
    pub nvm_requests: u64,
    /// Highest RET occupancy observed on any core during the interval.
    pub ret_high_water: u32,
}

/// A cheap fixed-shape snapshot of the delta-tracked `Stats` fields.
#[derive(Debug, Clone, Copy, Default)]
struct Mark {
    ops: u64,
    flushes: [u64; 4],
    stalls: [u64; 5],
    noc_messages: u64,
    nvm_requests: u64,
}

impl Mark {
    fn of(s: &Stats) -> Mark {
        Mark {
            ops: s.ops,
            flushes: FlushClass::ALL.map(|c| s.flushes.get(&c).copied().unwrap_or(0)),
            stalls: StallCause::ALL.map(|c| s.stalls.get(&c).copied().unwrap_or(0)),
            noc_messages: s.noc_messages,
            nvm_requests: s.nvm_requests,
        }
    }
}

/// Emits [`IntervalSample`]s every `every` cycles.
#[derive(Debug, Clone)]
pub struct Sampler {
    every: u64,
    last_end: u64,
    mark: Mark,
    ret_high: u32,
    /// Completed intervals, in time order.
    pub intervals: Vec<IntervalSample>,
}

impl Sampler {
    /// A sampler emitting an interval every `every` cycles (`every` must
    /// be non-zero; a disabled sampler is simply not constructed).
    pub fn new(every: u64) -> Sampler {
        Sampler {
            every: every.max(1),
            last_end: 0,
            mark: Mark::default(),
            ret_high: 0,
            intervals: Vec::new(),
        }
    }

    /// Notes a RET occupancy observation for the high-water mark.
    pub fn note_ret_occupancy(&mut self, occ: u32) {
        self.ret_high = self.ret_high.max(occ);
    }

    fn emit(&mut self, end: u64, s: &Stats) {
        let now = Mark::of(s);
        let mut sample = IntervalSample {
            start: self.last_end,
            end,
            ops: now.ops - self.mark.ops,
            noc_messages: now.noc_messages - self.mark.noc_messages,
            nvm_requests: now.nvm_requests - self.mark.nvm_requests,
            ret_high_water: self.ret_high,
            ..IntervalSample::default()
        };
        for i in 0..4 {
            sample.flushes[i] = now.flushes[i] - self.mark.flushes[i];
        }
        for i in 0..5 {
            sample.stalls[i] = now.stalls[i] - self.mark.stalls[i];
        }
        self.intervals.push(sample);
        self.last_end = end;
        self.mark = now;
        self.ret_high = 0;
    }

    /// Called with the current time at each event-loop step; closes an
    /// interval when a boundary has been crossed.
    pub fn maybe_sample(&mut self, now: u64, s: &Stats) {
        let boundary = now - (now % self.every);
        if boundary > self.last_end {
            self.emit(boundary, s);
        }
    }

    /// Closes the final (possibly partial) interval at end of run.
    pub fn finish(&mut self, now: u64, s: &Stats) {
        if now > self.last_end || self.intervals.is_empty() {
            self.emit(now.max(self.last_end), s);
        }
    }
}

/// One interval of a [`GaugeSeries`]: a gauge's high-water mark plus
/// monotone counter deltas over a fixed-width time window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GaugeSample {
    /// First tick covered (inclusive).
    pub start: u64,
    /// Last tick covered (exclusive).
    pub end: u64,
    /// Highest gauge value observed during the interval.
    pub high: u64,
    /// Gauge value at the end of the interval (last observation).
    pub last: u64,
    /// Counter increments accrued during the interval (e.g. items
    /// enqueued, requests shed), in the caller's slot order.
    pub counts: [u64; GAUGE_COUNTERS],
}

/// Counter slots carried per [`GaugeSample`].
pub const GAUGE_COUNTERS: usize = 4;

/// The service-side counterpart of [`Sampler`]: samples one gauge (e.g.
/// a shard's queue depth) and up to [`GAUGE_COUNTERS`] monotone event
/// counters (enqueues, sheds, …) into fixed-width intervals on an
/// arbitrary clock (the serving layer uses milliseconds; the simulator
/// uses cycles). Like [`Sampler`], a quiet period emits one wider
/// interval rather than fabricating empty ones, and counter deltas over
/// a series sum exactly to the totals.
#[derive(Debug, Clone)]
pub struct GaugeSeries {
    every: u64,
    last_end: u64,
    gauge: u64,
    high: u64,
    counts: [u64; GAUGE_COUNTERS],
    marked: [u64; GAUGE_COUNTERS],
    /// Completed intervals, in time order.
    pub intervals: Vec<GaugeSample>,
}

impl GaugeSeries {
    /// A series emitting an interval every `every` ticks.
    pub fn new(every: u64) -> GaugeSeries {
        GaugeSeries {
            every: every.max(1),
            last_end: 0,
            gauge: 0,
            high: 0,
            counts: [0; GAUGE_COUNTERS],
            marked: [0; GAUGE_COUNTERS],
            intervals: Vec::new(),
        }
    }

    /// Records a gauge observation at tick `now`, closing any crossed
    /// interval boundary first.
    pub fn note(&mut self, now: u64, value: u64) {
        self.roll(now);
        self.gauge = value;
        self.high = self.high.max(value);
    }

    /// Bumps counter `slot` by `n` at tick `now`.
    pub fn bump(&mut self, now: u64, slot: usize, n: u64) {
        self.roll(now);
        self.counts[slot] += n;
    }

    /// Total accumulated for counter `slot` across the whole series.
    pub fn total(&self, slot: usize) -> u64 {
        self.counts[slot]
    }

    fn roll(&mut self, now: u64) {
        let boundary = now - (now % self.every);
        if boundary > self.last_end {
            self.emit(boundary);
        }
    }

    fn emit(&mut self, end: u64) {
        let mut deltas = [0u64; GAUGE_COUNTERS];
        for (d, (c, m)) in deltas.iter_mut().zip(self.counts.iter().zip(&self.marked)) {
            *d = c - m;
        }
        self.intervals.push(GaugeSample {
            start: self.last_end,
            end,
            high: self.high,
            last: self.gauge,
            counts: deltas,
        });
        self.last_end = end;
        self.marked = self.counts;
        self.high = self.gauge;
    }

    /// Closes the final (possibly partial) interval at end of run.
    pub fn finish(&mut self, now: u64) {
        if now > self.last_end || self.intervals.is_empty() {
            self.emit(now.max(self.last_end));
        }
    }
}

/// Sums interval deltas — the consistency check's counterpart to the
/// final aggregate `Stats`.
pub fn sum_intervals(intervals: &[IntervalSample]) -> IntervalSample {
    let mut total = IntervalSample::default();
    for s in intervals {
        total.end = total.end.max(s.end);
        total.ops += s.ops;
        for i in 0..4 {
            total.flushes[i] += s.flushes[i];
        }
        for i in 0..5 {
            total.stalls[i] += s.stalls[i];
        }
        total.noc_messages += s.noc_messages;
        total.nvm_requests += s.nvm_requests;
        total.ret_high_water = total.ret_high_water.max(s.ret_high_water);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ops: u64, crit: u64, noc: u64) -> Stats {
        let mut s = Stats {
            ops,
            noc_messages: noc,
            ..Stats::default()
        };
        if crit > 0 {
            s.flushes.insert(FlushClass::Critical, crit);
        }
        s
    }

    #[test]
    fn deltas_sum_to_final_counters() {
        let mut smp = Sampler::new(100);
        smp.maybe_sample(40, &stats(2, 0, 5)); // no boundary yet
        assert!(smp.intervals.is_empty());
        smp.maybe_sample(130, &stats(10, 1, 20));
        smp.maybe_sample(450, &stats(25, 3, 60)); // jumped several boundaries
        smp.finish(470, &stats(30, 4, 70));
        let total = sum_intervals(&smp.intervals);
        assert_eq!(total.ops, 30);
        assert_eq!(total.flushes[0], 4);
        assert_eq!(total.noc_messages, 70);
        assert_eq!(total.end, 470);
        let spans: Vec<(u64, u64)> = smp.intervals.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 100), (100, 400), (400, 470)]);
    }

    #[test]
    fn ret_high_water_resets_per_interval() {
        let mut smp = Sampler::new(10);
        smp.note_ret_occupancy(28);
        smp.maybe_sample(10, &stats(1, 0, 0));
        smp.note_ret_occupancy(3);
        smp.finish(15, &stats(2, 0, 0));
        assert_eq!(smp.intervals[0].ret_high_water, 28);
        assert_eq!(smp.intervals[1].ret_high_water, 3);
    }

    #[test]
    fn gauge_series_tracks_high_water_and_counter_deltas() {
        let mut g = GaugeSeries::new(100);
        g.note(10, 3);
        g.note(40, 8);
        g.bump(50, 0, 2); // slot 0: enqueued
        g.note(90, 1);
        g.note(130, 5); // crosses the 100 boundary
        g.bump(150, 1, 1); // slot 1: shed
        g.finish(170);
        assert_eq!(g.intervals.len(), 2);
        let a = g.intervals[0];
        assert_eq!((a.start, a.end), (0, 100));
        assert_eq!(a.high, 8);
        assert_eq!(a.last, 1);
        assert_eq!(a.counts[0], 2);
        let b = g.intervals[1];
        assert_eq!((b.start, b.end), (100, 170));
        assert_eq!(b.high, 5, "carries the live gauge into the new interval");
        assert_eq!(b.counts[1], 1);
        let shed: u64 = g.intervals.iter().map(|s| s.counts[1]).sum();
        assert_eq!(shed, g.total(1), "deltas sum to the counter total");
    }

    #[test]
    fn gauge_series_quiet_period_emits_one_wide_interval() {
        let mut g = GaugeSeries::new(10);
        g.note(5, 2);
        g.note(95, 2); // jumped 8 boundaries: one wide interval
        g.finish(95);
        let spans: Vec<(u64, u64)> = g.intervals.iter().map(|s| (s.start, s.end)).collect();
        assert_eq!(spans, vec![(0, 90), (90, 95)]);
    }

    #[test]
    fn empty_run_still_emits_one_interval() {
        let mut smp = Sampler::new(1000);
        smp.finish(0, &stats(0, 0, 0));
        assert_eq!(smp.intervals.len(), 1);
        assert_eq!(sum_intervals(&smp.intervals).ops, 0);
    }
}
