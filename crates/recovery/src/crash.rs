//! Crash-state reconstruction.
//!
//! A crash wipes the caches; NVM retains the initial durable image plus
//! every write whose flush completed. Because flushes are line-granular
//! and atomic, the durable state after stamp `s` is exactly the initial
//! image overwritten by all writes with stamp `<= s`, applied in stamp
//! (then program) order.

use lrp_lfds::MemImage;
use lrp_model::spec::PersistSchedule;
use lrp_model::{EventId, Trace};

/// Reconstructs the NVM contents for a crash immediately after flush
/// `stamp` completes (`None` = before anything persisted).
pub fn nvm_at(trace: &Trace, sched: &PersistSchedule, stamp: Option<u64>) -> MemImage {
    let mut img = MemImage::new(trace.initial_mem.iter().copied());
    let Some(cut) = stamp else {
        return img;
    };
    // Writes ordered by (stamp, event id): within one flush, program
    // order decides the final value of a coalesced word.
    let mut persisted: Vec<(u64, EventId)> = trace
        .events
        .iter()
        .filter(|e| e.is_write_effect())
        .filter_map(|e| sched.stamp(e.id).map(|s| (s, e.id)))
        .filter(|&(s, _)| s <= cut)
        .collect();
    persisted.sort_unstable();
    for (_, id) in persisted {
        let e = &trace.events[id as usize];
        img.write(e.addr, e.wval);
    }
    img
}

/// Which crash points of a schedule to examine.
#[derive(Debug, Clone)]
pub enum CrashPlan {
    /// Every distinct flush stamp plus the pre-persist state — exhaustive
    /// null-recovery checking.
    Exhaustive,
    /// At most `n` evenly spaced stamps (plus first/last) — for long
    /// simulator logs.
    Sampled(usize),
    /// At most `samples` stamps drawn uniformly without replacement by a
    /// seeded PRNG (always keeping the final stamp). Deterministic for a
    /// fixed seed; different campaign seeds probe different crash points.
    Random {
        /// Upper bound on sampled stamps.
        samples: usize,
        /// PRNG seed.
        seed: u64,
    },
    /// Crash at exactly one persist point: `AtPersist(0)` is the
    /// pre-persist state, `AtPersist(n)` crashes immediately after the
    /// `n`-th distinct flush (1-based) completes, clamped to the
    /// schedule's last stamp. The shared crash-point vocabulary for
    /// targeted fuzzing (serve's crash injection, the `lrp-check`
    /// cross-validator).
    AtPersist(usize),
}

impl CrashPlan {
    /// The crash stamps to test for `sched`. The enumerating plans
    /// always include `None` (the crash-before-anything-persists
    /// state); [`CrashPlan::AtPersist`] yields its single point.
    pub fn stamps(&self, sched: &PersistSchedule) -> Vec<Option<u64>> {
        let all = sched.distinct_stamps();
        if let CrashPlan::AtPersist(n) = self {
            if *n == 0 || all.is_empty() {
                return vec![None];
            }
            return vec![Some(all[(*n - 1).min(all.len() - 1)])];
        }
        let mut out = vec![None];
        match self {
            CrashPlan::AtPersist(_) => unreachable!("handled above"),
            CrashPlan::Exhaustive => out.extend(all.into_iter().map(Some)),
            CrashPlan::Sampled(n) => {
                if all.len() <= *n {
                    out.extend(all.into_iter().map(Some));
                } else {
                    let step = all.len() as f64 / *n as f64;
                    for i in 0..*n {
                        out.push(Some(all[(i as f64 * step) as usize]));
                    }
                    out.push(Some(*all.last().expect("non-empty")));
                }
            }
            CrashPlan::Random { samples, seed } => {
                if all.len() <= *samples {
                    out.extend(all.into_iter().map(Some));
                } else {
                    // Partial Fisher–Yates: the first `samples` slots end
                    // up holding a uniform draw without replacement.
                    let mut pool = all;
                    let mut rng = lrp_exec::Xorshift64::new(seed ^ 0xC4A5_11FE);
                    let last = *pool.last().expect("non-empty");
                    for i in 0..*samples {
                        let j = i + rng.below((pool.len() - i) as u64) as usize;
                        pool.swap(i, j);
                    }
                    let mut picked: Vec<u64> = pool[..*samples].to_vec();
                    if !picked.contains(&last) {
                        picked.pop();
                        picked.push(last);
                    }
                    picked.sort_unstable();
                    out.extend(picked.into_iter().map(Some));
                }
            }
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_model::litmus::LitmusBuilder;
    use lrp_model::Trace;

    fn two_write_trace() -> (Trace, PersistSchedule) {
        let mut b = LitmusBuilder::new(1);
        b.init(0x100, 7);
        b.write(0, 0x100, 1);
        b.write(0, 0x108, 2);
        let t = b.build();
        let sched = PersistSchedule::from_order(t.events.len(), &[0, 1]);
        (t, sched)
    }

    #[test]
    fn crash_before_anything_keeps_initial_image() {
        let (t, sched) = two_write_trace();
        let img = nvm_at(&t, &sched, None);
        assert_eq!(img.read(0x100), 7);
        assert_eq!(img.read(0x108), Trace::POISON);
    }

    #[test]
    fn crash_points_apply_prefixes() {
        let (t, sched) = two_write_trace();
        let img0 = nvm_at(&t, &sched, Some(0));
        assert_eq!(img0.read(0x100), 1);
        assert_eq!(img0.read(0x108), Trace::POISON);
        let img1 = nvm_at(&t, &sched, Some(1));
        assert_eq!(img1.read(0x108), 2);
    }

    #[test]
    fn coalesced_writes_take_program_order_value() {
        let mut b = LitmusBuilder::new(1);
        b.write(0, 0x100, 1);
        b.write(0, 0x100, 2);
        let t = b.build();
        let mut sched = PersistSchedule::new(2);
        sched.set(0, 5);
        sched.set(1, 5); // same flush
        let img = nvm_at(&t, &sched, Some(5));
        assert_eq!(img.read(0x100), 2, "later write wins within a flush");
    }

    #[test]
    fn exhaustive_plan_covers_all_stamps() {
        let (_, sched) = two_write_trace();
        let stamps = CrashPlan::Exhaustive.stamps(&sched);
        assert_eq!(stamps, vec![None, Some(0), Some(1)]);
    }

    #[test]
    fn at_persist_selects_single_points() {
        let (_, sched) = two_write_trace();
        assert_eq!(CrashPlan::AtPersist(0).stamps(&sched), vec![None]);
        assert_eq!(CrashPlan::AtPersist(1).stamps(&sched), vec![Some(0)]);
        assert_eq!(CrashPlan::AtPersist(2).stamps(&sched), vec![Some(1)]);
        // Past the end clamps to the final stamp.
        assert_eq!(CrashPlan::AtPersist(99).stamps(&sched), vec![Some(1)]);
        // An empty schedule only has the pre-persist state.
        let empty = PersistSchedule::new(4);
        assert_eq!(CrashPlan::AtPersist(3).stamps(&empty), vec![None]);
    }

    #[test]
    fn sampled_plan_bounds_size_and_keeps_last() {
        let mut sched = PersistSchedule::new(100);
        for i in 0..100 {
            sched.set(i, i as u64);
        }
        let stamps = CrashPlan::Sampled(10).stamps(&sched);
        assert!(stamps.len() <= 12);
        assert_eq!(*stamps.last().unwrap(), Some(99));
        assert_eq!(stamps[0], None);
    }
}
