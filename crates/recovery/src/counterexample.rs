//! The paper's Figure 1, end to end.
//!
//! Thread 0 inserts node A1 into a log-free linked list: it prepares the
//! node with plain writes and links it with a release CAS. Under ARP, a
//! legal persist order puts the link *before* the node's fields; a crash
//! between the two leaves a reachable node full of garbage — the list is
//! unrecoverable. Under RP (and the LRP hardware run), every crash
//! prefix is a consistent cut and the list always validates.

use crate::check::check_null_recovery;
use crate::crash::CrashPlan;
use lrp_baselines::arp::{arp_schedule, ArpOrder};
use lrp_exec::{run, ExecConfig, PmemCtx, SchedPolicy};
use lrp_lfds::list::LinkedList;
use lrp_lfds::Structure;
use lrp_model::spec::{check_arp, check_rp};
use lrp_model::Trace;
use lrp_sim::{Mechanism, Sim, SimConfig};

/// The outcome of the Figure 1 demonstration.
#[derive(Debug)]
pub struct Figure1 {
    /// The recorded two-thread insert execution.
    pub trace: Trace,
    /// Crash points at which the adversarial ARP schedule failed.
    pub arp_failures: usize,
    /// Crash points examined under ARP.
    pub arp_points: usize,
    /// Crash points examined under the LRP hardware run (all recover).
    pub lrp_points: usize,
}

/// Builds the Figure 1 execution (two threads inserting adjacent keys)
/// and checks recovery under the adversarial ARP schedule and under a
/// full LRP simulator run.
///
/// Panics if ARP unexpectedly recovers everywhere or if LRP fails — the
/// library's own tests rely on both properties.
pub fn figure1() -> Figure1 {
    // Two threads insert into a shared list; the second thread's insert
    // follows the first (it must traverse through A1), giving the
    // rel -> acq -> write chain of Figure 1d.
    let cfg = ExecConfig::new(2).policy(SchedPolicy::RoundRobin).seed(7);
    let trace = run(
        &cfg,
        |s| {
            let l = LinkedList::new(s);
            l.populate(s, &[10, 50]);
            s.set_root("head", l.head_loc);
        },
        vec![
            Box::new(|c: &mut lrp_exec::GateCtx| {
                let head = lrp_exec::ctx::HEAP_BASE + 2 * lrp_exec::ctx::ARENA_BYTES;
                lrp_lfds::list::insert(c, head, 20, 2020); // A1
            }),
            Box::new(|c: &mut lrp_exec::GateCtx| {
                let head = lrp_exec::ctx::HEAP_BASE + 2 * lrp_exec::ctx::ARENA_BYTES;
                // Give T0 a head start so T1 observes A1 (B2 of Fig. 1c).
                for _ in 0..8 {
                    c.read(head);
                }
                lrp_lfds::list::insert(c, head, 30, 3030); // B2
            }),
        ],
    );
    trace.validate().expect("well-formed trace");

    // ARP: the schedule satisfies the ARP rule yet breaks recovery.
    let arp = arp_schedule(&trace, ArpOrder::ReleaseFirst);
    check_arp(&trace, &arp).expect("schedule is ARP-legal");
    assert!(
        check_rp(&trace, &arp).is_err(),
        "the adversarial ARP schedule must violate RP"
    );
    let arp_report =
        check_null_recovery(Structure::LinkedList, &trace, &arp, &CrashPlan::Exhaustive);

    // LRP hardware: the recorded persist schedule satisfies RP and every
    // crash point recovers.
    let lrp = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
    check_rp(&trace, &lrp.schedule).expect("LRP enforces RP");
    let lrp_report = check_null_recovery(
        Structure::LinkedList,
        &trace,
        &lrp.schedule,
        &CrashPlan::Exhaustive,
    );
    assert!(
        lrp_report.all_recovered(),
        "LRP must recover everywhere: {lrp_report}"
    );

    Figure1 {
        trace,
        arp_failures: arp_report.failures.len(),
        arp_points: arp_report.crash_points,
        lrp_points: lrp_report.crash_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_demonstrates_the_gap() {
        let f = figure1();
        assert!(
            f.arp_failures > 0,
            "ARP must fail recovery at some crash point"
        );
        assert!(f.lrp_points > 1);
        assert!(!f.trace.events.is_empty());
    }
}
