//! Counterexample rendering, plus the paper's Figure 1 end to end.
//!
//! [`Counterexample`] is the one shared formatter for every persistency
//! violation report in the workspace — the `lrp-check` model checker,
//! the recovery tests, and future crash fuzzers all render through it so
//! that counterexamples look identical everywhere and diff cleanly in
//! CI artifacts. All sections render in a fixed order and the caller
//! supplies entries in a deterministic order, so equal failures produce
//! byte-equal reports.
//!
//! [`figure1`] packages the paper's motivating counterexample: thread 0
//! inserts node A1 into a log-free linked list — it prepares the node
//! with plain writes and links it with a release CAS. Under ARP, a legal
//! persist order puts the link *before* the node's fields; a crash
//! between the two leaves a reachable node full of garbage — the list is
//! unrecoverable. Under RP (and the LRP hardware run), every crash
//! prefix is a consistent cut and the list always validates.

use crate::check::check_null_recovery;
use crate::crash::CrashPlan;
use lrp_baselines::arp::{arp_schedule, ArpOrder};
use lrp_exec::{run, ExecConfig, PmemCtx, SchedPolicy};
use lrp_lfds::list::LinkedList;
use lrp_lfds::Structure;
use lrp_model::spec::{check_arp, check_rp};
use lrp_model::Trace;
use lrp_model::{Event, OpKind, OpMarker};
use lrp_sim::{Mechanism, Sim, SimConfig};

/// A structured, deterministically rendered persistency counterexample:
/// what was being checked, the ops in play, the durable cut, the state
/// recovery produced, and the check that failed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counterexample {
    /// What was being checked (e.g. `"lrp/linked-list seed 3"`).
    pub title: String,
    /// Key/value context lines (mechanism, discipline, crash point...),
    /// rendered in insertion order — push them in a fixed order.
    pub context: Vec<(String, String)>,
    /// Rendered operations relevant to the failure.
    pub ops: Vec<String>,
    /// Rendered durable-cut entries (typically one line per write).
    pub cut: Vec<String>,
    /// Rendered recovered abstract state, if recovery got that far.
    pub recovered: Option<String>,
    /// The violated check, in one line.
    pub failure: String,
}

impl Counterexample {
    /// A counterexample for `title` failing with `failure`.
    pub fn new(title: impl Into<String>, failure: impl Into<String>) -> Self {
        Counterexample {
            title: title.into(),
            failure: failure.into(),
            ..Counterexample::default()
        }
    }

    /// Appends a context line.
    pub fn context(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.context.push((key.into(), value.into()));
        self
    }

    /// Renders one memory event in the workspace's fixed format:
    /// `e<id> t<tid> <kind>[<annot>] <addr> := <wval>` (reads show
    /// `-> <rval>` instead of the written value).
    pub fn render_event(e: &Event) -> String {
        let kind = match e.kind {
            lrp_model::EventKind::Read => "R",
            lrp_model::EventKind::Write => "W",
            lrp_model::EventKind::RmwSuccess => "U",
            lrp_model::EventKind::RmwFail => "Uf",
        };
        let annot = match (e.annot.is_acquire(), e.annot.is_release()) {
            (true, true) => "[acq_rel]",
            (true, false) => "[acq]",
            (false, true) => "[rel]",
            (false, false) => "",
        };
        if e.is_write_effect() {
            format!(
                "e{} t{} {kind}{annot} {:#x} := {}",
                e.id, e.tid, e.addr, e.wval
            )
        } else {
            format!(
                "e{} t{} {kind}{annot} {:#x} -> {}",
                e.id, e.tid, e.addr, e.rval
            )
        }
    }

    /// Renders one operation marker:
    /// `t<tid> <op> -> <result> [events <first>..<end>)`.
    pub fn render_op(m: &OpMarker) -> String {
        let (op, res) = match m.op {
            OpKind::Insert(k, v) => (format!("insert({k}, {v})"), yes_no(m.result)),
            OpKind::Delete(k) => (format!("delete({k})"), yes_no(m.result)),
            OpKind::Contains(k) => (format!("contains({k})"), yes_no(m.result)),
            OpKind::Enqueue(v) => (format!("enqueue({v})"), yes_no(m.result)),
            OpKind::Dequeue => (
                "dequeue".to_string(),
                match m.result {
                    0 => "empty".to_string(),
                    v => format!("{}", v - 1),
                },
            ),
            OpKind::Setup => ("setup".to_string(), "done".to_string()),
        };
        format!(
            "t{} {op} -> {res} [events {}..{})",
            m.tid, m.first_event, m.end_event
        )
    }
}

fn yes_no(result: u64) -> String {
    if result == 1 { "ok" } else { "fail" }.to_string()
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample: {}", self.title)?;
        for (k, v) in &self.context {
            writeln!(f, "  {k}: {v}")?;
        }
        if !self.ops.is_empty() {
            writeln!(f, "  ops:")?;
            for o in &self.ops {
                writeln!(f, "    - {o}")?;
            }
        }
        if !self.cut.is_empty() {
            writeln!(f, "  durable cut:")?;
            for c in &self.cut {
                writeln!(f, "    - {c}")?;
            }
        }
        if let Some(r) = &self.recovered {
            writeln!(f, "  recovered: {r}")?;
        }
        write!(f, "  failure: {}", self.failure)
    }
}

/// The outcome of the Figure 1 demonstration.
#[derive(Debug)]
pub struct Figure1 {
    /// The recorded two-thread insert execution.
    pub trace: Trace,
    /// Crash points at which the adversarial ARP schedule failed.
    pub arp_failures: usize,
    /// Crash points examined under ARP.
    pub arp_points: usize,
    /// Crash points examined under the LRP hardware run (all recover).
    pub lrp_points: usize,
}

/// Builds the Figure 1 execution (two threads inserting adjacent keys)
/// and checks recovery under the adversarial ARP schedule and under a
/// full LRP simulator run.
///
/// Panics if ARP unexpectedly recovers everywhere or if LRP fails — the
/// library's own tests rely on both properties.
pub fn figure1() -> Figure1 {
    // Two threads insert into a shared list; the second thread's insert
    // follows the first (it must traverse through A1), giving the
    // rel -> acq -> write chain of Figure 1d.
    let cfg = ExecConfig::new(2).policy(SchedPolicy::RoundRobin).seed(7);
    let trace = run(
        &cfg,
        |s| {
            let l = LinkedList::new(s);
            l.populate(s, &[10, 50]);
            s.set_root("head", l.head_loc);
        },
        vec![
            Box::new(|c: &mut lrp_exec::GateCtx| {
                let head = lrp_exec::ctx::HEAP_BASE + 2 * lrp_exec::ctx::ARENA_BYTES;
                lrp_lfds::list::insert(c, head, 20, 2020); // A1
            }),
            Box::new(|c: &mut lrp_exec::GateCtx| {
                let head = lrp_exec::ctx::HEAP_BASE + 2 * lrp_exec::ctx::ARENA_BYTES;
                // Give T0 a head start so T1 observes A1 (B2 of Fig. 1c).
                for _ in 0..8 {
                    c.read(head);
                }
                lrp_lfds::list::insert(c, head, 30, 3030); // B2
            }),
        ],
    );
    trace.validate().expect("well-formed trace");

    // ARP: the schedule satisfies the ARP rule yet breaks recovery.
    let arp = arp_schedule(&trace, ArpOrder::ReleaseFirst);
    check_arp(&trace, &arp).expect("schedule is ARP-legal");
    assert!(
        check_rp(&trace, &arp).is_err(),
        "the adversarial ARP schedule must violate RP"
    );
    let arp_report =
        check_null_recovery(Structure::LinkedList, &trace, &arp, &CrashPlan::Exhaustive);

    // LRP hardware: the recorded persist schedule satisfies RP and every
    // crash point recovers.
    let lrp = Sim::new(SimConfig::new(Mechanism::Lrp), &trace).run();
    check_rp(&trace, &lrp.schedule).expect("LRP enforces RP");
    let lrp_report = check_null_recovery(
        Structure::LinkedList,
        &trace,
        &lrp.schedule,
        &CrashPlan::Exhaustive,
    );
    assert!(
        lrp_report.all_recovered(),
        "LRP must recover everywhere: {lrp_report}"
    );

    Figure1 {
        trace,
        arp_failures: arp_report.failures.len(),
        arp_points: arp_report.crash_points,
        lrp_points: lrp_report.crash_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_model::litmus::LitmusBuilder;
    use lrp_model::types::Annot;

    #[test]
    fn rendering_is_deterministic_and_sectioned() {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        b.write(0, 0x100, 42);
        b.cas(0, 0x200, 0, 0x100, Annot::AcqRel);
        let t = b.build();
        let make = || {
            let mut cx = Counterexample::new(
                "lrp/linked-list seed 3",
                "stamp order violates release-order",
            )
            .context("mechanism", "lrp")
            .context("crash point", "after flush 4");
            cx.ops = t.markers.iter().map(Counterexample::render_op).collect();
            cx.cut = t
                .events
                .iter()
                .filter(|e| e.is_write_effect())
                .map(Counterexample::render_event)
                .collect();
            cx.recovered = Some("set{10, 50}".to_string());
            cx
        };
        let a = make().to_string();
        assert_eq!(a, make().to_string(), "byte-identical across renders");
        assert!(a.starts_with("counterexample: lrp/linked-list seed 3\n"));
        assert!(a.contains("  mechanism: lrp\n"));
        assert!(a.contains("  durable cut:\n"));
        assert!(a.contains("e0 t0 W 0x100 := 42"));
        assert!(a.contains("e1 t0 U[acq_rel] 0x200 := 256"));
        assert!(a.contains("  recovered: set{10, 50}"));
        assert!(a.ends_with("  failure: stamp order violates release-order"));
    }

    #[test]
    fn empty_sections_are_omitted() {
        let s = Counterexample::new("t", "f").to_string();
        assert_eq!(s, "counterexample: t\n  failure: f");
    }

    #[test]
    fn op_rendering_covers_results() {
        use lrp_model::OpMarker;
        let m = |op, result| OpMarker {
            tid: 1,
            op,
            first_event: 2,
            end_event: 5,
            result,
        };
        assert_eq!(
            Counterexample::render_op(&m(OpKind::Insert(7, 70), 1)),
            "t1 insert(7, 70) -> ok [events 2..5)"
        );
        assert_eq!(
            Counterexample::render_op(&m(OpKind::Delete(7), 0)),
            "t1 delete(7) -> fail [events 2..5)"
        );
        assert_eq!(
            Counterexample::render_op(&m(OpKind::Dequeue, 0)),
            "t1 dequeue -> empty [events 2..5)"
        );
        assert_eq!(
            Counterexample::render_op(&m(OpKind::Dequeue, 43)),
            "t1 dequeue -> 42 [events 2..5)"
        );
    }

    #[test]
    fn figure1_demonstrates_the_gap() {
        let f = figure1();
        assert!(
            f.arp_failures > 0,
            "ARP must fail recovery at some crash point"
        );
        assert!(f.lrp_points > 1);
        assert!(!f.trace.events.is_empty());
    }
}
