//! Crash-consistency checking: reconstructing NVM state at arbitrary
//! crash points and validating that log-free data structures recover
//! with no effort (*null recovery*, §2.3 of the paper).
//!
//! Two sources of persist schedules are supported:
//!
//! * **model-level** schedules (e.g. the ARP persist-buffer model in
//!   `lrp-baselines`) — used to reproduce Figure 1's counterexample,
//! * **simulator** schedules recorded by `lrp-sim` runs — used to prove
//!   that LRP/SB/BB executions recover at *every* crash point while NOP
//!   executions generally do not.
//!
//! The core pieces:
//!
//! * [`crash::nvm_at`] reconstructs the durable memory image for a crash
//!   immediately after a given flush stamp,
//! * [`crash::CrashPlan`] enumerates (or samples) interesting crash
//!   points,
//! * [`check::check_null_recovery`] walks every chosen crash state
//!   through the structure's validator,
//! * [`counterexample`] packages the paper's Figure 1 demonstration.

pub mod check;
pub mod counterexample;
pub mod crash;
pub mod history;
pub mod restart;

pub use check::{check_null_recovery, RecoveryReport};
pub use counterexample::Counterexample;
pub use crash::{nvm_at, CrashPlan};
pub use history::{history_consistent, HistoryViolation};
pub use restart::{
    crash_restart, crash_restart_random, random_crash_stamp, rebuild_resolution, RestartResolution,
    ShardRestart,
};
