//! Crash-restart: the image-rebuild entry point service shards use.
//!
//! A serving shard that is killed mid-traffic restarts in three steps,
//! all driven from the batch's recorded [`PersistSchedule`]:
//!
//! 1. **sample** a crash point (uniformly over the schedule's distinct
//!    flush stamps, plus the crash-before-anything-persists state),
//! 2. **rebuild** the durable NVM image at that point with
//!    [`crate::crash::nvm_at`] and run the structure's validator on it —
//!    *null recovery*: the image must be usable as-is, and on success
//!    the validator hands back the abstract contents the shard resumes
//!    from,
//! 3. **audit** a wider sample of crash points around the chosen one
//!    with [`crate::check::check_null_recovery`], so the restart verdict
//!    reports whether the whole schedule keeps NVM at consistent cuts
//!    (the paper's §3–§5 claim), not just the one point that happened to
//!    be sampled.

use crate::check::{check_null_recovery, RecoveryReport};
use crate::crash::{nvm_at, CrashPlan};
use lrp_detect::{read_table, table_roots, Resolver, SlotTable};
use lrp_exec::Xorshift64;
use lrp_lfds::{validate_image, MemImage, Recovered, Structure, ValidationError};
use lrp_model::spec::PersistSchedule;
use lrp_model::{Addr, Trace};

/// Everything a shard needs to resume after a simulated crash.
#[derive(Debug, Clone)]
pub struct ShardRestart {
    /// The sampled crash point (`None` = before anything persisted).
    pub crash_stamp: Option<u64>,
    /// The durable NVM image at the crash point.
    pub image: MemImage,
    /// Validator outcome at the crash point: the recovered abstract
    /// contents, or why the image was unusable.
    pub recovered: Result<Recovered, ValidationError>,
    /// Null-recovery audit over `audit_samples` additional crash points.
    pub audit: RecoveryReport,
}

impl ShardRestart {
    /// True when the crash-point image validated *and* the wider audit
    /// found no unrecoverable point.
    pub fn consistent(&self) -> bool {
        self.recovered.is_ok() && self.audit.all_recovered()
    }
}

/// Samples one crash stamp uniformly over `sched`'s distinct flush
/// stamps plus the pre-persist state (`None`). Deterministic in `seed`.
pub fn random_crash_stamp(sched: &PersistSchedule, seed: u64) -> Option<u64> {
    let stamps = sched.distinct_stamps();
    let mut rng = Xorshift64::new(seed ^ 0x5EED_CA5E);
    let pick = rng.below(stamps.len() as u64 + 1);
    if pick == 0 {
        None
    } else {
        Some(stamps[pick as usize - 1])
    }
}

/// Rebuilds the durable image at `stamp` and validates it, returning
/// the full [`ShardRestart`] with an `audit_samples`-point null-recovery
/// audit (seeded by `seed`, so campaigns probe different points).
pub fn crash_restart(
    structure: Structure,
    trace: &Trace,
    sched: &PersistSchedule,
    stamp: Option<u64>,
    audit_samples: usize,
    seed: u64,
) -> ShardRestart {
    let image = nvm_at(trace, sched, stamp);
    let recovered = validate_image(structure, &trace.roots, &image);
    let audit = check_null_recovery(
        structure,
        trace,
        sched,
        &CrashPlan::Random {
            samples: audit_samples.max(1),
            seed,
        },
    );
    ShardRestart {
        crash_stamp: stamp,
        image,
        recovered,
        audit,
    }
}

/// The detectable-operation state rebuilt alongside a crash-restart:
/// the slot table recovered from the crash-cut image plus the
/// [`Resolver`] that answers post-crash `Resolve` requests.
#[derive(Debug, Clone)]
pub struct RestartResolution {
    /// Coherently-recovered slot records (the new committed stamps).
    pub table: SlotTable,
    /// The deterministic rid → verdict map built from them.
    pub resolver: Resolver,
    /// Slots whose stamp word survived but whose record did not decode.
    /// A release-ordering discipline keeps this at zero.
    pub torn: u64,
}

/// Rebuilds the detectable-operation resolver from a crash-cut (or
/// commit) image. Returns `None` when the trace registers no slot
/// table; when `sound` is false (the mechanism's discipline does not
/// persist-order release stamps after the writes they certify), the
/// recovered records are reported but the resolver is left empty —
/// every uncertain op resolves `NotStarted` and serving degrades
/// gracefully to at-least-once, which is all such a discipline can
/// honestly promise.
pub fn rebuild_resolution(
    roots: &[(String, Addr)],
    image: &MemImage,
    sound: bool,
) -> Option<RestartResolution> {
    let (base, spec) = table_roots(roots)?;
    let scan = read_table(image, base, spec);
    let resolver = if sound {
        Resolver::from_table(&scan.table)
    } else {
        Resolver::empty()
    };
    Some(RestartResolution {
        table: scan.table,
        resolver,
        torn: scan.torn,
    })
}

/// One-call form: sample a random crash point, then restart at it.
pub fn crash_restart_random(
    structure: Structure,
    trace: &Trace,
    sched: &PersistSchedule,
    audit_samples: usize,
    seed: u64,
) -> ShardRestart {
    let stamp = random_crash_stamp(sched, seed);
    crash_restart(structure, trace, sched, stamp, audit_samples, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_lfds::WorkloadSpec;
    use lrp_sim::{Mechanism, Sim, SimConfig};

    fn run(structure: Structure, mech: Mechanism, seed: u64) -> (Trace, PersistSchedule) {
        let t = WorkloadSpec::new(structure)
            .initial_size(24)
            .threads(2)
            .ops_per_thread(10)
            .seed(seed)
            .build_trace();
        let r = Sim::new(SimConfig::new(mech), &t).run();
        (t, r.schedule)
    }

    #[test]
    fn lrp_shard_restart_is_consistent_and_recovers_contents() {
        let (t, sched) = run(Structure::HashMap, Mechanism::Lrp, 3);
        for seed in 0..4 {
            let r = crash_restart_random(Structure::HashMap, &t, &sched, 8, seed);
            assert!(r.consistent(), "seed {seed}: {:?}", r.recovered);
            let rec = r.recovered.as_ref().unwrap();
            assert!(
                matches!(rec, Recovered::Set(_)),
                "hashmap recovers a key set"
            );
        }
    }

    #[test]
    fn crash_stamp_sampling_is_deterministic_and_covers_none() {
        let (_, sched) = run(Structure::LinkedList, Mechanism::Lrp, 5);
        assert_eq!(random_crash_stamp(&sched, 9), random_crash_stamp(&sched, 9));
        let drawn: Vec<Option<u64>> = (0..64).map(|s| random_crash_stamp(&sched, s)).collect();
        assert!(drawn.iter().any(Option::is_none), "pre-persist state drawn");
        assert!(drawn.iter().any(Option::is_some));
    }

    #[test]
    fn restart_at_final_stamp_keeps_untouched_initial_keys() {
        // The durable state at the final stamp may legitimately lag the
        // functional state (trailing writes not ordered by a persisted
        // release), but keys from the pre-populated initial image that no
        // operation ever targeted are durable by construction and must
        // all survive.
        let (t, sched) = run(Structure::SkipList, Mechanism::Lrp, 7);
        let last = sched.distinct_stamps().last().copied();
        let r = crash_restart(Structure::SkipList, &t, &sched, last, 4, 1);
        assert!(r.consistent());
        let recovered = match r.recovered.unwrap() {
            Recovered::Set(s) => s,
            other => panic!("skiplist recovers a set, got {other:?}"),
        };
        let touched: std::collections::BTreeSet<u64> = t
            .markers
            .iter()
            .filter_map(|m| match m.op {
                lrp_model::OpKind::Insert(k, _) | lrp_model::OpKind::Delete(k) => Some(k),
                _ => None,
            })
            .collect();
        let initial_img = MemImage::new(t.initial_mem.iter().copied());
        let initial = match validate_image(Structure::SkipList, &t.roots, &initial_img).unwrap() {
            Recovered::Set(s) => s,
            other => panic!("initial image recovers a set, got {other:?}"),
        };
        for k in initial.difference(&touched) {
            assert!(recovered.contains(k), "untouched initial key {k} lost");
        }
    }

    #[test]
    fn resolution_rebuild_reads_stamps_and_respects_soundness() {
        use lrp_detect::{SlotKind, SlotRecord, SlotSpec, ROOT_BASE, ROOT_CLIENTS, ROOT_RING};
        let spec = SlotSpec {
            clients: 2,
            ring: 2,
        };
        let base = 0x8000u64;
        let rec = SlotRecord {
            rid: (1 << 48) | 5,
            key: 9,
            kind: SlotKind::Put,
            applied: true,
            batch: 3,
        };
        let a = spec.record_addr(base, spec.index_for(rec.rid));
        let image = MemImage::new([(a, rec.rid), (a + 8, rec.key), (a + 16, rec.meta())]);
        let roots = vec![
            (ROOT_BASE.to_string(), base),
            (ROOT_CLIENTS.to_string(), spec.clients),
            (ROOT_RING.to_string(), spec.ring),
        ];
        let r = rebuild_resolution(&roots, &image, true).unwrap();
        assert_eq!(r.torn, 0);
        assert_eq!(r.table.occupied(), 1);
        assert!(r.resolver.resolve(rec.rid).is_done());
        // An unsound discipline surfaces the records but refuses to
        // resolve from them.
        let lax = rebuild_resolution(&roots, &image, false).unwrap();
        assert_eq!(lax.table.occupied(), 1);
        assert!(!lax.resolver.resolve(rec.rid).is_done());
        // No registered table: nothing to rebuild.
        assert!(rebuild_resolution(&[], &image, true).is_none());
    }

    #[test]
    fn adversarial_schedule_reports_inconsistency() {
        use lrp_baselines::arp::{arp_schedule, ArpOrder};
        let mut saw_failure = false;
        for seed in 0..6 {
            let t = WorkloadSpec::new(Structure::LinkedList)
                .initial_size(24)
                .threads(3)
                .ops_per_thread(10)
                .seed(100 + seed)
                .build_trace();
            let sched = arp_schedule(&t, ArpOrder::ReleaseFirst);
            let r = crash_restart_random(Structure::LinkedList, &t, &sched, 32, seed);
            if !r.consistent() {
                saw_failure = true;
                break;
            }
        }
        assert!(saw_failure, "ARP-legal order should break some restart");
    }
}
