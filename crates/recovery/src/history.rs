//! History consistency: beyond structural integrity, a recovered state
//! must be *explainable* by the operations the program executed.
//!
//! For set structures, a crash-state key set `R` is history-consistent
//! when:
//!
//! * `R ⊆ initial ∪ inserted` — nothing materializes from thin air;
//! * `initial ∖ R ⊆ deleted` — an initial key can only vanish if some
//!   delete of it succeeded.
//!
//! For the queue: every recovered value was initially present or
//! enqueued, values are unique, and each producer's values appear in
//! FIFO order.
//!
//! These are necessary conditions for any linearizable crash state; they
//! catch bugs the structural validators cannot (e.g. a persist order
//! that resurrects deleted keys by losing the deleting mark while
//! keeping a later unlink... ).

use lrp_lfds::validate::Recovered;
use lrp_lfds::{validate_image, MemImage, Structure, ValidationError};
use lrp_model::{OpKind, Trace};
use std::collections::{BTreeMap, BTreeSet};

/// Why a recovered state cannot be explained by the history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryViolation {
    /// A key present in the recovered state was never initial nor
    /// inserted.
    PhantomKey(u64),
    /// An initial key is missing although no delete of it succeeded.
    LostKey(u64),
    /// A queue value was never initial nor enqueued.
    PhantomValue(u64),
    /// A queue value appears twice.
    DuplicateValue(u64),
    /// Two values of one producer appear out of FIFO order.
    ProducerOrder(u64, u64),
    /// The initial image itself failed structural validation.
    BadInitialImage(ValidationError),
}

impl std::fmt::Display for HistoryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryViolation::PhantomKey(k) => write!(f, "recovered key {k} was never inserted"),
            HistoryViolation::LostKey(k) => {
                write!(f, "initial key {k} lost without a successful delete")
            }
            HistoryViolation::PhantomValue(v) => {
                write!(f, "recovered value {v} was never enqueued")
            }
            HistoryViolation::DuplicateValue(v) => write!(f, "value {v} recovered twice"),
            HistoryViolation::ProducerOrder(a, b) => {
                write!(f, "producer values {a}, {b} out of FIFO order")
            }
            HistoryViolation::BadInitialImage(e) => write!(f, "initial image invalid: {e}"),
        }
    }
}

impl std::error::Error for HistoryViolation {}

/// The initial abstract contents, recovered from the trace's initial
/// durable image.
pub fn initial_state(structure: Structure, trace: &Trace) -> Result<Recovered, HistoryViolation> {
    let img = MemImage::new(trace.initial_mem.iter().copied());
    validate_image(structure, &trace.roots, &img).map_err(HistoryViolation::BadInitialImage)
}

/// Checks that `recovered` is explainable by the trace's operation
/// markers.
pub fn history_consistent(
    structure: Structure,
    trace: &Trace,
    recovered: &Recovered,
) -> Result<(), HistoryViolation> {
    match recovered {
        Recovered::Set(keys) => {
            let initial = match initial_state(structure, trace)? {
                Recovered::Set(s) => s,
                Recovered::Queue(_) => unreachable!("set structure"),
            };
            let mut inserted = BTreeSet::new();
            let mut deleted = BTreeSet::new();
            for m in &trace.markers {
                match m.op {
                    OpKind::Insert(k, _) => {
                        inserted.insert(k);
                    }
                    OpKind::Delete(k) if m.result == 1 => {
                        deleted.insert(k);
                    }
                    _ => {}
                }
            }
            for &k in keys {
                if !initial.contains(&k) && !inserted.contains(&k) {
                    return Err(HistoryViolation::PhantomKey(k));
                }
            }
            for &k in &initial {
                if !keys.contains(&k) && !deleted.contains(&k) {
                    return Err(HistoryViolation::LostKey(k));
                }
            }
            Ok(())
        }
        Recovered::Queue(values) => {
            let initial = match initial_state(structure, trace)? {
                Recovered::Queue(v) => v,
                Recovered::Set(_) => unreachable!("queue structure"),
            };
            let mut allowed: BTreeSet<u64> = initial.iter().copied().collect();
            for m in &trace.markers {
                if let OpKind::Enqueue(v) = m.op {
                    allowed.insert(v);
                }
            }
            let mut seen = BTreeSet::new();
            // Producer id encoding from the harness: value / 1_000_000.
            let mut last_by_producer: BTreeMap<u64, u64> = BTreeMap::new();
            for &v in values {
                if !allowed.contains(&v) {
                    return Err(HistoryViolation::PhantomValue(v));
                }
                if !seen.insert(v) {
                    return Err(HistoryViolation::DuplicateValue(v));
                }
                let producer = v / 1_000_000;
                if let Some(&prev) = last_by_producer.get(&producer) {
                    if v <= prev {
                        return Err(HistoryViolation::ProducerOrder(prev, v));
                    }
                }
                last_by_producer.insert(producer, v);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::{nvm_at, CrashPlan};
    use lrp_lfds::WorkloadSpec;
    use lrp_sim::{Mechanism, Sim, SimConfig};

    #[test]
    fn lrp_crash_states_are_history_consistent_for_all_structures() {
        for s in Structure::ALL {
            let t = WorkloadSpec::new(s)
                .initial_size(24)
                .threads(3)
                .ops_per_thread(10)
                .seed(41)
                .build_trace();
            let r = Sim::new(SimConfig::new(Mechanism::Lrp), &t).run();
            for stamp in CrashPlan::Exhaustive.stamps(&r.schedule) {
                let img = nvm_at(&t, &r.schedule, stamp);
                let rec = validate_image(s, &t.roots, &img)
                    .unwrap_or_else(|e| panic!("{s} at {stamp:?}: {e}"));
                history_consistent(s, &t, &rec).unwrap_or_else(|e| panic!("{s} at {stamp:?}: {e}"));
            }
        }
    }

    #[test]
    fn phantom_key_detected() {
        let t = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(4)
            .seed(2)
            .build_trace();
        let mut keys = match initial_state(Structure::LinkedList, &t).unwrap() {
            Recovered::Set(s) => s,
            _ => unreachable!(),
        };
        keys.insert(999_999); // never inserted
        let err = history_consistent(Structure::LinkedList, &t, &Recovered::Set(keys)).unwrap_err();
        assert_eq!(err, HistoryViolation::PhantomKey(999_999));
    }

    #[test]
    fn lost_key_detected() {
        let t = WorkloadSpec::new(Structure::LinkedList)
            .initial_size(8)
            .threads(1)
            .ops_per_thread(0)
            .seed(2)
            .build_trace();
        let mut keys = match initial_state(Structure::LinkedList, &t).unwrap() {
            Recovered::Set(s) => s,
            _ => unreachable!(),
        };
        let victim = *keys.iter().next().unwrap();
        keys.remove(&victim);
        // No delete ops at all, so the key cannot be missing.
        let err = history_consistent(Structure::LinkedList, &t, &Recovered::Set(keys)).unwrap_err();
        assert_eq!(err, HistoryViolation::LostKey(victim));
    }

    #[test]
    fn queue_phantom_and_duplicate_detected() {
        let t = WorkloadSpec::new(Structure::Queue)
            .initial_size(4)
            .threads(1)
            .ops_per_thread(0)
            .seed(2)
            .build_trace();
        let initial = match initial_state(Structure::Queue, &t).unwrap() {
            Recovered::Queue(v) => v,
            _ => unreachable!(),
        };
        let err = history_consistent(Structure::Queue, &t, &Recovered::Queue(vec![123_456_789]))
            .unwrap_err();
        assert_eq!(err, HistoryViolation::PhantomValue(123_456_789));
        let twice = vec![initial[0], initial[0]];
        let err = history_consistent(Structure::Queue, &t, &Recovered::Queue(twice)).unwrap_err();
        assert_eq!(err, HistoryViolation::DuplicateValue(initial[0]));
    }

    #[test]
    fn queue_producer_order_detected() {
        let t = WorkloadSpec::new(Structure::Queue)
            .initial_size(2)
            .threads(2)
            .ops_per_thread(6)
            .seed(6)
            .build_trace();
        // Two values of producer 1 (t=0) out of order.
        let bad = vec![1_000_005, 1_000_001];
        let err = history_consistent(Structure::Queue, &t, &Recovered::Queue(bad));
        assert!(matches!(
            err,
            Err(HistoryViolation::ProducerOrder(_, _)) | Err(HistoryViolation::PhantomValue(_))
        ));
    }
}
