//! Null-recovery checking over crash points.

use crate::crash::{nvm_at, CrashPlan};
use lrp_lfds::{validate_image, Structure, ValidationError};
use lrp_model::spec::PersistSchedule;
use lrp_model::Trace;

/// Outcome of checking one execution over a crash plan.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Crash points examined.
    pub crash_points: usize,
    /// Crash points at which validation failed.
    pub failures: Vec<(Option<u64>, ValidationError)>,
}

impl RecoveryReport {
    /// True if every examined crash state recovered.
    pub fn all_recovered(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.all_recovered() {
            write!(f, "{} crash points: all recovered", self.crash_points)
        } else {
            write!(
                f,
                "{} crash points: {} FAILED (first: {:?})",
                self.crash_points,
                self.failures.len(),
                self.failures.first()
            )
        }
    }
}

/// Reconstructs the durable state at each crash point of `plan` and runs
/// the structural validator of `structure` on it.
pub fn check_null_recovery(
    structure: Structure,
    trace: &Trace,
    sched: &PersistSchedule,
    plan: &CrashPlan,
) -> RecoveryReport {
    let stamps = plan.stamps(sched);
    let mut failures = Vec::new();
    for stamp in &stamps {
        let img = nvm_at(trace, sched, *stamp);
        if let Err(e) = validate_image(structure, &trace.roots, &img) {
            failures.push((*stamp, e));
        }
    }
    RecoveryReport {
        crash_points: stamps.len(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_baselines::arp::{arp_schedule, ArpOrder};
    use lrp_lfds::WorkloadSpec;
    use lrp_sim::{Mechanism, Sim, SimConfig};

    fn workload(structure: Structure, seed: u64) -> Trace {
        WorkloadSpec::new(structure)
            .initial_size(24)
            .threads(3)
            .ops_per_thread(10)
            .seed(seed)
            .build_trace()
    }

    #[test]
    fn lrp_runs_recover_at_every_crash_point() {
        for s in Structure::ALL {
            let t = workload(s, 21);
            let r = Sim::new(SimConfig::new(Mechanism::Lrp), &t).run();
            let report = check_null_recovery(s, &t, &r.schedule, &CrashPlan::Exhaustive);
            assert!(report.all_recovered(), "{s}: {report}");
            assert!(report.crash_points > 1, "{s}: no crash points exercised");
        }
    }

    #[test]
    fn sb_and_bb_runs_also_recover() {
        for m in [Mechanism::Sb, Mechanism::Bb] {
            let t = workload(Structure::LinkedList, 22);
            let r = Sim::new(SimConfig::new(m), &t).run();
            let report = check_null_recovery(
                Structure::LinkedList,
                &t,
                &r.schedule,
                &CrashPlan::Exhaustive,
            );
            assert!(report.all_recovered(), "{m}: {report}");
        }
    }

    #[test]
    fn adversarial_arp_fails_recovery_on_lfds() {
        // The paper's §3 claim, at workload scale: an ARP-legal persist
        // order can leave the structure unrecoverable. Scan seeds until
        // the adversarial order produces a violation (it usually does on
        // the first try for the linked list).
        let mut failed_somewhere = false;
        for seed in 0..6 {
            let t = workload(Structure::LinkedList, 100 + seed);
            let sched = arp_schedule(&t, ArpOrder::ReleaseFirst);
            let report =
                check_null_recovery(Structure::LinkedList, &t, &sched, &CrashPlan::Exhaustive);
            if !report.all_recovered() {
                failed_somewhere = true;
                break;
            }
        }
        assert!(
            failed_somewhere,
            "ARP's one-sided barrier should break recovery on some interleaving"
        );
    }

    #[test]
    fn report_formats_both_ways() {
        let ok = RecoveryReport {
            crash_points: 5,
            failures: vec![],
        };
        assert!(ok.to_string().contains("all recovered"));
        let bad = RecoveryReport {
            crash_points: 5,
            failures: vec![(Some(3), ValidationError::Cycle("x"))],
        };
        assert!(bad.to_string().contains("FAILED"));
    }
}
