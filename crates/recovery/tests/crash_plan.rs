//! Crash-plan coverage properties: sampling must be a deterministic
//! function of its seed, and every sampling strategy must agree with
//! exhaustive enumeration wherever they examine the same stamps.

use lrp_lfds::{Structure, WorkloadSpec};
use lrp_model::spec::PersistSchedule;
use lrp_recovery::{check_null_recovery, CrashPlan};
use lrp_sim::{Mechanism, Sim, SimConfig};

fn dense_schedule(n: usize) -> PersistSchedule {
    let mut sched = PersistSchedule::new(n);
    for i in 0..n {
        sched.set(i as u32, i as u64);
    }
    sched
}

#[test]
fn random_sampling_is_deterministic_for_a_fixed_seed() {
    let sched = dense_schedule(200);
    for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
        let plan = CrashPlan::Random { samples: 17, seed };
        assert_eq!(plan.stamps(&sched), plan.stamps(&sched), "seed {seed}");
    }
}

#[test]
fn random_sampling_varies_with_the_seed() {
    let sched = dense_schedule(500);
    let a = CrashPlan::Random {
        samples: 10,
        seed: 1,
    }
    .stamps(&sched);
    let b = CrashPlan::Random {
        samples: 10,
        seed: 2,
    }
    .stamps(&sched);
    assert_ne!(a, b, "distinct seeds should probe distinct crash points");
}

#[test]
fn random_sampling_bounds_size_keeps_last_and_sorts() {
    let sched = dense_schedule(300);
    let stamps = CrashPlan::Random {
        samples: 25,
        seed: 3,
    }
    .stamps(&sched);
    assert!(stamps.len() <= 26, "None + at most 25 samples");
    assert_eq!(stamps[0], None);
    assert_eq!(
        *stamps.last().unwrap(),
        Some(299),
        "final stamp always probed"
    );
    assert!(
        stamps[1..].windows(2).all(|w| w[0] < w[1]),
        "sorted, distinct"
    );
}

#[test]
fn sampling_degenerates_to_exhaustive_on_small_schedules() {
    // When the stamp universe fits in the budget, every plan must
    // enumerate exactly the exhaustive stamp set.
    let sched = dense_schedule(12);
    let exhaustive = CrashPlan::Exhaustive.stamps(&sched);
    assert_eq!(CrashPlan::Sampled(64).stamps(&sched), exhaustive);
    assert_eq!(
        CrashPlan::Random {
            samples: 64,
            seed: 9
        }
        .stamps(&sched),
        exhaustive
    );
}

#[test]
fn exhaustive_and_sampled_recovery_agree_on_a_small_trace() {
    // A healthy LRP run recovers everywhere, so any subset of its crash
    // points must agree with the exhaustive verdict; and the sampled
    // stamp sets must be genuine subsets of the exhaustive one.
    let t = WorkloadSpec::new(Structure::LinkedList)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(8)
        .seed(5)
        .build_trace();
    let r = Sim::new(SimConfig::new(Mechanism::Lrp), &t).run();
    let exhaustive = check_null_recovery(
        Structure::LinkedList,
        &t,
        &r.schedule,
        &CrashPlan::Exhaustive,
    );
    assert!(exhaustive.all_recovered(), "{exhaustive}");
    let all = CrashPlan::Exhaustive.stamps(&r.schedule);
    for plan in [
        CrashPlan::Sampled(5),
        CrashPlan::Random {
            samples: 5,
            seed: 11,
        },
    ] {
        let stamps = plan.stamps(&r.schedule);
        assert!(
            stamps.iter().all(|s| all.contains(s)),
            "{plan:?} drew a stamp outside the schedule"
        );
        let report = check_null_recovery(Structure::LinkedList, &t, &r.schedule, &plan);
        assert_eq!(
            report.all_recovered(),
            exhaustive.all_recovered(),
            "{plan:?} disagrees with exhaustive enumeration"
        );
        assert!(report.crash_points <= exhaustive.crash_points);
    }
}
