//! Recovery matrix: every structure × every enforcing mechanism × both
//! NVM modes, with history-consistency on top of structural validation.

use lrp_lfds::{validate_image, Structure, WorkloadSpec};
use lrp_recovery::history::history_consistent;
use lrp_recovery::{check_null_recovery, nvm_at, CrashPlan};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};

#[test]
fn recovery_matrix_structures_by_mechanisms() {
    for s in Structure::ALL {
        let t = WorkloadSpec::new(s)
            .initial_size(20)
            .threads(3)
            .ops_per_thread(8)
            .seed(61)
            .build_trace();
        for m in [Mechanism::Lrp, Mechanism::Sb, Mechanism::Bb, Mechanism::Dpo] {
            let r = Sim::new(SimConfig::new(m), &t).run();
            let rep = check_null_recovery(s, &t, &r.schedule, &CrashPlan::Exhaustive);
            assert!(rep.all_recovered(), "{s}/{m}: {rep}");
        }
    }
}

#[test]
fn recovery_holds_in_uncached_mode_too() {
    let t = WorkloadSpec::new(Structure::Bst)
        .initial_size(24)
        .threads(3)
        .ops_per_thread(10)
        .seed(62)
        .build_trace();
    let r = Sim::new(
        SimConfig::new(Mechanism::Lrp).nvm_mode(NvmMode::Uncached),
        &t,
    )
    .run();
    let rep = check_null_recovery(Structure::Bst, &t, &r.schedule, &CrashPlan::Exhaustive);
    assert!(rep.all_recovered(), "{rep}");
}

#[test]
fn history_consistency_holds_at_sampled_crash_points() {
    for s in Structure::ALL {
        let t = WorkloadSpec::new(s)
            .initial_size(20)
            .threads(4)
            .ops_per_thread(12)
            .seed(63)
            .build_trace();
        let r = Sim::new(SimConfig::new(Mechanism::Lrp), &t).run();
        for stamp in CrashPlan::Sampled(24).stamps(&r.schedule) {
            let img = nvm_at(&t, &r.schedule, stamp);
            let rec = validate_image(s, &t.roots, &img)
                .unwrap_or_else(|e| panic!("{s} at {stamp:?}: {e}"));
            history_consistent(s, &t, &rec).unwrap_or_else(|e| panic!("{s} at {stamp:?}: {e}"));
        }
    }
}

#[test]
fn nop_eventually_fails_recovery_somewhere() {
    // Volatile execution: with an L1-thrashing footprint some dirty data
    // reaches NVM through LLC-free eviction paths... in our model NOP
    // persists nothing, so the *final* durable state equals the initial
    // image — recovery trivially succeeds but loses all completed work.
    let t = WorkloadSpec::new(Structure::HashMap)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(12)
        .seed(64)
        .build_trace();
    let r = Sim::new(SimConfig::new(Mechanism::Nop), &t).run();
    // Nothing durable: every completed insert is lost.
    let img = nvm_at(&t, &r.schedule, r.persist_log.last().map(|p| p.stamp));
    let rec = validate_image(Structure::HashMap, &t.roots, &img).unwrap();
    let inserted_ok = t
        .markers
        .iter()
        .filter(|m| matches!(m.op, lrp_model::OpKind::Insert(..)) && m.result == 1)
        .count();
    assert!(inserted_ok > 0, "workload performed inserts");
    let initial = lrp_recovery::history::initial_state(Structure::HashMap, &t).unwrap();
    assert_eq!(
        rec.keys(),
        initial.keys(),
        "volatile execution durably retains only the initial image"
    );
}

#[test]
fn crash_at_final_stamp_matches_full_persist_replay() {
    let t = WorkloadSpec::new(Structure::SkipList)
        .initial_size(16)
        .threads(2)
        .ops_per_thread(10)
        .seed(65)
        .build_trace();
    let r = Sim::new(SimConfig::new(Mechanism::Sb), &t).run();
    let last = r.persist_log.last().map(|p| p.stamp);
    let img = nvm_at(&t, &r.schedule, last);
    // Under SB everything a completed release ordered is durable; the
    // recovered set must be history-consistent with the whole run.
    let rec = validate_image(Structure::SkipList, &t.roots, &img).unwrap();
    history_consistent(Structure::SkipList, &t, &rec).unwrap();
}
