//! Scheduler-behavior tests for the lockstep executor.

use lrp_exec::{run, ExecConfig, GateCtx, PmemCtx, SchedPolicy, ThreadBody};
use lrp_model::{EventKind, OpKind};

/// Under round-robin with identical per-thread programs, events must
/// interleave strictly t0, t1, t2, t0, t1, t2, ...
#[test]
fn round_robin_is_exactly_fair() {
    let cfg = ExecConfig::new(3).policy(SchedPolicy::RoundRobin);
    let t = run(
        &cfg,
        |_| {},
        (0..3u64)
            .map(|i| {
                Box::new(move |c: &mut GateCtx| {
                    for j in 0..5 {
                        c.write(0x1000 * (i + 1) + 8 * j, j);
                    }
                }) as ThreadBody
            })
            .collect(),
    );
    let tids: Vec<u16> = t.events.iter().map(|e| e.tid).collect();
    for (i, &tid) in tids.iter().enumerate() {
        assert_eq!(tid as usize, i % 3, "position {i}");
    }
}

/// Random scheduling eventually lets every thread run (no starvation on
/// finite programs).
#[test]
fn random_scheduling_completes_unequal_programs() {
    let cfg = ExecConfig::new(3).policy(SchedPolicy::Random(3));
    let t = run(
        &cfg,
        |_| {},
        vec![
            Box::new(|c: &mut GateCtx| {
                for j in 0..50 {
                    c.write(0x1000 + 8 * j, j);
                }
            }),
            Box::new(|c: &mut GateCtx| {
                c.write(0x2000, 1);
            }),
            Box::new(|c: &mut GateCtx| {
                for j in 0..10 {
                    c.read(0x3000 + 8 * j);
                }
            }),
        ],
    );
    assert_eq!(t.events.len(), 61);
    for tid in 0..3u16 {
        assert!(
            t.events.iter().any(|e| e.tid == tid),
            "thread {tid} starved"
        );
    }
}

/// A spin-wait on one thread cannot starve the writer it waits for.
#[test]
fn spinning_reader_eventually_observes_writer() {
    for seed in 1..8u64 {
        let cfg = ExecConfig::new(2).policy(SchedPolicy::Random(seed));
        let t = run(
            &cfg,
            |s| s.write(0x100, 0),
            vec![
                Box::new(|c: &mut GateCtx| {
                    c.write(0x200, 42);
                    c.write_rel(0x100, 1);
                }),
                Box::new(|c: &mut GateCtx| while c.read_acq(0x100) == 0 {}),
            ],
        );
        t.validate().unwrap();
    }
}

/// Recorded setup produces Setup markers attributable to the extra
/// thread id.
#[test]
fn recorded_setup_markers() {
    let cfg = ExecConfig::new(1).record_setup(true);
    let t = run(
        &cfg,
        |s| {
            s.op_begin(OpKind::Setup);
            s.write(0x100, 1);
            s.write(0x108, 2);
            s.op_end(1);
        },
        vec![Box::new(|c: &mut GateCtx| {
            c.read(0x100);
        })],
    );
    t.validate().unwrap();
    let setup_markers: Vec<_> = t
        .markers
        .iter()
        .filter(|m| matches!(m.op, OpKind::Setup))
        .collect();
    assert_eq!(setup_markers.len(), 1);
    assert_eq!(setup_markers[0].tid, 1);
    assert_eq!(setup_markers[0].first_event, 0);
    assert_eq!(setup_markers[0].end_event, 2);
}

/// CAS failure values observed through the gate match the memory state.
#[test]
fn cas_observed_values_are_linearized() {
    let cfg = ExecConfig::new(2).policy(SchedPolicy::Random(9));
    let t = run(
        &cfg,
        |s| s.write(0x100, 0),
        (0..2u64)
            .map(|i| {
                Box::new(move |c: &mut GateCtx| {
                    for _ in 0..20 {
                        let (_, seen) = c.cas_annot(
                            0x100,
                            i, // often stale
                            i + 1,
                            lrp_model::Annot::Release,
                        );
                        let _ = seen;
                    }
                }) as ThreadBody
            })
            .collect(),
    );
    t.validate().unwrap(); // validate() re-checks every CAS outcome
    let successes = t
        .events
        .iter()
        .filter(|e| e.kind == EventKind::RmwSuccess)
        .count();
    assert!(successes >= 1);
}

/// The allocator hands out disjoint, word-aligned regions under
/// concurrent allocation.
#[test]
fn concurrent_allocations_never_overlap() {
    let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(11));
    let t = run(
        &cfg,
        |_| {},
        (0..4u64)
            .map(|_| {
                Box::new(move |c: &mut GateCtx| {
                    for j in 0..10 {
                        let p = c.alloc(3);
                        assert_eq!(p % 8, 0);
                        c.write(p, j);
                        c.write(p + 16, j);
                    }
                }) as ThreadBody
            })
            .collect(),
    );
    // Every written address is distinct per (thread, iteration) pair.
    let addrs: std::collections::HashSet<_> = t.events.iter().map(|e| e.addr).collect();
    assert_eq!(addrs.len(), 4 * 10 * 2);
}
