//! Word-granular functional shared memory, stored in 4 KB pages.
//!
//! The scheduler reads and writes this memory on every replayed op, so
//! the old one-`HashMap`-entry-per-word layout (SipHash + a heap node
//! per word) dominated trace-generation time. Words now live in fixed
//! 512-word pages found through an FxHash page directory: a read is one
//! cheap hash plus an array index, and the common case of consecutive
//! structure fields lands in the same page.

use lrp_model::fxmap::FxHashMap;
use lrp_model::{Addr, Trace};

/// Words per page (512 × 8 B = 4 KB).
const PAGE_WORDS: usize = 512;

#[derive(Debug, Clone)]
struct Page {
    words: [u64; PAGE_WORDS],
    /// One bit per word: written at least once. Unwritten words must
    /// keep reading as [`Trace::POISON`] — zero is a legal value.
    written: [u64; PAGE_WORDS / 64],
}

impl Page {
    fn new() -> Box<Page> {
        Box::new(Page {
            words: [0; PAGE_WORDS],
            written: [0; PAGE_WORDS / 64],
        })
    }

    #[inline]
    fn is_written(&self, slot: usize) -> bool {
        self.written[slot / 64] >> (slot % 64) & 1 == 1
    }
}

/// The functional memory owned by the scheduler. Words that were never
/// written read as [`Trace::POISON`], modelling the arbitrary contents of
/// freshly allocated NVM (this is what lets recovery validators detect
/// structurally reachable but never-persisted data).
#[derive(Debug, Clone, Default)]
pub struct SharedMem {
    pages: FxHashMap<u64, Box<Page>>,
    /// Page ids in ascending order, maintained at page-creation time.
    /// `snapshot` runs at every crash cut of the checkers and fuzzers,
    /// so it must not re-collect and re-sort the directory per call —
    /// a page insert (rare, amortized over 512 words) pays instead.
    sorted_ids: Vec<u64>,
    written: usize,
}

impl SharedMem {
    /// An empty memory.
    pub fn new() -> Self {
        SharedMem::default()
    }

    /// A memory pre-loaded from an image.
    pub fn from_image(image: &[(Addr, u64)]) -> Self {
        let mut m = SharedMem::new();
        for &(a, x) in image {
            m.write(a, x);
        }
        m
    }

    #[inline]
    fn split(addr: Addr) -> (u64, usize) {
        let word = addr / 8;
        (
            word / PAGE_WORDS as u64,
            (word % PAGE_WORDS as u64) as usize,
        )
    }

    /// Reads the word at `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        debug_assert_eq!(addr % 8, 0, "unaligned word access at {addr:#x}");
        let (page, slot) = SharedMem::split(addr);
        match self.pages.get(&page) {
            Some(p) if p.is_written(slot) => p.words[slot],
            _ => Trace::POISON,
        }
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: Addr, val: u64) {
        debug_assert_eq!(addr % 8, 0, "unaligned word access at {addr:#x}");
        let (page, slot) = SharedMem::split(addr);
        let p = self.pages.entry(page).or_insert_with(|| {
            let at = self.sorted_ids.binary_search(&page).unwrap_err();
            self.sorted_ids.insert(at, page);
            Page::new()
        });
        if !p.is_written(slot) {
            p.written[slot / 64] |= 1 << (slot % 64);
            self.written += 1;
        }
        p.words[slot] = val;
    }

    /// Compare-and-swap; returns `(succeeded, observed_value)`.
    pub fn cas(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        let cur = self.read(addr);
        if cur == old {
            self.write(addr, new);
            (true, cur)
        } else {
            (false, cur)
        }
    }

    /// Snapshot of all written words, sorted by address.
    pub fn snapshot(&self) -> Vec<(Addr, u64)> {
        let mut v = Vec::with_capacity(self.written);
        for &id in &self.sorted_ids {
            let p = &self.pages[&id];
            for slot in 0..PAGE_WORDS {
                if p.is_written(slot) {
                    v.push(((id * PAGE_WORDS as u64 + slot as u64) * 8, p.words[slot]));
                }
            }
        }
        v
    }

    /// Number of distinct words written.
    pub fn len(&self) -> usize {
        self.written
    }

    /// True if no word has been written.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_are_poison() {
        let m = SharedMem::new();
        assert_eq!(m.read(0x10), Trace::POISON);
    }

    #[test]
    fn write_then_read() {
        let mut m = SharedMem::new();
        m.write(0x10, 99);
        assert_eq!(m.read(0x10), 99);
    }

    #[test]
    fn zero_writes_are_distinct_from_unwritten() {
        let mut m = SharedMem::new();
        m.write(0x10, 0);
        assert_eq!(m.read(0x10), 0, "an explicit zero is not poison");
        assert_eq!(m.read(0x18), Trace::POISON, "same page, unwritten slot");
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = SharedMem::new();
        m.write(0x10, 1);
        assert_eq!(m.cas(0x10, 1, 2), (true, 1));
        assert_eq!(m.cas(0x10, 1, 3), (false, 2));
        assert_eq!(m.read(0x10), 2);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut m = SharedMem::new();
        m.write(0x20, 2);
        m.write(0x10, 1);
        // Cross a page boundary so sorting covers the page directory.
        m.write(PAGE_WORDS as u64 * 8 * 3 + 0x40, 3);
        assert_eq!(
            m.snapshot(),
            vec![(0x10, 1), (0x20, 2), (PAGE_WORDS as u64 * 8 * 3 + 0x40, 3)]
        );
    }

    #[test]
    fn snapshot_order_is_stable_under_unsorted_page_creation() {
        // Touch pages in descending, then interleaved, order; the
        // incrementally maintained directory must still yield one
        // address-sorted snapshot, identical across repeated calls.
        let mut m = SharedMem::new();
        let page = |n: u64| n * PAGE_WORDS as u64 * 8;
        for n in [7, 3, 9, 1, 8, 2] {
            m.write(page(n), n);
        }
        m.write(page(3) + 8, 33); // existing page: no directory change
        let first = m.snapshot();
        let addrs: Vec<u64> = first.iter().map(|&(a, _)| a).collect();
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert_eq!(addrs, sorted);
        assert_eq!(first.len(), 7);
        assert_eq!(m.snapshot(), first);
    }

    #[test]
    fn rewrite_does_not_double_count() {
        let mut m = SharedMem::new();
        m.write(0x10, 1);
        m.write(0x10, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.read(0x10), 2);
    }

    #[test]
    fn from_image_round_trips() {
        let m = SharedMem::from_image(&[(0x10, 5)]);
        assert_eq!(m.read(0x10), 5);
        assert_eq!(m.len(), 1);
    }
}
