//! Word-granular functional shared memory.

use lrp_model::{Addr, Trace};
use std::collections::HashMap;

/// The functional memory owned by the scheduler. Words that were never
/// written read as [`Trace::POISON`], modelling the arbitrary contents of
/// freshly allocated NVM (this is what lets recovery validators detect
/// structurally reachable but never-persisted data).
#[derive(Debug, Clone, Default)]
pub struct SharedMem {
    words: HashMap<Addr, u64>,
}

impl SharedMem {
    /// An empty memory.
    pub fn new() -> Self {
        SharedMem::default()
    }

    /// A memory pre-loaded from an image.
    pub fn from_image(image: &[(Addr, u64)]) -> Self {
        SharedMem {
            words: image.iter().copied().collect(),
        }
    }

    /// Reads the word at `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        debug_assert_eq!(addr % 8, 0, "unaligned word access at {addr:#x}");
        self.words.get(&addr).copied().unwrap_or(Trace::POISON)
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: Addr, val: u64) {
        debug_assert_eq!(addr % 8, 0, "unaligned word access at {addr:#x}");
        self.words.insert(addr, val);
    }

    /// Compare-and-swap; returns `(succeeded, observed_value)`.
    pub fn cas(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        let cur = self.read(addr);
        if cur == old {
            self.write(addr, new);
            (true, cur)
        } else {
            (false, cur)
        }
    }

    /// Snapshot of all written words, sorted by address.
    pub fn snapshot(&self) -> Vec<(Addr, u64)> {
        let mut v: Vec<(Addr, u64)> = self.words.iter().map(|(&a, &x)| (a, x)).collect();
        v.sort_unstable_by_key(|&(a, _)| a);
        v
    }

    /// Number of distinct words written.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no word has been written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_words_are_poison() {
        let m = SharedMem::new();
        assert_eq!(m.read(0x10), Trace::POISON);
    }

    #[test]
    fn write_then_read() {
        let mut m = SharedMem::new();
        m.write(0x10, 99);
        assert_eq!(m.read(0x10), 99);
    }

    #[test]
    fn cas_success_and_failure() {
        let mut m = SharedMem::new();
        m.write(0x10, 1);
        assert_eq!(m.cas(0x10, 1, 2), (true, 1));
        assert_eq!(m.cas(0x10, 1, 3), (false, 2));
        assert_eq!(m.read(0x10), 2);
    }

    #[test]
    fn snapshot_is_sorted() {
        let mut m = SharedMem::new();
        m.write(0x20, 2);
        m.write(0x10, 1);
        assert_eq!(m.snapshot(), vec![(0x10, 1), (0x20, 2)]);
    }

    #[test]
    fn from_image_round_trips() {
        let m = SharedMem::from_image(&[(0x10, 5)]);
        assert_eq!(m.read(0x10), 5);
        assert_eq!(m.len(), 1);
    }
}
