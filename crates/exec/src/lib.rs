//! Deterministic lockstep concurrent executor.
//!
//! The paper's methodology (§6.3) instruments x86 binaries with Pin and
//! feeds the resulting memory-event stream into a timing simulator. This
//! crate plays Pin's role: data-structure code written against the
//! [`PmemCtx`] trait runs on real OS threads, but every memory access is
//! *gated* by a central scheduler that owns the functional memory, grants
//! one access at a time, and records the global interleaving as an
//! [`lrp_model::Trace`]. Because the scheduler's choices are a pure
//! function of the seed and the recorded history, executions are fully
//! deterministic and reproducible.
//!
//! # Example
//!
//! ```
//! use lrp_exec::{ExecConfig, PmemCtx, SchedPolicy, run};
//!
//! let cfg = ExecConfig::new(2).policy(SchedPolicy::Random(42));
//! let flag = 0x1000;
//! let trace = run(
//!     &cfg,
//!     |setup| setup.write(flag, 0),
//!     vec![
//!         Box::new(move |ctx| {
//!             ctx.write(0x2000, 7);
//!             ctx.write_rel(flag, 1);
//!         }),
//!         Box::new(move |ctx| {
//!             while ctx.read_acq(flag) == 0 {}
//!             ctx.read(0x2000);
//!         }),
//!     ],
//! );
//! trace.validate().unwrap();
//! ```

pub mod ctx;
pub mod executor;
pub mod mem;
pub mod rng;

pub use ctx::{DirectCtx, PmemCtx};
pub use executor::{run, ExecConfig, GateCtx, SchedPolicy, ThreadBody};
pub use mem::SharedMem;
pub use rng::Xorshift64;
