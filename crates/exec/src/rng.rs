//! A tiny deterministic PRNG used wherever reproducibility matters more
//! than statistical quality (scheduler choices, skip-list level draws).

/// Xorshift64* generator. Deterministic, `Copy`-cheap, and independent of
/// the `rand` crate so trace generation can never drift across `rand`
/// versions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift64 {
    state: u64,
}

impl Xorshift64 {
    /// Creates a generator from a seed (zero is mapped to a fixed
    /// non-zero constant, since an all-zero state would be absorbing).
    pub fn new(seed: u64) -> Self {
        Xorshift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); slight modulo bias is
        // irrelevant for scheduling and level draws.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Xorshift64::new(7);
        let mut b = Xorshift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = Xorshift64::new(0);
        assert_ne!(a.next_u64(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Xorshift64::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = Xorshift64::new(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
