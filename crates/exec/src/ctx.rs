//! The persistent-memory access trait ([`PmemCtx`]) that data-structure
//! code is written against, the per-thread bump allocator, the trace
//! [`Recorder`], and the immediate (single-threaded) [`DirectCtx`].

use crate::mem::SharedMem;
use crate::rng::Xorshift64;
use lrp_model::{
    Addr, Annot, Arena, Event, EventId, EventKind, FxHashMap, OpKind, OpMarker, ThreadId,
};

/// Base byte address of the simulated heap.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Bytes reserved per arena. Each thread allocates from its own arena
/// (as a scalable NVM allocator would), so concurrent allocations never
/// share cache lines across threads; nodes within one thread's arena pack
/// at word granularity, preserving the intra-thread line-sharing that the
/// buffered-barrier baseline's conflicts depend on (§2.2.1).
pub const ARENA_BYTES: Addr = 1 << 26;

/// Per-thread bump allocators.
#[derive(Debug, Clone)]
pub struct Arenas {
    next: Vec<Addr>,
}

impl Arenas {
    /// Creates `n` arenas.
    pub fn new(n: usize) -> Self {
        Arenas {
            next: (0..n as Addr)
                .map(|i| HEAP_BASE + i * ARENA_BYTES)
                .collect(),
        }
    }

    /// Allocates `words` 8-byte words from arena `idx`.
    pub fn alloc(&mut self, idx: usize, words: usize) -> Addr {
        let base = self.next[idx];
        let bytes = words as Addr * 8;
        let limit = HEAP_BASE + (idx as Addr + 1) * ARENA_BYTES;
        assert!(
            base + bytes <= limit,
            "arena {idx} exhausted ({} bytes in use)",
            base - (HEAP_BASE + idx as Addr * ARENA_BYTES)
        );
        self.next[idx] = base + bytes;
        base
    }

    /// `[lo, hi)` byte range actually used across all arenas.
    pub fn used_range(&self) -> (Addr, Addr) {
        let hi = self
            .next
            .iter()
            .enumerate()
            .filter(|&(i, &n)| n > HEAP_BASE + i as Addr * ARENA_BYTES)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(HEAP_BASE);
        (HEAP_BASE, hi)
    }
}

/// The access interface data structures are written against.
///
/// Mirrors the ISA-level model of the paper: word-granular loads, stores,
/// and CASes, each carrying a consistency [`Annot`]. Implementations gate
/// and record accesses ([`crate::GateCtx`]) or apply them immediately
/// ([`DirectCtx`]).
pub trait PmemCtx {
    /// The logical thread id of this context.
    fn tid(&self) -> ThreadId;

    /// Load with explicit annotation.
    fn read_annot(&mut self, addr: Addr, annot: Annot) -> u64;
    /// Store with explicit annotation.
    fn write_annot(&mut self, addr: Addr, val: u64, annot: Annot);
    /// Compare-and-swap with explicit annotation; returns
    /// `(succeeded, observed)`.
    fn cas_annot(&mut self, addr: Addr, old: u64, new: u64, annot: Annot) -> (bool, u64);
    /// Allocates `words` contiguous words and returns the base address.
    fn alloc(&mut self, words: usize) -> Addr;
    /// Deterministic per-thread random value (e.g. skip-list levels).
    fn rand(&mut self) -> u64;
    /// Marks the start of a data-structure operation.
    fn op_begin(&mut self, op: OpKind);
    /// Marks the end of the current operation with its result.
    fn op_end(&mut self, result: u64);
    /// Sets the `structure/operation` [`OpSite`](lrp_model::Trace::site_names)
    /// prefix for subsequent events on this thread (clears any phase).
    /// Purely observational; contexts without a recorder ignore it.
    fn site_op(&mut self, _label: &str) {}
    /// Sets the phase suffix of the current site, labelling subsequent
    /// events `prefix/phase`. Purely observational.
    fn site_phase(&mut self, _phase: &str) {}

    /// Plain load.
    fn read(&mut self, addr: Addr) -> u64 {
        self.read_annot(addr, Annot::Plain)
    }
    /// Acquire load.
    fn read_acq(&mut self, addr: Addr) -> u64 {
        self.read_annot(addr, Annot::Acquire)
    }
    /// Plain store.
    fn write(&mut self, addr: Addr, val: u64) {
        self.write_annot(addr, val, Annot::Plain)
    }
    /// Release store.
    fn write_rel(&mut self, addr: Addr, val: u64) {
        self.write_annot(addr, val, Annot::Release)
    }
    /// CAS with acquire-release semantics (the common LFD linking CAS).
    fn cas_acq_rel(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        self.cas_annot(addr, old, new, Annot::AcqRel)
    }
    /// CAS with release semantics.
    fn cas_rel(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        self.cas_annot(addr, old, new, Annot::Release)
    }
}

/// Sentinel for "composed site id not yet computed" in [`TidSite`].
const SITE_UNCACHED: u16 = u16::MAX;

/// Per-thread current [`OpSite`](lrp_model::Trace::site_names) label,
/// held as ids into the recorder's raw-label table: `prefix`/`phase`
/// are `label id + 1` (0 = unset), `cached` is the composed site id or
/// [`SITE_UNCACHED`]. No strings — a site change is two integer
/// stores, and stamping an event is one branch plus an arena push.
#[derive(Debug, Default, Clone, Copy)]
struct TidSite {
    prefix: u16,
    phase: u16,
    cached: u16,
}

/// Records events and operation markers while an execution runs.
///
/// Storage is allocation-free per event in steady state: events and
/// site stamps go to chunked [`Arena`]s (one allocation per 4096
/// entries, no realloc copies), per-thread state lives in
/// tid-indexed vectors, the reads-from index is an `FxHashMap`, and
/// site labels are interned once — repeating a label or phase costs
/// a hash of its bytes and two integer stores, never an allocation.
#[derive(Debug, Default)]
pub struct Recorder {
    /// Recorded events in interleaving order.
    pub events: Arena<Event>,
    /// Completed operation markers.
    pub markers: Vec<OpMarker>,
    /// Interned site labels; index 0 is `"unknown"` once any label exists.
    pub site_names: Vec<String>,
    /// Per-event site index, parallel to [`Recorder::events`].
    pub event_sites: Arena<u16>,
    open: Vec<Option<(OpKind, EventId)>>,
    last_writer: FxHashMap<Addr, EventId>,
    site_ids: FxHashMap<String, u16>,
    /// Raw labels (op prefixes and phase suffixes) as registered.
    labels: Vec<String>,
    label_ids: FxHashMap<String, u16>,
    /// `(prefix label + 1, phase label + 1)` → composed site id.
    composed: FxHashMap<(u16, u16), u16>,
    sites: Vec<TidSite>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    fn intern(&mut self, label: &str) -> u16 {
        if self.site_names.is_empty() {
            self.site_names.push("unknown".to_string());
            self.site_ids.insert("unknown".to_string(), 0);
        }
        if let Some(&id) = self.site_ids.get(label) {
            return id;
        }
        let id = u16::try_from(self.site_names.len()).unwrap_or(0);
        if id != 0 {
            self.site_names.push(label.to_string());
            self.site_ids.insert(label.to_string(), id);
        }
        id
    }

    /// Registers a raw label (op prefix or phase suffix) and returns
    /// its id for the `_id` site setters. Idempotent; allocates only
    /// the first time a label is seen.
    pub fn register_label(&mut self, label: &str) -> u16 {
        if let Some(&id) = self.label_ids.get(label) {
            return id;
        }
        let id = u16::try_from(self.labels.len()).expect("more than 65535 distinct site labels");
        self.labels.push(label.to_string());
        self.label_ids.insert(label.to_string(), id);
        id
    }

    #[inline]
    fn site_mut(&mut self, tid: ThreadId) -> &mut TidSite {
        let t = tid as usize;
        if t >= self.sites.len() {
            self.sites.resize_with(t + 1, TidSite::default);
        }
        &mut self.sites[t]
    }

    /// Sets `tid`'s site prefix (`structure/operation`), clearing the phase.
    pub fn site_op(&mut self, tid: ThreadId, label: &str) {
        let id = self.register_label(label);
        self.site_op_id(tid, id);
    }

    /// Sets `tid`'s phase suffix within the current site prefix.
    pub fn site_phase(&mut self, tid: ThreadId, phase: &str) {
        let id = self.register_label(phase);
        self.site_phase_id(tid, id);
    }

    /// [`Recorder::site_op`] by pre-registered label id.
    pub fn site_op_id(&mut self, tid: ThreadId, label: u16) {
        let s = self.site_mut(tid);
        s.prefix = label + 1;
        s.phase = 0;
        s.cached = SITE_UNCACHED;
    }

    /// [`Recorder::site_phase`] by pre-registered label id.
    pub fn site_phase_id(&mut self, tid: ThreadId, phase: u16) {
        let s = self.site_mut(tid);
        s.phase = phase + 1;
        s.cached = SITE_UNCACHED;
    }

    /// Composes and interns the `prefix[/phase]` site name for a
    /// `(prefix, phase)` pair (ids offset by 1, 0 = unset). Interning
    /// stays lazy — it happens at the first event *stamped* under the
    /// label, not when the label is set — so `site_names` comes out in
    /// the exact order the eager string-based recorder produced.
    fn compose(&mut self, prefix: u16, phase: u16) -> u16 {
        if prefix == 0 {
            return if self.site_names.is_empty() {
                0
            } else {
                self.intern("unknown")
            };
        }
        if let Some(&id) = self.composed.get(&(prefix, phase)) {
            return id;
        }
        let label = if phase == 0 {
            self.labels[prefix as usize - 1].clone()
        } else {
            format!(
                "{}/{}",
                self.labels[prefix as usize - 1],
                self.labels[phase as usize - 1]
            )
        };
        let id = self.intern(&label);
        self.composed.insert((prefix, phase), id);
        id
    }

    /// The interned site id for `tid`'s current label, stamped per event.
    #[inline]
    fn stamp(&mut self, tid: ThreadId) {
        let cached = self.sites.get(tid as usize).map_or(0, |s| s.cached);
        let id = if cached == SITE_UNCACHED {
            let s = self.sites[tid as usize];
            let id = self.compose(s.prefix, s.phase);
            self.sites[tid as usize].cached = id;
            id
        } else {
            cached
        };
        self.event_sites.push(id);
    }

    /// Records a load.
    pub fn read(&mut self, tid: ThreadId, addr: Addr, annot: Annot, val: u64) -> EventId {
        debug_assert!(!annot.is_release(), "a load cannot be a release");
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: EventKind::Read,
            annot,
            addr,
            rval: val,
            wval: 0,
            rf: self.last_writer.get(&addr).copied(),
        });
        self.stamp(tid);
        id
    }

    /// Records a store.
    pub fn write(&mut self, tid: ThreadId, addr: Addr, annot: Annot, val: u64) -> EventId {
        debug_assert!(!annot.is_acquire(), "a store cannot be an acquire");
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: EventKind::Write,
            annot,
            addr,
            rval: 0,
            wval: val,
            rf: None,
        });
        self.last_writer.insert(addr, id);
        self.stamp(tid);
        id
    }

    /// Records a CAS.
    pub fn cas(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        annot: Annot,
        ok: bool,
        observed: u64,
        new: u64,
    ) -> EventId {
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: if ok {
                EventKind::RmwSuccess
            } else {
                EventKind::RmwFail
            },
            annot,
            addr,
            rval: observed,
            wval: if ok { new } else { 0 },
            rf: self.last_writer.get(&addr).copied(),
        });
        if ok {
            self.last_writer.insert(addr, id);
        }
        self.stamp(tid);
        id
    }

    /// Opens an operation marker for `tid`.
    pub fn begin(&mut self, tid: ThreadId, op: OpKind) {
        let at = self.events.len() as EventId;
        let t = tid as usize;
        if t >= self.open.len() {
            self.open.resize(t + 1, None);
        }
        self.open[t] = Some((op, at));
    }

    /// Closes the open marker for `tid`.
    pub fn end(&mut self, tid: ThreadId, result: u64) {
        if let Some((op, first)) = self.open.get_mut(tid as usize).and_then(Option::take) {
            self.markers.push(OpMarker {
                tid,
                op,
                first_event: first,
                end_event: self.events.len() as EventId,
                result,
            });
        }
    }

    /// Consumes the recorder into the flat trace pieces: events, op
    /// markers, interned site names, per-event site ids. The arenas
    /// flatten with one exact allocation each.
    pub fn into_trace_parts(self) -> (Vec<Event>, Vec<OpMarker>, Vec<String>, Vec<u16>) {
        (
            self.events.into_vec(),
            self.markers,
            self.site_names,
            self.event_sites.into_vec(),
        )
    }

    /// Consumes the recorder, returning just the recorded events.
    pub fn into_events(self) -> Vec<Event> {
        self.events.into_vec()
    }
}

/// An immediate, single-threaded context: accesses apply directly to a
/// [`SharedMem`] with no gating. Used for pre-population (§6.1 collects
/// statistics only after the structure reaches its initial size) and for
/// fast sequential tests of data-structure logic.
#[derive(Debug)]
pub struct DirectCtx {
    /// The functional memory.
    pub mem: SharedMem,
    /// Per-thread allocators (workers `0..n`, setup uses arena `n`).
    pub arenas: Arenas,
    /// Named root addresses registered by setup code.
    pub roots: Vec<(String, Addr)>,
    /// Optional recorder (when setup itself must appear in the trace).
    pub rec: Option<Recorder>,
    tid: ThreadId,
    rng: Xorshift64,
}

impl DirectCtx {
    /// A context for `workers` worker threads; the context itself
    /// allocates from the extra arena `workers` and acts as thread id
    /// `workers`.
    pub fn new(workers: ThreadId, seed: u64) -> Self {
        DirectCtx {
            mem: SharedMem::new(),
            arenas: Arenas::new(workers as usize + 1),
            roots: Vec::new(),
            rec: None,
            tid: workers,
            rng: Xorshift64::new(seed ^ 0xC0FF_EE00),
        }
    }

    /// Registers a named root address (e.g. a list head) for recovery.
    pub fn set_root(&mut self, name: &str, addr: Addr) {
        self.roots.push((name.to_string(), addr));
    }

    /// Starts recording events (used when setup must be traced).
    pub fn start_recording(&mut self) {
        self.rec = Some(Recorder::new());
    }
}

impl PmemCtx for DirectCtx {
    fn tid(&self) -> ThreadId {
        self.tid
    }

    fn read_annot(&mut self, addr: Addr, annot: Annot) -> u64 {
        let v = self.mem.read(addr);
        if let Some(rec) = &mut self.rec {
            rec.read(self.tid, addr, annot, v);
        }
        v
    }

    fn write_annot(&mut self, addr: Addr, val: u64, annot: Annot) {
        self.mem.write(addr, val);
        if let Some(rec) = &mut self.rec {
            rec.write(self.tid, addr, annot, val);
        }
    }

    fn cas_annot(&mut self, addr: Addr, old: u64, new: u64, annot: Annot) -> (bool, u64) {
        let (ok, observed) = self.mem.cas(addr, old, new);
        if let Some(rec) = &mut self.rec {
            rec.cas(self.tid, addr, annot, ok, observed, new);
        }
        (ok, observed)
    }

    fn alloc(&mut self, words: usize) -> Addr {
        let idx = self.tid as usize;
        self.arenas.alloc(idx, words)
    }

    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn op_begin(&mut self, op: OpKind) {
        if let Some(rec) = &mut self.rec {
            rec.begin(self.tid, op);
        }
    }

    fn op_end(&mut self, result: u64) {
        if let Some(rec) = &mut self.rec {
            rec.end(self.tid, result);
        }
    }

    fn site_op(&mut self, label: &str) {
        if let Some(rec) = &mut self.rec {
            rec.site_op(self.tid, label);
        }
    }

    fn site_phase(&mut self, phase: &str) {
        if let Some(rec) = &mut self.rec {
            rec.site_phase(self.tid, phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_are_disjoint() {
        let mut a = Arenas::new(3);
        let x = a.alloc(0, 4);
        let y = a.alloc(1, 4);
        let x2 = a.alloc(0, 1);
        assert_eq!(x, HEAP_BASE);
        assert_eq!(y, HEAP_BASE + ARENA_BYTES);
        assert_eq!(x2, x + 32);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_overflow_panics() {
        let mut a = Arenas::new(1);
        a.alloc(0, (ARENA_BYTES / 8) as usize + 1);
    }

    #[test]
    fn used_range_tracks_high_water() {
        let mut a = Arenas::new(2);
        assert_eq!(a.used_range(), (HEAP_BASE, HEAP_BASE));
        a.alloc(1, 2);
        assert_eq!(a.used_range(), (HEAP_BASE, HEAP_BASE + ARENA_BYTES + 16));
    }

    #[test]
    fn direct_ctx_reads_writes_cas() {
        let mut c = DirectCtx::new(2, 1);
        let p = c.alloc(2);
        c.write(p, 10);
        assert_eq!(c.read(p), 10);
        assert_eq!(c.cas_acq_rel(p, 10, 11), (true, 10));
        assert_eq!(c.cas_acq_rel(p, 10, 12), (false, 11));
    }

    #[test]
    fn direct_ctx_records_when_asked() {
        let mut c = DirectCtx::new(1, 1);
        c.start_recording();
        c.op_begin(OpKind::Setup);
        c.write(0x1000, 1);
        c.read(0x1000);
        c.op_end(1);
        let rec = c.rec.take().unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[1].rf, Some(0));
        assert_eq!(rec.markers.len(), 1);
        assert_eq!(rec.markers[0].op, OpKind::Setup);
    }

    #[test]
    fn recorder_tracks_rf_through_cas() {
        let mut r = Recorder::new();
        let w = r.write(0, 0x8, Annot::Plain, 5);
        let c = r.cas(0, 0x8, Annot::AcqRel, true, 5, 6);
        let rd = r.read(0, 0x8, Annot::Plain, 6);
        assert_eq!(r.events[c as usize].rf, Some(w));
        assert_eq!(r.events[rd as usize].rf, Some(c));
    }

    #[test]
    fn failed_cas_does_not_become_writer() {
        let mut r = Recorder::new();
        let w = r.write(0, 0x8, Annot::Plain, 5);
        r.cas(0, 0x8, Annot::AcqRel, false, 5, 6);
        let rd = r.read(0, 0x8, Annot::Plain, 5);
        assert_eq!(r.events[rd as usize].rf, Some(w));
    }
}
