//! The persistent-memory access trait ([`PmemCtx`]) that data-structure
//! code is written against, the per-thread bump allocator, the trace
//! [`Recorder`], and the immediate (single-threaded) [`DirectCtx`].

use crate::mem::SharedMem;
use crate::rng::Xorshift64;
use lrp_model::{Addr, Annot, Event, EventId, EventKind, OpKind, OpMarker, ThreadId};
use std::collections::HashMap;

/// Base byte address of the simulated heap.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Bytes reserved per arena. Each thread allocates from its own arena
/// (as a scalable NVM allocator would), so concurrent allocations never
/// share cache lines across threads; nodes within one thread's arena pack
/// at word granularity, preserving the intra-thread line-sharing that the
/// buffered-barrier baseline's conflicts depend on (§2.2.1).
pub const ARENA_BYTES: Addr = 1 << 26;

/// Per-thread bump allocators.
#[derive(Debug, Clone)]
pub struct Arenas {
    next: Vec<Addr>,
}

impl Arenas {
    /// Creates `n` arenas.
    pub fn new(n: usize) -> Self {
        Arenas {
            next: (0..n as Addr)
                .map(|i| HEAP_BASE + i * ARENA_BYTES)
                .collect(),
        }
    }

    /// Allocates `words` 8-byte words from arena `idx`.
    pub fn alloc(&mut self, idx: usize, words: usize) -> Addr {
        let base = self.next[idx];
        let bytes = words as Addr * 8;
        let limit = HEAP_BASE + (idx as Addr + 1) * ARENA_BYTES;
        assert!(
            base + bytes <= limit,
            "arena {idx} exhausted ({} bytes in use)",
            base - (HEAP_BASE + idx as Addr * ARENA_BYTES)
        );
        self.next[idx] = base + bytes;
        base
    }

    /// `[lo, hi)` byte range actually used across all arenas.
    pub fn used_range(&self) -> (Addr, Addr) {
        let hi = self
            .next
            .iter()
            .enumerate()
            .filter(|&(i, &n)| n > HEAP_BASE + i as Addr * ARENA_BYTES)
            .map(|(_, &n)| n)
            .max()
            .unwrap_or(HEAP_BASE);
        (HEAP_BASE, hi)
    }
}

/// The access interface data structures are written against.
///
/// Mirrors the ISA-level model of the paper: word-granular loads, stores,
/// and CASes, each carrying a consistency [`Annot`]. Implementations gate
/// and record accesses ([`crate::GateCtx`]) or apply them immediately
/// ([`DirectCtx`]).
pub trait PmemCtx {
    /// The logical thread id of this context.
    fn tid(&self) -> ThreadId;

    /// Load with explicit annotation.
    fn read_annot(&mut self, addr: Addr, annot: Annot) -> u64;
    /// Store with explicit annotation.
    fn write_annot(&mut self, addr: Addr, val: u64, annot: Annot);
    /// Compare-and-swap with explicit annotation; returns
    /// `(succeeded, observed)`.
    fn cas_annot(&mut self, addr: Addr, old: u64, new: u64, annot: Annot) -> (bool, u64);
    /// Allocates `words` contiguous words and returns the base address.
    fn alloc(&mut self, words: usize) -> Addr;
    /// Deterministic per-thread random value (e.g. skip-list levels).
    fn rand(&mut self) -> u64;
    /// Marks the start of a data-structure operation.
    fn op_begin(&mut self, op: OpKind);
    /// Marks the end of the current operation with its result.
    fn op_end(&mut self, result: u64);
    /// Sets the `structure/operation` [`OpSite`](lrp_model::Trace::site_names)
    /// prefix for subsequent events on this thread (clears any phase).
    /// Purely observational; contexts without a recorder ignore it.
    fn site_op(&mut self, _label: &str) {}
    /// Sets the phase suffix of the current site, labelling subsequent
    /// events `prefix/phase`. Purely observational.
    fn site_phase(&mut self, _phase: &str) {}

    /// Plain load.
    fn read(&mut self, addr: Addr) -> u64 {
        self.read_annot(addr, Annot::Plain)
    }
    /// Acquire load.
    fn read_acq(&mut self, addr: Addr) -> u64 {
        self.read_annot(addr, Annot::Acquire)
    }
    /// Plain store.
    fn write(&mut self, addr: Addr, val: u64) {
        self.write_annot(addr, val, Annot::Plain)
    }
    /// Release store.
    fn write_rel(&mut self, addr: Addr, val: u64) {
        self.write_annot(addr, val, Annot::Release)
    }
    /// CAS with acquire-release semantics (the common LFD linking CAS).
    fn cas_acq_rel(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        self.cas_annot(addr, old, new, Annot::AcqRel)
    }
    /// CAS with release semantics.
    fn cas_rel(&mut self, addr: Addr, old: u64, new: u64) -> (bool, u64) {
        self.cas_annot(addr, old, new, Annot::Release)
    }
}

/// Per-thread current [`OpSite`](lrp_model::Trace::site_names) label.
#[derive(Debug, Default, Clone)]
struct SiteState {
    prefix: String,
    phase: String,
    cached: Option<u16>,
}

/// Records events and operation markers while an execution runs.
#[derive(Debug, Default)]
pub struct Recorder {
    /// Recorded events in interleaving order.
    pub events: Vec<Event>,
    /// Completed operation markers.
    pub markers: Vec<OpMarker>,
    /// Interned site labels; index 0 is `"unknown"` once any label exists.
    pub site_names: Vec<String>,
    /// Per-event site index, parallel to [`Recorder::events`].
    pub event_sites: Vec<u16>,
    open: HashMap<ThreadId, (OpKind, EventId)>,
    last_writer: HashMap<Addr, EventId>,
    site_ids: HashMap<String, u16>,
    sites: HashMap<ThreadId, SiteState>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    fn intern(&mut self, label: &str) -> u16 {
        if self.site_names.is_empty() {
            self.site_names.push("unknown".to_string());
            self.site_ids.insert("unknown".to_string(), 0);
        }
        if let Some(&id) = self.site_ids.get(label) {
            return id;
        }
        let id = u16::try_from(self.site_names.len()).unwrap_or(0);
        if id != 0 {
            self.site_names.push(label.to_string());
            self.site_ids.insert(label.to_string(), id);
        }
        id
    }

    /// Sets `tid`'s site prefix (`structure/operation`), clearing the phase.
    pub fn site_op(&mut self, tid: ThreadId, label: &str) {
        let s = self.sites.entry(tid).or_default();
        s.prefix = label.to_string();
        s.phase.clear();
        s.cached = None;
    }

    /// Sets `tid`'s phase suffix within the current site prefix.
    pub fn site_phase(&mut self, tid: ThreadId, phase: &str) {
        let s = self.sites.entry(tid).or_default();
        s.phase = phase.to_string();
        s.cached = None;
    }

    /// The interned site id for `tid`'s current label, stamped per event.
    fn stamp(&mut self, tid: ThreadId) {
        let cached = self.sites.get(&tid).and_then(|s| s.cached);
        let id = match cached {
            Some(id) => id,
            None => {
                let label = match self.sites.get(&tid) {
                    None => String::new(),
                    Some(s) if s.prefix.is_empty() => String::new(),
                    Some(s) if s.phase.is_empty() => s.prefix.clone(),
                    Some(s) => format!("{}/{}", s.prefix, s.phase),
                };
                let id = if label.is_empty() {
                    if self.site_names.is_empty() {
                        0
                    } else {
                        self.intern("unknown")
                    }
                } else {
                    self.intern(&label)
                };
                if let Some(s) = self.sites.get_mut(&tid) {
                    s.cached = Some(id);
                }
                id
            }
        };
        self.event_sites.push(id);
    }

    /// Records a load.
    pub fn read(&mut self, tid: ThreadId, addr: Addr, annot: Annot, val: u64) -> EventId {
        debug_assert!(!annot.is_release(), "a load cannot be a release");
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: EventKind::Read,
            annot,
            addr,
            rval: val,
            wval: 0,
            rf: self.last_writer.get(&addr).copied(),
        });
        self.stamp(tid);
        id
    }

    /// Records a store.
    pub fn write(&mut self, tid: ThreadId, addr: Addr, annot: Annot, val: u64) -> EventId {
        debug_assert!(!annot.is_acquire(), "a store cannot be an acquire");
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: EventKind::Write,
            annot,
            addr,
            rval: 0,
            wval: val,
            rf: None,
        });
        self.last_writer.insert(addr, id);
        self.stamp(tid);
        id
    }

    /// Records a CAS.
    pub fn cas(
        &mut self,
        tid: ThreadId,
        addr: Addr,
        annot: Annot,
        ok: bool,
        observed: u64,
        new: u64,
    ) -> EventId {
        let id = self.events.len() as EventId;
        self.events.push(Event {
            id,
            tid,
            kind: if ok {
                EventKind::RmwSuccess
            } else {
                EventKind::RmwFail
            },
            annot,
            addr,
            rval: observed,
            wval: if ok { new } else { 0 },
            rf: self.last_writer.get(&addr).copied(),
        });
        if ok {
            self.last_writer.insert(addr, id);
        }
        self.stamp(tid);
        id
    }

    /// Opens an operation marker for `tid`.
    pub fn begin(&mut self, tid: ThreadId, op: OpKind) {
        let at = self.events.len() as EventId;
        self.open.insert(tid, (op, at));
    }

    /// Closes the open marker for `tid`.
    pub fn end(&mut self, tid: ThreadId, result: u64) {
        if let Some((op, first)) = self.open.remove(&tid) {
            self.markers.push(OpMarker {
                tid,
                op,
                first_event: first,
                end_event: self.events.len() as EventId,
                result,
            });
        }
    }
}

/// An immediate, single-threaded context: accesses apply directly to a
/// [`SharedMem`] with no gating. Used for pre-population (§6.1 collects
/// statistics only after the structure reaches its initial size) and for
/// fast sequential tests of data-structure logic.
#[derive(Debug)]
pub struct DirectCtx {
    /// The functional memory.
    pub mem: SharedMem,
    /// Per-thread allocators (workers `0..n`, setup uses arena `n`).
    pub arenas: Arenas,
    /// Named root addresses registered by setup code.
    pub roots: Vec<(String, Addr)>,
    /// Optional recorder (when setup itself must appear in the trace).
    pub rec: Option<Recorder>,
    tid: ThreadId,
    rng: Xorshift64,
}

impl DirectCtx {
    /// A context for `workers` worker threads; the context itself
    /// allocates from the extra arena `workers` and acts as thread id
    /// `workers`.
    pub fn new(workers: ThreadId, seed: u64) -> Self {
        DirectCtx {
            mem: SharedMem::new(),
            arenas: Arenas::new(workers as usize + 1),
            roots: Vec::new(),
            rec: None,
            tid: workers,
            rng: Xorshift64::new(seed ^ 0xC0FF_EE00),
        }
    }

    /// Registers a named root address (e.g. a list head) for recovery.
    pub fn set_root(&mut self, name: &str, addr: Addr) {
        self.roots.push((name.to_string(), addr));
    }

    /// Starts recording events (used when setup must be traced).
    pub fn start_recording(&mut self) {
        self.rec = Some(Recorder::new());
    }
}

impl PmemCtx for DirectCtx {
    fn tid(&self) -> ThreadId {
        self.tid
    }

    fn read_annot(&mut self, addr: Addr, annot: Annot) -> u64 {
        let v = self.mem.read(addr);
        if let Some(rec) = &mut self.rec {
            rec.read(self.tid, addr, annot, v);
        }
        v
    }

    fn write_annot(&mut self, addr: Addr, val: u64, annot: Annot) {
        self.mem.write(addr, val);
        if let Some(rec) = &mut self.rec {
            rec.write(self.tid, addr, annot, val);
        }
    }

    fn cas_annot(&mut self, addr: Addr, old: u64, new: u64, annot: Annot) -> (bool, u64) {
        let (ok, observed) = self.mem.cas(addr, old, new);
        if let Some(rec) = &mut self.rec {
            rec.cas(self.tid, addr, annot, ok, observed, new);
        }
        (ok, observed)
    }

    fn alloc(&mut self, words: usize) -> Addr {
        let idx = self.tid as usize;
        self.arenas.alloc(idx, words)
    }

    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn op_begin(&mut self, op: OpKind) {
        if let Some(rec) = &mut self.rec {
            rec.begin(self.tid, op);
        }
    }

    fn op_end(&mut self, result: u64) {
        if let Some(rec) = &mut self.rec {
            rec.end(self.tid, result);
        }
    }

    fn site_op(&mut self, label: &str) {
        if let Some(rec) = &mut self.rec {
            rec.site_op(self.tid, label);
        }
    }

    fn site_phase(&mut self, phase: &str) {
        if let Some(rec) = &mut self.rec {
            rec.site_phase(self.tid, phase);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_are_disjoint() {
        let mut a = Arenas::new(3);
        let x = a.alloc(0, 4);
        let y = a.alloc(1, 4);
        let x2 = a.alloc(0, 1);
        assert_eq!(x, HEAP_BASE);
        assert_eq!(y, HEAP_BASE + ARENA_BYTES);
        assert_eq!(x2, x + 32);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn arena_overflow_panics() {
        let mut a = Arenas::new(1);
        a.alloc(0, (ARENA_BYTES / 8) as usize + 1);
    }

    #[test]
    fn used_range_tracks_high_water() {
        let mut a = Arenas::new(2);
        assert_eq!(a.used_range(), (HEAP_BASE, HEAP_BASE));
        a.alloc(1, 2);
        assert_eq!(a.used_range(), (HEAP_BASE, HEAP_BASE + ARENA_BYTES + 16));
    }

    #[test]
    fn direct_ctx_reads_writes_cas() {
        let mut c = DirectCtx::new(2, 1);
        let p = c.alloc(2);
        c.write(p, 10);
        assert_eq!(c.read(p), 10);
        assert_eq!(c.cas_acq_rel(p, 10, 11), (true, 10));
        assert_eq!(c.cas_acq_rel(p, 10, 12), (false, 11));
    }

    #[test]
    fn direct_ctx_records_when_asked() {
        let mut c = DirectCtx::new(1, 1);
        c.start_recording();
        c.op_begin(OpKind::Setup);
        c.write(0x1000, 1);
        c.read(0x1000);
        c.op_end(1);
        let rec = c.rec.take().unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[1].rf, Some(0));
        assert_eq!(rec.markers.len(), 1);
        assert_eq!(rec.markers[0].op, OpKind::Setup);
    }

    #[test]
    fn recorder_tracks_rf_through_cas() {
        let mut r = Recorder::new();
        let w = r.write(0, 0x8, Annot::Plain, 5);
        let c = r.cas(0, 0x8, Annot::AcqRel, true, 5, 6);
        let rd = r.read(0, 0x8, Annot::Plain, 6);
        assert_eq!(r.events[c as usize].rf, Some(w));
        assert_eq!(r.events[rd as usize].rf, Some(c));
    }

    #[test]
    fn failed_cas_does_not_become_writer() {
        let mut r = Recorder::new();
        let w = r.write(0, 0x8, Annot::Plain, 5);
        r.cas(0, 0x8, Annot::AcqRel, false, 5, 6);
        let rd = r.read(0, 0x8, Annot::Plain, 5);
        assert_eq!(r.events[rd as usize].rf, Some(w));
    }
}
