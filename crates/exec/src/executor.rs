//! The lockstep scheduler and the gated thread context.
//!
//! Worker bodies run on real OS threads but park before every memory
//! access; the scheduler (running on the caller's thread) gathers one
//! pending access per live worker, picks the next to perform according to
//! the policy, applies it to the functional memory, records the event,
//! and wakes the worker with the result. Scheduling decisions depend only
//! on the seed and recorded history, so the produced trace is a
//! deterministic function of `(config, setup, bodies)`.

use crate::ctx::{Arenas, DirectCtx, PmemCtx, Recorder};
use crate::mem::SharedMem;
use crate::rng::Xorshift64;
use lrp_model::{Addr, Annot, FxHashMap, OpKind, ThreadId, Trace};
use std::sync::mpsc::{channel, Receiver, Sender};

/// How the scheduler chooses among parked threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Rotate fairly over runnable threads.
    RoundRobin,
    /// Uniform seeded choice among runnable threads — explores more
    /// interleavings; the default for workload generation.
    Random(u64),
}

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Number of worker threads.
    pub threads: ThreadId,
    /// Scheduling policy.
    pub sched: SchedPolicy,
    /// Seed for per-thread RNGs (skip-list levels etc.).
    pub seed: u64,
    /// If true, the setup closure's accesses are recorded as trace events
    /// (issued by the extra thread id `threads`); otherwise setup only
    /// produces the initial durable memory image, matching the paper's
    /// convention that statistics start after pre-population (§6.1).
    pub record_setup: bool,
}

impl ExecConfig {
    /// A config with `threads` workers, random scheduling, and seed 1.
    pub fn new(threads: ThreadId) -> Self {
        ExecConfig {
            threads,
            sched: SchedPolicy::Random(1),
            seed: 1,
            record_setup: false,
        }
    }

    /// Sets the scheduling policy.
    pub fn policy(mut self, p: SchedPolicy) -> Self {
        self.sched = p;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Enables recording of the setup phase.
    pub fn record_setup(mut self, yes: bool) -> Self {
        self.record_setup = yes;
        self
    }
}

/// A worker body: runs once with a gated context.
pub type ThreadBody = Box<dyn FnOnce(&mut GateCtx) + Send>;

#[derive(Debug)]
enum Req {
    Read(Addr, Annot),
    Write(Addr, u64, Annot),
    Cas(Addr, u64, u64, Annot),
    Alloc(usize),
    OpBegin(OpKind),
    OpEnd(u64),
    /// First use of a site label on this thread: ships the string once;
    /// the scheduler appends the recorder's label id to the thread's
    /// label table. The `bool` selects op-prefix (`true`) vs phase.
    SiteNew(String, bool),
    /// Repeat use: an index into this thread's label table. Steady-state
    /// site changes ship 4 bytes instead of a heap-allocated `String`.
    SiteOp(u32),
    SitePhase(u32),
    Done,
}

#[derive(Debug)]
enum Resp {
    Val(u64),
    Addr(Addr),
    Cas(bool, u64),
}

/// The gated per-thread context handed to worker bodies.
pub struct GateCtx {
    tid: ThreadId,
    tx: Sender<Req>,
    rx: Receiver<Resp>,
    rng: Xorshift64,
    /// Local site-label interning: label → index into this thread's
    /// scheduler-side label table. A label is shipped as a `String`
    /// only the first time; after that site changes are integer sends.
    labels: FxHashMap<String, u32>,
}

impl GateCtx {
    fn roundtrip(&mut self, req: Req) -> Resp {
        self.tx.send(req).expect("scheduler hung up");
        self.rx.recv().expect("scheduler hung up")
    }

    /// Local index for `label`, registering it with the scheduler on
    /// first use. `is_op` tags the registration so the scheduler can
    /// apply it immediately (a registration is also a site change).
    fn label_index(&mut self, label: &str, is_op: bool) -> Option<u32> {
        if let Some(&i) = self.labels.get(label) {
            return Some(i);
        }
        let i = self.labels.len() as u32;
        self.labels.insert(label.to_string(), i);
        self.tx
            .send(Req::SiteNew(label.to_string(), is_op))
            .expect("scheduler hung up");
        None
    }
}

impl PmemCtx for GateCtx {
    fn tid(&self) -> ThreadId {
        self.tid
    }

    fn read_annot(&mut self, addr: Addr, annot: Annot) -> u64 {
        match self.roundtrip(Req::Read(addr, annot)) {
            Resp::Val(v) => v,
            r => unreachable!("bad response {r:?}"),
        }
    }

    fn write_annot(&mut self, addr: Addr, val: u64, annot: Annot) {
        match self.roundtrip(Req::Write(addr, val, annot)) {
            Resp::Val(_) => {}
            r => unreachable!("bad response {r:?}"),
        }
    }

    fn cas_annot(&mut self, addr: Addr, old: u64, new: u64, annot: Annot) -> (bool, u64) {
        match self.roundtrip(Req::Cas(addr, old, new, annot)) {
            Resp::Cas(ok, observed) => (ok, observed),
            r => unreachable!("bad response {r:?}"),
        }
    }

    fn alloc(&mut self, words: usize) -> Addr {
        match self.roundtrip(Req::Alloc(words)) {
            Resp::Addr(a) => a,
            r => unreachable!("bad response {r:?}"),
        }
    }

    fn rand(&mut self) -> u64 {
        self.rng.next_u64()
    }

    fn op_begin(&mut self, op: OpKind) {
        self.tx.send(Req::OpBegin(op)).expect("scheduler hung up");
    }

    fn op_end(&mut self, result: u64) {
        self.tx.send(Req::OpEnd(result)).expect("scheduler hung up");
    }

    fn site_op(&mut self, label: &str) {
        if let Some(i) = self.label_index(label, true) {
            self.tx.send(Req::SiteOp(i)).expect("scheduler hung up");
        }
    }

    fn site_phase(&mut self, phase: &str) {
        if let Some(i) = self.label_index(phase, false) {
            self.tx.send(Req::SitePhase(i)).expect("scheduler hung up");
        }
    }
}

/// Runs `setup` immediately (producing the initial durable image), then
/// runs the worker `bodies` under lockstep scheduling, returning the
/// recorded trace.
///
/// Panics in worker bodies are propagated after the remaining workers
/// finish or park.
pub fn run(cfg: &ExecConfig, setup: impl FnOnce(&mut DirectCtx), bodies: Vec<ThreadBody>) -> Trace {
    let n = bodies.len();
    assert_eq!(
        n, cfg.threads as usize,
        "bodies must match cfg.threads ({} != {})",
        n, cfg.threads
    );

    let mut direct = DirectCtx::new(cfg.threads, cfg.seed);
    if cfg.record_setup {
        direct.start_recording();
    }
    setup(&mut direct);
    let DirectCtx {
        mem,
        arenas,
        roots,
        rec,
        ..
    } = direct;
    let (initial_mem, recorder) = if cfg.record_setup {
        (Vec::new(), rec.expect("recording was enabled"))
    } else {
        (mem.snapshot(), Recorder::new())
    };

    let mut sched = Scheduler {
        mem,
        arenas,
        rec: recorder,
        policy_rng: match cfg.sched {
            SchedPolicy::Random(s) => Some(Xorshift64::new(s)),
            SchedPolicy::RoundRobin => None,
        },
        cursor: 0,
        labels: vec![Vec::new(); n],
    };

    let mut req_rxs = Vec::with_capacity(n);
    let mut resp_txs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for (i, body) in bodies.into_iter().enumerate() {
        let (req_tx, req_rx) = channel();
        let (resp_tx, resp_rx) = channel();
        req_rxs.push(req_rx);
        resp_txs.push(resp_tx);
        let mut ctx = GateCtx {
            tid: i as ThreadId,
            tx: req_tx,
            rx: resp_rx,
            rng: Xorshift64::new(
                cfg.seed
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(i as u64 + 1),
            ),
            labels: FxHashMap::default(),
        };
        handles.push(std::thread::spawn(move || {
            body(&mut ctx);
            let _ = ctx.tx.send(Req::Done);
        }));
    }

    sched.run_loop(n, &req_rxs, &resp_txs);

    let mut panic_payload = None;
    for h in handles {
        if let Err(p) = h.join() {
            panic_payload = Some(p);
        }
    }
    if let Some(p) = panic_payload {
        std::panic::resume_unwind(p);
    }

    let heap_range = sched.arenas.used_range();
    let (events, markers, site_names, event_sites) = sched.rec.into_trace_parts();
    Trace {
        nthreads: cfg.threads + u16::from(cfg.record_setup),
        events,
        initial_mem,
        markers,
        roots,
        heap_range,
        site_names,
        event_sites,
    }
}

struct Scheduler {
    mem: SharedMem,
    arenas: Arenas,
    rec: Recorder,
    policy_rng: Option<Xorshift64>,
    cursor: usize,
    /// Per-thread label tables: worker-local label index → recorder
    /// label id (built up by `Req::SiteNew`, consulted by the integer
    /// site messages).
    labels: Vec<Vec<u16>>,
}

impl Scheduler {
    /// Gathers from thread `t` until it parks at an access or finishes.
    /// Returns the parked access, or `None` if the thread is done.
    fn gather(&mut self, t: usize, rx: &Receiver<Req>, tx: &Sender<Resp>) -> Option<Req> {
        loop {
            match rx.recv() {
                Ok(req @ (Req::Read(..) | Req::Write(..) | Req::Cas(..))) => return Some(req),
                Ok(Req::Alloc(words)) => {
                    let a = self.arenas.alloc(t, words);
                    let _ = tx.send(Resp::Addr(a));
                }
                Ok(Req::OpBegin(op)) => self.rec.begin(t as ThreadId, op),
                Ok(Req::OpEnd(r)) => self.rec.end(t as ThreadId, r),
                Ok(Req::SiteNew(label, is_op)) => {
                    let id = self.rec.register_label(&label);
                    self.labels[t].push(id);
                    if is_op {
                        self.rec.site_op_id(t as ThreadId, id);
                    } else {
                        self.rec.site_phase_id(t as ThreadId, id);
                    }
                }
                Ok(Req::SiteOp(i)) => {
                    let id = self.labels[t][i as usize];
                    self.rec.site_op_id(t as ThreadId, id);
                }
                Ok(Req::SitePhase(i)) => {
                    let id = self.labels[t][i as usize];
                    self.rec.site_phase_id(t as ThreadId, id);
                }
                Ok(Req::Done) | Err(_) => return None,
            }
        }
    }

    fn apply(&mut self, t: usize, req: Req, tx: &Sender<Resp>) {
        let tid = t as ThreadId;
        match req {
            Req::Read(addr, annot) => {
                let v = self.mem.read(addr);
                self.rec.read(tid, addr, annot, v);
                let _ = tx.send(Resp::Val(v));
            }
            Req::Write(addr, val, annot) => {
                self.mem.write(addr, val);
                self.rec.write(tid, addr, annot, val);
                let _ = tx.send(Resp::Val(0));
            }
            Req::Cas(addr, old, new, annot) => {
                let (ok, observed) = self.mem.cas(addr, old, new);
                self.rec.cas(tid, addr, annot, ok, observed, new);
                let _ = tx.send(Resp::Cas(ok, observed));
            }
            _ => unreachable!("apply called with a non-access request"),
        }
    }

    fn pick(&mut self, runnable: &[usize]) -> usize {
        match &mut self.policy_rng {
            Some(rng) => runnable[rng.below(runnable.len() as u64) as usize],
            None => {
                // Round-robin: first runnable at or after the cursor.
                let t = *runnable
                    .iter()
                    .find(|&&t| t >= self.cursor)
                    .unwrap_or(&runnable[0]);
                self.cursor = t + 1;
                t
            }
        }
    }

    fn run_loop(&mut self, n: usize, req_rxs: &[Receiver<Req>], resp_txs: &[Sender<Resp>]) {
        let mut parked: Vec<Option<Req>> = (0..n).map(|_| None).collect();
        let mut alive = vec![true; n];
        let mut need_gather = vec![true; n];
        loop {
            for t in 0..n {
                if alive[t] && need_gather[t] {
                    match self.gather(t, &req_rxs[t], &resp_txs[t]) {
                        Some(req) => parked[t] = Some(req),
                        None => alive[t] = false,
                    }
                    need_gather[t] = false;
                }
            }
            let runnable: Vec<usize> = (0..n).filter(|&t| parked[t].is_some()).collect();
            if runnable.is_empty() {
                break;
            }
            let t = self.pick(&runnable);
            let req = parked[t].take().expect("picked thread is parked");
            self.apply(t, req, &resp_txs[t]);
            need_gather[t] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_model::EventKind;

    fn message_passing(policy: SchedPolicy) -> Trace {
        let cfg = ExecConfig::new(2).policy(policy);
        run(
            &cfg,
            |s| s.write(0x1000, 0),
            vec![
                Box::new(|c: &mut GateCtx| {
                    c.write(0x2000, 7);
                    c.write_rel(0x1000, 1);
                }),
                Box::new(|c: &mut GateCtx| {
                    while c.read_acq(0x1000) == 0 {}
                    assert_eq!(c.read(0x2000), 7);
                }),
            ],
        )
    }

    #[test]
    fn message_passing_round_robin() {
        let t = message_passing(SchedPolicy::RoundRobin);
        t.validate().unwrap();
        assert!(t.events.len() >= 4);
    }

    #[test]
    fn message_passing_random() {
        let t = message_passing(SchedPolicy::Random(99));
        t.validate().unwrap();
    }

    #[test]
    fn deterministic_traces() {
        let a = message_passing(SchedPolicy::Random(5));
        let b = message_passing(SchedPolicy::Random(5));
        assert_eq!(a.events, b.events);
        let c = message_passing(SchedPolicy::Random(6));
        // Different seed almost surely interleaves differently.
        assert_ne!(a.events, c.events);
    }

    #[test]
    fn setup_image_becomes_initial_mem() {
        let cfg = ExecConfig::new(1);
        let t = run(
            &cfg,
            |s| {
                s.write(0x1000, 42);
                s.set_root("head", 0x1000);
            },
            vec![Box::new(|c: &mut GateCtx| {
                assert_eq!(c.read(0x1000), 42);
            })],
        );
        t.validate().unwrap();
        assert_eq!(t.initial_mem, vec![(0x1000, 42)]);
        assert_eq!(t.roots, vec![("head".to_string(), 0x1000)]);
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn recorded_setup_appears_as_events() {
        let cfg = ExecConfig::new(1).record_setup(true);
        let t = run(
            &cfg,
            |s| s.write(0x1000, 42),
            vec![Box::new(|c: &mut GateCtx| {
                assert_eq!(c.read(0x1000), 42);
            })],
        );
        t.validate().unwrap();
        assert!(t.initial_mem.is_empty());
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.events[0].tid, 1, "setup runs as the extra thread id");
        assert_eq!(t.nthreads, 2);
    }

    #[test]
    fn cas_contention_single_winner() {
        let cfg = ExecConfig::new(4).policy(SchedPolicy::Random(3));
        let t = run(
            &cfg,
            |s| s.write(0x1000, 0),
            (0..4)
                .map(|i| {
                    Box::new(move |c: &mut GateCtx| {
                        c.cas_acq_rel(0x1000, 0, i + 1);
                    }) as ThreadBody
                })
                .collect(),
        );
        t.validate().unwrap();
        let wins = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::RmwSuccess)
            .count();
        assert_eq!(wins, 1);
    }

    #[test]
    fn alloc_and_markers_flow_through_gate() {
        let cfg = ExecConfig::new(2);
        let t = run(
            &cfg,
            |_| {},
            (0..2)
                .map(|_| {
                    Box::new(|c: &mut GateCtx| {
                        c.op_begin(OpKind::Insert(1, 2));
                        let p = c.alloc(2);
                        c.write(p, 1);
                        c.write(p + 8, 2);
                        c.op_end(1);
                    }) as ThreadBody
                })
                .collect(),
        );
        t.validate().unwrap();
        assert_eq!(t.markers.len(), 2);
        assert_eq!(t.events.len(), 4);
        // Distinct arenas: the four writes hit four distinct addresses.
        let addrs: std::collections::HashSet<_> = t.events.iter().map(|e| e.addr).collect();
        assert_eq!(addrs.len(), 4);
        assert!(t.heap_range.1 > t.heap_range.0);
    }

    #[test]
    fn per_thread_rand_is_deterministic() {
        let cfg = ExecConfig::new(1).seed(9);
        let vals = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let v2 = vals.clone();
        run(
            &cfg,
            |_| {},
            vec![Box::new(move |c: &mut GateCtx| {
                let mut g = v2.lock().unwrap();
                g.push(c.rand());
                g.push(c.rand());
            })],
        );
        let first = vals.lock().unwrap().clone();
        let vals2 = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let v3 = vals2.clone();
        run(
            &ExecConfig::new(1).seed(9),
            |_| {},
            vec![Box::new(move |c: &mut GateCtx| {
                let mut g = v3.lock().unwrap();
                g.push(c.rand());
                g.push(c.rand());
            })],
        );
        assert_eq!(first, *vals2.lock().unwrap());
    }

    #[test]
    fn sites_are_interned_and_stamped() {
        let cfg = ExecConfig::new(1);
        let t = run(
            &cfg,
            |_| {},
            vec![Box::new(|c: &mut GateCtx| {
                c.write(0x1000, 1); // before any label: unknown
                c.site_op("queue/enqueue");
                c.write(0x1008, 2);
                c.site_phase("link-next");
                c.write(0x1010, 3);
                c.site_op("queue/dequeue"); // new op clears the phase
                c.write(0x1018, 4);
            })],
        );
        t.validate().unwrap();
        assert_eq!(t.event_sites.len(), t.events.len());
        assert_eq!(t.site_name_of(0), "unknown");
        assert_eq!(t.site_name_of(1), "queue/enqueue");
        assert_eq!(t.site_name_of(2), "queue/enqueue/link-next");
        assert_eq!(t.site_name_of(3), "queue/dequeue");
        assert_eq!(t.site_of(99), 0, "out of range reads as unknown");
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        let cfg = ExecConfig::new(2);
        run(
            &cfg,
            |_| {},
            vec![
                Box::new(|c: &mut GateCtx| {
                    c.write(0x1000, 1);
                }),
                Box::new(|_c: &mut GateCtx| panic!("worker exploded")),
            ],
        );
    }
}
