//! One shard: a log-free structure plus its simulated machine.
//!
//! A shard executes request **batches**. Each batch becomes one trace:
//! the setup phase re-populates the structure from the shard's durable
//! contents (so the initial image is durable by construction), worker
//! threads replay the batched requests, and the timing simulator runs
//! the trace under the configured persistency mechanism. The recorded
//! persist schedule then decides, per request, whether the ack is
//! **durable**: every write the op performed must carry a persist
//! stamp, and every value it read must come from a persisted write (or
//! the durable initial image). Lazy mechanisms leave a volatile tail —
//! those requests are answered `durable: false`, which clients treat as
//! retryable.
//!
//! After each batch the shard *commits* by rebuilding the NVM image at
//! the final persist stamp and running the structure's null-recovery
//! validator on it; the recovered key set becomes the durable contents
//! the next batch starts from. The serving state is therefore always a
//! state the shard could actually have restarted from — a crash between
//! batches loses nothing, and a crash *during* a batch is exercised by
//! [`Shard::crash`], which samples a crash point inside the interrupted
//! batch and restarts from whatever the validator recovers.

use lrp_detect::{
    stamp, write_table_setup, ResolvedStatus, Resolver, SlotKind, SlotRecord, SlotSpec, SlotTable,
    ROOT_BASE, ROOT_CLIENTS, ROOT_RING,
};
use lrp_exec::{run, ExecConfig, PmemCtx, SchedPolicy, ThreadBody, Xorshift64};
use lrp_lfds::bst::Bst;
use lrp_lfds::hashmap::HashMap as LfdHashMap;
use lrp_lfds::list::LinkedList;
use lrp_lfds::skiplist::SkipList;
use lrp_lfds::{validate_image, MemImage, Recovered, Structure};
use lrp_model::spec::PersistSchedule;
use lrp_model::{Addr, OpKind, ThreadId, Trace};
use lrp_obs::{CritSummary, Hist, ObsReport, RecorderConfig, Stats};
use lrp_recovery::{crash_restart_random, rebuild_resolution};
use lrp_sim::{Mechanism, NvmMode, Sim, SimConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// A key-value request routed to a shard (set semantics: the LFDs store
/// `value = key`, and recovery validators extract key sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Membership query.
    Get(u64),
    /// Insert.
    Put(u64),
    /// Delete.
    Del(u64),
}

impl KvOp {
    /// The key the op targets.
    pub fn key(self) -> u64 {
        match self {
            KvOp::Get(k) | KvOp::Put(k) | KvOp::Del(k) => k,
        }
    }

    /// True for `Put`/`Del`.
    pub fn is_mutation(self) -> bool {
        !matches!(self, KvOp::Get(_))
    }
}

/// One request as the shard executes it: the op plus the wire request
/// id. The id's high 16 bits name the issuing client/channel, which
/// homes the op's detectable-operation slot; `rid == 0` means
/// "untracked" (no slot is stamped — used by callers that never
/// resolve, e.g. throughput benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReq {
    /// The key-value operation.
    pub op: KvOp,
    /// Wire request id (`client << 48 | seq`), or 0 for untracked.
    pub rid: u64,
}

impl ShardReq {
    /// A tracked request.
    pub fn new(op: KvOp, rid: u64) -> ShardReq {
        ShardReq { op, rid }
    }

    /// An untracked request (no detectable-operation stamp).
    pub fn untracked(op: KvOp) -> ShardReq {
        ShardReq { op, rid: 0 }
    }
}

/// Static configuration of one shard.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Backing structure. Must be set-like (`queue` has no key lookup
    /// and is rejected).
    pub structure: Structure,
    /// Persistency mechanism the simulated machine runs.
    pub mechanism: Mechanism,
    /// NVM latency mode.
    pub nvm_mode: NvmMode,
    /// Simulated worker threads per batch. Keep ≥ 2: a single-threaded
    /// batch triggers almost no coherence downgrades, so lazy
    /// mechanisms persist next to nothing and every ack is non-durable.
    pub sim_threads: ThreadId,
    /// Keys pre-loaded into the shard at startup.
    pub initial_size: usize,
    /// Keys live in `[1, key_range]`.
    pub key_range: u64,
    /// Master seed (population, scheduling, crash sampling).
    pub seed: u64,
    /// Extra crash points audited per restart (see `lrp-recovery`).
    pub audit_samples: usize,
    /// Optional observability recorder attached to every batch's
    /// simulator run; histograms and stats accumulate shard-side.
    pub recorder: Option<RecorderConfig>,
    /// Detectable-operation slot table geometry (`None` disables
    /// exactly-once stamping and the shard serves at-least-once).
    /// The ring must be at least a client's in-flight window or stamps
    /// for still-uncertain requests can be overwritten.
    pub detect: Option<SlotSpec>,
}

impl ShardConfig {
    /// Defaults: hash map under LRP, cached NVM, 2 sim threads, 64
    /// initial keys over `[1, 256]`.
    pub fn new(structure: Structure) -> ShardConfig {
        assert!(
            structure != Structure::Queue,
            "serve shards need set semantics; queue has no key lookup"
        );
        ShardConfig {
            structure,
            mechanism: Mechanism::Lrp,
            nvm_mode: NvmMode::Cached,
            sim_threads: 2,
            initial_size: 64,
            key_range: 256,
            seed: 1,
            audit_samples: 8,
            recorder: None,
            detect: Some(SlotSpec::default()),
        }
    }

    fn nbuckets(&self) -> u64 {
        (self.initial_size as u64).max(4)
    }

    fn initial_keys(&self) -> BTreeSet<u64> {
        let mut rng = Xorshift64::new(self.seed.wrapping_add(0xA11C));
        let mut set = BTreeSet::new();
        let target = (self.initial_size as u64).min(self.key_range) as usize;
        while set.len() < target {
            set.insert(rng.below(self.key_range) + 1);
        }
        set
    }
}

/// Per-request outcome of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvResult {
    /// Functional result: `Get` → present, `Put`/`Del` → applied.
    pub applied: bool,
    /// The durable ack: every write persisted and every read justified
    /// by persisted state.
    pub durable: bool,
    /// Batch number that executed the op.
    pub batch: u64,
    /// Execution rank within the batch (global completion order).
    pub seq: u64,
    /// Simulated cycle at which the op's last write persisted (0 when
    /// nothing persisted or the op wrote nothing).
    pub persist_cycles: u64,
}

/// Outcome of a mid-batch crash and null-recovery restart.
#[derive(Debug, Clone)]
pub struct CrashOutcome {
    /// Batch number the crash interrupted.
    pub batch: u64,
    /// Sampled crash stamp (`None` = before anything persisted).
    pub crash_stamp: Option<u64>,
    /// The crash-point image validated and the wider audit passed.
    pub consistent: bool,
    /// Keys recovered from the NVM image (empty when validation failed
    /// and the shard fell back to its last committed state).
    pub recovered: usize,
    /// Durably-committed keys missing after restart that no in-flight
    /// delete could explain — must be empty (the paper's claim).
    pub lost_acked: Vec<u64>,
    /// Recovered keys never committed that no in-flight insert could
    /// explain — must also be empty.
    pub phantom: Vec<u64>,
    /// Crash points audited / audit failures.
    pub audit_points: usize,
    /// Audit failures (non-zero means some cut was not recoverable).
    pub audit_failures: usize,
    /// Detectable-operation stamps recovered from the crash-cut image
    /// (the new resolver answers `Done` for exactly these rids).
    pub stamps: u64,
    /// Slot records that survived only partially in the crash image.
    pub torn_stamps: u64,
}

/// Monotonic shard counters (exported in the metrics stream).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardCounters {
    /// Requests executed (excludes shed requests, which never reach the
    /// shard).
    pub requests: u64,
    /// Batches executed (including crashed ones).
    pub batches: u64,
    /// Requests acked durable.
    pub acked_durable: u64,
    /// Requests answered `durable: false`.
    pub nondurable: u64,
    /// Acks downgraded by the post-batch commit check (the recovered
    /// image disagreed with a durable ack's expectation).
    pub downgrades: u64,
    /// Mid-batch crash-restarts taken.
    pub crashes: u64,
    /// Commits or restarts where the validator rejected the image and
    /// the shard fell back to its previous durable contents.
    pub recovery_failures: u64,
    /// Total durably-acked keys lost across all restarts (must stay 0).
    pub lost_acked: u64,
    /// Obs ring-buffer events dropped across all batches (recorder
    /// attached with a ring smaller than the event volume). Non-zero
    /// means the event trace is truncated; histograms and audits are
    /// computed online and stay exact.
    pub obs_dropped: u64,
    /// Torn detectable-operation stamps seen across all commit/crash
    /// image scans. A release-ordering discipline keeps this at zero.
    pub slot_torn: u64,
}

/// Host wall-clock breakdown of the last committed batch, used by the
/// serving layer to split the simulated-execution span from the
/// persist-stamping/commit span.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchBreakdown {
    /// Microseconds inside the timing simulator run.
    pub sim_us: u64,
    /// Microseconds spent stamping persist times, computing durable
    /// acks, and committing the recovered image.
    pub persist_us: u64,
    /// Final persist stamp of the batch (0 = nothing persisted).
    pub final_stamp: u64,
}

/// One shard: durable contents + batch executor + crash-restart.
pub struct Shard {
    cfg: ShardConfig,
    committed: BTreeSet<u64>,
    batches: u64,
    counters: ShardCounters,
    /// Aggregate simulator statistics over all batches.
    pub stats: Stats,
    /// Merged observability histograms (flush-to-ack,
    /// release-to-persist, RET residency) when a recorder is attached.
    pub hists: [Hist; 3],
    /// Merged durability critical-path digest across all batches (empty
    /// unless a recorder with critpath tracing is attached).
    pub crit: CritSummary,
    last_breakdown: BatchBreakdown,
    /// Committed (durable) slot records, re-written through every
    /// batch's setup phase; `None` when detection is disabled.
    slots: Option<SlotTable>,
    /// The current rid → verdict map, a pure function of the last
    /// committed (or crash-recovered) image.
    resolver: Resolver,
}

struct BatchRun {
    trace: Trace,
    sched: PersistSchedule,
    results: Vec<KvResult>,
    sim_us: u64,
    stamp_us: u64,
}

impl Shard {
    /// Creates the shard and pre-loads its initial keys (durable by
    /// construction — they enter every batch through the setup phase).
    pub fn new(cfg: ShardConfig) -> Shard {
        let committed = cfg.initial_keys();
        let slots = cfg.detect.map(SlotTable::new);
        Shard {
            cfg,
            committed,
            batches: 0,
            counters: ShardCounters::default(),
            stats: Stats::default(),
            hists: [Hist::new(), Hist::new(), Hist::new()],
            crit: CritSummary::default(),
            last_breakdown: BatchBreakdown::default(),
            slots,
            resolver: Resolver::empty(),
        }
    }

    /// The shard's current durable contents.
    pub fn committed(&self) -> &BTreeSet<u64> {
        &self.committed
    }

    /// Counters snapshot.
    pub fn counters(&self) -> ShardCounters {
        self.counters
    }

    /// Batches executed so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Wall-clock breakdown of the most recent committed batch.
    pub fn last_breakdown(&self) -> BatchBreakdown {
        self.last_breakdown
    }

    /// Replays `ops` as one batch trace + simulator run and returns the
    /// trace and recorded persist schedule without committing anything.
    ///
    /// This is the cross-validation hook: the trace carries the slot
    /// stamps as first-class events (site phase `slot`), so `lrp-check`
    /// can verify the recorded schedule is admissible under the
    /// mechanism's discipline *with detection enabled* and that every
    /// realized crash cut still passes durable linearizability.
    pub fn replay_for_check(&mut self, ops: &[ShardReq]) -> (Trace, PersistSchedule) {
        let run = self.run_batch(ops);
        (run.trace, run.sched)
    }

    /// Deterministic post-crash (or post-commit) verdict for `rid`.
    pub fn resolve(&self, rid: u64) -> ResolvedStatus {
        self.resolver.resolve(rid)
    }

    /// A clone of the current resolver (published to the reader threads
    /// so `Resolve` requests never block on the worker).
    pub fn resolver(&self) -> Resolver {
        self.resolver.clone()
    }

    /// Durable slot records currently held / total table capacity.
    /// `(0, 0)` when detection is disabled.
    pub fn slot_occupancy(&self) -> (u64, u64) {
        match &self.slots {
            Some(t) => (t.occupied(), t.spec().records()),
            None => (0, 0),
        }
    }

    /// True when the configured mechanism's persist discipline backs
    /// the stamp's promise (stamp durable ⇒ payload + effect durable).
    fn stamps_sound(&self) -> bool {
        self.cfg.mechanism.discipline().orders_release_stamps()
    }

    /// Re-derives the slot table and resolver from a durable image.
    fn absorb_resolution(&mut self, roots: &[(String, Addr)], image: &MemImage) {
        if self.slots.is_none() {
            return;
        }
        if let Some(res) = rebuild_resolution(roots, image, self.stamps_sound()) {
            self.counters.slot_torn += res.torn;
            self.slots = Some(res.table);
            self.resolver = res.resolver;
        }
    }

    fn absorb_obs(&mut self, obs: Option<&ObsReport>) {
        if let Some(report) = obs {
            for (i, (_, h)) in lrp_obs::metrics::hist_rows(report).iter().enumerate() {
                self.hists[i].merge(h);
            }
            if let Some(crit) = &report.crit {
                self.crit.merge(crit);
            }
            self.counters.obs_dropped += report.dropped;
        }
    }

    /// Replays `ops` as one trace + simulator run and computes durable
    /// acks from the persist schedule. Does not commit.
    fn run_batch(&mut self, ops: &[ShardReq]) -> BatchRun {
        let batch = self.batches;
        let seed = self
            .cfg
            .seed
            .wrapping_add((batch + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let trace = build_batch_trace(
            &self.cfg,
            &self.committed,
            self.slots.as_ref(),
            ops,
            seed,
            batch,
        );
        let sim_cfg = SimConfig::new(self.cfg.mechanism).nvm_mode(self.cfg.nvm_mode);
        let mut sim = Sim::new(sim_cfg, &trace);
        if let Some(rc) = &self.cfg.recorder {
            sim = sim.with_recorder(rc.clone());
        }
        let t_sim = std::time::Instant::now();
        let run = sim.run();
        let sim_us = t_sim.elapsed().as_micros() as u64;
        let t_stamp = std::time::Instant::now();
        self.stats.merge(&run.stats);
        self.absorb_obs(run.obs.as_ref());

        // Persist time per event, from the flush log.
        let mut persist_time = vec![0u64; trace.events.len()];
        for rec in &run.persist_log {
            for &e in &rec.covered {
                persist_time[e as usize] = rec.time;
            }
        }

        // Map markers back to batch indices: ops were dealt round-robin,
        // and each thread issues its share in order.
        let nthreads = self.cfg.sim_threads as usize;
        let mut cursor = vec![0usize; nthreads];
        let mut order: Vec<(usize, u32, bool, u64)> = Vec::with_capacity(ops.len());
        for m in trace.markers.iter().filter(|m| m.op != OpKind::Setup) {
            let tid = m.tid as usize;
            let batch_idx = tid + cursor[tid] * nthreads;
            cursor[tid] += 1;
            let mut durable = true;
            let mut persisted_at = 0u64;
            for e in &trace.events[m.first_event as usize..m.end_event as usize] {
                if e.is_write_effect() {
                    match sched_stamp(&run.schedule, e.id) {
                        Some(_) => persisted_at = persisted_at.max(persist_time[e.id as usize]),
                        None => durable = false,
                    }
                }
                if e.is_read_effect() {
                    // A read is durably justified when the value it
                    // observed survives a crash: the initial image, or a
                    // persisted write.
                    if let Some(w) = e.rf {
                        if sched_stamp(&run.schedule, w).is_none() {
                            durable = false;
                        }
                    }
                }
            }
            order.push((batch_idx, m.end_event, durable, persisted_at));
            debug_assert!(matches!(
                (ops[batch_idx].op, m.op),
                (KvOp::Get(_), OpKind::Contains(_))
                    | (KvOp::Put(_), OpKind::Insert(_, _))
                    | (KvOp::Del(_), OpKind::Delete(_))
            ));
        }
        // Global completion order defines per-batch sequence numbers.
        let mut ranked: Vec<usize> = (0..order.len()).collect();
        ranked.sort_by_key(|&i| order[i].1);
        let mut results = vec![
            KvResult {
                applied: false,
                durable: false,
                batch,
                seq: 0,
                persist_cycles: 0,
            };
            ops.len()
        ];
        for (seq, &i) in ranked.iter().enumerate() {
            let (batch_idx, _, durable, persisted_at) = order[i];
            let marker = trace
                .markers
                .iter()
                .filter(|m| m.op != OpKind::Setup)
                .nth(i)
                .expect("marker indexed in order");
            results[batch_idx] = KvResult {
                applied: marker.result == 1,
                durable,
                batch,
                seq: seq as u64,
                persist_cycles: if durable { persisted_at } else { 0 },
            };
        }
        self.counters.requests += ops.len() as u64;
        self.counters.batches += 1;
        self.batches += 1;
        BatchRun {
            trace,
            sched: run.schedule,
            results,
            sim_us,
            stamp_us: t_stamp.elapsed().as_micros() as u64,
        }
    }

    /// Executes one batch to completion and commits the durable state.
    pub fn execute(&mut self, ops: &[ShardReq]) -> Vec<KvResult> {
        if ops.is_empty() {
            return Vec::new();
        }
        let mut run = self.run_batch(ops);
        let t_commit = std::time::Instant::now();

        // Commit: the durable contents are whatever null recovery gets
        // back from the image at the final persist stamp.
        let last = last_stamp(&run.sched);
        let image = lrp_recovery::nvm_at(&run.trace, &run.sched, last);
        match recovered_set(self.cfg.structure, &run.trace, &image) {
            Some(recovered) => {
                self.downgrade_contradicted(ops, &mut run.results, &recovered);
                self.committed = recovered;
                // The same image carries the batch's durable stamps:
                // they become the committed slot state, and acks that
                // were answered `durable: false` only out of caution
                // stay resolvable as `Done`.
                self.absorb_resolution(&run.trace.roots, &image);
            }
            None => {
                // Image unusable (e.g. under `nop`): keep the previous
                // durable contents and withdraw every durable ack — the
                // shard could not actually restart into this batch's
                // state.
                self.counters.recovery_failures += 1;
                for r in &mut run.results {
                    if r.durable {
                        r.durable = false;
                        r.persist_cycles = 0;
                        self.counters.downgrades += 1;
                    }
                }
            }
        }
        for r in &run.results {
            if r.durable {
                self.counters.acked_durable += 1;
            } else {
                self.counters.nondurable += 1;
            }
        }
        self.last_breakdown = BatchBreakdown {
            sim_us: run.sim_us,
            persist_us: run.stamp_us + t_commit.elapsed().as_micros() as u64,
            final_stamp: last.unwrap_or(0),
        };
        run.results
    }

    /// Downgrades durable acks that the recovered image contradicts: for
    /// each key, the *last* durable mutation's expected presence must
    /// match the image; otherwise every op on that key this batch loses
    /// its durable flag.
    fn downgrade_contradicted(
        &mut self,
        ops: &[ShardReq],
        results: &mut [KvResult],
        recovered: &BTreeSet<u64>,
    ) {
        let mut last_mutation: std::collections::HashMap<u64, (u64, bool)> =
            std::collections::HashMap::new();
        for (req, r) in ops.iter().zip(results.iter()) {
            if !req.op.is_mutation() || !r.durable {
                continue;
            }
            // An unapplied Put means "already present"; an unapplied Del
            // means "already absent" — both still pin the key's state.
            let expect_present = matches!(req.op, KvOp::Put(_));
            let e = last_mutation
                .entry(req.op.key())
                .or_insert((r.seq, expect_present));
            if r.seq >= e.0 {
                *e = (r.seq, expect_present);
            }
        }
        for (key, (_, expect_present)) in last_mutation {
            if recovered.contains(&key) != expect_present {
                for (req, r) in ops.iter().zip(results.iter_mut()) {
                    if req.op.key() == key && r.durable {
                        r.durable = false;
                        r.persist_cycles = 0;
                        self.counters.downgrades += 1;
                    }
                }
            }
        }
    }

    /// Crashes the shard mid-batch: `ops` are the in-flight requests
    /// (none of them gets acked), a crash point is sampled inside the
    /// interrupted batch, and the shard restarts from whatever null
    /// recovery validates. Returns the restart verdict; the caller
    /// answers the in-flight requests with `Crashed`.
    pub fn crash(&mut self, ops: &[ShardReq]) -> CrashOutcome {
        let batch = self.batches;
        let committed_before = self.committed.clone();
        let seed = self
            .cfg
            .seed
            .wrapping_add((batch + 1).wrapping_mul(0xC0FF_EE00_D15A_57E5));
        // Replay the in-flight ops (an empty in-flight batch still
        // crashes: the trace is setup-only and recovery must return the
        // committed contents).
        let run = self.run_batch(ops);
        let restart = crash_restart_random(
            self.cfg.structure,
            &run.trace,
            &run.sched,
            self.cfg.audit_samples,
            seed,
        );
        self.counters.crashes += 1;
        let consistent = restart.consistent();
        let torn_before = self.counters.slot_torn;
        let (recovered_count, lost_acked, phantom) = match &restart.recovered {
            Ok(rec) => {
                let recovered: BTreeSet<u64> = rec.keys().iter().copied().collect();
                // In-flight mutations may or may not have reached NVM;
                // they excuse differences but nothing else does.
                let inflight_dels: BTreeSet<u64> = ops
                    .iter()
                    .filter(|o| matches!(o.op, KvOp::Del(_)))
                    .map(|o| o.op.key())
                    .collect();
                let inflight_puts: BTreeSet<u64> = ops
                    .iter()
                    .filter(|o| matches!(o.op, KvOp::Put(_)))
                    .map(|o| o.op.key())
                    .collect();
                let lost: Vec<u64> = committed_before
                    .difference(&recovered)
                    .filter(|k| !inflight_dels.contains(k))
                    .copied()
                    .collect();
                let phantom: Vec<u64> = recovered
                    .difference(&committed_before)
                    .filter(|k| !inflight_puts.contains(k))
                    .copied()
                    .collect();
                let n = recovered.len();
                self.committed = recovered;
                // The crash-cut image decides which in-flight stamps
                // survived: the resolver the restarted shard serves
                // answers `Done` for exactly those.
                self.absorb_resolution(&run.trace.roots, &restart.image);
                (n, lost, phantom)
            }
            Err(_) => {
                // Unusable image: restart from the last committed state
                // (nothing durably acked is lost, by definition) — and
                // keep the previous resolver, which matches that state:
                // every in-flight op resolves `NotStarted`.
                self.counters.recovery_failures += 1;
                (0, Vec::new(), Vec::new())
            }
        };
        self.counters.lost_acked += lost_acked.len() as u64;
        CrashOutcome {
            batch,
            crash_stamp: restart.crash_stamp,
            consistent,
            recovered: recovered_count,
            lost_acked,
            phantom,
            audit_points: restart.audit.crash_points,
            audit_failures: restart.audit.failures.len(),
            stamps: self.resolver.len() as u64,
            torn_stamps: self.counters.slot_torn - torn_before,
        }
    }
}

fn sched_stamp(sched: &PersistSchedule, e: lrp_model::EventId) -> Option<u64> {
    sched.stamp(e)
}

fn last_stamp(sched: &PersistSchedule) -> Option<u64> {
    sched.distinct_stamps().last().copied()
}

fn recovered_set(structure: Structure, trace: &Trace, image: &MemImage) -> Option<BTreeSet<u64>> {
    match validate_image(structure, &trace.roots, image) {
        Ok(Recovered::Set(s)) => Some(s),
        Ok(Recovered::Queue(_)) => unreachable!("queue rejected by ShardConfig::new"),
        Err(_) => None,
    }
}

#[derive(Clone, Copy)]
enum Handle {
    List(LinkedList),
    Map(LfdHashMap),
    Bst(Bst),
    Skip(SkipList),
}

/// Builds the batch trace: setup re-creates the structure from the
/// committed keys (durable initial image) and re-writes the committed
/// slot table, then `sim_threads` workers replay `ops` dealt
/// round-robin (op `i` on thread `i % sim_threads`, each thread in
/// index order — the mapping [`Shard::run_batch`] relies on to
/// attribute markers). Tracked mutations stamp their slot record
/// before `op_end`, so the stamp rides inside the op's marker and a
/// durable ack certifies the stamp too.
fn build_batch_trace(
    cfg: &ShardConfig,
    committed: &BTreeSet<u64>,
    slots: Option<&SlotTable>,
    ops: &[ShardReq],
    seed: u64,
    batch: u64,
) -> Trace {
    let structure = cfg.structure;
    let keys: Vec<u64> = committed.iter().copied().collect();
    let nbuckets = cfg.nbuckets();
    // Setup publishes the structure handle and the slot-table base
    // address (0 when detection is off) for the worker closures.
    let handle: Arc<OnceLock<(Handle, Addr)>> = Arc::new(OnceLock::new());
    let slot_seed = slots.cloned();

    let setup_handle = handle.clone();
    let setup = move |s: &mut lrp_exec::DirectCtx| {
        let h = match structure {
            Structure::LinkedList => {
                let l = LinkedList::new(s);
                l.populate(s, &keys);
                s.set_root("head", l.head_loc);
                Handle::List(l)
            }
            Structure::HashMap => {
                let m = LfdHashMap::new(s, nbuckets);
                m.populate(s, &keys);
                s.set_root("buckets", m.buckets);
                s.set_root("nbuckets", m.nbuckets);
                Handle::Map(m)
            }
            Structure::Bst => {
                let b = Bst::new(s);
                b.populate(s, &keys);
                s.set_root("bst_r", b.r);
                s.set_root("bst_s", b.s);
                Handle::Bst(b)
            }
            Structure::SkipList => {
                let sl = SkipList::new(s);
                sl.populate(s, &keys);
                s.set_root("sl_head", sl.head);
                Handle::Skip(sl)
            }
            Structure::Queue => unreachable!("rejected by ShardConfig::new"),
        };
        let base = match &slot_seed {
            Some(table) => {
                let spec = table.spec();
                let base = s.alloc(spec.words());
                write_table_setup(s, base, table);
                s.set_root(ROOT_BASE, base);
                s.set_root(ROOT_CLIENTS, spec.clients);
                s.set_root(ROOT_RING, spec.ring);
                base
            }
            None => 0,
        };
        let _ = setup_handle.set((h, base));
    };

    let det_spec = slots.map(|t| t.spec());
    let nthreads = cfg.sim_threads.max(1);
    let bodies: Vec<ThreadBody> = (0..nthreads)
        .map(|t| {
            let handle = handle.clone();
            let mine: Vec<ShardReq> = ops
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| (i % nthreads as usize) as ThreadId == t)
                .map(|(_, req)| req)
                .collect();
            Box::new(move |c: &mut lrp_exec::GateCtx| {
                let (h, base) = *handle.get().expect("setup ran before workers");
                let det = det_spec.map(|spec| (base, spec));
                for req in mine {
                    issue(c, h, det, batch, req);
                }
            }) as ThreadBody
        })
        .collect();

    let cfg = ExecConfig::new(nthreads)
        .policy(SchedPolicy::Random(seed.wrapping_add(0x5EED)))
        .seed(seed);
    run(&cfg, setup, bodies)
}

/// Stamps a tracked mutation's slot record between the structure op and
/// its `op_end`: the record is part of the op's event range, so the
/// durable-ack computation covers the stamp, and the phase label makes
/// its cost attributable in critical-path breakdowns.
fn stamp_slot<C: PmemCtx>(
    c: &mut C,
    det: Option<(Addr, SlotSpec)>,
    batch: u64,
    rid: u64,
    key: u64,
    kind: SlotKind,
    applied: bool,
) {
    let Some((base, spec)) = det else { return };
    if rid == 0 {
        return;
    }
    c.site_phase("slot");
    stamp(
        c,
        base,
        &spec,
        &SlotRecord {
            rid,
            key,
            kind,
            applied,
            batch,
        },
    );
}

fn issue<C: PmemCtx>(
    c: &mut C,
    h: Handle,
    det: Option<(Addr, SlotSpec)>,
    batch: u64,
    req: ShardReq,
) {
    // Static labels: the per-request hot loop must not format strings.
    let [get_site, put_site, del_site] = match h {
        Handle::List(_) => [
            "linkedlist/contains",
            "linkedlist/insert",
            "linkedlist/delete",
        ],
        Handle::Map(_) => ["hashmap/contains", "hashmap/insert", "hashmap/delete"],
        Handle::Bst(_) => ["bstree/contains", "bstree/insert", "bstree/delete"],
        Handle::Skip(_) => ["skiplist/contains", "skiplist/insert", "skiplist/delete"],
    };
    match req.op {
        KvOp::Get(k) => {
            c.op_begin(OpKind::Contains(k));
            c.site_op(get_site);
            let r = match h {
                Handle::List(l) => l.contains(c, k),
                Handle::Map(m) => m.contains(c, k),
                Handle::Bst(b) => b.contains(c, k),
                Handle::Skip(sl) => sl.contains(c, k),
            };
            c.op_end(r as u64);
        }
        KvOp::Put(k) => {
            c.op_begin(OpKind::Insert(k, k));
            c.site_op(put_site);
            let r = match h {
                Handle::List(l) => l.insert(c, k, k),
                Handle::Map(m) => m.insert(c, k, k),
                Handle::Bst(b) => b.insert(c, k, k),
                Handle::Skip(sl) => sl.insert(c, k, k),
            };
            stamp_slot(c, det, batch, req.rid, k, SlotKind::Put, r);
            c.op_end(r as u64);
        }
        KvOp::Del(k) => {
            c.op_begin(OpKind::Delete(k));
            c.site_op(del_site);
            let r = match h {
                Handle::List(l) => l.delete(c, k),
                Handle::Map(m) => m.delete(c, k),
                Handle::Bst(b) => b.delete(c, k),
                Handle::Skip(sl) => sl.delete(c, k),
            };
            stamp_slot(c, det, batch, req.rid, k, SlotKind::Del, r);
            c.op_end(r as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(seed: u64) -> Shard {
        let mut cfg = ShardConfig::new(Structure::HashMap);
        cfg.initial_size = 32;
        cfg.key_range = 128;
        cfg.seed = seed;
        Shard::new(cfg)
    }

    /// Tracked requests from a single synthetic client.
    fn reqs(ops: impl IntoIterator<Item = KvOp>) -> Vec<ShardReq> {
        ops.into_iter()
            .enumerate()
            .map(|(i, op)| ShardReq::new(op, (1 << 48) | i as u64))
            .collect()
    }

    #[test]
    fn batches_execute_and_commit_durable_state() {
        let mut s = shard(3);
        let before = s.committed().clone();
        assert_eq!(before.len(), 32);
        let ops = reqs((0..24).map(|i| match i % 3 {
            0 => KvOp::Put(200 + i),
            1 => KvOp::Get(i),
            _ => KvOp::Del(i),
        }));
        let results = s.execute(&ops);
        assert_eq!(results.len(), ops.len());
        assert_eq!(s.batches(), 1);
        // Every durable Put must be in the committed set; every durable
        // applied Del must not (no later op targets the same key here).
        for (req, r) in ops.iter().zip(&results) {
            if !r.durable {
                continue;
            }
            match req.op {
                KvOp::Put(k) => assert!(s.committed().contains(&k), "durable put {k} lost"),
                KvOp::Del(k) => assert!(!s.committed().contains(&k), "durable del {k} undone"),
                KvOp::Get(_) => {}
            }
        }
        // Sequence numbers are a permutation of 0..n.
        let mut seqs: Vec<u64> = results.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..ops.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn lrp_leaves_a_volatile_tail_but_acks_most_writes() {
        let mut s = shard(7);
        let ops = reqs((0..48).map(|i| KvOp::Put(300 + i)));
        let results = s.execute(&ops);
        let durable = results.iter().filter(|r| r.durable).count();
        assert!(durable > 0, "no write ever became durable under LRP");
        let c = s.counters();
        assert_eq!(c.acked_durable + c.nondurable, 48);
    }

    #[test]
    fn crash_restart_loses_no_durably_acked_key() {
        for seed in 0..4 {
            let mut s = shard(seed);
            // A committed batch, then a crash with writes in flight.
            let warm = reqs((0..16).map(|i| KvOp::Put(400 + i)));
            s.execute(&warm);
            let inflight: Vec<ShardReq> = (0..16)
                .map(|i| {
                    ShardReq::new(
                        if i % 2 == 0 {
                            KvOp::Put(500 + i)
                        } else {
                            KvOp::Del(i)
                        },
                        (2 << 48) | i,
                    )
                })
                .collect();
            let outcome = s.crash(&inflight);
            assert!(outcome.consistent, "seed {seed}: inconsistent restart");
            assert!(
                outcome.lost_acked.is_empty(),
                "seed {seed}: lost acked keys {:?}",
                outcome.lost_acked
            );
            assert!(
                outcome.phantom.is_empty(),
                "seed {seed}: phantom keys {:?}",
                outcome.phantom
            );
            assert!(outcome.audit_points > 0);
            assert_eq!(outcome.audit_failures, 0);
        }
    }

    #[test]
    fn shard_rejects_queue() {
        let r = std::panic::catch_unwind(|| ShardConfig::new(Structure::Queue));
        assert!(r.is_err());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut s = shard(1);
        let before = s.committed().clone();
        assert!(s.execute(&[]).is_empty());
        assert_eq!(s.batches(), 0);
        assert_eq!(*s.committed(), before);
    }

    #[test]
    fn nop_mechanism_withdraws_durable_acks() {
        let mut cfg = ShardConfig::new(Structure::HashMap);
        cfg.initial_size = 16;
        cfg.key_range = 64;
        cfg.mechanism = Mechanism::Nop;
        let mut s = Shard::new(cfg);
        let ops = reqs((0..16).map(|i| KvOp::Put(100 + i)));
        let results = s.execute(&ops);
        // `nop` persists nothing in order, so either nothing is durable
        // or the commit check withdrew the acks; never a false durable.
        let c = s.counters();
        assert_eq!(
            results.iter().filter(|r| r.durable).count() as u64,
            c.acked_durable
        );
        if c.recovery_failures > 0 {
            assert_eq!(c.acked_durable, 0, "unusable image must withdraw acks");
        }
        // An unsound discipline never resolves `Done`: a stamp under
        // `nop` proves nothing, so every rid reads `NotStarted`.
        for req in &ops {
            assert_eq!(s.resolve(req.rid), ResolvedStatus::NotStarted);
        }
    }

    #[test]
    fn durable_acks_resolve_done_after_commit() {
        let mut s = shard(11);
        let ops = reqs((0..24).map(|i| {
            if i % 2 == 0 {
                KvOp::Put(600 + i)
            } else {
                KvOp::Get(i)
            }
        }));
        let results = s.execute(&ops);
        let (occ, cap) = s.slot_occupancy();
        assert!(cap > 0, "detection is on by default");
        let mut durable_muts = 0;
        for (req, r) in ops.iter().zip(&results) {
            if !req.op.is_mutation() {
                // Reads are never stamped: always NotStarted.
                assert_eq!(s.resolve(req.rid), ResolvedStatus::NotStarted);
                continue;
            }
            if r.durable {
                durable_muts += 1;
                // The durable ack's promise: the stamp persisted, so
                // the op is resolvable with its recorded outcome.
                match s.resolve(req.rid) {
                    ResolvedStatus::Done {
                        kind,
                        applied,
                        key,
                        batch,
                    } => {
                        assert_eq!(kind, SlotKind::Put);
                        assert_eq!(applied, r.applied);
                        assert_eq!(key, req.op.key());
                        assert_eq!(batch, r.batch);
                    }
                    ResolvedStatus::NotStarted => {
                        panic!("durable ack for rid {:#x} not resolvable", req.rid)
                    }
                }
            }
        }
        assert!(durable_muts > 0, "no durable mutation to check");
        assert!(occ >= durable_muts, "occupancy covers durable stamps");
        assert_eq!(s.counters().slot_torn, 0, "LRP never tears a stamp");
    }

    #[test]
    fn crash_resolution_is_deterministic_and_sound() {
        for seed in 0..4 {
            let mut s = shard(40 + seed);
            let warm = reqs((0..16).map(|i| KvOp::Put(700 + i)));
            let warm_results = s.execute(&warm);
            let inflight: Vec<ShardReq> = (0..16)
                .map(|i| {
                    ShardReq::new(
                        if i % 2 == 0 {
                            KvOp::Put(800 + i)
                        } else {
                            KvOp::Del(700 + i)
                        },
                        (3 << 48) | i,
                    )
                })
                .collect();
            let outcome = s.crash(&inflight);
            assert!(outcome.consistent, "seed {seed}");
            assert_eq!(outcome.torn_stamps, 0, "seed {seed}: torn stamp under LRP");
            // Warm durable acks stay resolvable after the crash: their
            // stamps were committed, so the restart keeps them.
            for (req, r) in warm.iter().zip(&warm_results) {
                if r.durable {
                    assert!(
                        s.resolve(req.rid).is_done(),
                        "seed {seed}: durably-acked warm rid {:#x} lost its stamp",
                        req.rid
                    );
                }
            }
            // Every in-flight op resolves deterministically, and a
            // `Done` verdict is backed by the recovered state.
            for req in &inflight {
                let v1 = s.resolve(req.rid);
                assert_eq!(v1, s.resolve(req.rid), "seed {seed}: nondeterministic");
                if let ResolvedStatus::Done {
                    kind, applied, key, ..
                } = v1
                {
                    assert_eq!(key, req.op.key(), "seed {seed}");
                    let present = s.committed().contains(&key);
                    match (kind, applied) {
                        // An applied durable Put leaves the key present;
                        // an applied durable Del leaves it absent. (No
                        // other in-flight op targets the same key.)
                        (SlotKind::Put, true) => assert!(present, "seed {seed}: lost put {key}"),
                        (SlotKind::Del, true) => assert!(!present, "seed {seed}: undone del {key}"),
                        // Unapplied ops pin the pre-existing state.
                        (SlotKind::Put, false) => assert!(present, "seed {seed}"),
                        (SlotKind::Del, false) => assert!(!present, "seed {seed}"),
                    }
                }
            }
        }
    }

    #[test]
    fn detection_can_be_disabled() {
        let mut cfg = ShardConfig::new(Structure::HashMap);
        cfg.initial_size = 16;
        cfg.key_range = 64;
        cfg.detect = None;
        let mut s = Shard::new(cfg);
        let ops = reqs((0..8).map(|i| KvOp::Put(100 + i)));
        let results = s.execute(&ops);
        assert!(results.iter().any(|r| r.durable));
        assert_eq!(s.slot_occupancy(), (0, 0));
        for req in &ops {
            assert_eq!(s.resolve(req.rid), ResolvedStatus::NotStarted);
        }
    }
}
