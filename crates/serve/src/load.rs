//! Load generator and blocking client.
//!
//! [`run_load`] drives a running server with pipelined connections:
//! each connection keeps up to `window` requests in flight, draws keys
//! from a [`KeyDist`] (uniform or zipfian), and mixes gets/puts/deletes
//! per `read_pct`. It runs closed-loop by default or open-loop at a
//! target rate, and records client-observed latency in a log₂-bucket
//! histogram.
//!
//! **Durable-ack verification.** The client keeps, per key, the latest
//! durably-acked mutation `(batch, seq, expected presence)` and the
//! latest *uncertain* event (a non-durable ack, or an op that was in
//! flight when its shard crashed — those carry the batch but an unknown
//! sequence, so they conservatively win ties). After the load phase it
//! reads back every key whose history ends in a durable ack and counts
//! mismatches: any violation means a durably-acked write was lost,
//! which is exactly what the paper's recovery claim forbids.
//!
//! Mid-run it can also inject a shard crash (after a target number of
//! durable acks) and capture the server's restart verdict.
//!
//! **Exactly-once resolution.** Mutations whose outcome is uncertain (a
//! non-durable ack, or a `Crashed` reply) are not blindly retried:
//! the client sends a `Resolve` for the original request id first. A
//! `done` verdict means the op's checkpoint stamp — and therefore, under
//! a release-ordering discipline, its effect — is durable, so the retry
//! is skipped (`duplicates_avoided`); a not-started verdict makes the
//! retry safe. Request ids double as detectable-operation rids, so each
//! connection brands its ids with `(conn + 1) << 48` to claim its own
//! slot ring on every shard.

use crate::codec::{
    decode_response, encode_request, read_frame, response_id, write_frame, Request, Response,
};
use crate::server::Bind;
use lrp_exec::Xorshift64;
use lrp_lfds::KeyDist;
use lrp_obs::{Hist, Json};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A client connection (TCP or Unix-domain).
pub struct Client {
    stream: ClientStream,
}

enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixStream),
}

impl Client {
    /// Dials the server.
    pub fn dial(bind: &Bind) -> io::Result<Client> {
        let stream = match bind {
            Bind::Tcp(addr) => ClientStream::Tcp(TcpStream::connect(addr)?),
            #[cfg(unix)]
            Bind::Uds(path) => ClientStream::Uds(std::os::unix::net::UnixStream::connect(path)?),
        };
        Ok(Client { stream })
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let payload = encode_request(req);
        match &mut self.stream {
            ClientStream::Tcp(s) => write_frame(s, &payload),
            #[cfg(unix)]
            ClientStream::Uds(s) => write_frame(s, &payload),
        }
    }

    /// Reads the next response frame (replies may arrive out of request
    /// order across shards).
    pub fn recv(&mut self) -> io::Result<Response> {
        let payload = match &mut self.stream {
            ClientStream::Tcp(s) => read_frame(s)?,
            #[cfg(unix)]
            ClientStream::Uds(s) => read_frame(s)?,
        };
        let payload =
            payload.ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        decode_response(&payload).map_err(io::Error::from)
    }

    /// Round-trips one request (only sound with nothing else in flight).
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }
}

// Dummy impls so Client can be stored behind trait objects if needed.
impl Read for Client {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Client {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Uds(s) => s.flush(),
        }
    }
}

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Server address.
    pub target: Bind,
    /// Concurrent connections.
    pub conns: usize,
    /// Total requests across all connections.
    pub requests: u64,
    /// Pipeline depth per connection.
    pub window: usize,
    /// Key distribution over `[1, key_range]`.
    pub key_dist: KeyDist,
    /// Keys are drawn from `[1, key_range]`.
    pub key_range: u64,
    /// Percentage of `Get`s; the rest split evenly between put/delete.
    pub read_pct: u8,
    /// Open-loop target rate in requests/second (0 = closed loop).
    pub target_qps: u64,
    /// Master seed for key draws and op mix.
    pub seed: u64,
    /// Retries per request after an `Overloaded` reply, each honoring
    /// the server's retry-after hint before resending (0 = give up
    /// immediately, the pre-backoff behaviour).
    pub shed_retries: u32,
    /// Inject a `Crash` once this many durable acks have arrived.
    pub crash_at: Option<u64>,
    /// Which shard the injected crash kills.
    pub crash_shard: u32,
    /// Run the durable-ack read-back verification phase.
    pub verify: bool,
    /// Send `Shutdown` when done.
    pub shutdown: bool,
}

impl LoadSpec {
    /// Defaults: 4 connections, 2000 requests, window 16, uniform keys
    /// over `[1, 256]`, 20% reads, closed loop, verify on.
    pub fn new(target: Bind) -> LoadSpec {
        LoadSpec {
            target,
            conns: 4,
            requests: 2000,
            window: 16,
            key_dist: KeyDist::Uniform,
            key_range: 256,
            read_pct: 20,
            target_qps: 0,
            seed: 1,
            shed_retries: 1,
            crash_at: None,
            crash_shard: 0,
            verify: true,
            shutdown: false,
        }
    }
}

/// Per-key verification record (see module docs).
#[derive(Debug, Clone, Copy, Default)]
struct KeyRecord {
    /// Latest durable mutation: (batch, seq, expected-present).
    durable: Option<(u64, u64, bool)>,
    /// Latest uncertain event: (batch, seq-or-MAX).
    uncertain: Option<(u64, u64)>,
}

/// Aggregated load-run results.
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Requests sent (admitted or not).
    pub sent: u64,
    /// Replies received.
    pub completed: u64,
    /// `Get` / `Put` / `Del` requests sent.
    pub gets: u64,
    /// Puts sent.
    pub puts: u64,
    /// Deletes sent.
    pub dels: u64,
    /// Replies with `durable: true`.
    pub acked_durable: u64,
    /// Replies with `durable: false` (retryable).
    pub nondurable: u64,
    /// `Overloaded` replies (admission control shed).
    pub shed: u64,
    /// Requests re-sent after an `Overloaded` reply (each waited out
    /// the server's retry-after hint first).
    pub retried: u64,
    /// Retry-after hints honored (a backoff actually slept).
    pub backoffs: u64,
    /// Cumulative retry-after hint milliseconds honored.
    pub backoff_ms: u64,
    /// `Crashed` replies (in flight during a shard crash).
    pub crashed: u64,
    /// `Resolve` verdicts that found a durable stamp: the op completed,
    /// no retry needed.
    pub resolved_done: u64,
    /// `Resolve` verdicts with no durable stamp: retry is safe.
    pub resolved_not_started: u64,
    /// Retries skipped because resolution proved the op already durably
    /// executed — each one a duplicate effect a blind-retry client
    /// would have risked.
    pub duplicates_avoided: u64,
    /// `Error` replies or transport failures.
    pub errors: u64,
    /// Wall-clock of the load phase, milliseconds.
    pub elapsed_ms: u64,
    /// Completed replies per second.
    pub throughput_rps: f64,
    /// Client-observed latency (microseconds).
    pub lat_mean_us: f64,
    /// Median latency (µs).
    pub lat_p50_us: u64,
    /// Tail latency (µs).
    pub lat_p99_us: u64,
    /// Median latency of durably-acked replies only (µs).
    pub dur_lat_p50_us: u64,
    /// Tail latency of durably-acked replies only (µs).
    pub dur_lat_p99_us: u64,
    /// Round-trip time of the injected crash admin request — the
    /// client-observed crash-restart recovery time (ms).
    pub crash_recovery_ms: Option<u64>,
    /// Keys read back in the verification phase.
    pub verify_checked: u64,
    /// Keys skipped because their history ends in an uncertain event.
    pub verify_skipped: u64,
    /// Keys whose read-back contradicted a durable ack — must be 0.
    pub verify_violations: u64,
    /// First few violating keys, for the report.
    pub violating_keys: Vec<u64>,
    /// The server's crash-restart verdict (JSON), when a crash was
    /// injected.
    pub crash_report: Option<String>,
    /// `lost_acked` parsed from the crash report.
    pub crash_lost_acked: Option<u64>,
    /// `consistent` parsed from the crash report.
    pub crash_consistent: Option<bool>,
}

impl LoadSummary {
    /// True when no durability property was violated: verification found
    /// no contradiction and the injected crash (if any) reported a
    /// consistent restart with zero lost acked keys.
    pub fn durability_ok(&self) -> bool {
        self.verify_violations == 0
            && self.crash_lost_acked.unwrap_or(0) == 0
            && self.crash_consistent.unwrap_or(true)
    }

    /// BENCH-style JSON summary.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("record", Json::Str("load-summary".into())),
            ("sent", Json::U64(self.sent)),
            ("completed", Json::U64(self.completed)),
            ("gets", Json::U64(self.gets)),
            ("puts", Json::U64(self.puts)),
            ("dels", Json::U64(self.dels)),
            ("acked_durable", Json::U64(self.acked_durable)),
            ("nondurable", Json::U64(self.nondurable)),
            ("shed", Json::U64(self.shed)),
            ("retried", Json::U64(self.retried)),
            ("backoffs", Json::U64(self.backoffs)),
            ("backoff_ms", Json::U64(self.backoff_ms)),
            ("crashed", Json::U64(self.crashed)),
            ("resolved_done", Json::U64(self.resolved_done)),
            ("resolved_not_started", Json::U64(self.resolved_not_started)),
            ("duplicates_avoided", Json::U64(self.duplicates_avoided)),
            ("errors", Json::U64(self.errors)),
            ("elapsed_ms", Json::U64(self.elapsed_ms)),
            ("throughput_rps", Json::F64(self.throughput_rps)),
            ("lat_mean_us", Json::F64(self.lat_mean_us)),
            ("lat_p50_us", Json::U64(self.lat_p50_us)),
            ("lat_p99_us", Json::U64(self.lat_p99_us)),
            ("dur_lat_p50_us", Json::U64(self.dur_lat_p50_us)),
            ("dur_lat_p99_us", Json::U64(self.dur_lat_p99_us)),
            (
                "crash_recovery_ms",
                match self.crash_recovery_ms {
                    Some(ms) => Json::U64(ms),
                    None => Json::Null,
                },
            ),
            (
                "shed_rate",
                Json::F64(if self.sent == 0 {
                    0.0
                } else {
                    self.shed as f64 / self.sent as f64
                }),
            ),
            (
                "verify",
                Json::obj([
                    ("checked", Json::U64(self.verify_checked)),
                    ("skipped_uncertain", Json::U64(self.verify_skipped)),
                    ("violations", Json::U64(self.verify_violations)),
                    (
                        "violating_keys",
                        Json::Arr(self.violating_keys.iter().map(|&k| Json::U64(k)).collect()),
                    ),
                ]),
            ),
            (
                "crash",
                match &self.crash_report {
                    Some(json) => Json::parse(json).unwrap_or(Json::Str(json.clone())),
                    None => Json::Null,
                },
            ),
            ("durability_ok", Json::Bool(self.durability_ok())),
        ])
    }
}

/// Shared across connection workers.
struct LoadShared {
    spec: LoadSpec,
    table: Mutex<HashMap<u64, KeyRecord>>,
    durable_acks: AtomicU64,
    crash_sent: AtomicBool,
    crash_report: Mutex<Option<String>>,
    /// Crash admin round-trip, ms (0 = no crash injected/answered).
    crash_recovery_ms: AtomicU64,
    next_id: AtomicU64,
}

struct ConnTally {
    summary: LoadSummary,
    hist: Hist,
    dur_hist: Hist,
}

/// One-shot admin probe: dials, sends a single `Stats`, `Metrics`, or
/// `Ping` request, and returns the reply document (compact JSON). The
/// scrape path `lrp-load --probe` and CI use against a live server.
pub fn probe(target: &Bind, what: &str) -> io::Result<String> {
    let mut c = Client::dial(target)?;
    let req = match what {
        "stats" => Request::Stats { id: 1 },
        "metrics" => Request::Metrics { id: 1 },
        "ping" => Request::Ping { id: 1 },
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unknown probe {other:?} (want stats|metrics|ping)"),
            ))
        }
    };
    match c.call(&req)? {
        Response::Report { json, .. } => Ok(json),
        Response::Pong { .. } => Ok(r#"{"record":"pong"}"#.into()),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected probe reply {other:?}"),
        )),
    }
}

/// Runs the load phase, the optional crash injection, the optional
/// verification phase, and the optional shutdown.
pub fn run_load(spec: &LoadSpec) -> io::Result<LoadSummary> {
    assert!(spec.conns >= 1, "need at least one connection");
    assert!(spec.window >= 1, "window must be at least 1");
    // Fail fast if the server is unreachable before spawning workers.
    drop(Client::dial(&spec.target)?);

    let shared = Arc::new(LoadShared {
        spec: spec.clone(),
        table: Mutex::new(HashMap::new()),
        durable_acks: AtomicU64::new(0),
        crash_sent: AtomicBool::new(false),
        crash_report: Mutex::new(None),
        crash_recovery_ms: AtomicU64::new(0),
        next_id: AtomicU64::new(1),
    });

    let started = Instant::now();
    let quota = |i: usize| {
        spec.requests / spec.conns as u64
            + if (i as u64) < spec.requests % spec.conns as u64 {
                1
            } else {
                0
            }
    };
    let handles: Vec<std::thread::JoinHandle<ConnTally>> = (0..spec.conns)
        .map(|i| {
            let shared = shared.clone();
            let n = quota(i);
            std::thread::Builder::new()
                .name(format!("load-{i}"))
                .spawn(move || conn_worker(i, n, &shared))
                .expect("spawn load worker")
        })
        .collect();

    let mut total = LoadSummary::default();
    let mut hist = Hist::new();
    let mut dur_hist = Hist::new();
    for h in handles {
        let t = h.join().expect("load worker panicked");
        total.sent += t.summary.sent;
        total.completed += t.summary.completed;
        total.gets += t.summary.gets;
        total.puts += t.summary.puts;
        total.dels += t.summary.dels;
        total.acked_durable += t.summary.acked_durable;
        total.nondurable += t.summary.nondurable;
        total.shed += t.summary.shed;
        total.retried += t.summary.retried;
        total.backoffs += t.summary.backoffs;
        total.backoff_ms += t.summary.backoff_ms;
        total.crashed += t.summary.crashed;
        total.resolved_done += t.summary.resolved_done;
        total.resolved_not_started += t.summary.resolved_not_started;
        total.duplicates_avoided += t.summary.duplicates_avoided;
        total.errors += t.summary.errors;
        hist.merge(&t.hist);
        dur_hist.merge(&t.dur_hist);
    }
    total.elapsed_ms = (started.elapsed().as_millis() as u64).max(1);
    total.throughput_rps = total.completed as f64 * 1000.0 / total.elapsed_ms as f64;
    if !hist.is_empty() {
        total.lat_mean_us = hist.mean();
        total.lat_p50_us = hist.percentile(0.5);
        total.lat_p99_us = hist.percentile(0.99);
    }
    if !dur_hist.is_empty() {
        total.dur_lat_p50_us = dur_hist.percentile(0.5);
        total.dur_lat_p99_us = dur_hist.percentile(0.99);
    }
    let recovery = shared.crash_recovery_ms.load(Ordering::Relaxed);
    if recovery > 0 {
        total.crash_recovery_ms = Some(recovery);
    }
    total.crash_report = shared.crash_report.lock().unwrap().clone();
    if let Some(json) = &total.crash_report {
        if let Ok(doc) = Json::parse(json) {
            total.crash_lost_acked = doc.get("lost_acked").and_then(Json::as_u64);
            total.crash_consistent = doc.get("consistent").and_then(Json::as_bool);
        }
    }

    if spec.verify {
        verify_phase(&shared, &mut total)?;
    }
    if spec.shutdown {
        let mut c = Client::dial(&spec.target)?;
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        match c.call(&Request::Shutdown { id }) {
            Ok(Response::ShuttingDown { .. }) => {}
            Ok(other) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected shutdown reply {other:?}"),
                ))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(total)
}

fn conn_worker(conn_idx: usize, quota: u64, shared: &Arc<LoadShared>) -> ConnTally {
    let mut tally = ConnTally {
        summary: LoadSummary::default(),
        hist: Hist::new(),
        dur_hist: Hist::new(),
    };
    let mut client = match Client::dial(&shared.spec.target) {
        Ok(c) => c,
        Err(_) => {
            tally.summary.errors += quota;
            return tally;
        }
    };
    let spec = &shared.spec;
    let mut rng = Xorshift64::new(
        spec.seed
            .wrapping_mul(0x5851_F42D)
            .wrapping_add(conn_idx as u64 + 1),
    );
    let sampler = spec.key_dist.sampler(spec.key_range);
    // Request ids double as detectable-operation rids: each connection
    // brands its ids so it owns one client row of every shard's slot
    // table (`rid_client = id >> 48`); admin ids from the shared counter
    // stay below the brand and never collide.
    let rid_base = (conn_idx as u64 + 1) << 48;
    let mut next_seq = 0u64;
    // In-flight request id → (send time, op kind, key, attempts).
    // Kinds: 0 get, 1 put, 2 del, 3 crash admin, 10+k resolve of kind k.
    let mut outstanding: HashMap<u64, (Instant, u8, u64, u32)> = HashMap::new();
    // Shed requests awaiting re-send: (kind, key, attempts so far).
    let mut retryq: std::collections::VecDeque<(u8, u64, u32)> = std::collections::VecDeque::new();
    // Uncertain mutations awaiting a `Resolve`: (kind, key, rid, attempts).
    let mut resolveq: std::collections::VecDeque<(u8, u64, u64, u32)> =
        std::collections::VecDeque::new();
    // Earliest instant a retry may be sent (the honored retry-after hint).
    let mut backoff_until: Option<Instant> = None;
    // Open-loop pacing.
    let pace = if spec.target_qps > 0 {
        Some(Duration::from_nanos(
            1_000_000_000u64 * spec.conns as u64 / spec.target_qps.max(1),
        ))
    } else {
        None
    };
    let mut next_send = Instant::now();

    // `drawn` counts fresh quota draws; retries ride on top of the quota.
    let mut drawn = 0u64;
    while drawn < quota || !outstanding.is_empty() || !retryq.is_empty() || !resolveq.is_empty() {
        let window_full = outstanding.len() >= spec.window;
        let backoff_over = backoff_until.is_none_or(|t| Instant::now() >= t);
        if !resolveq.is_empty() && !window_full {
            // Ask before retrying: a durable stamp for the uncertain op
            // means the effect already persisted.
            let (kind, key, rid, attempts) = resolveq.pop_front().unwrap();
            next_seq += 1;
            let id = rid_base | next_seq;
            if client.send(&Request::Resolve { id, key, rid }).is_err() {
                tally.summary.errors += 1;
                break;
            }
            outstanding.insert(id, (Instant::now(), 10 + kind, key, attempts));
            tally.summary.sent += 1;
            continue;
        }
        if !retryq.is_empty() && backoff_over && !window_full {
            // Re-send a shed request (its hint has been waited out).
            let (kind, key, attempts) = retryq.pop_front().unwrap();
            next_seq += 1;
            let id = rid_base | next_seq;
            let req = match kind {
                0 => Request::Get { id, key },
                1 => Request::Put { id, key },
                _ => Request::Del { id, key },
            };
            if client.send(&req).is_err() {
                tally.summary.errors += 1;
                break;
            }
            outstanding.insert(id, (Instant::now(), kind, key, attempts));
            tally.summary.sent += 1;
            tally.summary.retried += 1;
            continue;
        }
        if drawn < quota && !window_full {
            if let Some(gap) = pace {
                let now = Instant::now();
                if now < next_send {
                    std::thread::sleep(next_send - now);
                }
                next_send += gap;
            }
            let key = sampler.draw(&mut rng);
            let is_read = rng.below(100) < spec.read_pct as u64;
            let is_insert = rng.below(2) == 0;
            next_seq += 1;
            let id = rid_base | next_seq;
            let (req, kind) = if is_read {
                tally.summary.gets += 1;
                (Request::Get { id, key }, 0u8)
            } else if is_insert {
                tally.summary.puts += 1;
                (Request::Put { id, key }, 1u8)
            } else {
                tally.summary.dels += 1;
                (Request::Del { id, key }, 2u8)
            };
            if client.send(&req).is_err() {
                tally.summary.errors += 1;
                break;
            }
            outstanding.insert(id, (Instant::now(), kind, key, 0));
            tally.summary.sent += 1;
            drawn += 1;
            maybe_inject_crash(conn_idx, shared, &mut client, &mut outstanding);
            continue;
        }
        if outstanding.is_empty() {
            // Only retries left and their backoff hasn't elapsed: sleep
            // to the deadline instead of spinning.
            if let Some(t) = backoff_until {
                let now = Instant::now();
                if t > now {
                    std::thread::sleep(t - now);
                }
            }
            backoff_until = None;
            continue;
        }
        // Window full or quota reached: reap one reply.
        let resp = match client.recv() {
            Ok(r) => r,
            Err(_) => {
                tally.summary.errors += outstanding.len() as u64;
                break;
            }
        };
        absorb_reply(
            &resp,
            shared,
            &mut outstanding,
            &mut retryq,
            &mut resolveq,
            &mut backoff_until,
            &mut tally,
        );
    }
    tally
}

/// Sends the admin `Crash` once the durable-ack threshold is crossed
/// (only connection 0 injects, so exactly one crash fires).
fn maybe_inject_crash(
    conn_idx: usize,
    shared: &Arc<LoadShared>,
    client: &mut Client,
    outstanding: &mut HashMap<u64, (Instant, u8, u64, u32)>,
) {
    let Some(at) = shared.spec.crash_at else {
        return;
    };
    if conn_idx != 0
        || shared.durable_acks.load(Ordering::Relaxed) < at
        || shared.crash_sent.swap(true, Ordering::SeqCst)
    {
        return;
    }
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    if client
        .send(&Request::Crash {
            id,
            shard: shared.spec.crash_shard,
        })
        .is_ok()
    {
        // Track as in-flight admin: kind 3 is "crash".
        outstanding.insert(id, (Instant::now(), 3, 0, 0));
    }
}

#[allow(clippy::too_many_arguments)]
fn absorb_reply(
    resp: &Response,
    shared: &Arc<LoadShared>,
    outstanding: &mut HashMap<u64, (Instant, u8, u64, u32)>,
    retryq: &mut std::collections::VecDeque<(u8, u64, u32)>,
    resolveq: &mut std::collections::VecDeque<(u8, u64, u64, u32)>,
    backoff_until: &mut Option<Instant>,
    tally: &mut ConnTally,
) {
    let id = response_id(resp);
    let Some((sent_at, kind, key, attempts)) = outstanding.remove(&id) else {
        return; // unsolicited (e.g. Error{id:0}); ignore
    };
    let lat_us = (sent_at.elapsed().as_micros() as u64).max(1);
    tally.hist.record(lat_us);
    tally.summary.completed += 1;
    let mutation = kind == 1 || kind == 2;
    match resp {
        Response::Value { durable, .. } => {
            if *durable {
                tally.summary.acked_durable += 1;
                tally.dur_hist.record(lat_us);
                shared.durable_acks.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.summary.nondurable += 1;
            }
        }
        Response::Done {
            durable,
            batch,
            seq,
            ..
        } => {
            if *durable {
                tally.summary.acked_durable += 1;
                tally.dur_hist.record(lat_us);
                shared.durable_acks.fetch_add(1, Ordering::Relaxed);
            } else {
                tally.summary.nondurable += 1;
            }
            if mutation {
                {
                    let mut table = shared.table.lock().unwrap();
                    let rec = table.entry(key).or_default();
                    if *durable {
                        let expect_present = kind == 1;
                        let cand = (*batch, *seq, expect_present);
                        if rec.durable.is_none_or(|(b, s, _)| (b, s) < (*batch, *seq)) {
                            rec.durable = Some(cand);
                        }
                    } else if rec.uncertain.is_none_or(|u| u < (*batch, *seq)) {
                        rec.uncertain = Some((*batch, *seq));
                    }
                }
                if !*durable {
                    // Uncertain outcome: resolve before any retry.
                    resolveq.push_back((kind, key, id, attempts));
                }
            }
        }
        Response::Overloaded { retry_after_ms, .. } => {
            tally.summary.shed += 1;
            if kind <= 2 && attempts < shared.spec.shed_retries {
                // Honor the server's hint: queue the re-send and push the
                // backoff deadline out to cover it.
                retryq.push_back((kind, key, attempts + 1));
                let hint = (*retry_after_ms as u64).min(250);
                tally.summary.backoffs += 1;
                tally.summary.backoff_ms += hint;
                let until = Instant::now() + Duration::from_millis(hint);
                *backoff_until = Some(match *backoff_until {
                    Some(t) if t > until => t,
                    _ => until,
                });
            }
        }
        Response::Crashed { batch, .. } => {
            tally.summary.crashed += 1;
            if mutation {
                {
                    let mut table = shared.table.lock().unwrap();
                    let rec = table.entry(key).or_default();
                    // Unknown sequence: conservatively later than anything
                    // executed in the same batch.
                    if rec.uncertain.is_none_or(|u| u < (*batch, u64::MAX)) {
                        rec.uncertain = Some((*batch, u64::MAX));
                    }
                }
                // The crashed shard restarted with its recovered slot
                // table; resolve the op instead of blindly retrying.
                resolveq.push_back((kind, key, id, attempts));
            }
        }
        Response::Report { json, .. } => {
            if kind == 3 {
                *shared.crash_report.lock().unwrap() = Some(json.clone());
                // Crash admin round-trip = client-observed restart time.
                shared.crash_recovery_ms.store(
                    (sent_at.elapsed().as_millis() as u64).max(1),
                    Ordering::Relaxed,
                );
            }
        }
        Response::Resolved { done, batch, .. } => {
            let orig_kind = kind.saturating_sub(10);
            if *done {
                // The uncertain op durably executed: no retry, and a
                // blind-retry client would have duplicated the effect.
                tally.summary.resolved_done += 1;
                tally.summary.duplicates_avoided += 1;
                let expect_present = orig_kind == 1;
                let mut table = shared.table.lock().unwrap();
                let rec = table.entry(key).or_default();
                // The stamp records the batch but not the in-batch rank,
                // so claim sequence 0: the verdict only supersedes
                // strictly-earlier batches, and any same-batch
                // uncertainty still forces a verification skip.
                if rec.durable.is_none_or(|(b, s, _)| (b, s) < (*batch, 0)) {
                    rec.durable = Some((*batch, 0, expect_present));
                }
            } else {
                // No durable stamp: the retry cannot duplicate anything
                // (and set semantics absorb the stamp-lost-but-effect-
                // durable window).
                tally.summary.resolved_not_started += 1;
                if (1..=2).contains(&orig_kind) && attempts < shared.spec.shed_retries.max(1) {
                    retryq.push_back((orig_kind, key, attempts + 1));
                }
            }
        }
        Response::Error { .. } => {
            tally.summary.errors += 1;
        }
        Response::Pong { .. } | Response::ShuttingDown { .. } => {}
    }
}

/// Reads back every key whose history ends in a durable ack and checks
/// presence against the acked expectation.
fn verify_phase(shared: &Arc<LoadShared>, total: &mut LoadSummary) -> io::Result<()> {
    let table = shared.table.lock().unwrap().clone();
    let mut client = Client::dial(&shared.spec.target)?;
    for (key, rec) in table {
        let Some((b, s, expect_present)) = rec.durable else {
            continue;
        };
        if let Some(u) = rec.uncertain {
            if u >= (b, s) {
                total.verify_skipped += 1;
                continue;
            }
        }
        let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
        let resp = client.call(&Request::Get { id, key })?;
        match resp {
            Response::Value { present, .. } => {
                total.verify_checked += 1;
                if present != expect_present {
                    total.verify_violations += 1;
                    if total.violating_keys.len() < 16 {
                        total.violating_keys.push(key);
                    }
                }
            }
            Response::Overloaded { retry_after_ms, .. } => {
                // Verification is sequential, so overload here is
                // transient backlog; honor the hint once.
                std::thread::sleep(Duration::from_millis(retry_after_ms as u64 + 1));
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                if let Response::Value { present, .. } = client.call(&Request::Get { id, key })? {
                    total.verify_checked += 1;
                    if present != expect_present {
                        total.verify_violations += 1;
                        if total.violating_keys.len() < 16 {
                            total.violating_keys.push(key);
                        }
                    }
                }
            }
            _ => total.errors += 1,
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_json_reports_durability_verdict() {
        let mut s = LoadSummary {
            sent: 100,
            completed: 98,
            shed: 2,
            ..LoadSummary::default()
        };
        let doc = Json::parse(&s.to_json().to_compact()).unwrap();
        assert_eq!(doc.get("record").unwrap().as_str(), Some("load-summary"));
        assert_eq!(doc.get("durability_ok").unwrap().as_bool(), Some(true));
        s.verify_violations = 1;
        let doc = Json::parse(&s.to_json().to_compact()).unwrap();
        assert_eq!(doc.get("durability_ok").unwrap().as_bool(), Some(false));
    }
}
