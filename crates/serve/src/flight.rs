//! Crash flight recorder: a bounded per-shard ring of the most recent
//! request / batch / persist events, dumped to JSONL when the shard
//! crash-restarts.
//!
//! A `Crashed` reply tells the client only that its op was in flight;
//! the flight dump tells the operator *which* ops were in flight, what
//! the shard was doing in the batches leading up to the crash, and what
//! the crash outcome was — enough to explain every `Crashed` reply
//! post-hoc without re-running the workload. The ring is worker-local
//! (no locks on the hot path) and drop-oldest with counted drops, the
//! same truncation contract as the obs event ring and span log.

use lrp_obs::Json;
use std::io::Write;
use std::path::Path;

/// One recorded flight event. Times are milliseconds since server
/// start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightEvent {
    /// A batch closed and began executing.
    BatchStart {
        /// Milliseconds since server start.
        t_ms: u64,
        /// Shard batch number.
        batch: u64,
        /// Requests in the batch.
        size: u32,
    },
    /// One request's outcome within a batch.
    Request {
        /// Milliseconds since server start.
        t_ms: u64,
        /// Shard batch number.
        batch: u64,
        /// Wire request id.
        id: u64,
        /// Op kind (0 get, 1 put, 2 del).
        kind: u8,
        /// Key operated on.
        key: u64,
        /// The reply carried `durable: true`.
        durable: bool,
        /// Simulated persist stamp justifying a durable ack (0 when
        /// non-durable).
        stamp: u64,
    },
    /// A batch finished persist stamping and commit.
    Persist {
        /// Milliseconds since server start.
        t_ms: u64,
        /// Shard batch number.
        batch: u64,
        /// Final persist stamp of the batch (0 = nothing persisted).
        final_stamp: u64,
        /// Durably-acked ops in the batch.
        durable: u32,
        /// Retryable (non-durable) ops in the batch.
        nondurable: u32,
    },
    /// The shard crash-restarted.
    Crash {
        /// Milliseconds since server start.
        t_ms: u64,
        /// Batch number the crash interrupted.
        batch: u64,
        /// Sampled crash stamp (persist-schedule cut), if any persist
        /// had happened.
        crash_stamp: u64,
        /// Null recovery succeeded (recovered state consistent with
        /// the persist schedule).
        recovered: bool,
        /// Durably-acked ops lost by the crash (must stay 0).
        lost: u32,
        /// The in-flight ops that received `Crashed` replies:
        /// `(id, kind, key)`.
        inflight: Vec<(u64, u8, u64)>,
    },
}

impl FlightEvent {
    fn to_json(&self) -> Json {
        match self {
            FlightEvent::BatchStart { t_ms, batch, size } => Json::obj([
                ("event", Json::Str("batch-start".into())),
                ("t_ms", Json::U64(*t_ms)),
                ("batch", Json::U64(*batch)),
                ("size", Json::U64(*size as u64)),
            ]),
            FlightEvent::Request {
                t_ms,
                batch,
                id,
                kind,
                key,
                durable,
                stamp,
            } => Json::obj([
                ("event", Json::Str("request".into())),
                ("t_ms", Json::U64(*t_ms)),
                ("batch", Json::U64(*batch)),
                ("id", Json::U64(*id)),
                ("kind", Json::U64(*kind as u64)),
                ("key", Json::U64(*key)),
                ("durable", Json::Bool(*durable)),
                ("stamp", Json::U64(*stamp)),
            ]),
            FlightEvent::Persist {
                t_ms,
                batch,
                final_stamp,
                durable,
                nondurable,
            } => Json::obj([
                ("event", Json::Str("persist".into())),
                ("t_ms", Json::U64(*t_ms)),
                ("batch", Json::U64(*batch)),
                ("final_stamp", Json::U64(*final_stamp)),
                ("durable", Json::U64(*durable as u64)),
                ("nondurable", Json::U64(*nondurable as u64)),
            ]),
            FlightEvent::Crash {
                t_ms,
                batch,
                crash_stamp,
                recovered,
                lost,
                inflight,
            } => Json::obj([
                ("event", Json::Str("crash".into())),
                ("t_ms", Json::U64(*t_ms)),
                ("batch", Json::U64(*batch)),
                ("crash_stamp", Json::U64(*crash_stamp)),
                ("recovered", Json::Bool(*recovered)),
                ("lost", Json::U64(*lost as u64)),
                (
                    "inflight",
                    Json::Arr(
                        inflight
                            .iter()
                            .map(|(id, kind, key)| {
                                Json::obj([
                                    ("id", Json::U64(*id)),
                                    ("kind", Json::U64(*kind as u64)),
                                    ("key", Json::U64(*key)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }
}

/// Bounded drop-oldest ring of [`FlightEvent`]s, worker-local.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: std::collections::VecDeque<FlightEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` events (`0` disables
    /// retention but still counts).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            ring: std::collections::VecDeque::with_capacity(cap.min(1024)),
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn push(&mut self, ev: FlightEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() >= self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ev);
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted or refused so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the ring as JSONL: a `flight-dump` header line, then one
    /// line per retained event, oldest first.
    pub fn to_jsonl(&self, shard: usize, crash_no: u64) -> String {
        let mut out = String::new();
        let header = Json::obj([
            ("record", Json::Str("flight-dump".into())),
            ("shard", Json::U64(shard as u64)),
            ("crash", Json::U64(crash_no)),
            ("events", Json::U64(self.ring.len() as u64)),
            ("dropped", Json::U64(self.dropped)),
        ]);
        out.push_str(&header.to_compact());
        out.push('\n');
        for ev in &self.ring {
            out.push_str(&ev.to_json().to_compact());
            out.push('\n');
        }
        out
    }

    /// Appends the JSONL dump to `<dir>/flight-shard-<shard>.jsonl`
    /// (one dump per crash; successive crashes append). Returns the
    /// path written.
    pub fn dump(
        &self,
        dir: &Path,
        shard: usize,
        crash_no: u64,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-shard-{shard}.jsonl"));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        f.write_all(self.to_jsonl(shard, crash_no).as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for batch in 0..5 {
            r.push(FlightEvent::BatchStart {
                t_ms: batch,
                batch,
                size: 1,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let dump = r.to_jsonl(0, 1);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(header.get("record").unwrap().as_str(), Some("flight-dump"));
        assert_eq!(header.get("dropped").unwrap().as_u64(), Some(2));
        // Oldest retained event is batch 2 (0 and 1 were evicted).
        let first = Json::parse(lines[1]).unwrap();
        assert_eq!(first.get("batch").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn crash_event_names_inflight_ops() {
        let mut r = FlightRecorder::new(8);
        r.push(FlightEvent::Crash {
            t_ms: 42,
            batch: 7,
            crash_stamp: 900,
            recovered: true,
            lost: 0,
            inflight: vec![(11, 1, 3), (12, 0, 5)],
        });
        let dump = r.to_jsonl(1, 1);
        let line = dump.lines().nth(1).unwrap();
        let ev = Json::parse(line).unwrap();
        assert_eq!(ev.get("event").unwrap().as_str(), Some("crash"));
        let inflight = ev.get("inflight").unwrap().as_arr().unwrap();
        assert_eq!(inflight.len(), 2);
        assert_eq!(inflight[0].get("id").unwrap().as_u64(), Some(11));
        assert_eq!(inflight[1].get("key").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn dump_appends_per_crash() {
        let dir = std::env::temp_dir().join(format!("lrp-flight-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = FlightRecorder::new(4);
        r.push(FlightEvent::Persist {
            t_ms: 1,
            batch: 0,
            final_stamp: 10,
            durable: 2,
            nondurable: 1,
        });
        let p1 = r.dump(&dir, 0, 1).unwrap();
        let p2 = r.dump(&dir, 0, 2).unwrap();
        assert_eq!(p1, p2);
        let text = std::fs::read_to_string(&p1).unwrap();
        let headers = text.lines().filter(|l| l.contains("flight-dump")).count();
        assert_eq!(headers, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
