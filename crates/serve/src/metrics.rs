//! JSONL metrics export for the serving layer.
//!
//! The stream extends the workspace's metrics vocabulary (see
//! `lrp_obs::metrics`) with three service-level record types:
//!
//! * `serve-header` — one line: the server's static configuration;
//! * `serve-shard` — one line per shard: lifetime counters, the merged
//!   simulator [`Stats`], and the three persist-latency histograms;
//! * `serve-interval` — per-shard time series from a
//!   [`GaugeSeries`](lrp_obs::GaugeSeries): queue-depth high-water and
//!   enqueue/shed/complete/batch counter deltas per wall-clock window.

use crate::shard::ShardCounters;
use lrp_obs::metrics::{hist_json, stats_json, METRICS_VERSION};
use lrp_obs::{CritSegKind, CritSummary, GaugeSample, Hist, Json, Stats};

/// Names for the four [`lrp_obs::GAUGE_COUNTERS`] slots the serving
/// layer uses, in slot order.
pub const GAUGE_SLOT_NAMES: [&str; 4] = ["enqueued", "shed", "completed", "batches"];

/// Counter slot: requests admitted to a shard queue.
pub const SLOT_ENQUEUED: usize = 0;
/// Counter slot: requests rejected by admission control.
pub const SLOT_SHED: usize = 1;
/// Counter slot: requests answered (any reply type).
pub const SLOT_COMPLETED: usize = 2;
/// Counter slot: batches executed.
pub const SLOT_BATCHES: usize = 3;

/// The `serve-header` line.
#[allow(clippy::too_many_arguments)]
pub fn header_json(
    shards: usize,
    structure: &str,
    mechanism: &str,
    nvm_mode: &str,
    sim_threads: u64,
    batch_max: u64,
    batch_wait_ms: u64,
    queue_depth: u64,
) -> Json {
    Json::obj([
        ("record", Json::Str("serve-header".into())),
        ("version", Json::U64(METRICS_VERSION)),
        ("shards", Json::U64(shards as u64)),
        ("structure", Json::Str(structure.into())),
        ("mechanism", Json::Str(mechanism.into())),
        ("nvm_mode", Json::Str(nvm_mode.into())),
        ("sim_threads", Json::U64(sim_threads)),
        ("batch_max", Json::U64(batch_max)),
        ("batch_wait_ms", Json::U64(batch_wait_ms)),
        ("queue_depth", Json::U64(queue_depth)),
    ])
}

/// Counters as a JSON object (shared by `serve-shard` lines and the
/// `Stats` admin reply).
pub fn counters_json(c: &ShardCounters) -> Json {
    Json::obj([
        ("requests", Json::U64(c.requests)),
        ("batches", Json::U64(c.batches)),
        ("acked_durable", Json::U64(c.acked_durable)),
        ("nondurable", Json::U64(c.nondurable)),
        ("downgrades", Json::U64(c.downgrades)),
        ("crashes", Json::U64(c.crashes)),
        ("recovery_failures", Json::U64(c.recovery_failures)),
        ("lost_acked", Json::U64(c.lost_acked)),
        ("obs_dropped", Json::U64(c.obs_dropped)),
        ("slot_torn", Json::U64(c.slot_torn)),
    ])
}

/// Detectable-operation state for one shard inside the `serve-metrics`
/// snapshot: slot-table occupancy, resolver size, the verdict split of
/// answered `Resolve` requests, and their service latency.
#[derive(Debug, Clone, Default)]
pub struct DetectStats {
    /// Committed slot records currently held.
    pub slot_occupied: u64,
    /// Slot-table capacity (`clients × ring`; 0 = detection off).
    pub slot_capacity: u64,
    /// Rids the current resolver answers `Done` for.
    pub resolver_entries: u64,
    /// `Resolve` requests answered `done = true`.
    pub resolved_done: u64,
    /// `Resolve` requests answered `done = false`.
    pub resolved_not_started: u64,
    /// Wire-to-reply latency of `Resolve` requests (µs).
    pub resolve_latency: Hist,
}

/// The `detect` section of one shard's `serve-metrics` entry.
pub fn detect_json(d: &DetectStats) -> Json {
    Json::obj([
        ("slot_occupied", Json::U64(d.slot_occupied)),
        ("slot_capacity", Json::U64(d.slot_capacity)),
        ("resolver_entries", Json::U64(d.resolver_entries)),
        ("resolved_done", Json::U64(d.resolved_done)),
        ("resolved_not_started", Json::U64(d.resolved_not_started)),
        ("resolve_latency_us", hist_json(&d.resolve_latency)),
    ])
}

/// Live telemetry counts for one shard inside the `serve-metrics`
/// snapshot (the `Metrics` admin reply).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardTelemetry {
    /// Request spans currently retained in the shard's span log.
    pub spans: u64,
    /// Spans evicted or refused by the bounded span log.
    pub span_dropped: u64,
    /// Flight-recorder events currently retained.
    pub flight_events: u64,
    /// Flight-recorder events evicted by the bounded ring.
    pub flight_dropped: u64,
}

/// The compact per-shard critical-path digest inside the
/// `serve-metrics` snapshot: per-segment cycle totals plus the
/// conservation verdict (full histograms stay in the JSONL export).
pub fn crit_totals_json(crit: &CritSummary) -> Json {
    let mut segs = Vec::with_capacity(CritSegKind::ALL.len());
    for kind in CritSegKind::ALL {
        segs.push((kind.name(), Json::U64(crit.seg_cycles[kind.idx()])));
    }
    Json::obj([
        ("paths", Json::U64(crit.paths())),
        ("cycles", Json::U64(crit.total_cycles())),
        ("max_path", Json::U64(crit.max_path)),
        ("segments", Json::obj(segs)),
        (
            "conservation_violations",
            Json::U64(crit.audit.total_violations()),
        ),
    ])
}

/// One shard's entry in the `serve-metrics` snapshot.
#[allow(clippy::too_many_arguments)]
pub fn metrics_shard_json(
    shard: usize,
    counters: &ShardCounters,
    committed: u64,
    queue_depth: u64,
    gauge_totals: &[u64; 4],
    throughput_rps: f64,
    ack_latency: &Hist,
    durable_ack_latency: &Hist,
    telem: &ShardTelemetry,
    crit: &CritSummary,
    detect: &DetectStats,
) -> Json {
    let mut totals = Vec::with_capacity(GAUGE_SLOT_NAMES.len());
    for (i, name) in GAUGE_SLOT_NAMES.iter().enumerate() {
        totals.push((*name, Json::U64(gauge_totals[i])));
    }
    Json::obj([
        ("shard", Json::U64(shard as u64)),
        ("queue_depth", Json::U64(queue_depth)),
        ("counters", counters_json(counters)),
        ("committed_keys", Json::U64(committed)),
        ("totals", Json::obj(totals)),
        ("throughput_rps", Json::F64(throughput_rps)),
        ("ack_latency_us", hist_json(ack_latency)),
        ("durable_ack_latency_us", hist_json(durable_ack_latency)),
        (
            "telemetry",
            Json::obj([
                ("spans", Json::U64(telem.spans)),
                ("span_dropped", Json::U64(telem.span_dropped)),
                ("flight_events", Json::U64(telem.flight_events)),
                ("flight_dropped", Json::U64(telem.flight_dropped)),
            ]),
        ),
        ("critpath", crit_totals_json(crit)),
        ("detect", detect_json(detect)),
    ])
}

/// The `serve-metrics` snapshot document: the machine-readable scrape
/// reply to the `Metrics` admin request.
pub fn metrics_snapshot_json(uptime_ms: u64, shards: Vec<Json>, totals: Json) -> Json {
    Json::obj([
        ("record", Json::Str("serve-metrics".into())),
        ("version", Json::U64(METRICS_VERSION)),
        ("uptime_ms", Json::U64(uptime_ms)),
        ("shards", Json::Arr(shards)),
        ("totals", totals),
    ])
}

/// The `serve-shard` line for one shard.
pub fn shard_json(
    shard: usize,
    counters: &ShardCounters,
    committed: u64,
    stats: &Stats,
    hists: &[Hist; 3],
) -> Json {
    Json::obj([
        ("record", Json::Str("serve-shard".into())),
        ("shard", Json::U64(shard as u64)),
        ("counters", counters_json(counters)),
        ("committed_keys", Json::U64(committed)),
        ("stats", stats_json(stats)),
        ("flush_to_ack", hist_json(&hists[0])),
        ("release_to_persist", hist_json(&hists[1])),
        ("ret_residency", hist_json(&hists[2])),
    ])
}

/// One `serve-interval` line: shard queue gauge + counter deltas over a
/// wall-clock window (milliseconds since server start).
pub fn interval_json(shard: usize, s: &GaugeSample) -> Json {
    let mut counts = Vec::with_capacity(GAUGE_SLOT_NAMES.len());
    for (i, name) in GAUGE_SLOT_NAMES.iter().enumerate() {
        counts.push((*name, Json::U64(s.counts[i])));
    }
    Json::obj([
        ("record", Json::Str("serve-interval".into())),
        ("shard", Json::U64(shard as u64)),
        ("start_ms", Json::U64(s.start)),
        ("end_ms", Json::U64(s.end)),
        ("queue_high", Json::U64(s.high)),
        ("queue_last", Json::U64(s.last)),
        ("counts", Json::obj(counts)),
    ])
}

/// A [`CrashOutcome`](crate::shard::CrashOutcome) as the JSON document
/// returned in the `Crash` admin reply.
pub fn crash_json(shard: usize, o: &crate::shard::CrashOutcome) -> Json {
    Json::obj([
        ("record", Json::Str("serve-crash".into())),
        ("shard", Json::U64(shard as u64)),
        ("batch", Json::U64(o.batch)),
        (
            "crash_stamp",
            match o.crash_stamp {
                Some(s) => Json::U64(s),
                None => Json::Null,
            },
        ),
        ("consistent", Json::Bool(o.consistent)),
        ("recovered_keys", Json::U64(o.recovered as u64)),
        ("lost_acked", Json::U64(o.lost_acked.len() as u64)),
        ("phantom", Json::U64(o.phantom.len() as u64)),
        ("audit_points", Json::U64(o.audit_points as u64)),
        ("audit_failures", Json::U64(o.audit_failures as u64)),
        ("stamps", Json::U64(o.stamps)),
        ("torn_stamps", Json::U64(o.torn_stamps)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_lines_parse_back_and_name_every_slot() {
        let h = header_json(2, "hashmap", "lrp", "cached", 2, 16, 5, 64);
        let parsed = Json::parse(&h.to_compact()).unwrap();
        assert_eq!(parsed.get("record").unwrap().as_str(), Some("serve-header"));
        assert_eq!(parsed.get("shards").unwrap().as_u64(), Some(2));

        let mut sample = GaugeSample {
            start: 0,
            end: 250,
            high: 9,
            last: 1,
            ..GaugeSample::default()
        };
        sample.counts[SLOT_ENQUEUED] = 40;
        sample.counts[SLOT_SHED] = 3;
        let line = interval_json(1, &sample);
        let parsed = Json::parse(&line.to_compact()).unwrap();
        let counts = parsed.get("counts").unwrap();
        assert_eq!(counts.get("enqueued").unwrap().as_u64(), Some(40));
        assert_eq!(counts.get("shed").unwrap().as_u64(), Some(3));
        assert_eq!(counts.get("completed").unwrap().as_u64(), Some(0));
        assert_eq!(parsed.get("queue_high").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn shard_metrics_entry_names_every_critpath_segment() {
        let doc = metrics_shard_json(
            0,
            &ShardCounters::default(),
            12,
            0,
            &[0; 4],
            0.0,
            &Hist::new(),
            &Hist::new(),
            &ShardTelemetry::default(),
            &CritSummary::default(),
            &DetectStats::default(),
        );
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        let crit = parsed.get("critpath").unwrap();
        assert_eq!(crit.get("paths").unwrap().as_u64(), Some(0));
        assert_eq!(
            crit.get("conservation_violations").unwrap().as_u64(),
            Some(0)
        );
        let segs = crit.get("segments").unwrap();
        for kind in CritSegKind::ALL {
            assert_eq!(segs.get(kind.name()).unwrap().as_u64(), Some(0));
        }
    }

    #[test]
    fn shard_metrics_entry_carries_detect_state() {
        let mut d = DetectStats {
            slot_occupied: 7,
            slot_capacity: 2048,
            resolver_entries: 7,
            resolved_done: 3,
            resolved_not_started: 2,
            resolve_latency: Hist::new(),
        };
        d.resolve_latency.record(120);
        let doc = metrics_shard_json(
            1,
            &ShardCounters::default(),
            0,
            0,
            &[0; 4],
            0.0,
            &Hist::new(),
            &Hist::new(),
            &ShardTelemetry::default(),
            &CritSummary::default(),
            &d,
        );
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        let det = parsed.get("detect").unwrap();
        assert_eq!(det.get("slot_occupied").unwrap().as_u64(), Some(7));
        assert_eq!(det.get("slot_capacity").unwrap().as_u64(), Some(2048));
        assert_eq!(det.get("resolved_done").unwrap().as_u64(), Some(3));
        assert_eq!(det.get("resolved_not_started").unwrap().as_u64(), Some(2));
        assert!(det.get("resolve_latency_us").is_some());
        // Counters now surface torn-stamp detection.
        let c = parsed.get("counters").unwrap();
        assert_eq!(c.get("slot_torn").unwrap().as_u64(), Some(0));
    }
}
