//! The service front-end: listener, router, per-shard queues and
//! batching workers, admission control, crash administration, and
//! shutdown.
//!
//! Threading model: one accept thread, one detached reader thread per
//! connection, and one worker thread per shard. Readers route requests
//! by key hash into a bounded per-shard queue (full queue ⇒ typed
//! `Overloaded` reply — the reader never blocks on a slow shard, so an
//! overloaded shard cannot stall the accept path). Each worker drains
//! its queue in batches (closed by size or deadline), executes the
//! batch on its [`Shard`], and writes replies directly to the owning
//! connections; replies are length-prefixed frames tagged with the
//! request id, so they may interleave arbitrarily with other traffic on
//! the same connection.

use crate::codec::{decode_request, encode_response, read_frame, write_frame, Request, Response};
use crate::flight::{FlightEvent, FlightRecorder};
use crate::metrics::{
    counters_json, crash_json, header_json, interval_json, metrics_shard_json,
    metrics_snapshot_json, shard_json, DetectStats, ShardTelemetry, SLOT_BATCHES, SLOT_COMPLETED,
    SLOT_ENQUEUED, SLOT_SHED,
};
use crate::shard::{KvOp, Shard, ShardConfig, ShardCounters, ShardReq};
use lrp_detect::{ResolvedStatus, Resolver};
use lrp_obs::span::{Span, SpanLog, SpanPhase};
use lrp_obs::{GaugeSample, GaugeSeries, Hist, Json, Stats};
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP address, e.g. `127.0.0.1:0` (port 0 picks an ephemeral port).
    Tcp(String),
    /// Unix-domain socket path (the loopback mode without TCP).
    #[cfg(unix)]
    Uds(std::path::PathBuf),
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Number of shards (each owns one structure + simulated machine).
    pub shards: usize,
    /// Template shard configuration; each shard derives its own seed.
    pub shard: ShardConfig,
    /// Maximum requests per batch.
    pub batch_max: usize,
    /// Deadline from the first queued request to batch close.
    pub batch_wait_ms: u64,
    /// Bounded queue length per shard; beyond it requests are shed.
    pub queue_depth: usize,
    /// Width of the `serve-interval` metrics windows (milliseconds).
    pub metrics_every_ms: u64,
    /// Request-span tracing: `Some(cap)` retains up to `cap` spans per
    /// shard in a drop-oldest log (exported as a Chrome trace through
    /// [`ServerReport::chrome_trace`]); `None` disables tracing.
    pub spans: Option<usize>,
    /// Flight-recorder ring capacity per shard (events; `0` disables
    /// retention but still counts drops).
    pub flight: usize,
    /// Directory flight-recorder rings are dumped to (JSONL, one file
    /// per shard, appended per crash) when a shard crash-restarts.
    pub flight_dir: Option<std::path::PathBuf>,
}

impl ServerConfig {
    /// Defaults: 2 shards on an ephemeral loopback port, batches of 16
    /// closed after 5 ms, 64-deep queues.
    pub fn new(shard: ShardConfig) -> ServerConfig {
        ServerConfig {
            bind: Bind::Tcp("127.0.0.1:0".into()),
            shards: 2,
            shard,
            batch_max: 16,
            batch_wait_ms: 5,
            queue_depth: 64,
            metrics_every_ms: 250,
            spans: None,
            flight: 256,
            flight_dir: None,
        }
    }
}

/// Maps a key to its owning shard (splitmix-style hash so adjacent keys
/// spread; stable across restarts, which the load generator relies on).
pub fn route(key: u64, shards: usize) -> usize {
    ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % shards as u64) as usize
}

// -- connections ------------------------------------------------------

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
    }

    fn shutdown(&self) {
        match self {
            Conn::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Conn::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl io::Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => io::Read::read(s, buf),
            #[cfg(unix)]
            Conn::Uds(s) => io::Read::read(s, buf),
        }
    }
}

impl io::Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => io::Write::write(s, buf),
            #[cfg(unix)]
            Conn::Uds(s) => io::Write::write(s, buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => io::Write::flush(s),
            #[cfg(unix)]
            Conn::Uds(s) => io::Write::flush(s),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(std::os::unix::net::UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        }
    }
}

/// A shared handle to a connection's write half; replies from any
/// thread serialize through the mutex so frames never interleave.
#[derive(Clone)]
struct Replier(Arc<Mutex<Conn>>);

impl Replier {
    fn send(&self, resp: &Response) {
        let payload = encode_response(resp);
        let mut w = self.0.lock().unwrap();
        // A vanished client is not a server error; the reply is dropped.
        let _ = write_frame(&mut *w, &payload);
    }
}

// -- shared state -----------------------------------------------------

/// Per-request telemetry carried with the op through the queue. The
/// timestamps (µs since server start) are always stamped — the ack
/// latency histograms need them — while `root` is non-zero only when
/// span tracing is on.
#[derive(Clone, Copy, Default)]
struct SpanCtx {
    /// Root span id (0 = tracing off).
    root: u64,
    /// Frame received.
    t0_us: u64,
    /// Request decoded and routed.
    t1_us: u64,
    /// Admitted to the shard queue.
    t_enq_us: u64,
    /// Queue depth observed at admission.
    depth: u32,
    /// Payload bytes.
    bytes: u32,
}

enum Work {
    Op {
        op: KvOp,
        id: u64,
        reply: Replier,
        ctx: SpanCtx,
    },
    Crash {
        id: u64,
        reply: Replier,
    },
}

struct ShardQueue {
    q: Mutex<VecDeque<Work>>,
    cv: Condvar,
}

/// Snapshot a reader can serve in a `Stats`/`Metrics` reply without
/// touching the worker-owned shard.
#[derive(Clone, Default)]
struct Snapshot {
    counters: ShardCounters,
    committed: u64,
    /// Wire-to-ack latency of every worker-answered request (µs).
    ack_hist: Hist,
    /// Wire-to-ack latency of durably-acked requests only (µs).
    dur_ack_hist: Hist,
    flight_events: u64,
    flight_dropped: u64,
    /// Merged durability critical-path digest (empty without a
    /// critpath-tracing recorder).
    crit: lrp_obs::CritSummary,
    /// The shard's committed resolver, republished after every batch
    /// commit and crash-restart. Readers answer `Resolve` from this, so
    /// a verdict only ever reflects durably-committed stamps.
    resolver: Resolver,
    /// Committed slot records held / slot-table capacity.
    slot_occupied: u64,
    slot_capacity: u64,
}

/// Reader-side accounting of answered `Resolve` requests (per shard).
#[derive(Default)]
struct ResolveStats {
    done: u64,
    not_started: u64,
    latency: Hist,
}

struct Shared {
    cfg: ServerConfig,
    queues: Vec<ShardQueue>,
    gauges: Vec<Mutex<GaugeSeries>>,
    snapshots: Vec<Mutex<Snapshot>>,
    resolves: Vec<Mutex<ResolveStats>>,
    /// Milliseconds the shard's most recent batch took (retry hints).
    batch_ms: Vec<AtomicU64>,
    /// Per-shard span logs; `None` = tracing off.
    spans: Option<Vec<Mutex<SpanLog>>>,
    shutdown: AtomicBool,
    epoch: Instant,
    /// The live dial target for self-pokes (set after bind).
    poke_addr: Mutex<Option<std::net::SocketAddr>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn wake_all(&self) {
        for q in &self.queues {
            q.cv.notify_all();
        }
    }

    /// Unblocks the accept loop by dialing the server once.
    fn poke(&self) {
        match &self.cfg.bind {
            Bind::Tcp(_) => {
                if let Some(a) = *self.poke_addr.lock().unwrap() {
                    let _ = TcpStream::connect(a);
                }
            }
            #[cfg(unix)]
            Bind::Uds(path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
    }
}

/// What one shard hands back when its worker exits.
struct ShardFinal {
    counters: ShardCounters,
    committed: u64,
    stats: Stats,
    hists: [Hist; 3],
    intervals: Vec<GaugeSample>,
}

/// End-of-run report: everything needed for the metrics stream and for
/// the caller's exit code.
pub struct ServerReport {
    header: Json,
    shard_lines: Vec<Json>,
    interval_lines: Vec<Json>,
    lost_acked: u64,
    recovery_failures: u64,
    spans: Vec<Span>,
    span_dropped: u64,
}

impl ServerReport {
    /// Total durably-acked keys lost across every shard restart. The
    /// durability claim is that this is zero.
    pub fn lost_acked(&self) -> u64 {
        self.lost_acked
    }

    /// Commits/restarts that had to fall back because the NVM image did
    /// not validate.
    pub fn recovery_failures(&self) -> u64 {
        self.recovery_failures
    }

    /// Every request span retained at shutdown (empty when tracing was
    /// off). Feed to [`lrp_obs::span::audit_chains`] or
    /// [`ServerReport::chrome_trace`].
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Spans evicted from the bounded per-shard logs during the run.
    pub fn span_dropped(&self) -> u64 {
        self.span_dropped
    }

    /// The retained spans as a Chrome trace-event document (per-shard
    /// process tracks, async begin/end pairs per request).
    pub fn chrome_trace(&self) -> Json {
        lrp_obs::span::chrome_trace(&self.spans)
    }

    /// The full metrics stream (`serve-header`, `serve-shard`,
    /// `serve-interval` lines).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.to_compact());
        out.push('\n');
        for line in self.shard_lines.iter().chain(&self.interval_lines) {
            out.push_str(&line.to_compact());
            out.push('\n');
        }
        out
    }
}

/// A running server.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<ShardFinal>>,
    conns: Arc<Mutex<Vec<Conn>>>,
    addr: Option<std::net::SocketAddr>,
}

impl Server {
    /// Binds and starts serving. Returns once the listener is live.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        assert!(cfg.shards >= 1, "need at least one shard");
        let listener = match &cfg.bind {
            Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            #[cfg(unix)]
            Bind::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Uds(std::os::unix::net::UnixListener::bind(path)?)
            }
        };
        let addr = match &listener {
            Listener::Tcp(l) => Some(l.local_addr()?),
            #[cfg(unix)]
            Listener::Uds(_) => None,
        };

        let shards = cfg.shards;
        let shared = Arc::new(Shared {
            queues: (0..shards)
                .map(|_| ShardQueue {
                    q: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            gauges: (0..shards)
                .map(|_| Mutex::new(GaugeSeries::new(cfg.metrics_every_ms.max(1))))
                .collect(),
            snapshots: (0..shards)
                .map(|_| Mutex::new(Snapshot::default()))
                .collect(),
            resolves: (0..shards)
                .map(|_| Mutex::new(ResolveStats::default()))
                .collect(),
            batch_ms: (0..shards).map(|_| AtomicU64::new(1)).collect(),
            spans: cfg
                .spans
                .map(|cap| (0..shards).map(|_| Mutex::new(SpanLog::new(cap))).collect()),
            shutdown: AtomicBool::new(false),
            epoch: Instant::now(),
            poke_addr: Mutex::new(addr),
            cfg,
        });

        let workers = (0..shards)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .expect("spawn shard worker")
            })
            .collect();

        let conns: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("accept".into())
                .spawn(move || accept_loop(listener, &shared, &conns))
                .expect("spawn accept loop")
        };

        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
            conns,
            addr,
        })
    }

    /// The bound TCP address (None in UDS mode).
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.addr
    }

    /// Triggers shutdown without a client `Shutdown` request.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        self.shared.poke();
    }

    /// Waits for shutdown (client-requested or [`Server::shutdown`]),
    /// drains the shards, and assembles the final report.
    pub fn join(mut self) -> ServerReport {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Readers may still be parked on idle connections; sever them.
        for c in self.conns.lock().unwrap().drain(..) {
            c.shutdown();
        }
        self.shared.wake_all();
        let finals: Vec<ShardFinal> = self
            .workers
            .drain(..)
            .map(|h| h.join().expect("shard worker panicked"))
            .collect();
        #[cfg(unix)]
        if let Bind::Uds(path) = &self.shared.cfg.bind {
            let _ = std::fs::remove_file(path);
        }

        let cfg = &self.shared.cfg;
        let header = header_json(
            cfg.shards,
            cfg.shard.structure.name(),
            cfg.shard.mechanism.name(),
            cfg.shard.nvm_mode.name(),
            cfg.shard.sim_threads as u64,
            cfg.batch_max as u64,
            cfg.batch_wait_ms,
            cfg.queue_depth as u64,
        );
        let mut shard_lines = Vec::new();
        let mut interval_lines = Vec::new();
        let mut lost_acked = 0;
        let mut recovery_failures = 0;
        for (i, f) in finals.iter().enumerate() {
            lost_acked += f.counters.lost_acked;
            recovery_failures += f.counters.recovery_failures;
            shard_lines.push(shard_json(i, &f.counters, f.committed, &f.stats, &f.hists));
            for s in &f.intervals {
                interval_lines.push(interval_json(i, s));
            }
        }
        let (spans, span_dropped) = match &self.shared.spans {
            Some(logs) => {
                let mut all = Vec::new();
                let mut dropped = 0;
                for log in logs {
                    let mut log = log.lock().unwrap();
                    dropped += log.dropped();
                    all.extend(log.drain());
                }
                (all, dropped)
            }
            None => (Vec::new(), 0),
        };
        ServerReport {
            header,
            shard_lines,
            interval_lines,
            lost_acked,
            recovery_failures,
            spans,
            span_dropped,
        }
    }
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>, conns: &Arc<Mutex<Vec<Conn>>>) {
    loop {
        let conn = match listener.accept() {
            Ok(c) => c,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let read_half = match conn.try_clone() {
            Ok(r) => r,
            Err(_) => continue,
        };
        if let Ok(registry) = conn.try_clone() {
            conns.lock().unwrap().push(registry);
        }
        let shared = shared.clone();
        let reply = Replier(Arc::new(Mutex::new(conn)));
        let _ = std::thread::Builder::new()
            .name("conn".into())
            .spawn(move || reader_loop(read_half, reply, &shared));
    }
}

fn reader_loop(mut conn: Conn, reply: Replier, shared: &Arc<Shared>) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => return,
        };
        let t0_us = shared.now_us();
        let req = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Framing survives (the bad payload was length-delimited)
                // but the request is unusable; report and keep serving.
                reply.send(&Response::Error {
                    id: 0,
                    msg: format!("bad request: {e}"),
                });
                continue;
            }
        };
        match req {
            Request::Ping { id } => reply.send(&Response::Pong { id }),
            Request::Stats { id } => {
                let mut shards = Vec::with_capacity(shared.cfg.shards);
                for (i, snap) in shared.snapshots.iter().enumerate() {
                    let s = snap.lock().unwrap().clone();
                    shards.push(Json::obj([
                        ("shard", Json::U64(i as u64)),
                        ("counters", counters_json(&s.counters)),
                        ("committed_keys", Json::U64(s.committed)),
                    ]));
                }
                let doc = Json::obj([
                    ("record", Json::Str("serve-stats".into())),
                    ("uptime_ms", Json::U64(shared.now_ms())),
                    ("shards", Json::Arr(shards)),
                ]);
                reply.send(&Response::Report {
                    id,
                    json: doc.to_compact(),
                });
            }
            Request::Metrics { id } => {
                reply.send(&Response::Report {
                    id,
                    json: metrics_reply(shared).to_compact(),
                });
            }
            Request::Shutdown { id } => {
                reply.send(&Response::ShuttingDown { id });
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.wake_all();
                shared.poke();
                return;
            }
            Request::Crash { id, shard } => {
                if (shard as usize) < shared.cfg.shards {
                    enqueue(
                        shared,
                        shard as usize,
                        Work::Crash {
                            id,
                            reply: reply.clone(),
                        },
                        /*admit_always=*/ true,
                    );
                } else {
                    reply.send(&Response::Error {
                        id,
                        msg: format!("no shard {shard}"),
                    });
                }
            }
            Request::Resolve { id, key, rid } => {
                // Answered from the owning shard's published resolver —
                // the committed (post-crash) stamp table — so the reply
                // never reflects volatile state, and never blocks on
                // the worker.
                let shard = route(key, shared.cfg.shards);
                let status = shared.snapshots[shard]
                    .lock()
                    .unwrap()
                    .resolver
                    .resolve(rid);
                let resp = match status {
                    ResolvedStatus::Done {
                        applied,
                        key,
                        batch,
                        ..
                    } => Response::Resolved {
                        id,
                        rid,
                        done: true,
                        applied,
                        key,
                        batch,
                    },
                    ResolvedStatus::NotStarted => Response::Resolved {
                        id,
                        rid,
                        done: false,
                        applied: false,
                        key: 0,
                        batch: 0,
                    },
                };
                reply.send(&resp);
                let mut rs = shared.resolves[shard].lock().unwrap();
                match status {
                    ResolvedStatus::Done { .. } => rs.done += 1,
                    ResolvedStatus::NotStarted => rs.not_started += 1,
                }
                rs.latency.record(shared.now_us().saturating_sub(t0_us));
            }
            Request::Get { id, key } | Request::Put { id, key } | Request::Del { id, key } => {
                let op = match req {
                    Request::Get { .. } => KvOp::Get(key),
                    Request::Put { .. } => KvOp::Put(key),
                    _ => KvOp::Del(key),
                };
                let shard = route(key, shared.cfg.shards);
                let root = match &shared.spans {
                    Some(logs) => logs[shard].lock().unwrap().alloc(),
                    None => 0,
                };
                let ctx = SpanCtx {
                    root,
                    t0_us,
                    t1_us: shared.now_us(),
                    t_enq_us: 0,
                    depth: 0,
                    bytes: payload.len() as u32,
                };
                let admitted = enqueue(
                    shared,
                    shard,
                    Work::Op {
                        op,
                        id,
                        reply: reply.clone(),
                        ctx,
                    },
                    false,
                );
                if !admitted {
                    let qlen = shared.queues[shard].q.lock().unwrap().len();
                    let per_batch = shared.batch_ms[shard].load(Ordering::Relaxed).max(1);
                    let backlog_batches = (qlen / shared.cfg.batch_max.max(1)) as u64 + 1;
                    let t_a0 = shared.now_us();
                    reply.send(&Response::Overloaded {
                        id,
                        retry_after_ms: (backlog_batches * per_batch).min(u32::MAX as u64) as u32,
                        queue_depth: qlen as u32,
                    });
                    if let Some(logs) = &shared.spans {
                        let times = ShedTimes {
                            op,
                            id,
                            depth: qlen as u32,
                            t_a0,
                            t_a1: shared.now_us(),
                        };
                        record_shed_chain(
                            &mut logs[shard].lock().unwrap(),
                            &ctx,
                            shard as u32,
                            times,
                        );
                    }
                }
            }
        }
    }
}

/// The wire op kind a span records (0 get, 1 put, 2 del).
fn op_code(op: KvOp) -> u8 {
    match op {
        KvOp::Get(_) => 0,
        KvOp::Put(_) => 1,
        KvOp::Del(_) => 2,
    }
}

struct ShedTimes {
    op: KvOp,
    id: u64,
    depth: u32,
    t_a0: u64,
    t_a1: u64,
}

/// Records the span chain of a load-shed request: admission rejected
/// it, so the chain is root + wire + queue(shed) + non-durable ack.
fn record_shed_chain(log: &mut SpanLog, ctx: &SpanCtx, track: u32, t: ShedTimes) {
    log.record(Span {
        id: ctx.root,
        parent: 0,
        req: t.id,
        track,
        start_us: ctx.t0_us,
        end_us: t.t_a1,
        phase: SpanPhase::Request { op: op_code(t.op) },
    });
    log.record(Span {
        id: 0,
        parent: ctx.root,
        req: t.id,
        track,
        start_us: ctx.t0_us,
        end_us: ctx.t1_us,
        phase: SpanPhase::Wire { bytes: ctx.bytes },
    });
    log.record(Span {
        id: 0,
        parent: ctx.root,
        req: t.id,
        track,
        start_us: ctx.t1_us,
        end_us: t.t_a0,
        phase: SpanPhase::Queue {
            depth: t.depth,
            shed: true,
        },
    });
    log.record(Span {
        id: 0,
        parent: ctx.root,
        req: t.id,
        track,
        start_us: t.t_a0,
        end_us: t.t_a1,
        phase: SpanPhase::Ack {
            durable: false,
            persist_stamp: 0,
            crashed: false,
        },
    });
}

/// The live `serve-metrics` snapshot (the `Metrics` admin reply).
fn metrics_reply(shared: &Arc<Shared>) -> Json {
    let uptime_ms = shared.now_ms();
    let mut shard_docs = Vec::with_capacity(shared.cfg.shards);
    let mut total_requests = 0u64;
    let mut total_shed = 0u64;
    let mut total_durable = 0u64;
    let mut total_obs_dropped = 0u64;
    let mut total_span_dropped = 0u64;
    let mut total_flight_dropped = 0u64;
    for i in 0..shared.cfg.shards {
        let snap = shared.snapshots[i].lock().unwrap().clone();
        let queue_depth = shared.queues[i].q.lock().unwrap().len() as u64;
        let totals = {
            let g = shared.gauges[i].lock().unwrap();
            [
                g.total(SLOT_ENQUEUED),
                g.total(SLOT_SHED),
                g.total(SLOT_COMPLETED),
                g.total(SLOT_BATCHES),
            ]
        };
        let (spans, span_dropped) = match &shared.spans {
            Some(logs) => {
                let log = logs[i].lock().unwrap();
                (log.len() as u64, log.dropped())
            }
            None => (0, 0),
        };
        let telem = ShardTelemetry {
            spans,
            span_dropped,
            flight_events: snap.flight_events,
            flight_dropped: snap.flight_dropped,
        };
        let detect = {
            let rs = shared.resolves[i].lock().unwrap();
            DetectStats {
                slot_occupied: snap.slot_occupied,
                slot_capacity: snap.slot_capacity,
                resolver_entries: snap.resolver.len() as u64,
                resolved_done: rs.done,
                resolved_not_started: rs.not_started,
                resolve_latency: rs.latency.clone(),
            }
        };
        let rps = if uptime_ms > 0 {
            snap.counters.requests as f64 * 1000.0 / uptime_ms as f64
        } else {
            0.0
        };
        total_requests += snap.counters.requests;
        total_shed += totals[SLOT_SHED];
        total_durable += snap.counters.acked_durable;
        total_obs_dropped += snap.counters.obs_dropped;
        total_span_dropped += span_dropped;
        total_flight_dropped += snap.flight_dropped;
        shard_docs.push(metrics_shard_json(
            i,
            &snap.counters,
            snap.committed,
            queue_depth,
            &totals,
            rps,
            &snap.ack_hist,
            &snap.dur_ack_hist,
            &telem,
            &snap.crit,
            &detect,
        ));
    }
    let throughput = if uptime_ms > 0 {
        total_requests as f64 * 1000.0 / uptime_ms as f64
    } else {
        0.0
    };
    let totals = Json::obj([
        ("requests", Json::U64(total_requests)),
        ("shed", Json::U64(total_shed)),
        ("acked_durable", Json::U64(total_durable)),
        ("throughput_rps", Json::F64(throughput)),
        ("obs_dropped", Json::U64(total_obs_dropped)),
        ("span_dropped", Json::U64(total_span_dropped)),
        ("flight_dropped", Json::U64(total_flight_dropped)),
    ]);
    metrics_snapshot_json(uptime_ms, shard_docs, totals)
}

/// Admits `work` to shard `i`'s queue. Returns false (and bumps the
/// shed counter) when admission control rejects it.
fn enqueue(shared: &Arc<Shared>, i: usize, mut work: Work, admit_always: bool) -> bool {
    let now = shared.now_ms();
    let mut q = shared.queues[i].q.lock().unwrap();
    if !admit_always && q.len() >= shared.cfg.queue_depth {
        drop(q);
        shared.gauges[i].lock().unwrap().bump(now, SLOT_SHED, 1);
        return false;
    }
    if let Work::Op { ctx, .. } = &mut work {
        ctx.t_enq_us = shared.now_us();
        ctx.depth = q.len() as u32;
    }
    q.push_back(work);
    let depth = q.len() as u64;
    shared.queues[i].cv.notify_all();
    drop(q);
    let mut g = shared.gauges[i].lock().unwrap();
    g.bump(now, SLOT_ENQUEUED, 1);
    g.note(now, depth);
    true
}

fn worker_loop(i: usize, shared: &Arc<Shared>) -> ShardFinal {
    let mut cfg = shared.cfg.shard.clone();
    cfg.seed = cfg
        .seed
        .wrapping_add((i as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
    let mut shard = Shard::new(cfg);
    let mut flight = FlightRecorder::new(shared.cfg.flight);
    let mut ack_hist = Hist::new();
    let mut dur_ack_hist = Hist::new();
    let track = i as u32;
    publish(shared, i, &shard, &ack_hist, &dur_ack_hist, &flight);

    loop {
        let (batch, t_open_us, t_close_us) = collect_batch(shared, i);
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst)
                && shared.queues[i].q.lock().unwrap().is_empty()
            {
                break;
            }
            continue;
        }
        let started = Instant::now();
        let mut answered = 0u64;
        let mut new_spans: Vec<Span> = Vec::new();
        let mut pending: Vec<(KvOp, u64, Replier, SpanCtx)> = Vec::new();
        for work in batch {
            match work {
                Work::Op { op, id, reply, ctx } => pending.push((op, id, reply, ctx)),
                Work::Crash { id, reply } => {
                    // Everything already drained for this batch is "in
                    // flight" at the crash: unacked, answered `Crashed`.
                    let ops: Vec<ShardReq> = pending
                        .iter()
                        .map(|(op, id, _, _)| ShardReq::new(*op, *id))
                        .collect();
                    let outcome = shard.crash(&ops);
                    // Republish before any `Crashed` reply leaves: a
                    // client that reacts to the crash with `Resolve`
                    // must see the post-restart resolver, not the
                    // previous batch's.
                    publish(shared, i, &shard, &ack_hist, &dur_ack_hist, &flight);
                    flight.push(FlightEvent::Crash {
                        t_ms: shared.now_ms(),
                        batch: outcome.batch,
                        crash_stamp: outcome.crash_stamp.unwrap_or(0),
                        recovered: outcome.consistent,
                        lost: outcome.lost_acked.len() as u32,
                        inflight: pending
                            .iter()
                            .map(|(op, rid, _, _)| (*rid, op_code(*op), op.key()))
                            .collect(),
                    });
                    if let Some(dir) = &shared.cfg.flight_dir {
                        let _ = flight.dump(dir, i, shard.counters().crashes);
                    }
                    for (op, rid, r, ctx) in pending.drain(..) {
                        let t_a0 = shared.now_us();
                        r.send(&Response::Crashed {
                            id: rid,
                            shard: i as u32,
                            batch: outcome.batch,
                        });
                        let t_a1 = shared.now_us();
                        ack_hist.record(t_a1.saturating_sub(ctx.t0_us));
                        if ctx.root != 0 {
                            // In-flight chain: wire + queue, then an
                            // unacked `Crashed` terminator (no batch/
                            // execute/persist — the batch never
                            // committed for this op).
                            new_spans.push(Span {
                                id: ctx.root,
                                parent: 0,
                                req: rid,
                                track,
                                start_us: ctx.t0_us,
                                end_us: t_a1,
                                phase: SpanPhase::Request { op: op_code(op) },
                            });
                            new_spans.push(Span {
                                id: 0,
                                parent: ctx.root,
                                req: rid,
                                track,
                                start_us: ctx.t0_us,
                                end_us: ctx.t1_us,
                                phase: SpanPhase::Wire { bytes: ctx.bytes },
                            });
                            new_spans.push(Span {
                                id: 0,
                                parent: ctx.root,
                                req: rid,
                                track,
                                start_us: ctx.t_enq_us,
                                end_us: t_close_us.max(ctx.t_enq_us),
                                phase: SpanPhase::Queue {
                                    depth: ctx.depth,
                                    shed: false,
                                },
                            });
                            new_spans.push(Span {
                                id: 0,
                                parent: ctx.root,
                                req: rid,
                                track,
                                start_us: t_a0,
                                end_us: t_a1,
                                phase: SpanPhase::Ack {
                                    durable: false,
                                    persist_stamp: 0,
                                    crashed: true,
                                },
                            });
                        }
                        answered += 1;
                    }
                    reply.send(&Response::Report {
                        id,
                        json: crash_json(i, &outcome).to_compact(),
                    });
                    answered += 1;
                }
            }
        }
        if !pending.is_empty() {
            let ops: Vec<ShardReq> = pending
                .iter()
                .map(|(op, id, _, _)| ShardReq::new(*op, *id))
                .collect();
            flight.push(FlightEvent::BatchStart {
                t_ms: shared.now_ms(),
                batch: shard.batches(),
                size: ops.len() as u32,
            });
            let ex0_us = shared.now_us();
            let results = shard.execute(&ops);
            let ex1_us = shared.now_us();
            // Republish before acks leave: a durable ack promises its
            // stamp is committed, so a follow-up `Resolve` must already
            // see it.
            publish(shared, i, &shard, &ack_hist, &dur_ack_hist, &flight);
            let breakdown = shard.last_breakdown();
            // Split the execute window at the simulator/stamping
            // boundary the shard measured.
            let exec_end_us = (ex0_us + breakdown.sim_us).min(ex1_us);
            let batch_no = results.first().map(|r| r.batch).unwrap_or(0);
            let size = ops.len() as u32;
            let mut durable_n = 0u32;
            let mut nondurable_n = 0u32;
            for ((op, id, reply, ctx), res) in pending.into_iter().zip(results) {
                let resp = match op {
                    KvOp::Get(_) => Response::Value {
                        id,
                        present: res.applied,
                        durable: res.durable,
                        batch: res.batch,
                        seq: res.seq,
                    },
                    KvOp::Put(_) | KvOp::Del(_) => Response::Done {
                        id,
                        applied: res.applied,
                        durable: res.durable,
                        batch: res.batch,
                        seq: res.seq,
                        persist_cycles: res.persist_cycles,
                    },
                };
                let t_a0 = shared.now_us();
                reply.send(&resp);
                let t_a1 = shared.now_us();
                answered += 1;
                let lat = t_a1.saturating_sub(ctx.t0_us);
                ack_hist.record(lat);
                if res.durable {
                    dur_ack_hist.record(lat);
                    durable_n += 1;
                } else {
                    nondurable_n += 1;
                }
                flight.push(FlightEvent::Request {
                    t_ms: shared.now_ms(),
                    batch: res.batch,
                    id,
                    kind: op_code(op),
                    key: op.key(),
                    durable: res.durable,
                    stamp: res.persist_cycles,
                });
                if ctx.root != 0 {
                    // The full wire→queue→batch→execute→persist→ack
                    // chain; the ack carries the persist stamp that
                    // justified a durable reply.
                    new_spans.push(Span {
                        id: ctx.root,
                        parent: 0,
                        req: id,
                        track,
                        start_us: ctx.t0_us,
                        end_us: t_a1,
                        phase: SpanPhase::Request { op: op_code(op) },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: ctx.t0_us,
                        end_us: ctx.t1_us,
                        phase: SpanPhase::Wire { bytes: ctx.bytes },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: ctx.t_enq_us,
                        end_us: t_close_us.max(ctx.t_enq_us),
                        phase: SpanPhase::Queue {
                            depth: ctx.depth,
                            shed: false,
                        },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: t_open_us.max(ctx.t_enq_us),
                        end_us: t_close_us.max(ctx.t_enq_us),
                        phase: SpanPhase::Batch {
                            batch: res.batch,
                            size,
                        },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: ex0_us,
                        end_us: exec_end_us,
                        phase: SpanPhase::Execute { batch: res.batch },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: exec_end_us,
                        end_us: ex1_us,
                        phase: SpanPhase::Persist {
                            batch: res.batch,
                            final_stamp: breakdown.final_stamp,
                        },
                    });
                    new_spans.push(Span {
                        id: 0,
                        parent: ctx.root,
                        req: id,
                        track,
                        start_us: t_a0,
                        end_us: t_a1,
                        phase: SpanPhase::Ack {
                            durable: res.durable,
                            persist_stamp: res.persist_cycles,
                            crashed: false,
                        },
                    });
                }
            }
            flight.push(FlightEvent::Persist {
                t_ms: shared.now_ms(),
                batch: batch_no,
                final_stamp: breakdown.final_stamp,
                durable: durable_n,
                nondurable: nondurable_n,
            });
        }
        if !new_spans.is_empty() {
            if let Some(logs) = &shared.spans {
                let mut log = logs[i].lock().unwrap();
                for s in new_spans {
                    log.record(s);
                }
            }
        }
        let elapsed = (started.elapsed().as_millis() as u64).max(1);
        shared.batch_ms[i].store(elapsed, Ordering::Relaxed);
        publish(shared, i, &shard, &ack_hist, &dur_ack_hist, &flight);
        let now = shared.now_ms();
        let depth = shared.queues[i].q.lock().unwrap().len() as u64;
        let mut g = shared.gauges[i].lock().unwrap();
        g.bump(now, SLOT_COMPLETED, answered);
        g.bump(now, SLOT_BATCHES, 1);
        g.note(now, depth);
    }

    let now = shared.now_ms();
    let mut g = shared.gauges[i].lock().unwrap();
    g.finish(now);
    ShardFinal {
        counters: shard.counters(),
        committed: shard.committed().len() as u64,
        stats: shard.stats.clone(),
        hists: shard.hists.clone(),
        intervals: g.intervals.clone(),
    }
}

fn publish(
    shared: &Arc<Shared>,
    i: usize,
    shard: &Shard,
    ack_hist: &Hist,
    dur_ack_hist: &Hist,
    flight: &FlightRecorder,
) {
    let (slot_occupied, slot_capacity) = shard.slot_occupancy();
    *shared.snapshots[i].lock().unwrap() = Snapshot {
        counters: shard.counters(),
        committed: shard.committed().len() as u64,
        ack_hist: ack_hist.clone(),
        dur_ack_hist: dur_ack_hist.clone(),
        flight_events: flight.len() as u64,
        flight_dropped: flight.dropped(),
        crit: shard.crit.clone(),
        resolver: shard.resolver(),
        slot_occupied,
        slot_capacity,
    };
}

/// Blocks until work is available, then closes the batch by size or
/// deadline. Returns the batch plus its open/close times (µs since
/// server start; both 0 for the empty shutdown batch).
fn collect_batch(shared: &Arc<Shared>, i: usize) -> (Vec<Work>, u64, u64) {
    let sq = &shared.queues[i];
    let mut q = sq.q.lock().unwrap();
    while q.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
        q = sq.cv.wait(q).unwrap();
    }
    if q.is_empty() {
        return (Vec::new(), 0, 0);
    }
    let t_open_us = shared.now_us();
    let deadline = Instant::now() + Duration::from_millis(shared.cfg.batch_wait_ms);
    while q.len() < shared.cfg.batch_max && !shared.shutdown.load(Ordering::SeqCst) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            break;
        }
        let (guard, timeout) = sq.cv.wait_timeout(q, remaining).unwrap();
        q = guard;
        if timeout.timed_out() {
            break;
        }
    }
    let take = q.len().min(shared.cfg.batch_max);
    let batch: Vec<Work> = q.drain(..take).collect();
    (batch, t_open_us, shared.now_us())
}
