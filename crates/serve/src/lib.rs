//! `lrp-serve`: a sharded persistent key-value **service** front-end
//! over the workspace's log-free data structures and timing simulator —
//! the end-to-end demonstration of the paper's recovery claim: a shard
//! can be killed mid-traffic, rebuilt from its NVM image with *null
//! recovery* (§2.3, §5), and resume serving with every durably-acked
//! write intact.
//!
//! # Architecture
//!
//! ```text
//! clients ──TCP/UDS──▶ codec ──▶ router ──▶ per-shard bounded queue
//!                                               │  (admission control:
//!                                               │   full ⇒ Overloaded)
//!                                               ▼
//!                                           batcher (size/deadline)
//!                                               ▼
//!                               shard: LFD + simulated machine
//!                               (batch trace ⇒ lrp-sim ⇒ persist
//!                                schedule ⇒ durable acks)
//!                                               ▼
//!                               crash? ⇒ lrp-recovery crash_restart
//!                                        (NVM image rebuild + null-
//!                                         recovery check) ⇒ resume
//! ```
//!
//! Each shard owns one simulated machine and one log-free structure.
//! Requests are batched and translated into harness operations; the
//! batch replays on the simulator under the configured persistency
//! mechanism, and the recorded [`PersistSchedule`] decides which
//! operations are **durably acked**: an op is durable only when every
//! write it performed *and everything it read from* has persisted
//! (reads-from closure), the service-level counterpart of durable
//! linearizability. Lazy mechanisms (LRP) deliberately leave a volatile
//! tail — those replies carry `durable: false` and clients treat them
//! as retryable, exactly like load-shed requests.
//!
//! [`PersistSchedule`]: lrp_model::spec::PersistSchedule

pub mod codec;
pub mod flight;
pub mod load;
pub mod metrics;
pub mod server;
pub mod shard;

pub use codec::{Request, Response, WireError, MAX_FRAME};
pub use flight::{FlightEvent, FlightRecorder};
pub use load::{probe, run_load, Client, LoadSpec, LoadSummary};
pub use server::{route, Bind, Server, ServerConfig, ServerReport};
pub use shard::{
    BatchBreakdown, CrashOutcome, KvOp, KvResult, Shard, ShardConfig, ShardCounters, ShardReq,
};
