//! Zero-dependency length-prefixed wire protocol.
//!
//! Frames are `u32` little-endian length followed by `length` payload
//! bytes (capped at [`MAX_FRAME`]); the payload is an opcode byte, the
//! client-assigned request id, and fixed-width little-endian fields.
//! Strings are `u32` length + UTF-8 bytes. Every reply echoes the
//! request id, so clients may pipeline: replies can arrive out of order
//! across shards.
//!
//! Decoding is total: malformed input (truncated frame, oversized
//! length, unknown opcode, bad UTF-8) yields a typed [`WireError`],
//! never a panic — the fuzz test drives seeded random bytes through
//! both decoders to hold that line.

use std::io::{self, Read, Write};

/// Hard cap on payload length; larger prefixes are rejected without
/// allocating.
pub const MAX_FRAME: usize = 64 * 1024;

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Membership/value query.
    Get {
        /// Client-assigned id echoed in the reply.
        id: u64,
        /// Key queried.
        key: u64,
    },
    /// Insert `key` (set semantics: the LFDs store `value = key`).
    Put {
        /// Client-assigned id echoed in the reply.
        id: u64,
        /// Key inserted.
        key: u64,
    },
    /// Delete `key`.
    Del {
        /// Client-assigned id echoed in the reply.
        id: u64,
        /// Key deleted.
        key: u64,
    },
    /// Liveness probe; answered from the accept path, never queued.
    Ping {
        /// Client-assigned id echoed in the reply.
        id: u64,
    },
    /// Server counters snapshot as a JSON string reply.
    Stats {
        /// Client-assigned id echoed in the reply.
        id: u64,
    },
    /// Admin: kill shard `shard` at its next batch and restart it from
    /// its NVM image (null recovery).
    Crash {
        /// Client-assigned id echoed in the reply.
        id: u64,
        /// Shard to kill.
        shard: u32,
    },
    /// Admin: drain queues, write metrics, and stop the server.
    Shutdown {
        /// Client-assigned id echoed in the reply.
        id: u64,
    },
    /// Live telemetry snapshot as a JSON string reply: per-shard
    /// throughput, queue depth, shed count, durable-ack latency
    /// histograms, and telemetry drop counters. Unlike
    /// [`Request::Stats`] (lifetime counters only), this is the
    /// machine-readable scrape endpoint for `lrp-load --probe` and CI.
    Metrics {
        /// Client-assigned id echoed in the reply.
        id: u64,
    },
    /// Detectable-operation query: did the mutation the client issued
    /// as request `rid` against `key` durably take effect? Routed by
    /// `key` to the owning shard and answered from its recovered slot
    /// table, so a client holding an uncertain outcome (`Crashed` or a
    /// non-durable ack) can decide between *retry* and *already done*
    /// without risking a duplicate effect.
    Resolve {
        /// Client-assigned id echoed in the reply (for this frame, not
        /// the op being resolved).
        id: u64,
        /// Key the uncertain mutation targeted (routing only).
        key: u64,
        /// The request id of the uncertain mutation.
        rid: u64,
    },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Get`].
    Value {
        /// Echo of the request id.
        id: u64,
        /// Key present at the linearization point.
        present: bool,
        /// The observation is backed by persisted state only.
        durable: bool,
        /// Shard batch that executed the op.
        batch: u64,
        /// Execution rank within the batch (global event order).
        seq: u64,
    },
    /// Reply to [`Request::Put`]/[`Request::Del`].
    Done {
        /// Echo of the request id.
        id: u64,
        /// Operation took effect (`false` = key already present/absent).
        applied: bool,
        /// Effect (and everything it depends on) persisted before the
        /// batch completed: the durable ack. `false` is retryable.
        durable: bool,
        /// Shard batch that executed the op.
        batch: u64,
        /// Execution rank within the batch (global event order).
        seq: u64,
        /// Simulated cycle, within the batch, at which the op's last
        /// write persisted (0 for no-op/read-only outcomes).
        persist_cycles: u64,
    },
    /// Admission control: the shard queue is full; retry after the hint.
    Overloaded {
        /// Echo of the request id.
        id: u64,
        /// Suggested client back-off.
        retry_after_ms: u32,
        /// Queue depth observed at rejection.
        queue_depth: u32,
    },
    /// The op was in flight when its shard crashed: **unacked**, effect
    /// unknown; retry to find out.
    Crashed {
        /// Echo of the request id.
        id: u64,
        /// Shard that crashed.
        shard: u32,
        /// Batch the op was riding in when the crash hit.
        batch: u64,
    },
    /// Reply to [`Request::Ping`].
    Pong {
        /// Echo of the request id.
        id: u64,
    },
    /// JSON payload reply ([`Request::Stats`], [`Request::Crash`]).
    Report {
        /// Echo of the request id.
        id: u64,
        /// Compact JSON document.
        json: String,
    },
    /// Reply to [`Request::Shutdown`].
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
    /// Server-side failure (e.g. unroutable request).
    Error {
        /// Echo of the request id.
        id: u64,
        /// Human-readable cause.
        msg: String,
    },
    /// Reply to [`Request::Resolve`]: the deterministic verdict for an
    /// uncertain mutation. `done = false` means no durable stamp exists
    /// for `rid` — the op is **not started** as far as durable state is
    /// concerned and the client must retry to make it happen; `done =
    /// true` means the stamp (and with it, under a release-ordering
    /// discipline, the effect) persisted, and `applied`/`key`/`batch`
    /// replay the recorded outcome.
    Resolved {
        /// Echo of the request id.
        id: u64,
        /// The uncertain mutation's request id, echoed back.
        rid: u64,
        /// A durable stamp exists: the op completed before the crash.
        done: bool,
        /// Recorded outcome (`false` for set-semantics no-ops; 0 when
        /// `done` is false).
        applied: bool,
        /// Key recorded in the stamp (0 when `done` is false).
        key: u64,
        /// Shard batch recorded in the stamp (0 when `done` is false).
        batch: u64,
    },
}

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a declared field.
    Truncated,
    /// Length prefix exceeded [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A string field was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

// -- primitive readers/writers ----------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0 }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.at).ok_or(WireError::Truncated)?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let end = self.at.checked_add(4).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let end = self.at.checked_add(8).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(WireError::Oversized(len));
        }
        let end = self.at.checked_add(len).ok_or(WireError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(WireError::Truncated)?;
        self.at = end;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

// -- opcodes ----------------------------------------------------------

const OP_GET: u8 = 0x01;
const OP_PUT: u8 = 0x02;
const OP_DEL: u8 = 0x03;
const OP_PING: u8 = 0x04;
const OP_STATS: u8 = 0x05;
const OP_CRASH: u8 = 0x06;
const OP_SHUTDOWN: u8 = 0x07;
const OP_METRICS: u8 = 0x08;
const OP_RESOLVE: u8 = 0x09;

const OP_VALUE: u8 = 0x81;
const OP_DONE: u8 = 0x82;
const OP_OVERLOADED: u8 = 0x83;
const OP_CRASHED: u8 = 0x84;
const OP_PONG: u8 = 0x85;
const OP_REPORT: u8 = 0x86;
const OP_SHUTTING_DOWN: u8 = 0x87;
const OP_ERROR: u8 = 0x88;
const OP_RESOLVED: u8 = 0x89;

/// Encodes a request payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    match req {
        Request::Get { id, key } => {
            out.push(OP_GET);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Put { id, key } => {
            out.push(OP_PUT);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Del { id, key } => {
            out.push(OP_DEL);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Ping { id } => {
            out.push(OP_PING);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Stats { id } => {
            out.push(OP_STATS);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Crash { id, shard } => {
            out.push(OP_CRASH);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
        }
        Request::Shutdown { id } => {
            out.push(OP_SHUTDOWN);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Metrics { id } => {
            out.push(OP_METRICS);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Request::Resolve { id, key, rid } => {
            out.push(OP_RESOLVE);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&rid.to_le_bytes());
        }
    }
    out
}

/// Decodes a request payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    let op = r.u8()?;
    let id = r.u64()?;
    match op {
        OP_GET => Ok(Request::Get { id, key: r.u64()? }),
        OP_PUT => Ok(Request::Put { id, key: r.u64()? }),
        OP_DEL => Ok(Request::Del { id, key: r.u64()? }),
        OP_PING => Ok(Request::Ping { id }),
        OP_STATS => Ok(Request::Stats { id }),
        OP_CRASH => Ok(Request::Crash {
            id,
            shard: r.u32()?,
        }),
        OP_SHUTDOWN => Ok(Request::Shutdown { id }),
        OP_METRICS => Ok(Request::Metrics { id }),
        OP_RESOLVE => Ok(Request::Resolve {
            id,
            key: r.u64()?,
            rid: r.u64()?,
        }),
        other => Err(WireError::BadOpcode(other)),
    }
}

/// Encodes a response payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(41);
    match resp {
        Response::Value {
            id,
            present,
            durable,
            batch,
            seq,
        } => {
            out.push(OP_VALUE);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(*present as u8);
            out.push(*durable as u8);
            out.extend_from_slice(&batch.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
        }
        Response::Done {
            id,
            applied,
            durable,
            batch,
            seq,
            persist_cycles,
        } => {
            out.push(OP_DONE);
            out.extend_from_slice(&id.to_le_bytes());
            out.push(*applied as u8);
            out.push(*durable as u8);
            out.extend_from_slice(&batch.to_le_bytes());
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(&persist_cycles.to_le_bytes());
        }
        Response::Overloaded {
            id,
            retry_after_ms,
            queue_depth,
        } => {
            out.push(OP_OVERLOADED);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&retry_after_ms.to_le_bytes());
            out.extend_from_slice(&queue_depth.to_le_bytes());
        }
        Response::Crashed { id, shard, batch } => {
            out.push(OP_CRASHED);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&shard.to_le_bytes());
            out.extend_from_slice(&batch.to_le_bytes());
        }
        Response::Pong { id } => {
            out.push(OP_PONG);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Report { id, json } => {
            out.push(OP_REPORT);
            out.extend_from_slice(&id.to_le_bytes());
            put_string(&mut out, json);
        }
        Response::ShuttingDown { id } => {
            out.push(OP_SHUTTING_DOWN);
            out.extend_from_slice(&id.to_le_bytes());
        }
        Response::Error { id, msg } => {
            out.push(OP_ERROR);
            out.extend_from_slice(&id.to_le_bytes());
            put_string(&mut out, msg);
        }
        Response::Resolved {
            id,
            rid,
            done,
            applied,
            key,
            batch,
        } => {
            out.push(OP_RESOLVED);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&rid.to_le_bytes());
            out.push(*done as u8);
            out.push(*applied as u8);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(&batch.to_le_bytes());
        }
    }
    out
}

/// Decodes a response payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    let op = r.u8()?;
    let id = r.u64()?;
    match op {
        OP_VALUE => Ok(Response::Value {
            id,
            present: r.u8()? != 0,
            durable: r.u8()? != 0,
            batch: r.u64()?,
            seq: r.u64()?,
        }),
        OP_DONE => Ok(Response::Done {
            id,
            applied: r.u8()? != 0,
            durable: r.u8()? != 0,
            batch: r.u64()?,
            seq: r.u64()?,
            persist_cycles: r.u64()?,
        }),
        OP_OVERLOADED => Ok(Response::Overloaded {
            id,
            retry_after_ms: r.u32()?,
            queue_depth: r.u32()?,
        }),
        OP_CRASHED => Ok(Response::Crashed {
            id,
            shard: r.u32()?,
            batch: r.u64()?,
        }),
        OP_PONG => Ok(Response::Pong { id }),
        OP_REPORT => Ok(Response::Report {
            id,
            json: r.string()?,
        }),
        OP_SHUTTING_DOWN => Ok(Response::ShuttingDown { id }),
        OP_ERROR => Ok(Response::Error {
            id,
            msg: r.string()?,
        }),
        OP_RESOLVED => Ok(Response::Resolved {
            id,
            rid: r.u64()?,
            done: r.u8()? != 0,
            applied: r.u8()? != 0,
            key: r.u64()?,
            batch: r.u64()?,
        }),
        other => Err(WireError::BadOpcode(other)),
    }
}

/// The id a request carries (every variant has one).
pub fn request_id(req: &Request) -> u64 {
    match req {
        Request::Get { id, .. }
        | Request::Put { id, .. }
        | Request::Del { id, .. }
        | Request::Ping { id }
        | Request::Stats { id }
        | Request::Crash { id, .. }
        | Request::Shutdown { id }
        | Request::Metrics { id }
        | Request::Resolve { id, .. } => *id,
    }
}

/// The id a response echoes (every variant has one).
pub fn response_id(resp: &Response) -> u64 {
    match resp {
        Response::Value { id, .. }
        | Response::Done { id, .. }
        | Response::Overloaded { id, .. }
        | Response::Crashed { id, .. }
        | Response::Pong { id }
        | Response::Report { id, .. }
        | Response::ShuttingDown { id }
        | Response::Error { id, .. }
        | Response::Resolved { id, .. } => *id,
    }
}

// -- framing ----------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; oversized or truncated frames are [`io::ErrorKind::InvalidData`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read(&mut len) {
        Ok(0) => return Ok(None),
        Ok(n) if n < 4 => r.read_exact(&mut len[n..]).map_err(truncated)?,
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(WireError::Oversized(len).into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(truncated)?;
    Ok(Some(payload))
}

fn truncated(e: io::Error) -> io::Error {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated.into()
    } else {
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn ids_are_extractable_from_every_variant() {
        let req = Request::Crash { id: 9, shard: 1 };
        assert_eq!(request_id(&req), 9);
        let resp = Response::Overloaded {
            id: 12,
            retry_after_ms: 5,
            queue_depth: 3,
        };
        assert_eq!(response_id(&resp), 12);
    }
}
