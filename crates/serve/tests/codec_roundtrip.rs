//! Wire-codec coverage: every message round-trips, malformed frames are
//! rejected with typed errors, and random bytes never panic a decoder.

use lrp_exec::Xorshift64;
use lrp_serve::codec::{
    decode_request, decode_response, encode_request, encode_response, read_frame, request_id,
    response_id, write_frame, WireError,
};
use lrp_serve::{Request, Response, MAX_FRAME};

fn all_requests() -> Vec<Request> {
    vec![
        Request::Get { id: 1, key: 42 },
        Request::Put {
            id: 2,
            key: u64::MAX,
        },
        Request::Del { id: 3, key: 0 },
        Request::Ping { id: 4 },
        Request::Stats { id: 5 },
        Request::Crash { id: 6, shard: 3 },
        Request::Shutdown { id: u64::MAX },
        Request::Metrics { id: 8 },
        Request::Resolve {
            id: 9,
            key: 77,
            rid: (3 << 48) | 12,
        },
    ]
}

fn all_responses() -> Vec<Response> {
    vec![
        Response::Value {
            id: 1,
            present: true,
            durable: false,
            batch: 9,
            seq: 3,
        },
        Response::Done {
            id: 2,
            applied: false,
            durable: true,
            batch: 0,
            seq: u64::MAX,
            persist_cycles: 123_456,
        },
        Response::Overloaded {
            id: 3,
            retry_after_ms: 250,
            queue_depth: 64,
        },
        Response::Crashed {
            id: 4,
            shard: 1,
            batch: 17,
        },
        Response::Pong { id: 5 },
        Response::Report {
            id: 6,
            json: r#"{"record":"serve-stats","shards":[]}"#.into(),
        },
        Response::ShuttingDown { id: 7 },
        Response::Error {
            id: 8,
            msg: "bad request: unknown opcode 0x7f".into(),
        },
        Response::Resolved {
            id: 9,
            rid: (3 << 48) | 12,
            done: true,
            applied: false,
            key: 77,
            batch: u64::MAX,
        },
        Response::Resolved {
            id: 10,
            rid: 1,
            done: false,
            applied: false,
            key: 0,
            batch: 0,
        },
    ]
}

#[test]
fn every_request_round_trips() {
    for req in all_requests() {
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap_or_else(|e| panic!("{req:?}: {e}"));
        assert_eq!(back, req);
        assert_eq!(request_id(&back), request_id(&req));
    }
}

#[test]
fn every_response_round_trips() {
    for resp in all_responses() {
        let bytes = encode_response(&resp);
        let back = decode_response(&bytes).unwrap_or_else(|e| panic!("{resp:?}: {e}"));
        assert_eq!(back, resp);
        assert_eq!(response_id(&back), response_id(&resp));
    }
}

#[test]
fn framed_messages_survive_a_pipe() {
    let mut buf = Vec::new();
    for req in all_requests() {
        write_frame(&mut buf, &encode_request(&req)).unwrap();
    }
    let mut r = &buf[..];
    for req in all_requests() {
        let payload = read_frame(&mut r).unwrap().expect("frame present");
        assert_eq!(decode_request(&payload).unwrap(), req);
    }
    assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
}

#[test]
fn truncated_payloads_are_typed_errors() {
    for req in all_requests() {
        let bytes = encode_request(&req);
        for cut in 0..bytes.len() {
            match decode_request(&bytes[..cut]) {
                Err(WireError::Truncated) => {}
                Err(WireError::BadOpcode(_)) if cut == 0 => {}
                other => panic!("{req:?} cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
    // Responses with string fields also detect truncation inside the
    // string body.
    for resp in all_responses() {
        let bytes = encode_response(&resp);
        for cut in 1..bytes.len() {
            assert!(
                decode_response(&bytes[..cut]).is_err(),
                "{resp:?} cut at {cut} decoded"
            );
        }
    }
}

#[test]
fn truncated_frames_on_the_wire_are_invalid_data() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"hello world").unwrap();
    for cut in 1..buf.len() {
        let mut r = &buf[..cut];
        let err = read_frame(&mut r).expect_err("truncated frame accepted");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut {cut}");
    }
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    let mut r = &wire[..];
    let err = read_frame(&mut r).expect_err("oversized frame accepted");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // A huge declared string length inside a payload is also rejected.
    let mut payload = encode_response(&Response::Report {
        id: 1,
        json: "x".into(),
    });
    let len_at = payload.len() - 1 - 4;
    payload[len_at..len_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_response(&payload),
        Err(WireError::Oversized(_))
    ));
}

#[test]
fn unknown_opcodes_are_rejected_on_both_sides() {
    for op in [0x00u8, 0x0a, 0x40, 0x7f, 0x8a, 0xff] {
        let mut payload = vec![op];
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&9u64.to_le_bytes());
        let req = decode_request(&payload);
        let resp = decode_response(&payload);
        assert!(
            matches!(req, Err(WireError::BadOpcode(o)) if o == op),
            "request opcode {op:#04x}: {req:?}"
        );
        assert!(
            matches!(resp, Err(WireError::BadOpcode(o)) if o == op),
            "response opcode {op:#04x}: {resp:?}"
        );
    }
}

#[test]
fn bad_utf8_in_string_fields_is_a_typed_error() {
    let mut payload = encode_response(&Response::Error {
        id: 1,
        msg: "ab".into(),
    });
    let n = payload.len();
    payload[n - 1] = 0xff; // invalid UTF-8 continuation
    assert_eq!(decode_response(&payload), Err(WireError::BadUtf8));
}

#[test]
fn random_bytes_never_panic_the_decoders() {
    let mut rng = Xorshift64::new(0xF422);
    for round in 0..2000 {
        let len = (rng.below(64) + 1) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        // Must return Ok or a typed error — never panic.
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = round;
    }
    // Mutated valid frames as well: flip one byte of each encoding.
    for resp in [
        Response::Report {
            id: 2,
            json: "{\"k\":1}".into(),
        },
        Response::Done {
            id: 3,
            applied: true,
            durable: true,
            batch: 1,
            seq: 2,
            persist_cycles: 3,
        },
        Response::Resolved {
            id: 4,
            rid: (7 << 48) | 31,
            done: true,
            applied: true,
            key: 12,
            batch: 9,
        },
    ] {
        let bytes = encode_response(&resp);
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut m = bytes.clone();
                m[i] ^= flip;
                let _ = decode_response(&m);
            }
        }
    }
    // Same never-panic line for mutated Resolve request frames.
    let bytes = encode_request(&Request::Resolve {
        id: 5,
        key: 3,
        rid: (2 << 48) | 8,
    });
    for i in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut m = bytes.clone();
            m[i] ^= flip;
            let _ = decode_request(&m);
        }
    }
}
