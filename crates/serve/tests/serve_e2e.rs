//! End-to-end service tests over a real loopback socket: basic
//! request/reply, durable-ack verification across a mid-traffic shard
//! crash, admission-control shedding under overload, and the UDS mode.

use lrp_lfds::{KeyDist, Structure};
use lrp_serve::{
    run_load, Bind, Client, LoadSpec, Request, Response, Server, ServerConfig, ShardConfig,
};

fn small_server(shards: usize, queue_depth: usize, seed: u64) -> ServerConfig {
    let mut shard = ShardConfig::new(Structure::HashMap);
    shard.initial_size = 32;
    shard.key_range = 256;
    shard.seed = seed;
    shard.audit_samples = 4;
    let mut cfg = ServerConfig::new(shard);
    cfg.shards = shards;
    cfg.batch_max = 16;
    cfg.batch_wait_ms = 3;
    cfg.queue_depth = queue_depth;
    cfg.metrics_every_ms = 50;
    cfg
}

fn tcp_bind(server: &Server) -> Bind {
    Bind::Tcp(
        server
            .local_addr()
            .expect("tcp server has an addr")
            .to_string(),
    )
}

/// Repeats `Put(key)`/`Del(key)` (per `insert`) until one attempt is
/// acked durable, pipelining filler mutations on distinct keys so each
/// batch carries multi-threaded traffic (a lone op usually stays in
/// LRP's volatile tail). Returns the durably-acked attempt's wire id
/// (which doubles as its detectable-op rid), or `None` after ~20
/// attempts.
fn durable_mutation(c: &mut Client, key: u64, insert: bool, id_base: u64) -> Option<u64> {
    const FILLERS: u64 = 12;
    for attempt in 0..20u64 {
        let base = id_base + attempt * (FILLERS + 1);
        let req = if insert {
            Request::Put { id: base, key }
        } else {
            Request::Del { id: base, key }
        };
        c.send(&req).unwrap();
        for f in 0..FILLERS {
            let fkey = 10_000 + attempt * FILLERS + f;
            c.send(&Request::Put {
                id: base + 1 + f,
                key: fkey,
            })
            .unwrap();
        }
        let mut durable_ack = false;
        for _ in 0..=FILLERS {
            match c.recv().unwrap() {
                Response::Done { id, durable, .. } if id == base => durable_ack = durable,
                Response::Done { .. } | Response::Overloaded { .. } => {}
                other => panic!("unexpected reply {other:?}"),
            }
        }
        if durable_ack {
            return Some(base);
        }
    }
    None
}

#[test]
fn basic_ops_round_trip_over_tcp() {
    let server = Server::start(small_server(2, 64, 11)).unwrap();
    let bind = tcp_bind(&server);
    let mut c = Client::dial(&bind).unwrap();

    assert!(matches!(
        c.call(&Request::Ping { id: 1 }).unwrap(),
        Response::Pong { id: 1 }
    ));

    // A durable ack is the visibility contract: a `durable: false`
    // reply is retryable (the effect may sit in the volatile tail and
    // be dropped at the next commit), so mutate until the ack is
    // durable — pipelining filler ops so the batch has enough
    // cross-thread traffic to trigger lazy persists — and only then
    // assert what a Get observes.
    assert!(
        durable_mutation(&mut c, 777, true, 10_000).is_some(),
        "put 777 never acked durable"
    );
    match c.call(&Request::Get { id: 3, key: 777 }).unwrap() {
        Response::Value { id: 3, present, .. } => {
            assert!(present, "durably inserted key visible")
        }
        other => panic!("unexpected get reply {other:?}"),
    }
    assert!(
        durable_mutation(&mut c, 777, false, 20_000).is_some(),
        "del 777 never acked durable"
    );
    match c.call(&Request::Get { id: 5, key: 777 }).unwrap() {
        Response::Value { id: 5, present, .. } => {
            assert!(!present, "durably deleted key gone")
        }
        other => panic!("unexpected get reply {other:?}"),
    }

    // Stats is a parseable JSON report covering every shard.
    match c.call(&Request::Stats { id: 6 }).unwrap() {
        Response::Report { id: 6, json } => {
            let doc = lrp_obs::Json::parse(&json).unwrap();
            assert_eq!(doc.get("record").unwrap().as_str(), Some("serve-stats"));
            assert_eq!(doc.get("shards").unwrap().as_arr().unwrap().len(), 2);
        }
        other => panic!("unexpected stats reply {other:?}"),
    }

    // Unroutable admin request gets a typed error.
    match c.call(&Request::Crash { id: 7, shard: 99 }).unwrap() {
        Response::Error { id: 7, msg } => assert!(msg.contains("no shard")),
        other => panic!("unexpected reply {other:?}"),
    }

    server.shutdown();
    let report = server.join();
    assert_eq!(report.lost_acked(), 0);
}

#[test]
fn crash_restart_preserves_every_durably_acked_write() {
    let server = Server::start(small_server(2, 128, 23)).unwrap();
    let bind = tcp_bind(&server);

    let mut spec = LoadSpec::new(bind);
    spec.conns = 3;
    spec.requests = 600;
    spec.window = 8;
    spec.key_dist = KeyDist::Zipfian { theta: 0.9 };
    spec.key_range = 256;
    spec.read_pct = 10;
    spec.seed = 5;
    spec.crash_at = Some(40);
    spec.crash_shard = 1;
    spec.verify = true;
    let summary = run_load(&spec).unwrap();

    assert_eq!(summary.errors, 0, "transport errors during load");
    assert!(
        summary.completed >= summary.sent,
        "admin replies also count"
    );
    assert!(summary.acked_durable > 0, "no durable acks under LRP");
    let crash = summary
        .crash_report
        .as_deref()
        .expect("crash was injected and reported");
    assert_eq!(summary.crash_consistent, Some(true), "report: {crash}");
    assert_eq!(summary.crash_lost_acked, Some(0), "report: {crash}");
    assert!(
        summary.verify_checked > 0,
        "verification phase exercised some keys"
    );
    assert_eq!(
        summary.verify_violations, 0,
        "durably-acked write lost: keys {:?}",
        summary.violating_keys
    );
    assert!(summary.durability_ok());

    server.shutdown();
    let report = server.join();
    assert_eq!(report.lost_acked(), 0, "server-side lost-ack accounting");
    // The metrics stream carries all three record types.
    let jsonl = report.to_jsonl();
    assert!(jsonl.contains("\"serve-header\""));
    assert!(jsonl.contains("\"serve-shard\""));
    assert!(jsonl.contains("\"serve-interval\""));
}

#[test]
fn overload_sheds_with_typed_replies_and_keeps_serving() {
    // A 1-deep queue with a slow batch deadline forces admission
    // control to reject most of a pipelined burst.
    let mut cfg = small_server(1, 1, 31);
    cfg.batch_max = 4;
    cfg.batch_wait_ms = 20;
    let server = Server::start(cfg).unwrap();
    let bind = tcp_bind(&server);

    let mut spec = LoadSpec::new(bind.clone());
    spec.conns = 4;
    spec.requests = 400;
    spec.window = 32;
    spec.read_pct = 0;
    spec.verify = false;
    let summary = run_load(&spec).unwrap();

    assert_eq!(summary.errors, 0);
    assert_eq!(
        summary.completed, summary.sent,
        "every request got a reply — shed or served, never dropped"
    );
    assert!(summary.shed > 0, "tiny queue never shed under a burst");
    assert!(
        summary.completed > summary.shed,
        "some requests were still served"
    );

    // The server still answers after the burst: no accept-loop stall.
    let mut c = Client::dial(&bind).unwrap();
    assert!(matches!(
        c.call(&Request::Ping { id: 900 }).unwrap(),
        Response::Pong { id: 900 }
    ));

    server.shutdown();
    let report = server.join();
    let jsonl = report.to_jsonl();
    let shed_total: u64 = jsonl
        .lines()
        .filter(|l| l.contains("\"serve-interval\""))
        .map(|l| {
            lrp_obs::Json::parse(l)
                .unwrap()
                .get("counts")
                .and_then(|c| c.get("shed"))
                .and_then(lrp_obs::Json::as_u64)
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(
        shed_total, summary.shed,
        "metrics stream accounts every shed"
    );
}

#[test]
fn resolve_answers_exactly_once_queries_across_a_crash_restart() {
    let server = Server::start(small_server(1, 64, 61)).unwrap();
    let bind = tcp_bind(&server);
    let mut c = Client::dial(&bind).unwrap();

    // The wire request id doubles as the detectable-op rid: a durable
    // ack means the slot stamp persisted with the effect.
    let rid = durable_mutation(&mut c, 321, true, 30_000).expect("put 321 never acked durable");
    match c
        .call(&Request::Resolve {
            id: 40_000,
            key: 321,
            rid,
        })
        .unwrap()
    {
        Response::Resolved {
            rid: r, done, key, ..
        } => {
            assert_eq!(r, rid);
            assert!(done, "durably-acked put must resolve Done");
            assert_eq!(key, 321, "stamp carries the mutated key");
        }
        other => panic!("unexpected reply {other:?}"),
    }

    // A rid the service never stamped resolves not-started.
    match c
        .call(&Request::Resolve {
            id: 40_001,
            key: 321,
            rid: (9u64 << 48) | 1,
        })
        .unwrap()
    {
        Response::Resolved { done, .. } => assert!(!done, "unknown rid must be NotStarted"),
        other => panic!("unexpected reply {other:?}"),
    }

    // Crash-restart the shard. The slot table is rebuilt from the
    // durable image and republished before the Crashed reply leaves,
    // so the very next Resolve must still see the verdict.
    match c
        .call(&Request::Crash {
            id: 40_002,
            shard: 0,
        })
        .unwrap()
    {
        Response::Report { id: 40_002, json } => {
            let doc = lrp_obs::Json::parse(&json).unwrap();
            assert_eq!(doc.get("record").unwrap().as_str(), Some("serve-crash"));
            assert!(
                doc.get("stamps").unwrap().as_u64().unwrap() > 0,
                "restart found no durable slot stamps: {json}"
            );
            assert_eq!(doc.get("torn_stamps").unwrap().as_u64(), Some(0));
        }
        other => panic!("unexpected reply {other:?}"),
    }
    match c
        .call(&Request::Resolve {
            id: 40_003,
            key: 321,
            rid,
        })
        .unwrap()
    {
        Response::Resolved { done, key, .. } => {
            assert!(done, "durably-acked rid lost its verdict across the crash");
            assert_eq!(key, 321);
        }
        other => panic!("unexpected reply {other:?}"),
    }

    server.shutdown();
    let report = server.join();
    assert_eq!(report.lost_acked(), 0);
}

#[test]
fn client_requested_shutdown_stops_the_server() {
    let server = Server::start(small_server(1, 16, 41)).unwrap();
    let bind = tcp_bind(&server);
    let mut spec = LoadSpec::new(bind);
    spec.conns = 1;
    spec.requests = 40;
    spec.window = 4;
    spec.verify = false;
    spec.shutdown = true;
    let summary = run_load(&spec).unwrap();
    assert_eq!(summary.errors, 0);
    // join() returns because the client's Shutdown request stopped the
    // accept loop — no Server::shutdown() call here.
    let report = server.join();
    assert_eq!(report.lost_acked(), 0);
}

#[cfg(unix)]
#[test]
fn uds_mode_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("lrp-serve-test-{}.sock", std::process::id()));
    let mut cfg = small_server(2, 64, 53);
    cfg.bind = Bind::Uds(path.clone());
    let server = Server::start(cfg).unwrap();
    assert!(server.local_addr().is_none(), "UDS has no TCP addr");

    let bind = Bind::Uds(path.clone());
    let mut spec = LoadSpec::new(bind);
    spec.conns = 2;
    spec.requests = 200;
    spec.window = 8;
    spec.verify = true;
    let summary = run_load(&spec).unwrap();
    assert_eq!(summary.errors, 0);
    assert_eq!(summary.verify_violations, 0);

    server.shutdown();
    let report = server.join();
    assert_eq!(report.lost_acked(), 0);
    assert!(!path.exists(), "socket file cleaned up on join");
}
