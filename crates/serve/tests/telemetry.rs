//! The observability contract over a live loopback server: traced runs
//! produce well-formed span chains whose durable acks carry their
//! persist stamps, the `Metrics` admin request returns a live snapshot
//! (including ring-drop accounting), tracing changes nothing about the
//! served state, and crash-restarts dump an explanatory flight-recorder
//! ring.

use lrp_lfds::{KeyDist, Structure};
use lrp_obs::span::audit_chains;
use lrp_obs::{Json, RecorderConfig};
use lrp_serve::{
    run_load, Bind, Client, LoadSpec, Request, Response, Server, ServerConfig, ShardConfig,
};

fn small_server(shards: usize, seed: u64) -> ServerConfig {
    let mut shard = ShardConfig::new(Structure::HashMap);
    shard.initial_size = 32;
    shard.key_range = 256;
    shard.seed = seed;
    shard.audit_samples = 4;
    let mut cfg = ServerConfig::new(shard);
    cfg.shards = shards;
    cfg.batch_max = 16;
    cfg.batch_wait_ms = 3;
    cfg.queue_depth = 64;
    cfg.metrics_every_ms = 50;
    cfg
}

fn tcp_bind(server: &Server) -> Bind {
    Bind::Tcp(server.local_addr().expect("tcp addr").to_string())
}

#[test]
fn traced_run_yields_complete_stamped_chains_and_a_valid_chrome_trace() {
    let mut cfg = small_server(2, 61);
    cfg.spans = Some(65536);
    let server = Server::start(cfg).unwrap();
    let bind = tcp_bind(&server);

    let mut spec = LoadSpec::new(bind);
    spec.conns = 3;
    spec.requests = 400;
    spec.window = 8;
    spec.key_dist = KeyDist::Zipfian { theta: 0.9 };
    spec.read_pct = 10;
    spec.verify = false;
    let summary = run_load(&spec).unwrap();
    assert_eq!(summary.errors, 0);
    assert!(summary.acked_durable > 0, "no durable acks to audit");

    server.shutdown();
    let report = server.join();
    let spans = report.spans();
    assert!(!spans.is_empty(), "tracing retained no spans");

    let audit = audit_chains(spans);
    assert!(
        audit.well_formed(),
        "span-tree violations:\n{}",
        audit.problems.join("\n")
    );
    assert!(audit.roots > 0);
    assert!(audit.durable_acks > 0, "no durable-acked chains retained");
    assert_eq!(
        audit.complete_durable_chains, audit.durable_acks,
        "every durable ack must carry the full wire→…→persist→ack chain"
    );
    assert!(
        audit.stamped_durable_chains > 0,
        "no durable ack carried its persist stamp"
    );

    // The Chrome trace parses back and pairs every begin with an end.
    let doc = Json::parse(&report.chrome_trace().to_compact()).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let ph = |p: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(p))
            .count()
    };
    assert_eq!(ph("b"), ph("e"), "unbalanced async begin/end events");
    assert_eq!(ph("b"), spans.len(), "one begin/end pair per span");
    assert!(ph("M") >= 2, "per-shard process_name metadata present");
    // At least one ack event carries a non-zero persist stamp.
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("ack")
                && e.get("args")
                    .and_then(|a| a.get("persist_stamp"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
                    > 0
        }),
        "no ack event carries its persist stamp"
    );
}

/// Runs the same deterministic sequential workload and returns the
/// `shards` section of the Stats reply (counters + committed keys),
/// which must not depend on whether tracing is on.
fn stats_after_fixed_workload(spans: Option<usize>) -> String {
    let mut cfg = small_server(2, 71);
    cfg.spans = spans;
    let server = Server::start(cfg).unwrap();
    let mut c = Client::dial(&tcp_bind(&server)).unwrap();
    for i in 0..60u64 {
        let key = 1 + (i * 7) % 256;
        let req = match i % 3 {
            0 => Request::Put { id: i + 1, key },
            1 => Request::Get { id: i + 1, key },
            _ => Request::Del { id: i + 1, key },
        };
        c.call(&req).unwrap();
    }
    let json = match c.call(&Request::Stats { id: 900 }).unwrap() {
        Response::Report { json, .. } => json,
        other => panic!("unexpected stats reply {other:?}"),
    };
    server.shutdown();
    server.join();
    let doc = Json::parse(&json).unwrap();
    doc.get("shards").unwrap().to_compact()
}

#[test]
fn tracing_leaves_the_served_state_byte_identical() {
    let untraced = stats_after_fixed_workload(None);
    let traced = stats_after_fixed_workload(Some(4096));
    assert_eq!(
        untraced, traced,
        "span tracing changed shard counters or committed state"
    );
}

#[test]
fn metrics_snapshot_reports_live_telemetry_and_ring_drops() {
    let mut cfg = small_server(2, 83);
    // Tiny rings everywhere so the snapshot proves drop accounting:
    // a 4-span log and a 1-event obs ring both overflow immediately.
    cfg.spans = Some(4);
    cfg.flight = 8;
    cfg.shard.recorder = Some(RecorderConfig {
        ring_capacity: 1,
        sample_every: 0,
        ..RecorderConfig::default()
    });
    let server = Server::start(cfg).unwrap();
    let bind = tcp_bind(&server);

    let mut spec = LoadSpec::new(bind.clone());
    spec.conns = 2;
    spec.requests = 300;
    spec.window = 8;
    spec.verify = false;
    let summary = run_load(&spec).unwrap();
    assert_eq!(summary.errors, 0);

    let mut c = Client::dial(&bind).unwrap();
    let json = match c.call(&Request::Metrics { id: 1 }).unwrap() {
        Response::Report { id: 1, json } => json,
        other => panic!("unexpected metrics reply {other:?}"),
    };
    let doc = Json::parse(&json).unwrap();
    assert_eq!(doc.get("record").unwrap().as_str(), Some("serve-metrics"));
    assert!(doc.get("uptime_ms").unwrap().as_u64().unwrap() > 0);

    let shards = doc.get("shards").unwrap().as_arr().unwrap();
    assert_eq!(shards.len(), 2);
    let mut requests = 0u64;
    let mut span_dropped = 0u64;
    let mut obs_dropped = 0u64;
    for s in shards {
        let counters = s.get("counters").unwrap();
        requests += counters.get("requests").unwrap().as_u64().unwrap();
        obs_dropped += counters.get("obs_dropped").unwrap().as_u64().unwrap();
        let telem = s.get("telemetry").unwrap();
        span_dropped += telem.get("span_dropped").unwrap().as_u64().unwrap();
        assert!(telem.get("spans").unwrap().as_u64().unwrap() <= 4);
        assert!(s.get("queue_depth").unwrap().as_u64().is_some());
        assert!(s.get("throughput_rps").unwrap().as_f64().is_some());
        // Histograms render as parseable objects.
        assert!(s.get("ack_latency_us").is_some());
        assert!(s.get("durable_ack_latency_us").is_some());
    }
    assert!(requests > 0, "snapshot counted no requests");
    assert!(span_dropped > 0, "4-span logs never overflowed");
    assert!(obs_dropped > 0, "1-event obs rings never overflowed");

    // The totals section mirrors the per-shard drop accounting.
    let totals = doc.get("totals").unwrap();
    assert_eq!(
        totals.get("span_dropped").unwrap().as_u64(),
        Some(span_dropped)
    );
    assert_eq!(
        totals.get("obs_dropped").unwrap().as_u64(),
        Some(obs_dropped)
    );
    assert!(totals.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);

    server.shutdown();
    server.join();
}

#[test]
fn crash_restart_dumps_a_flight_record_naming_inflight_ops() {
    let dir = std::env::temp_dir().join(format!("lrp-flight-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut cfg = small_server(1, 97);
    // A long batch deadline so pipelined puts and the crash land in one
    // batch — the puts are then "in flight" at the crash.
    cfg.batch_max = 64;
    cfg.batch_wait_ms = 100;
    cfg.flight_dir = Some(dir.clone());
    let server = Server::start(cfg).unwrap();
    let mut c = Client::dial(&tcp_bind(&server)).unwrap();

    for i in 0..6u64 {
        c.send(&Request::Put {
            id: 100 + i,
            key: 1 + i,
        })
        .unwrap();
    }
    c.send(&Request::Crash { id: 200, shard: 0 }).unwrap();
    let mut crashed = 0;
    let mut reported = false;
    for _ in 0..7 {
        match c.recv().unwrap() {
            Response::Crashed { .. } => crashed += 1,
            Response::Report { id: 200, .. } => reported = true,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(crashed, 6, "every in-flight put answered Crashed");
    assert!(reported, "crash verdict reported");

    let path = dir.join("flight-shard-0.jsonl");
    let text = std::fs::read_to_string(&path).expect("flight dump written");
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert!(lines.len() >= 2, "dump has a header and events:\n{text}");
    assert_eq!(
        lines[0].get("record").unwrap().as_str(),
        Some("flight-dump")
    );
    assert_eq!(lines[0].get("shard").unwrap().as_u64(), Some(0));
    let crash_line = lines
        .iter()
        .find(|l| l.get("event").and_then(Json::as_str) == Some("crash"))
        .expect("dump contains the crash event");
    let inflight = crash_line.get("inflight").unwrap().as_arr().unwrap();
    assert_eq!(inflight.len(), 6, "crash event names every in-flight op");
    assert!(
        inflight
            .iter()
            .any(|op| op.get("id").and_then(Json::as_u64) == Some(100)),
        "in-flight list names request ids: {crash_line:?}"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
