//! Acquire-Release Persistency (ARP, Kolli et al.) modelled at the
//! persist-schedule level (§3 of the LRP paper).
//!
//! ARP's implementation builds on a persist buffer: writes enqueue
//! tagged with a global buffer epoch; a release merely *raises a flag*,
//! and the next acquire that finds the flag raised places a full persist
//! barrier (increments the epoch). Persist order is epoch order — and
//! crucially, **within an epoch the hardware may persist writes in any
//! order**, including a release before the writes that precede it in
//! program order. That freedom is exactly why ARP cannot recover the
//! linked list of Figure 1: the linking CAS may persist while the node's
//! fields have not.
//!
//! [`arp_schedule`] replays a trace through this buffer model and emits a
//! [`PersistSchedule`]; [`ArpOrder`] selects the within-epoch order (the
//! benign insertion order, or the adversarial release-first order every
//! correct persistency model must tolerate).

use lrp_model::spec::PersistSchedule;
use lrp_model::Trace;

/// Within-epoch persist order chosen by the (adversarial) hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArpOrder {
    /// Persist in buffer-insertion order — a lucky schedule that often
    /// happens to satisfy RP.
    Insertion,
    /// Persist releases before the plain writes of the same epoch — an
    /// ARP-legal schedule exhibiting the §3.1.1 shortcoming.
    ReleaseFirst,
}

/// Replays `trace` through the ARP persist-buffer model and returns the
/// resulting persist schedule.
pub fn arp_schedule(trace: &Trace, order: ArpOrder) -> PersistSchedule {
    // Bucket writes by global buffer epoch.
    let mut epoch = 0u64;
    let mut flag = false;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new()];
    for e in &trace.events {
        if e.is_acquire() && flag {
            // The acquire places the (deferred) persist barrier.
            flag = false;
            epoch += 1;
            buckets.push(Vec::new());
        }
        if e.is_write_effect() {
            buckets[epoch as usize].push(e.id);
        }
        if e.is_release() {
            flag = true;
        }
    }
    // Emit stamps: epochs in order; within an epoch, per `order`.
    let mut sched = PersistSchedule::new(trace.events.len());
    let mut stamp = 0u64;
    for bucket in &buckets {
        match order {
            ArpOrder::Insertion => {
                for &w in bucket {
                    sched.set(w, stamp);
                    stamp += 1;
                }
            }
            ArpOrder::ReleaseFirst => {
                let (rel, plain): (Vec<_>, Vec<_>) = bucket
                    .iter()
                    .partition(|&&w| trace.events[w as usize].is_release());
                for &w in rel.iter().chain(plain.iter()) {
                    sched.set(w, stamp);
                    stamp += 1;
                }
            }
        }
    }
    sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_model::litmus::LitmusBuilder;
    use lrp_model::spec::{check_arp, check_rp, RpRule};
    use lrp_model::Annot;

    /// The Figure 1 execution: T0 prepares a node and CAS-releases the
    /// link; T1 acquires the link and writes its own node.
    fn fig1() -> Trace {
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        b.write(0, 0x100, 42); // W1: node fields
        b.cas(0, 0x200, 0, 0x100, Annot::Release); // Rel: link CAS
        b.read_acq(1, 0x200); // Acq
        b.write(1, 0x300, 7); // W4
        b.build()
    }

    #[test]
    fn arp_schedules_satisfy_the_arp_rule() {
        let t = fig1();
        for order in [ArpOrder::Insertion, ArpOrder::ReleaseFirst] {
            let s = arp_schedule(&t, order);
            check_arp(&t, &s).unwrap_or_else(|v| panic!("{order:?}: {v:?}"));
        }
    }

    #[test]
    fn adversarial_arp_violates_rp_release_barrier() {
        // This is the paper's central observation: ARP admits a schedule
        // in which the link persists before the node it points to.
        let t = fig1();
        let s = arp_schedule(&t, ArpOrder::ReleaseFirst);
        let v = check_rp(&t, &s).unwrap_err();
        assert!(v.iter().any(|v| v.rule == RpRule::ReleaseBarrier));
    }

    #[test]
    fn lucky_arp_schedule_happens_to_satisfy_rp_here() {
        let t = fig1();
        let s = arp_schedule(&t, ArpOrder::Insertion);
        check_rp(&t, &s).unwrap();
    }

    #[test]
    fn acquire_barrier_separates_epochs() {
        // W4 (after the acquire) must persist after W1 and Rel under
        // both orders, because the acquire's barrier opens a new epoch.
        let t = fig1();
        for order in [ArpOrder::Insertion, ArpOrder::ReleaseFirst] {
            let s = arp_schedule(&t, order);
            let w1 = s.stamp(0).unwrap();
            let rel = s.stamp(1).unwrap();
            let w4 = s.stamp(3).unwrap();
            assert!(w4 > w1 && w4 > rel, "{order:?}");
        }
    }

    #[test]
    fn no_sync_means_single_epoch() {
        let mut b = LitmusBuilder::new(1);
        b.write(0, 0x10, 1);
        b.write(0, 0x20, 2);
        let t = b.build();
        let s = arp_schedule(&t, ArpOrder::Insertion);
        assert_eq!(s.stamp(0), Some(0));
        assert_eq!(s.stamp(1), Some(1));
    }

    #[test]
    fn flag_only_triggers_on_following_acquire() {
        // acquire BEFORE any release must not open an epoch.
        let mut b = LitmusBuilder::new(2);
        b.init(0x200, 0);
        b.read_acq(1, 0x200);
        b.write(0, 0x100, 1);
        b.write_rel(0, 0x200, 1);
        b.read_acq(1, 0x200);
        b.write(1, 0x300, 2);
        let t = b.build();
        let s = arp_schedule(&t, ArpOrder::Insertion);
        // W(0x100) and Rel share epoch 0; W(0x300) is epoch 1.
        assert!(s.stamp(4).unwrap() > s.stamp(2).unwrap());
    }
}
