//! Baseline persistency-enforcement mechanisms (§6.2 of the paper),
//! implementing the same [`lrp_core::PersistMech`] interface as LRP so
//! the timing substrate treats them interchangeably:
//!
//! * [`nop::Nop`] — volatile execution, no persistency guarantees (the
//!   paper's NOP baseline and normalization point),
//! * [`sb::StrictBarrier`] — a strict full barrier around every release:
//!   the core stalls until every line written before the barrier has
//!   persisted, and again until the release itself persists,
//! * [`bb::BufferedBarrier`] — the state-of-the-art buffered full
//!   barrier (Joshi et al., MICRO '15): epoch-tagged cache lines,
//!   proactive flushing of closed epochs, and conflict-triggered persists
//!   (intra-thread: writing or evicting a line with an older epoch;
//!   inter-thread: coherence downgrades),
//! * [`arp`] — the persist-order semantics of Acquire-Release Persistency
//!   (Kolli et al.), modelled at the persist-schedule level. ARP is not a
//!   timing comparison point in the paper's evaluation; it exists here to
//!   reproduce the Figure 1 recoverability counterexample.

pub mod arp;
pub mod bb;
pub mod dpo;
pub mod nop;
pub mod sb;

pub use bb::BufferedBarrier;
pub use dpo::PersistBuffer;
pub use nop::Nop;
pub use sb::StrictBarrier;
