//! The strict full barrier (SB, §6.2).
//!
//! RP is enforced by placing a blocking persist barrier before *and*
//! after every release: the core stalls until every line modified before
//! the barrier has persisted, performs the release, and stalls again
//! until the release itself persists. On an inter-thread dependency
//! (downgrade) the responder flushes its entire ongoing epoch before
//! answering.

use lrp_core::engine::plan_epoch_stages;
use lrp_core::mech::{
    DowngradeAction, Epoch, EvictAction, L1View, PersistMech, StoreAction, StoreKind,
};
use lrp_model::LineAddr;

/// The strict-barrier mechanism.
#[derive(Debug, Default)]
pub struct StrictBarrier {
    /// Monotone epoch used only to keep line metadata meaningful for
    /// statistics; SB's stalls make finer tracking unnecessary.
    epoch: Epoch,
}

impl StrictBarrier {
    /// A fresh instance.
    pub fn new() -> Self {
        StrictBarrier { epoch: 1 }
    }
}

impl PersistMech for StrictBarrier {
    fn name(&self) -> &'static str {
        "sb"
    }

    // A release's pre-issue wait is the barrier draining the epoch.
    fn crit_drain_kind(&self) -> lrp_obs::CritSegKind {
        lrp_obs::CritSegKind::BarrierDrain
    }

    fn on_store(&mut self, l1: &mut dyn L1View, _line: LineAddr, kind: StoreKind) -> StoreAction {
        let mut act = StoreAction::default();
        if kind.is_release() {
            // Barrier before the release: flush everything, stall.
            act.flush_before = plan_epoch_stages(l1, Epoch::MAX, None);
            // A dirty victim line's old contents flush with the rest;
            // plan_epoch_stages already includes `line` if dirty — but
            // the release value itself lands afterwards and needs its
            // own synchronous persist (the barrier after the release).
            act.persist_line_after = true;
        } else if let StoreKind::RmwAcquire { .. } = kind {
            act.persist_line_after = true;
        }
        act
    }

    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) {
        if kind.is_release() {
            self.epoch = self.epoch.wrapping_add(1).max(1);
        }
        let mut m = l1.meta(line);
        if !m.nvm_dirty {
            m.nvm_dirty = true;
            m.min_epoch = self.epoch;
        }
        m.release = m.release || kind.is_release();
        l1.set_meta(line, m);
    }

    fn on_evict(&mut self, l1: &mut dyn L1View, line: LineAddr) -> EvictAction {
        let meta = l1.meta(line);
        EvictAction {
            // Everything older already persisted at the last barrier;
            // current-epoch writes are mutually unordered, so the
            // write-back simply persists via the directory.
            persist_at_dir: meta.nvm_dirty,
            ..EvictAction::default()
        }
    }

    fn on_downgrade(&mut self, l1: &mut dyn L1View, line: LineAddr) -> DowngradeAction {
        let meta = l1.meta(line);
        if !meta.nvm_dirty {
            return DowngradeAction {
                line_persisted_locally: true,
                persist_at_dir: false,
                ..DowngradeAction::default()
            };
        }
        // Inter-thread dependency: flush the whole ongoing epoch,
        // including the requested line, before responding.
        DowngradeAction {
            flush_before: plan_epoch_stages(l1, Epoch::MAX, Some(line)),
            background: Default::default(),
            line_persisted_locally: true,
            persist_at_dir: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_core::mech::mock::MockL1;
    use lrp_core::mech::LineMeta;

    fn dirty(l1: &mut MockL1, line: LineAddr, epoch: Epoch) {
        l1.set_meta(
            line,
            LineMeta {
                nvm_dirty: true,
                release: false,
                min_epoch: epoch,
            },
        );
    }

    #[test]
    fn release_flushes_everything_and_blocks_twice() {
        let mut sb = StrictBarrier::new();
        let mut l1 = MockL1::default();
        dirty(&mut l1, 0x10, 1);
        dirty(&mut l1, 0x20, 1);
        let act = sb.on_store(&mut l1, 0x30, StoreKind::Release);
        let mut flushed = act.flush_before.flat();
        flushed.sort_unstable();
        assert_eq!(flushed, vec![0x10, 0x20]);
        assert!(act.persist_line_after, "barrier after the release");
    }

    #[test]
    fn plain_store_costs_nothing() {
        let mut sb = StrictBarrier::new();
        let mut l1 = MockL1::default();
        let act = sb.on_store(&mut l1, 0x10, StoreKind::Plain);
        assert!(act.flush_before.is_empty());
        assert!(!act.persist_line_after);
        sb.on_store_commit(&mut l1, 0x10, StoreKind::Plain);
        assert!(l1.meta(0x10).nvm_dirty);
    }

    #[test]
    fn downgrade_flushes_ongoing_epoch() {
        let mut sb = StrictBarrier::new();
        let mut l1 = MockL1::default();
        dirty(&mut l1, 0x10, 1);
        dirty(&mut l1, 0x20, 1);
        let act = sb.on_downgrade(&mut l1, 0x20);
        assert!(act.flush_before.flat().contains(&0x10));
        assert!(act.flush_before.flat().contains(&0x20));
        assert!(act.line_persisted_locally);
    }

    #[test]
    fn eviction_persists_via_directory_without_stall() {
        let mut sb = StrictBarrier::new();
        let mut l1 = MockL1::default();
        dirty(&mut l1, 0x10, 1);
        let act = sb.on_evict(&mut l1, 0x10);
        assert!(act.flush_before.is_empty());
        assert!(act.persist_at_dir);
    }

    #[test]
    fn clean_downgrade_is_free() {
        let mut sb = StrictBarrier::new();
        let mut l1 = MockL1::default();
        let act = sb.on_downgrade(&mut l1, 0x10);
        assert!(act.flush_before.is_empty());
        assert!(!act.persist_at_dir);
    }
}
