//! A persist-buffer-based enforcement mechanism in the style of
//! Delegated Persist Ordering (Kolli et al., MICRO '16) — the *other*
//! school of §2.2.1, included as an extra comparison point.
//!
//! Instead of buffering writes in the cache and tracking epochs, every
//! store's line is handed to a per-thread FIFO persist queue immediately
//! (modelled through the substrate's sequencer, which drains jobs in
//! order and provides the stage barrier at releases). Consequently:
//!
//! * there is **no coalescing** across operations — every store ships a
//!   flush, which is exactly why the cache-based approaches win on
//!   write traffic;
//! * releases simply sit in the FIFO: intra-thread ordering is free;
//! * an inter-thread dependency (downgrade) drains the whole FIFO before
//!   the response — delegation means the consumer must observe the
//!   producer's queue as durable.

use lrp_core::mech::{
    DowngradeAction, EngineRun, EvictAction, L1View, LineMeta, PersistMech, StoreAction, StoreKind,
};
use lrp_model::LineAddr;

/// The persist-buffer mechanism.
#[derive(Debug, Default)]
pub struct PersistBuffer;

impl PersistBuffer {
    /// A fresh instance.
    pub fn new() -> Self {
        PersistBuffer
    }
}

impl PersistMech for PersistBuffer {
    fn name(&self) -> &'static str {
        "dpo"
    }

    fn on_store(&mut self, _l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) -> StoreAction {
        // Every store enqueues its line into the persist FIFO right
        // away; a release additionally closes a queue epoch, which the
        // sequencer realizes as a stage barrier (the next job waits for
        // all earlier flushes to ack). An acquire-RMW blocks for its own
        // entry (same I3 reasoning as LRP).
        StoreAction {
            flush_before: EngineRun::empty(),
            background: EngineRun::empty(),
            background_after: EngineRun {
                stages: vec![vec![line]],
            },
            persist_line_after: matches!(kind, StoreKind::RmwAcquire { .. }),
        }
    }

    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, _kind: StoreKind) {
        // Lines are clean from the cache's perspective the moment the
        // store is delegated; metadata only tracks residency for stats.
        let mut m = l1.meta(line);
        m.nvm_dirty = false;
        m.release = false;
        l1.set_meta(line, m);
    }

    fn on_evict(&mut self, _l1: &mut dyn L1View, _line: LineAddr) -> EvictAction {
        // Nothing buffered in the cache: evictions carry no persistency
        // obligation (the FIFO owns the data).
        EvictAction::default()
    }

    fn on_downgrade(&mut self, _l1: &mut dyn L1View, _line: LineAddr) -> DowngradeAction {
        // Delegation: the consumer may only observe the line once the
        // producer's queue has drained. An empty flush_before job still
        // waits for the sequencer's pending count to reach zero — the
        // whole-FIFO drain.
        DowngradeAction {
            flush_before: EngineRun {
                stages: vec![Vec::new()],
            },
            background: EngineRun::empty(),
            line_persisted_locally: true,
            persist_at_dir: false,
        }
    }
}

/// Quiet the unused-import warning for LineMeta used in docs.
#[allow(dead_code)]
fn _doc(_: LineMeta) {}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_core::mech::mock::MockL1;

    #[test]
    fn every_store_is_delegated() {
        let mut d = PersistBuffer::new();
        let mut l1 = MockL1::default();
        for kind in [StoreKind::Plain, StoreKind::Release] {
            let act = d.on_store(&mut l1, 0x10, kind);
            assert_eq!(act.background_after.flat(), vec![0x10]);
            assert!(act.flush_before.is_empty());
            d.on_store_commit(&mut l1, 0x10, kind);
            assert!(!l1.meta(0x10).nvm_dirty, "line never stays nvm-dirty");
        }
    }

    #[test]
    fn rmw_acquire_blocks_for_own_entry() {
        let mut d = PersistBuffer::new();
        let mut l1 = MockL1::default();
        let act = d.on_store(&mut l1, 0x10, StoreKind::RmwAcquire { release: true });
        assert!(act.persist_line_after);
    }

    #[test]
    fn downgrade_waits_for_queue_drain() {
        let mut d = PersistBuffer::new();
        let mut l1 = MockL1::default();
        let act = d.on_downgrade(&mut l1, 0x10);
        // A plan with one (empty) stage: the sequencer job exists purely
        // to wait for pending == 0.
        assert_eq!(act.flush_before.stages.len(), 1);
        assert!(act.line_persisted_locally);
    }

    #[test]
    fn evictions_are_free() {
        let mut d = PersistBuffer::new();
        let mut l1 = MockL1::default();
        let act = d.on_evict(&mut l1, 0x10);
        assert!(act.flush_before.is_empty());
        assert!(!act.persist_at_dir);
    }
}
