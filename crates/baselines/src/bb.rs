//! The buffered full barrier (BB) — the state-of-the-art comparison
//! point (Joshi et al., "Efficient Persist Barriers for Multicores",
//! MICRO '15; §2.2.1 and §6.2 of the LRP paper).
//!
//! Cache lines are tagged with the epoch of their first buffered write.
//! A barrier (placed before and after every release, making the release
//! its own epoch) merely increments the epoch and starts a *proactive
//! flush* of the closed epochs in the background. Stalls appear only on
//! conflicts:
//!
//! * **intra-thread**: writing to a line tagged with an older epoch, or
//!   evicting such a line, forces the older epochs to persist first, in
//!   epoch order, on the critical path;
//! * **inter-thread**: a coherence downgrade blocks the response until
//!   the source's epochs up to and including the line's have persisted.

use lrp_core::engine::plan_epoch_stages;
use lrp_core::epoch::EpochCounter;
use lrp_core::mech::{
    DowngradeAction, Epoch, EvictAction, L1View, LineMeta, PersistMech, StoreAction, StoreKind,
};
use lrp_model::LineAddr;
use lrp_obs::MechEvent;

/// BB configuration.
#[derive(Debug, Clone)]
pub struct BbConfig {
    /// Epoch wrap limit (8-bit tags, as in LRP).
    pub epoch_limit: Epoch,
    /// Whether closed epochs start flushing proactively (the MICRO '15
    /// optimization; disabling it is an ablation).
    pub proactive_flush: bool,
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig {
            epoch_limit: 255,
            proactive_flush: true,
        }
    }
}

/// The buffered-barrier mechanism.
#[derive(Debug)]
pub struct BufferedBarrier {
    cfg: BbConfig,
    epoch: EpochCounter,
    pending_release: Option<Epoch>,
    /// Event buffer, allocated only once observability is enabled.
    obs: Option<Vec<MechEvent>>,
}

impl BufferedBarrier {
    /// A fresh instance.
    pub fn new(cfg: BbConfig) -> Self {
        let epoch = EpochCounter::new(cfg.epoch_limit);
        BufferedBarrier {
            cfg,
            epoch,
            pending_release: None,
            obs: None,
        }
    }

    /// Current epoch (tests/statistics).
    pub fn current_epoch(&self) -> Epoch {
        self.epoch.current()
    }

    fn emit(&mut self, ev: MechEvent) {
        if let Some(buf) = self.obs.as_mut() {
            buf.push(ev);
        }
    }
}

impl Default for BufferedBarrier {
    fn default() -> Self {
        BufferedBarrier::new(BbConfig::default())
    }
}

impl PersistMech for BufferedBarrier {
    fn name(&self) -> &'static str {
        "bb"
    }

    // A release's pre-issue wait is the buffered epoch draining.
    fn crit_drain_kind(&self) -> lrp_obs::CritSegKind {
        lrp_obs::CritSegKind::BarrierDrain
    }

    fn on_store(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) -> StoreAction {
        let mut act = StoreAction::default();
        let meta = l1.meta(line);
        if kind.is_release() {
            // A release consumes two epochs (barriers before and after
            // it); flush everything and restart if the tag width cannot
            // accommodate both.
            if u32::from(self.epoch.current()) + 2 > u32::from(self.epoch.limit()) {
                act.flush_before = plan_epoch_stages(l1, Epoch::MAX, None);
                self.epoch.reset();
                let (rel_epoch, _) = self.epoch.advance();
                self.pending_release = Some(rel_epoch);
                self.emit(MechEvent::EpochAdvance {
                    epoch: rel_epoch,
                    wrapped: true,
                });
                if let StoreKind::RmwAcquire { .. } = kind {
                    act.persist_line_after = true;
                }
                return act;
            }
            // Barrier before the release: close the current epoch.
            let (rel_epoch, _) = self.epoch.advance();
            self.pending_release = Some(rel_epoch);
            self.emit(MechEvent::EpochAdvance {
                epoch: rel_epoch,
                wrapped: false,
            });
            if meta.nvm_dirty {
                // Same-line conflict: persist the line's older epochs
                // (and everything older than them) before the release may
                // land — a release never shares a line with older writes.
                act.flush_before = plan_epoch_stages(l1, meta.min_epoch + 1, None);
            }
            if self.cfg.proactive_flush {
                // Proactively flush the epochs just closed by the
                // barrier, off the critical path.
                act.background = plan_epoch_stages(l1, rel_epoch, None);
            }
            if let StoreKind::RmwAcquire { .. } = kind {
                // Full-barrier semantics around the RMW: everything
                // before it persists first, then the RMW itself.
                act.flush_before = plan_epoch_stages(l1, rel_epoch, None);
                act.persist_line_after = true;
            }
        } else {
            if meta.nvm_dirty && meta.min_epoch < self.epoch.current() {
                // Intra-thread conflict: a write with epoch e_k on a line
                // tagged with an older epoch persists that line — which
                // drags all older epochs with it — on the critical path.
                act.flush_before = plan_epoch_stages(l1, meta.min_epoch + 1, None);
            }
            if let StoreKind::RmwAcquire { .. } = kind {
                act.persist_line_after = true;
            }
        }
        act
    }

    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) {
        let mut meta = l1.meta(line);
        if kind.is_release() {
            let rel_epoch = self
                .pending_release
                .take()
                .expect("release commit without a planned release");
            meta = LineMeta {
                nvm_dirty: true,
                release: true,
                min_epoch: rel_epoch,
            };
            // Barrier after the release: the release sits alone in its
            // epoch; subsequent writes open the next one. Cannot wrap —
            // on_store reserved headroom for both advances.
            let (post_epoch, wrapped) = self.epoch.advance();
            debug_assert!(!wrapped, "headroom reserved in on_store");
            self.emit(MechEvent::EpochAdvance {
                epoch: post_epoch,
                wrapped: false,
            });
        } else if !meta.nvm_dirty {
            meta.nvm_dirty = true;
            meta.release = false;
            meta.min_epoch = self.epoch.current();
        }
        l1.set_meta(line, meta);
    }

    fn on_evict(&mut self, l1: &mut dyn L1View, line: LineAddr) -> EvictAction {
        let meta = l1.meta(line);
        if !meta.nvm_dirty {
            return EvictAction {
                persist_at_dir: false,
                ..EvictAction::default()
            };
        }
        EvictAction {
            // Epoch ordering: everything older than the victim's epoch
            // persists first, on the critical path of the triggering
            // miss; the line itself persists via the write-back (I4-like
            // directory persist).
            flush_before: plan_epoch_stages(l1, meta.min_epoch, None),
            background: Default::default(),
            persist_at_dir: true,
        }
    }

    fn on_downgrade(&mut self, l1: &mut dyn L1View, line: LineAddr) -> DowngradeAction {
        let meta = l1.meta(line);
        if !meta.nvm_dirty {
            return DowngradeAction {
                line_persisted_locally: true,
                persist_at_dir: false,
                ..DowngradeAction::default()
            };
        }
        // Inter-thread conflict: the target blocks until the source's
        // epochs up to and including the line's have persisted.
        DowngradeAction {
            flush_before: plan_epoch_stages(l1, meta.min_epoch, Some(line)),
            background: Default::default(),
            line_persisted_locally: true,
            persist_at_dir: false,
        }
    }

    fn forbids_epoch_coalescing(&self) -> bool {
        true
    }

    fn obs_enable(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Vec::new());
        }
    }

    fn obs_drain(&mut self) -> Vec<MechEvent> {
        match self.obs.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_core::mech::mock::MockL1;

    fn store(
        bb: &mut BufferedBarrier,
        l1: &mut MockL1,
        line: LineAddr,
        kind: StoreKind,
    ) -> StoreAction {
        let act = bb.on_store(l1, line, kind);
        for ln in act.flush_before.flat() {
            let mut m = l1.meta(ln);
            m.nvm_dirty = false;
            m.release = false;
            l1.set_meta(ln, m);
            bb.on_flush_issued(l1, ln);
        }
        bb.on_store_commit(l1, line, kind);
        act
    }

    #[test]
    fn release_occupies_its_own_epoch() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut bb, &mut l1, 0x20, StoreKind::Release); // epoch 2
        store(&mut bb, &mut l1, 0x30, StoreKind::Plain); // epoch 3
        assert_eq!(l1.meta(0x10).min_epoch, 1);
        assert_eq!(l1.meta(0x20).min_epoch, 2);
        assert_eq!(l1.meta(0x30).min_epoch, 3);
        assert_eq!(bb.current_epoch(), 3);
    }

    #[test]
    fn release_triggers_proactive_background_flush() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain);
        let act = bb.on_store(&mut l1, 0x20, StoreKind::Release);
        assert!(act.flush_before.is_empty(), "clean release line: no stall");
        assert_eq!(
            act.background.flat(),
            vec![0x10],
            "closed epoch flushes proactively"
        );
        bb.on_store_commit(&mut l1, 0x20, StoreKind::Release);
    }

    #[test]
    fn proactive_flush_can_be_disabled() {
        let mut bb = BufferedBarrier::new(BbConfig {
            proactive_flush: false,
            ..BbConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain);
        let act = bb.on_store(&mut l1, 0x20, StoreKind::Release);
        assert!(act.background.is_empty());
        bb.on_store_commit(&mut l1, 0x20, StoreKind::Release);
    }

    #[test]
    fn same_line_cross_epoch_write_conflicts() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut bb, &mut l1, 0x20, StoreKind::Release); // epoch 2
                                                           // Writing 0x10 again at epoch 3 conflicts with its epoch-1 tag.
        let act = bb.on_store(&mut l1, 0x10, StoreKind::Plain);
        assert_eq!(
            act.flush_before.flat(),
            vec![0x10],
            "the old-epoch line persists on the critical path"
        );
        bb.on_store_commit(&mut l1, 0x10, StoreKind::Plain);
    }

    #[test]
    fn same_epoch_rewrite_coalesces_freely() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain);
        let act = bb.on_store(&mut l1, 0x10, StoreKind::Plain);
        assert!(act.flush_before.is_empty(), "no conflict within an epoch");
        bb.on_store_commit(&mut l1, 0x10, StoreKind::Plain);
    }

    #[test]
    fn eviction_drags_older_epochs() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut bb, &mut l1, 0x20, StoreKind::Release); // epoch 2
        store(&mut bb, &mut l1, 0x30, StoreKind::Plain); // epoch 3
        let act = bb.on_evict(&mut l1, 0x30);
        let flushed = act.flush_before.flat();
        assert_eq!(flushed, vec![0x10, 0x20], "older epochs first, in order");
        assert!(act.persist_at_dir);
    }

    #[test]
    fn downgrade_blocks_until_line_epoch_persists() {
        let mut bb = BufferedBarrier::default();
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut bb, &mut l1, 0x20, StoreKind::Release); // epoch 2
        let act = bb.on_downgrade(&mut l1, 0x20);
        assert_eq!(act.flush_before.flat(), vec![0x10, 0x20]);
        assert!(act.line_persisted_locally);
    }

    #[test]
    fn epoch_wrap_flushes_everything() {
        let mut bb = BufferedBarrier::new(BbConfig {
            epoch_limit: 4,
            ..BbConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut bb, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut bb, &mut l1, 0x20, StoreKind::Release); // epochs 2, 3
                                                           // The next release needs epochs 4 and 5 > limit: full flush.
        let act = store(&mut bb, &mut l1, 0x30, StoreKind::Release);
        assert!(act.flush_before.flat().contains(&0x10));
        assert!(act.flush_before.flat().contains(&0x20));
        assert_eq!(bb.current_epoch(), 3, "counter restarted past the release");
        assert_eq!(
            l1.meta(0x30).min_epoch,
            2,
            "release tagged with fresh epoch"
        );
    }
}
