//! Volatile execution: no persistency enforcement (the paper's NOP).
//!
//! Write-backs flow to the LLC as usual and reach NVM only on LLC
//! evictions; nothing ever stalls for an NVM ack. All figures normalize
//! to this baseline.

use lrp_core::mech::{DowngradeAction, EvictAction, L1View, PersistMech, StoreAction, StoreKind};
use lrp_model::LineAddr;

/// The no-persistency mechanism.
#[derive(Debug, Default)]
pub struct Nop;

impl PersistMech for Nop {
    fn name(&self) -> &'static str {
        "nop"
    }

    fn on_store(&mut self, _l1: &mut dyn L1View, _line: LineAddr, _kind: StoreKind) -> StoreAction {
        StoreAction::default()
    }

    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, _kind: StoreKind) {
        // Track dirtiness only so statistics can count buffered lines.
        let mut m = l1.meta(line);
        m.nvm_dirty = true;
        l1.set_meta(line, m);
    }

    fn on_evict(&mut self, _l1: &mut dyn L1View, _line: LineAddr) -> EvictAction {
        EvictAction {
            persist_at_dir: false,
            ..EvictAction::default()
        }
    }

    fn on_downgrade(&mut self, _l1: &mut dyn L1View, _line: LineAddr) -> DowngradeAction {
        DowngradeAction {
            line_persisted_locally: true, // nothing ever waits
            persist_at_dir: false,
            ..DowngradeAction::default()
        }
    }

    fn dir_persists_writebacks(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lrp_core::mech::mock::MockL1;

    #[test]
    fn nop_never_flushes_or_stalls() {
        let mut n = Nop;
        let mut l1 = MockL1::default();
        let a = n.on_store(&mut l1, 1, StoreKind::Release);
        assert!(a.flush_before.is_empty() && a.background.is_empty());
        assert!(!a.persist_line_after);
        n.on_store_commit(&mut l1, 1, StoreKind::Release);
        let e = n.on_evict(&mut l1, 1);
        assert!(e.flush_before.is_empty() && !e.persist_at_dir);
        let d = n.on_downgrade(&mut l1, 1);
        assert!(d.flush_before.is_empty() && !d.persist_at_dir);
        assert!(!n.dir_persists_writebacks());
    }
}
