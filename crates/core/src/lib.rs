//! Lazy Release Persistency (LRP) — the paper's primary contribution
//! (§5), as substrate-independent mechanism logic.
//!
//! The microarchitecture of §5.2 comprises, per hardware thread:
//!
//! * an **epoch counter** incremented on every release ([`epoch`]),
//! * a **pending-persists counter** (tracked by the flush sequencer in
//!   `lrp-sim`; the mechanism expresses the waits through staged
//!   [`mech::EngineRun`]s),
//! * per-L1-line metadata — `min-epoch` plus a release bit
//!   ([`mech::LineMeta`]),
//! * a 32-entry content-addressable **Release Epoch Table**
//!   ([`ret::ReleaseEpochTable`]) holding the release-epoch of released
//!   lines, with watermark-triggered draining,
//! * a **persist engine** that scans the L1 and persists only-written
//!   lines first, then released lines in epoch order ([`engine`]).
//!
//! [`lrp::Lrp`] ties these together behind the [`mech::PersistMech`]
//! interface, upholding the four invariants of §5.1:
//!
//! * **I1** — evicting a released line waits for all earlier writes to
//!   persist (but not for the released line's own ack),
//! * **I2** — downgrading a released line additionally waits for the
//!   released line itself to persist,
//! * **I3** — a successful acquire-RMW blocks the pipeline until its
//!   write persists,
//! * **I4** — the directory persists L1 write-backs, blocking requests
//!   for that line until the persist completes (expressed through
//!   [`mech::PersistMech::dir_persists_writebacks`]).
//!
//! The timing substrate (`lrp-sim`) and the baseline mechanisms
//! (`lrp-baselines`) both build on the vocabulary defined here.

pub mod discipline;
pub mod engine;
pub mod epoch;
pub mod lrp;
pub mod mech;
pub mod ret;

pub use discipline::PersistDiscipline;
pub use lrp::{Lrp, LrpConfig};
pub use mech::{
    DowngradeAction, EngineRun, EvictAction, L1View, LineMeta, PersistMech, StoreAction, StoreKind,
};
pub use ret::ReleaseEpochTable;
