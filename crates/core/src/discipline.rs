//! Persist-ordering disciplines: the crash-cut vocabulary shared by the
//! mechanisms and the model checker (`lrp-check`).
//!
//! Each persistency mechanism promises a partial order in which its
//! writes reach NVM. A *crash cut* — the set of writes durable at a
//! crash — is **admissible** for a mechanism iff it is downward closed
//! under that order (and, always, per-location prefix-closed: a cache
//! line holds one value, so a location's durable value is some prefix of
//! its coherence-ordered write sequence).
//!
//! The four disciplines, weakest to strongest:
//!
//! * [`Unconstrained`](PersistDiscipline::Unconstrained) — NOP: lines
//!   reach NVM only on incidental evictions, in no promised order. Any
//!   per-location prefix combination is admissible, and durable
//!   linearizability is **not** guaranteed.
//! * [`ReleaseOrder`](PersistDiscipline::ReleaseOrder) — LRP (§4.1's
//!   expanded RP rules): persists follow the release/acquire one-sided
//!   barriers, same-address program order, and synchronizes-with edges —
//!   exactly [`lrp_model::hb::HbClosure::compute_persist`].
//! * [`EpochOrder`](PersistDiscipline::EpochOrder) — BB: release order
//!   plus intra-thread epoch barriers (every write of an earlier
//!   release-delimited segment persists no later than any later write).
//! * [`StoreOrder`](PersistDiscipline::StoreOrder) — SB/ARP/DPO-style
//!   designs: release order plus full per-thread store order (each
//!   thread's writes persist in program order).

/// The persist-ordering promise of a mechanism, as used for crash-cut
/// admissibility checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PersistDiscipline {
    /// No ordering promise (NOP).
    Unconstrained,
    /// Per-thread store order plus release order (SB, ARP, DPO).
    StoreOrder,
    /// Release-delimited epoch order plus release order (BB).
    EpochOrder,
    /// The expanded RP rules of §4.1 (LRP).
    ReleaseOrder,
}

impl PersistDiscipline {
    /// All disciplines, weakest ordering first.
    pub const ALL: [PersistDiscipline; 4] = [
        PersistDiscipline::Unconstrained,
        PersistDiscipline::StoreOrder,
        PersistDiscipline::EpochOrder,
        PersistDiscipline::ReleaseOrder,
    ];

    /// Stable name for reports and flags.
    pub fn name(self) -> &'static str {
        match self {
            PersistDiscipline::Unconstrained => "unconstrained",
            PersistDiscipline::StoreOrder => "store-order",
            PersistDiscipline::EpochOrder => "epoch-order",
            PersistDiscipline::ReleaseOrder => "release-order",
        }
    }

    /// Whether admissible cuts of this discipline are guaranteed to be
    /// durably linearizable for the paper's log-free structures. NOP
    /// promises nothing: the checker *reports* its violations instead of
    /// failing on them.
    pub fn guarantees_dl(self) -> bool {
        !matches!(self, PersistDiscipline::Unconstrained)
    }

    /// Whether a *release* store is guaranteed to persist no earlier
    /// than the plain stores that precede it in program order.
    ///
    /// This is the soundness condition for detectable-operation stamps
    /// (`lrp-detect`): a slot record is written payload-first with the
    /// request-id word last via a release store, so under any discipline
    /// that orders program-order-earlier writes before a release
    /// ("stamp durable ⇒ payload durable"), a recovered stamp proves
    /// the whole record — and, via the same release edge, the operation
    /// effect it checkpoints — reached NVM. NOP promises nothing, so a
    /// recovered stamp there is only a hint.
    pub fn orders_release_stamps(self) -> bool {
        !matches!(self, PersistDiscipline::Unconstrained)
    }
}

impl std::fmt::Display for PersistDiscipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let mut names: Vec<&str> = PersistDiscipline::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn only_unconstrained_waives_dl() {
        for d in PersistDiscipline::ALL {
            assert_eq!(
                d.guarantees_dl(),
                d != PersistDiscipline::Unconstrained,
                "{d}"
            );
        }
    }

    #[test]
    fn stamp_soundness_tracks_dl() {
        // A discipline strong enough for durable linearizability orders
        // plain writes before a later release store, and vice versa: the
        // two predicates must agree for every current discipline.
        for d in PersistDiscipline::ALL {
            assert_eq!(d.orders_release_stamps(), d.guarantees_dl(), "{d}");
        }
    }
}
