//! The persistency-mechanism interface between a timing substrate and a
//! persist-barrier implementation.
//!
//! A mechanism instance is attached to one core's L1 controller. The
//! substrate reports stores, evictions, and downgrades; the mechanism
//! responds with [`EngineRun`]s — staged flush plans — plus stall
//! semantics. Stages execute sequentially (the substrate waits for the
//! core's *pending-persists* counter to drain between stages, exactly the
//! role of the paper's pending-persists counter); lines within a stage
//! flush in parallel.

use lrp_model::LineAddr;

/// Epoch identifier. The paper provisions 8 bits per line; the wrap
/// limit is configurable so overflow handling is testable.
pub type Epoch = u16;

/// Per-L1-line persistency metadata (the paper's Figure 3b).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LineMeta {
    /// The line holds writes not yet handed to the persist subsystem.
    pub nvm_dirty: bool,
    /// The line holds a value written by a release (release-bit).
    pub release: bool,
    /// Epoch of the earliest unpersisted write to the line (min-epoch).
    pub min_epoch: Epoch,
}

/// The mechanism's window into its L1: line metadata only — the
/// mechanism never sees data or addresses beyond line granularity.
pub trait L1View {
    /// Metadata of every line with `nvm_dirty` set.
    fn nvm_dirty_lines(&self) -> Vec<(LineAddr, LineMeta)>;
    /// Visits every line with `nvm_dirty` set, in the same order
    /// [`L1View::nvm_dirty_lines`] would report them, without
    /// materializing a `Vec`. Engine planning uses this path; substrates
    /// that index their dirty set (the simulator's L1) override it to
    /// skip clean lines entirely.
    fn for_each_nvm_dirty(&self, f: &mut dyn FnMut(LineAddr, LineMeta)) {
        for (line, meta) in self.nvm_dirty_lines() {
            f(line, meta);
        }
    }
    /// Metadata of one resident line (default if not resident).
    fn meta(&self, line: LineAddr) -> LineMeta;
    /// Overwrites one line's metadata.
    fn set_meta(&mut self, line: LineAddr, meta: LineMeta);
}

/// A staged flush plan. Stage `i+1` may issue only after every flush of
/// stage `i` (and anything else in flight for this core) has been acked
/// by the NVM controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineRun {
    /// The stages, in order; lines within a stage flush concurrently.
    pub stages: Vec<Vec<LineAddr>>,
}

impl EngineRun {
    /// An empty plan.
    pub fn empty() -> Self {
        EngineRun::default()
    }

    /// True if no flush is requested.
    pub fn is_empty(&self) -> bool {
        self.stages.iter().all(|s| s.is_empty())
    }

    /// Total number of line flushes in the plan.
    pub fn line_count(&self) -> usize {
        self.stages.iter().map(|s| s.len()).sum()
    }

    /// All lines in stage order (test helper).
    pub fn flat(&self) -> Vec<LineAddr> {
        self.stages.iter().flatten().copied().collect()
    }
}

/// What kind of store the L1 performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Ordinary store.
    Plain,
    /// Release store (or successful release-RMW).
    Release,
    /// Successful RMW with acquire (and possibly release) semantics —
    /// subject to invariant I3.
    RmwAcquire {
        /// Whether the RMW also releases.
        release: bool,
    },
}

impl StoreKind {
    /// True if the store has release semantics.
    pub fn is_release(self) -> bool {
        matches!(
            self,
            StoreKind::Release | StoreKind::RmwAcquire { release: true }
        )
    }
}

/// Mechanism response to a store.
#[derive(Debug, Clone, Default)]
pub struct StoreAction {
    /// Flushes that must complete (acked) *before* the store's value may
    /// land in the line; the core stalls for them.
    pub flush_before: EngineRun,
    /// Background flushes issued concurrently (proactive flushing); the
    /// core does not wait. Materialized *before* the store lands, so the
    /// plan covers the line's old contents.
    pub background: EngineRun,
    /// Background flushes materialized *after* the store lands (they
    /// cover the store itself) — the delegation path of persist-buffer
    /// designs. The core does not wait.
    pub background_after: EngineRun,
    /// After the store lands, flush this line and stall the core until
    /// the ack arrives (invariant I3 / strict-barrier release).
    pub persist_line_after: bool,
}

/// Mechanism response to the eviction of a dirty line.
#[derive(Debug, Clone, Default)]
pub struct EvictAction {
    /// Flushes that must complete before the write-back may leave the L1
    /// (the evicting miss stalls behind them) — invariant I1.
    pub flush_before: EngineRun,
    /// Flushes issued through the core's own sequencer without waiting
    /// (only-written victims persist off the critical path, but still
    /// count toward pending-persists so later releases order after them).
    pub background: EngineRun,
    /// Whether the write-back must be persisted by the directory (I4 —
    /// released victims, so requests block at the directory until the
    /// line is durable).
    pub persist_at_dir: bool,
}

/// Mechanism response to a coherence downgrade (Fwd-GetS/GetM) of a
/// dirty line.
#[derive(Debug, Clone, Default)]
pub struct DowngradeAction {
    /// Flushes that must complete (acked) before the response may be
    /// sent — invariant I2. If the plan's last stage contains the
    /// downgraded line itself, the line is persisted here.
    pub flush_before: EngineRun,
    /// Flushes issued through the core's sequencer without delaying the
    /// response (only-written lines persist off the critical path).
    pub background: EngineRun,
    /// True if the line's buffered writes persist locally (via
    /// `flush_before` or `background`), so the directory need not
    /// persist the forwarded data again.
    pub line_persisted_locally: bool,
    /// Whether the directory must persist the forwarded data (I4).
    pub persist_at_dir: bool,
}

/// A persist-barrier mechanism attached to one core's L1 controller.
///
/// Stores are reported in two phases: [`PersistMech::on_store`] *plans*
/// the flushes that must complete before the store's value may land
/// (the substrate snapshots flush data at this point, so the plan sees
/// the line's pre-store contents), and [`PersistMech::on_store_commit`]
/// updates metadata once the store has landed.
pub trait PersistMech {
    /// Short name for reports ("lrp", "bb", "sb", "nop").
    fn name(&self) -> &'static str;

    /// A store of `kind` is about to be performed on `line`: plan the
    /// required flushes and stalls. Must not change the line's metadata.
    fn on_store(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) -> StoreAction;

    /// The store has landed (after `flush_before` completed): update the
    /// line's metadata and mechanism state.
    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind);

    /// The substrate handed `line`'s buffered writes to the persist
    /// subsystem (flush materialized). Mechanism-internal tracking (RET
    /// entries) for the line must be squashed.
    fn on_flush_issued(&mut self, _l1: &mut dyn L1View, _line: LineAddr) {}

    /// A dirty line is being evicted.
    fn on_evict(&mut self, l1: &mut dyn L1View, line: LineAddr) -> EvictAction;

    /// A dirty line is being downgraded by a coherence request.
    fn on_downgrade(&mut self, l1: &mut dyn L1View, line: LineAddr) -> DowngradeAction;

    /// Whether the directory persists L1 write-backs and blocks the line
    /// until the persist completes (invariant I4). False only for the
    /// volatile baseline.
    fn dir_persists_writebacks(&self) -> bool {
        true
    }

    /// Fixed cycle cost charged when an engine run scans the L1 (the
    /// persist-engine FSM of §5.2.1 examines every line).
    fn scan_cycles(&self) -> u64 {
        0
    }

    /// True if a store may not land in a line whose previous epoch is
    /// still being flushed (buffered-barrier semantics: lines hold one
    /// epoch at a time). LRP coalesces freely, so the default is false.
    fn forbids_epoch_coalescing(&self) -> bool {
        false
    }

    /// How the critical-path engine classifies the cycles a release
    /// spends between its commit and a demand-free flush issue. Barrier
    /// mechanisms (SB/BB) spend that window draining epochs and
    /// override this to [`lrp_obs::CritSegKind::BarrierDrain`]; lazy
    /// mechanisms defer by design, so the default is release-order
    /// bookkeeping.
    fn crit_drain_kind(&self) -> lrp_obs::CritSegKind {
        lrp_obs::CritSegKind::ReleaseOrder
    }

    /// Enables observability: the mechanism starts buffering
    /// [`lrp_obs::MechEvent`]s for the substrate to drain. Mechanisms
    /// without internal state to report keep the default no-op, so
    /// tracing them costs nothing.
    fn obs_enable(&mut self) {}

    /// Drains buffered mechanism events (empty unless [`obs_enable`]
    /// was called). The substrate stamps time and core identity — the
    /// mechanism knows neither.
    ///
    /// [`obs_enable`]: PersistMech::obs_enable
    fn obs_drain(&mut self) -> Vec<lrp_obs::MechEvent> {
        Vec::new()
    }
}

/// An in-memory [`L1View`] for mechanism unit tests (used by this crate
/// and by `lrp-baselines`).
pub mod mock {
    use super::*;
    use std::collections::BTreeMap;

    /// An in-memory L1View for mechanism unit tests.
    #[derive(Debug, Default)]
    pub struct MockL1 {
        /// Line metadata by line address.
        pub lines: BTreeMap<LineAddr, LineMeta>,
    }

    impl L1View for MockL1 {
        fn nvm_dirty_lines(&self) -> Vec<(LineAddr, LineMeta)> {
            self.lines
                .iter()
                .filter(|(_, m)| m.nvm_dirty)
                .map(|(&l, &m)| (l, m))
                .collect()
        }

        fn meta(&self, line: LineAddr) -> LineMeta {
            self.lines.get(&line).copied().unwrap_or_default()
        }

        fn set_meta(&mut self, line: LineAddr, meta: LineMeta) {
            self.lines.insert(line, meta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_run_accounting() {
        let r = EngineRun {
            stages: vec![vec![1, 2], vec![], vec![3]],
        };
        assert!(!r.is_empty());
        assert_eq!(r.line_count(), 3);
        assert_eq!(r.flat(), vec![1, 2, 3]);
        assert!(EngineRun::empty().is_empty());
    }

    #[test]
    fn store_kind_release_classification() {
        assert!(StoreKind::Release.is_release());
        assert!(StoreKind::RmwAcquire { release: true }.is_release());
        assert!(!StoreKind::RmwAcquire { release: false }.is_release());
        assert!(!StoreKind::Plain.is_release());
    }

    #[test]
    fn mock_l1_view_round_trips() {
        use mock::MockL1;
        let mut l1 = MockL1::default();
        l1.set_meta(
            5,
            LineMeta {
                nvm_dirty: true,
                release: false,
                min_epoch: 3,
            },
        );
        assert_eq!(l1.meta(5).min_epoch, 3);
        assert_eq!(l1.meta(6), LineMeta::default());
        assert_eq!(l1.nvm_dirty_lines().len(), 1);
    }
}
