//! Persist-engine planning (§5.2.2).
//!
//! The engine scans the L1 and builds a staged flush plan:
//!
//! 1. **Stage 0**: every *only-written* dirty line with `min-epoch`
//!    older than the subject release — these may flush concurrently
//!    (the engine "immediately schedules" them while scanning).
//! 2. One stage per older *released* line, in epoch order — releases
//!    must persist in epoch order, each after everything before it
//!    (the engine buffers them and drains the pending-persists counter
//!    in between).
//! 3. Optionally, the subject line itself as the final stage.
//!
//! The reordering of plain writes ahead of older releases is the
//! paper's "persist engine correctness" argument: RP only mandates that
//! writes persist before *subsequent* releases, never before earlier
//! ones.

use crate::mech::{EngineRun, Epoch, L1View};
use lrp_model::LineAddr;

/// Plans the flushes needed before a release with epoch `upto` may
/// persist: all only-written lines and all released lines with
/// `min_epoch < upto`, plus `include` (the subject line) as the final
/// stage.
pub fn plan_release_run(l1: &dyn L1View, upto: Epoch, include: Option<LineAddr>) -> EngineRun {
    // The releases list is pure scratch (sorted, then drained into
    // single-line stages); reuse one buffer per thread so planning on
    // the hot path allocates only for the stages it actually emits.
    thread_local! {
        static RELEASES: std::cell::RefCell<Vec<(Epoch, LineAddr)>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }
    let mut writes = Vec::new();
    RELEASES.with(|scratch| {
        let mut releases = scratch.borrow_mut();
        releases.clear();
        l1.for_each_nvm_dirty(&mut |line, meta| {
            if Some(line) == include || meta.min_epoch >= upto {
                return;
            }
            if meta.release {
                releases.push((meta.min_epoch, line));
            } else {
                writes.push(line);
            }
        });
        releases.sort_unstable();
        let mut stages = Vec::with_capacity(2 + releases.len());
        stages.push(std::mem::take(&mut writes));
        for &(_, line) in releases.iter() {
            stages.push(vec![line]);
        }
        if let Some(line) = include {
            stages.push(vec![line]);
        }
        stages.retain(|s| !s.is_empty());
        EngineRun { stages }
    })
}

/// Plans a full-barrier flush in strict epoch order: one stage per
/// distinct epoch `< upto` (ascending), plus `include` as a final stage.
/// Used by the buffered/strict barrier baselines, where writes of one
/// epoch may not persist before writes of an older epoch.
pub fn plan_epoch_stages(l1: &dyn L1View, upto: Epoch, include: Option<LineAddr>) -> EngineRun {
    let mut by_epoch: std::collections::BTreeMap<Epoch, Vec<LineAddr>> =
        std::collections::BTreeMap::new();
    l1.for_each_nvm_dirty(&mut |line, meta| {
        if Some(line) == include || meta.min_epoch >= upto {
            return;
        }
        by_epoch.entry(meta.min_epoch).or_default().push(line);
    });
    let mut stages: Vec<Vec<LineAddr>> = by_epoch.into_values().collect();
    if let Some(line) = include {
        stages.push(vec![line]);
    }
    EngineRun { stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::mock::MockL1;
    use crate::mech::LineMeta;

    fn meta(nvm_dirty: bool, release: bool, min_epoch: Epoch) -> LineMeta {
        LineMeta {
            nvm_dirty,
            release,
            min_epoch,
        }
    }

    /// The paper's Figure 4: written lines A(0), B(1), Y(1), Z(2)... and
    /// releases F1(1), F2(2). Persisting F2 must first flush all written
    /// lines, then F1, then F2.
    #[test]
    fn figure_4_schedule() {
        let mut l1 = MockL1::default();
        l1.set_meta(0xA, meta(true, false, 0)); // CLa: writes A, B (epoch 0)
        l1.set_meta(0xB, meta(true, false, 1)); // CLb: write Y (epoch 1)
        l1.set_meta(0xC, meta(true, true, 1)); // CLc: Release F1
        l1.set_meta(0xD, meta(true, false, 0)); // CLd: write X (epoch 0)
        l1.set_meta(0xE, meta(true, true, 2)); // CLe: Release F2 (subject)
        let run = plan_release_run(&l1, 2, Some(0xE));
        assert_eq!(run.stages.len(), 3);
        let mut s0 = run.stages[0].clone();
        s0.sort_unstable();
        assert_eq!(s0, vec![0xA, 0xB, 0xD], "only-written lines first");
        assert_eq!(run.stages[1], vec![0xC], "older release next");
        assert_eq!(run.stages[2], vec![0xE], "subject release last");
    }

    #[test]
    fn newer_lines_are_excluded() {
        let mut l1 = MockL1::default();
        l1.set_meta(0xA, meta(true, false, 5));
        l1.set_meta(0xB, meta(true, true, 7));
        let run = plan_release_run(&l1, 5, None);
        assert!(run.is_empty(), "nothing older than epoch 5");
    }

    #[test]
    fn clean_lines_are_ignored() {
        let mut l1 = MockL1::default();
        l1.set_meta(0xA, meta(false, false, 1));
        let run = plan_release_run(&l1, 10, None);
        assert!(run.is_empty());
    }

    #[test]
    fn multiple_releases_flush_in_epoch_order() {
        let mut l1 = MockL1::default();
        l1.set_meta(0x1, meta(true, true, 9));
        l1.set_meta(0x2, meta(true, true, 3));
        l1.set_meta(0x3, meta(true, true, 6));
        let run = plan_release_run(&l1, 10, None);
        assert_eq!(run.flat(), vec![0x2, 0x3, 0x1]);
        assert_eq!(run.stages.len(), 3, "one stage per release");
    }

    #[test]
    fn epoch_stages_group_by_epoch() {
        let mut l1 = MockL1::default();
        l1.set_meta(0x1, meta(true, false, 2));
        l1.set_meta(0x2, meta(true, false, 1));
        l1.set_meta(0x3, meta(true, false, 2));
        l1.set_meta(0x4, meta(true, true, 3));
        let run = plan_epoch_stages(&l1, 4, Some(0x9));
        assert_eq!(run.stages.len(), 4);
        assert_eq!(run.stages[0], vec![0x2]);
        let mut s1 = run.stages[1].clone();
        s1.sort_unstable();
        assert_eq!(s1, vec![0x1, 0x3]);
        assert_eq!(run.stages[2], vec![0x4]);
        assert_eq!(run.stages[3], vec![0x9]);
    }

    #[test]
    fn include_line_not_duplicated() {
        let mut l1 = MockL1::default();
        l1.set_meta(0xE, meta(true, true, 2));
        let run = plan_release_run(&l1, 3, Some(0xE));
        assert_eq!(run.flat(), vec![0xE], "subject appears once, as last stage");
    }
}
