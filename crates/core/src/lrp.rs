//! The LRP mechanism (§5.2), implementing [`PersistMech`].
//!
//! Writes buffer in the L1 and never trigger persists on their own;
//! persistency is enforced lazily when the coherence protocol detects an
//! inter-thread dependency (downgrade), when capacity forces an eviction,
//! when the RET fills, or when an acquire-RMW succeeds (I3).

use crate::engine::{plan_epoch_stages, plan_release_run};
use crate::epoch::EpochCounter;
use crate::mech::{
    DowngradeAction, EngineRun, Epoch, EvictAction, L1View, LineMeta, PersistMech, StoreAction,
    StoreKind,
};
use crate::ret::ReleaseEpochTable;
use lrp_model::LineAddr;
use lrp_obs::MechEvent;

/// LRP hardware parameters (Table 1 plus the engine model).
#[derive(Debug, Clone)]
pub struct LrpConfig {
    /// RET entries per hardware thread (paper: 32).
    pub ret_capacity: usize,
    /// Occupancy that triggers a proactive drain of the oldest release.
    pub ret_watermark: usize,
    /// Epoch wrap limit (paper: 8-bit metadata, 255).
    pub epoch_limit: Epoch,
    /// Cycles the persist-engine FSM needs to scan the L1 before the
    /// first flush of an engine run issues.
    pub scan_cycles: u64,
    /// Ablation of design choice D2: when true, the engine persists
    /// strictly in epoch order (one stage per epoch, like a full
    /// barrier) instead of flushing only-written lines first in
    /// parallel. Loses the overlap the paper's engine algorithm buys.
    pub strict_epoch_engine: bool,
}

impl Default for LrpConfig {
    fn default() -> Self {
        LrpConfig {
            ret_capacity: 32,
            ret_watermark: 28,
            epoch_limit: 255,
            scan_cycles: 16,
            strict_epoch_engine: false,
        }
    }
}

/// Per-core LRP mechanism state.
#[derive(Debug)]
pub struct Lrp {
    cfg: LrpConfig,
    epoch: EpochCounter,
    ret: ReleaseEpochTable,
    /// Release epoch reserved by `on_store`, consumed by
    /// `on_store_commit`.
    pending_release: Option<Epoch>,
    /// Event buffer, allocated only once observability is enabled.
    obs: Option<Vec<MechEvent>>,
}

impl Lrp {
    /// A mechanism instance with the given parameters.
    pub fn new(cfg: LrpConfig) -> Self {
        let epoch = EpochCounter::new(cfg.epoch_limit);
        let ret = ReleaseEpochTable::new(cfg.ret_capacity, cfg.ret_watermark);
        Lrp {
            cfg,
            epoch,
            ret,
            pending_release: None,
            obs: None,
        }
    }

    fn emit(&mut self, ev: MechEvent) {
        if let Some(buf) = self.obs.as_mut() {
            buf.push(ev);
        }
    }

    /// Current RET occupancy (for statistics).
    pub fn ret_len(&self) -> usize {
        self.ret.len()
    }

    /// Current epoch (for statistics and tests).
    pub fn current_epoch(&self) -> Epoch {
        self.epoch.current()
    }

    /// Plans an engine run under the configured engine algorithm
    /// (writes-first per §5.2.2, or the strict-epoch-order ablation).
    fn plan(&self, l1: &dyn L1View, upto: Epoch, include: Option<LineAddr>) -> EngineRun {
        if self.cfg.strict_epoch_engine {
            plan_epoch_stages(l1, upto, include)
        } else {
            plan_release_run(l1, upto, include)
        }
    }
}

impl Default for Lrp {
    fn default() -> Self {
        Lrp::new(LrpConfig::default())
    }
}

impl PersistMech for Lrp {
    fn name(&self) -> &'static str {
        "lrp"
    }

    fn on_store(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) -> StoreAction {
        let mut act = StoreAction::default();
        if !kind.is_release() {
            // Plain store (or pure acquire-RMW): buffering only. I3
            // still applies to a successful acquire-RMW.
            if let StoreKind::RmwAcquire { .. } = kind {
                act.persist_line_after = true;
            }
            return act;
        }

        // Release: advance the epoch; the new value is the release-epoch.
        let (rel_epoch, wrapped) = self.epoch.advance();
        self.pending_release = Some(rel_epoch);
        self.emit(MechEvent::EpochAdvance {
            epoch: rel_epoch,
            wrapped,
        });

        if wrapped {
            // Epoch overflow: flush every unpersisted line and restart
            // (§5.2.1). The flush covers the subject line's old contents
            // as well.
            act.flush_before = self.plan(l1, Epoch::MAX, None);
            return act;
        }

        let meta = l1.meta(line);
        if meta.nvm_dirty {
            // The line is not clean: its old contents are persisted
            // first — a release never coalesces with earlier writes
            // (§5.2.2). The release itself need not wait for the ack:
            // ordering against the line's own later flush is guaranteed
            // by the sequencer's pending-persists barrier.
            act.background = if meta.release {
                // The old value is itself a release: persist it with full
                // release ordering (its own engine run).
                self.plan(l1, meta.min_epoch, Some(line))
            } else {
                EngineRun {
                    stages: vec![vec![line]],
                }
            };
        }

        // RET management: drain proactively at the watermark; stall on a
        // genuinely full table.
        if self.ret.full() {
            if let Some((e, l)) = self.ret.oldest() {
                let drain = self.plan(l1, e, Some(l));
                act.flush_before.stages.extend(drain.stages);
                self.emit(MechEvent::RetDrain {
                    line: l,
                    epoch: e,
                    full: true,
                });
            }
        } else if self.ret.at_watermark() {
            if let Some((e, l)) = self.ret.oldest() {
                let drain = self.plan(l1, e, Some(l));
                act.background.stages.extend(drain.stages);
                self.emit(MechEvent::RetDrain {
                    line: l,
                    epoch: e,
                    full: false,
                });
            }
        }

        if let StoreKind::RmwAcquire { .. } = kind {
            // I3: block the pipeline until the RMW's write persists. The
            // write is a release here, so everything it must be ordered
            // after flushes first.
            let prior = self.plan(l1, rel_epoch, None);
            act.flush_before.stages.extend(prior.stages);
            act.persist_line_after = true;
        }
        act
    }

    fn on_store_commit(&mut self, l1: &mut dyn L1View, line: LineAddr, kind: StoreKind) {
        let mut meta = l1.meta(line);
        if kind.is_release() {
            let rel_epoch = self
                .pending_release
                .take()
                .expect("release commit without a planned release");
            meta = LineMeta {
                nvm_dirty: true,
                release: true,
                min_epoch: rel_epoch,
            };
            self.ret.insert(line, rel_epoch);
            self.emit(MechEvent::RetInsert {
                line,
                epoch: rel_epoch,
                occupancy: self.ret.len() as u32,
            });
        } else {
            if !meta.nvm_dirty {
                // First write since the line was last persisted: record
                // the epoch of the earliest buffered write.
                meta.nvm_dirty = true;
                meta.min_epoch = self.epoch.current();
            }
            // A dirty line keeps its (older, hence safe) min-epoch and
            // its release bit: new writes coalesce.
        }
        l1.set_meta(line, meta);
    }

    fn on_flush_issued(&mut self, _l1: &mut dyn L1View, line: LineAddr) {
        // The released value was handed to the persist subsystem; squash
        // its RET entry.
        if self.ret.squash_line(line) {
            self.emit(MechEvent::RetSquash {
                line,
                occupancy: self.ret.len() as u32,
            });
        }
    }

    fn on_evict(&mut self, l1: &mut dyn L1View, line: LineAddr) -> EvictAction {
        let meta = l1.meta(line);
        if !meta.nvm_dirty {
            // Coherence-dirty but NVM-clean: nothing to persist.
            return EvictAction::default();
        }
        if meta.release {
            // I1: all earlier writes persist before the released line
            // leaves; the line's own persist (at the directory, I4) is
            // not waited on.
            EvictAction {
                flush_before: self.plan(l1, meta.min_epoch, None),
                background: EngineRun::empty(),
                persist_at_dir: true,
            }
        } else {
            // Only-written: persist off the critical path through the
            // local sequencer (counted in pending-persists, so a later
            // release still orders after it).
            EvictAction {
                flush_before: EngineRun::empty(),
                background: EngineRun {
                    stages: vec![vec![line]],
                },
                persist_at_dir: false,
            }
        }
    }

    fn on_downgrade(&mut self, l1: &mut dyn L1View, line: LineAddr) -> DowngradeAction {
        let meta = l1.meta(line);
        if !meta.nvm_dirty {
            return DowngradeAction {
                line_persisted_locally: true,
                ..DowngradeAction::default()
            };
        }
        if meta.release {
            // I2: the response waits until earlier writes AND the
            // released line itself have persisted.
            DowngradeAction {
                flush_before: self.plan(l1, meta.min_epoch, Some(line)),
                background: EngineRun::empty(),
                line_persisted_locally: true,
                persist_at_dir: false,
            }
        } else {
            // Only-written: respond immediately; the line persists off
            // the critical path through the local sequencer.
            DowngradeAction {
                flush_before: EngineRun::empty(),
                background: EngineRun {
                    stages: vec![vec![line]],
                },
                line_persisted_locally: true,
                persist_at_dir: false,
            }
        }
    }

    fn scan_cycles(&self) -> u64 {
        self.cfg.scan_cycles
    }

    fn obs_enable(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Vec::new());
        }
    }

    fn obs_drain(&mut self) -> Vec<MechEvent> {
        match self.obs.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mech::mock::MockL1;

    fn store(l: &mut Lrp, l1: &mut MockL1, line: LineAddr, kind: StoreKind) -> StoreAction {
        let act = l.on_store(l1, line, kind);
        // Emulate the substrate: materialize all planned flushes
        // (clearing meta and squashing RET), then commit.
        for ln in act
            .flush_before
            .flat()
            .into_iter()
            .chain(act.background.flat())
        {
            let mut m = l1.meta(ln);
            m.nvm_dirty = false;
            m.release = false;
            l1.set_meta(ln, m);
            l.on_flush_issued(l1, ln);
        }
        l.on_store_commit(l1, line, kind);
        act
    }

    #[test]
    fn plain_writes_only_buffer() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        let act = store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        assert!(act.flush_before.is_empty());
        assert!(!act.persist_line_after);
        let m = l1.meta(0x10);
        assert!(m.nvm_dirty && !m.release);
        assert_eq!(m.min_epoch, 1);
    }

    #[test]
    fn coalescing_keeps_min_epoch() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        store(&mut l, &mut l1, 0x20, StoreKind::Release); // epoch -> 2
        store(&mut l, &mut l1, 0x10, StoreKind::Plain); // coalesces
        assert_eq!(l1.meta(0x10).min_epoch, 1, "min-epoch preserved");
    }

    #[test]
    fn release_on_clean_line_sets_metadata_and_ret() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        let act = store(&mut l, &mut l1, 0x20, StoreKind::Release);
        assert!(act.flush_before.is_empty(), "clean line: no persist needed");
        let m = l1.meta(0x20);
        assert!(m.release && m.nvm_dirty);
        assert_eq!(m.min_epoch, 2, "release-epoch is the incremented epoch");
        assert_eq!(l.ret_len(), 1);
        assert_eq!(l.current_epoch(), 2);
    }

    #[test]
    fn release_on_dirty_line_persists_old_value_first() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        let act = store(&mut l, &mut l1, 0x10, StoreKind::Release);
        assert_eq!(
            act.background.flat(),
            vec![0x10],
            "old contents are handed to the persist subsystem, without a stall"
        );
        assert!(
            act.flush_before.is_empty(),
            "the release itself does not wait"
        );
        let m = l1.meta(0x10);
        assert!(m.release);
        assert_eq!(m.min_epoch, 2);
    }

    #[test]
    fn release_on_released_line_runs_full_engine() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut l, &mut l1, 0x20, StoreKind::Release); // epoch 2
        let act = store(&mut l, &mut l1, 0x20, StoreKind::Release); // epoch 3
                                                                    // The old release on 0x20 must persist with release ordering:
                                                                    // the epoch-1 write first, then the line.
        assert_eq!(act.background.stages.len(), 2);
        assert_eq!(act.background.stages[0], vec![0x10]);
        assert_eq!(act.background.stages[1], vec![0x20]);
        assert_eq!(l.ret_len(), 1, "old entry squashed, new entry allocated");
    }

    #[test]
    fn downgrade_of_release_runs_engine_i2() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        store(&mut l, &mut l1, 0x18, StoreKind::Plain);
        store(&mut l, &mut l1, 0x20, StoreKind::Release);
        let act = l.on_downgrade(&mut l1, 0x20);
        assert!(act.line_persisted_locally);
        assert!(!act.persist_at_dir);
        let stages = &act.flush_before.stages;
        assert_eq!(stages.len(), 2);
        let mut s0 = stages[0].clone();
        s0.sort_unstable();
        assert_eq!(s0, vec![0x10, 0x18], "prior writes first (parallel)");
        assert_eq!(stages[1], vec![0x20], "the release itself last");
    }

    #[test]
    fn downgrade_of_only_written_line_is_off_critical_path() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        let act = l.on_downgrade(&mut l1, 0x10);
        assert!(act.flush_before.is_empty(), "the response is not delayed");
        assert_eq!(
            act.background.flat(),
            vec![0x10],
            "the line persists through the local sequencer"
        );
        assert!(act.line_persisted_locally);
        assert!(!act.persist_at_dir);
    }

    #[test]
    fn evict_of_release_waits_for_priors_only_i1() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        store(&mut l, &mut l1, 0x20, StoreKind::Release);
        let act = l.on_evict(&mut l1, 0x20);
        assert_eq!(act.flush_before.flat(), vec![0x10], "priors, not the line");
        assert!(act.persist_at_dir, "line persists via the write-back");
    }

    #[test]
    fn evict_of_clean_line_is_free() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        l1.set_meta(
            0x10,
            LineMeta {
                nvm_dirty: false,
                release: false,
                min_epoch: 1,
            },
        );
        let act = l.on_evict(&mut l1, 0x10);
        assert!(act.flush_before.is_empty());
        assert!(act.background.is_empty());
        assert!(!act.persist_at_dir);
    }

    #[test]
    fn rmw_acquire_blocks_for_own_persist_i3() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        let act = store(
            &mut l,
            &mut l1,
            0x20,
            StoreKind::RmwAcquire { release: true },
        );
        assert!(
            act.persist_line_after,
            "pipeline blocks until the write persists"
        );
        assert_eq!(
            act.flush_before.flat(),
            vec![0x10],
            "release ordering: priors flush first"
        );
    }

    #[test]
    fn pure_acquire_rmw_persists_only_its_line() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain);
        let act = store(
            &mut l,
            &mut l1,
            0x20,
            StoreKind::RmwAcquire { release: false },
        );
        assert!(act.persist_line_after);
        assert!(act.flush_before.is_empty());
    }

    #[test]
    fn epoch_wrap_flushes_everything() {
        let mut l = Lrp::new(LrpConfig {
            epoch_limit: 3,
            ..LrpConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut l, &mut l1, 0x20, StoreKind::Release); // epoch 2
        store(&mut l, &mut l1, 0x30, StoreKind::Release); // epoch 3
        let act = store(&mut l, &mut l1, 0x40, StoreKind::Release); // wrap
        let flushed = act.flush_before.flat();
        assert!(flushed.contains(&0x10));
        assert!(flushed.contains(&0x20));
        assert!(flushed.contains(&0x30));
        assert_eq!(l.current_epoch(), 1, "epochs restart");
        assert_eq!(l.ret_len(), 1, "only the new release remains buffered");
    }

    #[test]
    fn ret_watermark_drains_oldest_in_background() {
        let mut l = Lrp::new(LrpConfig {
            ret_capacity: 4,
            ret_watermark: 2,
            ..LrpConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Release);
        store(&mut l, &mut l1, 0x20, StoreKind::Release);
        // Third release: watermark reached, oldest drains in background.
        let act = l.on_store(&mut l1, 0x30, StoreKind::Release);
        assert!(!act.background.is_empty());
        assert!(
            act.background.flat().contains(&0x10),
            "oldest release drains"
        );
        l.on_store_commit(&mut l1, 0x30, StoreKind::Release);
    }

    #[test]
    fn strict_epoch_engine_ablation_orders_by_epoch() {
        let mut l = Lrp::new(LrpConfig {
            strict_epoch_engine: true,
            ..LrpConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Plain); // epoch 1
        store(&mut l, &mut l1, 0x20, StoreKind::Release); // epoch 2
        store(&mut l, &mut l1, 0x30, StoreKind::Plain); // epoch 2
        store(&mut l, &mut l1, 0x40, StoreKind::Release); // epoch 3
        let act = l.on_downgrade(&mut l1, 0x40);
        // Strict ordering: epoch 1, then epoch 2 (release + plain
        // together), then the subject line — no writes-first overlap.
        assert_eq!(act.flush_before.stages.len(), 3);
        assert_eq!(act.flush_before.stages[0], vec![0x10]);
        assert_eq!(act.flush_before.stages[2], vec![0x40]);
    }

    #[test]
    fn obs_drain_reports_epoch_and_ret_activity() {
        let mut l = Lrp::default();
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Release);
        assert!(l.obs_drain().is_empty(), "disabled: no buffering");
        l.obs_enable();
        store(&mut l, &mut l1, 0x20, StoreKind::Release);
        l.on_flush_issued(&mut l1, 0x20);
        let evs = l.obs_drain();
        assert!(matches!(
            evs[0],
            MechEvent::EpochAdvance {
                epoch: 3,
                wrapped: false
            }
        ));
        assert!(evs.iter().any(|e| matches!(
            e,
            MechEvent::RetInsert {
                line: 0x20,
                epoch: 3,
                ..
            }
        )));
        assert!(evs
            .iter()
            .any(|e| matches!(e, MechEvent::RetSquash { line: 0x20, .. })));
        assert!(l.obs_drain().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn ret_full_drains_synchronously() {
        let mut l = Lrp::new(LrpConfig {
            ret_capacity: 2,
            ret_watermark: 2,
            ..LrpConfig::default()
        });
        let mut l1 = MockL1::default();
        store(&mut l, &mut l1, 0x10, StoreKind::Release);
        store(&mut l, &mut l1, 0x20, StoreKind::Release);
        let act = store(&mut l, &mut l1, 0x30, StoreKind::Release);
        assert!(
            act.flush_before.flat().contains(&0x10),
            "full RET forces a stalling drain of the oldest release"
        );
        assert_eq!(l.ret_len(), 2);
    }
}
