//! The Release Epoch Table (§5.2.1).
//!
//! A small content-addressable table holding the release-epoch of every
//! L1 line that currently buffers a released value. An entry is
//! allocated when a release executes and squashed when the released line
//! is handed to the persist subsystem. When occupancy reaches the
//! watermark, the oldest release is drained proactively so the table
//! (almost) never fills; if it does fill, the release must stall behind
//! a synchronous drain.

use crate::mech::Epoch;
use lrp_model::LineAddr;
use std::collections::BTreeMap;

/// Content-addressable release-epoch table.
#[derive(Debug, Clone)]
pub struct ReleaseEpochTable {
    /// Release-epoch → line (epochs are unique per thread).
    by_epoch: BTreeMap<Epoch, LineAddr>,
    capacity: usize,
    watermark: usize,
    high_water: usize,
}

impl ReleaseEpochTable {
    /// A table with `capacity` entries (paper: 32) draining at
    /// `watermark`.
    pub fn new(capacity: usize, watermark: usize) -> Self {
        assert!(capacity >= 1 && watermark <= capacity);
        ReleaseEpochTable {
            by_epoch: BTreeMap::new(),
            capacity,
            watermark,
            high_water: 0,
        }
    }

    /// The paper's configuration: 32 entries, drain at 28.
    pub fn paper_default() -> Self {
        ReleaseEpochTable::new(32, 28)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.by_epoch.len()
    }

    /// True if no releases are buffered.
    pub fn is_empty(&self) -> bool {
        self.by_epoch.is_empty()
    }

    /// True if occupancy reached the drain watermark.
    pub fn at_watermark(&self) -> bool {
        self.by_epoch.len() >= self.watermark
    }

    /// True if no entry can be allocated.
    pub fn full(&self) -> bool {
        self.by_epoch.len() >= self.capacity
    }

    /// Allocates an entry for a release to `line` at `epoch`. The caller
    /// must have made room (the table panics on overflow — hardware
    /// cannot drop a release).
    pub fn insert(&mut self, line: LineAddr, epoch: Epoch) {
        assert!(!self.full(), "RET overflow: caller must drain first");
        self.by_epoch.insert(epoch, line);
        self.high_water = self.high_water.max(self.by_epoch.len());
    }

    /// Highest occupancy the table ever reached (observability).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Looks up the release-epoch of `line`.
    pub fn epoch_of(&self, line: LineAddr) -> Option<Epoch> {
        self.by_epoch
            .iter()
            .find(|&(_, &l)| l == line)
            .map(|(&e, _)| e)
    }

    /// The oldest buffered release, if any.
    pub fn oldest(&self) -> Option<(Epoch, LineAddr)> {
        self.by_epoch.iter().next().map(|(&e, &l)| (e, l))
    }

    /// Squashes the entry for `line` (when the release is handed to the
    /// persist subsystem). Returns whether an entry was removed.
    pub fn squash_line(&mut self, line: LineAddr) -> bool {
        let before = self.by_epoch.len();
        self.by_epoch.retain(|_, &mut l| l != line);
        self.by_epoch.len() != before
    }

    /// Squashes every entry with epoch `< upto` plus, optionally, the
    /// entry for `line` itself. Returns the squashed lines in epoch
    /// order — exactly the release stages of an engine run.
    pub fn drain_older(&mut self, upto: Epoch, line: Option<LineAddr>) -> Vec<LineAddr> {
        let epochs: Vec<Epoch> = self.by_epoch.range(..upto).map(|(&e, _)| e).collect();
        let mut out = Vec::with_capacity(epochs.len() + 1);
        for e in epochs {
            out.push(self.by_epoch.remove(&e).expect("epoch key exists"));
        }
        if let Some(l) = line {
            self.squash_line(l);
        }
        out
    }

    /// Removes every entry (epoch wrap flush) and returns the lines in
    /// epoch order.
    pub fn drain_all(&mut self) -> Vec<LineAddr> {
        let out: Vec<LineAddr> = self.by_epoch.values().copied().collect();
        self.by_epoch.clear();
        out
    }
}

impl Default for ReleaseEpochTable {
    fn default() -> Self {
        ReleaseEpochTable::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = ReleaseEpochTable::new(4, 3);
        t.insert(0x10, 2);
        t.insert(0x20, 5);
        assert_eq!(t.epoch_of(0x10), Some(2));
        assert_eq!(t.epoch_of(0x20), Some(5));
        assert_eq!(t.epoch_of(0x30), None);
        assert_eq!(t.oldest(), Some((2, 0x10)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn watermark_and_full() {
        let mut t = ReleaseEpochTable::new(3, 2);
        assert!(!t.at_watermark());
        t.insert(1, 1);
        t.insert(2, 2);
        assert!(t.at_watermark());
        assert!(!t.full());
        t.insert(3, 3);
        assert!(t.full());
    }

    #[test]
    #[should_panic(expected = "RET overflow")]
    fn overflow_panics() {
        let mut t = ReleaseEpochTable::new(1, 1);
        t.insert(1, 1);
        t.insert(2, 2);
    }

    #[test]
    fn drain_older_returns_epoch_order() {
        let mut t = ReleaseEpochTable::new(8, 6);
        t.insert(0xA, 7);
        t.insert(0xB, 3);
        t.insert(0xC, 5);
        t.insert(0xD, 9);
        let drained = t.drain_older(7, Some(0xA));
        assert_eq!(drained, vec![0xB, 0xC], "epochs 3,5 in order");
        assert_eq!(t.epoch_of(0xA), None, "own entry squashed");
        assert_eq!(t.epoch_of(0xD), Some(9), "newer release untouched");
    }

    #[test]
    fn squash_line_is_idempotent() {
        let mut t = ReleaseEpochTable::new(4, 3);
        t.insert(0xA, 1);
        t.squash_line(0xA);
        t.squash_line(0xA);
        assert!(t.is_empty());
    }

    #[test]
    fn drain_all_clears() {
        let mut t = ReleaseEpochTable::new(4, 3);
        t.insert(0xA, 2);
        t.insert(0xB, 1);
        assert_eq!(t.drain_all(), vec![0xB, 0xA]);
        assert!(t.is_empty());
    }

    #[test]
    fn high_water_tracks_peak_occupancy_and_squash_reports_removal() {
        let mut t = ReleaseEpochTable::new(4, 3);
        t.insert(0xA, 1);
        t.insert(0xB, 2);
        assert!(t.squash_line(0xA));
        assert!(!t.squash_line(0xA), "second squash finds nothing");
        t.insert(0xC, 3);
        assert_eq!(t.len(), 2);
        assert_eq!(t.high_water(), 2, "peak, not current, occupancy");
    }

    #[test]
    fn paper_default_dimensions() {
        let t = ReleaseEpochTable::paper_default();
        assert_eq!(t.capacity, 32);
        assert_eq!(t.watermark, 28);
    }
}
